//! Reachability over generated graphs: the workload behind the paper's
//! space-efficiency claim. The linear proof search decides reachability while
//! holding only a constant-size conjunctive query, whereas bottom-up
//! materialisation stores the full transitive closure — and, between the
//! two, the demand-driven magic-sets path derives exactly the tuples a
//! *bound* query needs from an ordinary bottom-up evaluator.
//!
//! Run with: `cargo run --release --example graph_reachability`

use vadalog::benchgen::graphs::{chain_graph, random_graph};
use vadalog::benchgen::magic::bound_query_scenario;
use vadalog::core::{linear_proof_search, SearchOptions};
use vadalog::datalog::{DatalogEngine, DemandEngine};
use vadalog::model::parser::{parse_query, parse_rules};
use vadalog::model::{QueryBudget, Symbol};

fn main() {
    let tc = parse_rules("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).").unwrap();
    let query = parse_query("?(X, Y) :- t(X, Y).").unwrap();

    println!("chain graphs: proof-search frontier stays constant while the closure grows\n");
    println!(
        "{:>8} {:>18} {:>22} {:>20}",
        "edges", "closure atoms", "search node width", "search states"
    );
    for n in [50usize, 100, 200] {
        let db = chain_graph(n);
        let closure = DatalogEngine::new(tc.clone()).unwrap().evaluate(&db);
        let boolean = query
            .instantiate(&[Symbol::new("n0"), Symbol::new(&format!("n{n}"))])
            .unwrap();
        let outcome = linear_proof_search(&tc, &db, &boolean, SearchOptions::default());
        assert!(outcome.is_accepted());
        println!(
            "{:>8} {:>18} {:>22} {:>20}",
            n,
            closure.stats.derived_atoms,
            outcome.stats().max_state_size,
            outcome.stats().states_visited
        );
    }

    // Random graph: positive and negative decisions.
    let db = random_graph(40, 160, 7);
    let dom: Vec<_> = db.domain().into_iter().collect();
    let (from, to) = (dom[0], dom[dom.len() - 1]);
    let boolean = query.instantiate(&[from, to]).unwrap();
    let outcome = linear_proof_search(&tc, &db, &boolean, SearchOptions::default());
    println!(
        "\nrandom graph (40 nodes / 160 edges): {from} reaches {to}? {} ({} states explored)",
        outcome.is_accepted(),
        outcome.stats().states_visited
    );

    // Bound queries through the magic-sets path: on a workload of many
    // disjoint chains, full materialisation derives every chain's closure,
    // while `reach(c, Y)` demands only chain c's tuples — and the second
    // same-pattern query reuses the cached specialised program.
    println!("\nbound queries: demand-driven (magic sets) vs full materialisation\n");
    let scenario = bound_query_scenario(40, 25, 7);
    let full = DatalogEngine::new(scenario.program.clone())
        .unwrap()
        .evaluate(&scenario.database);
    let demand = DemandEngine::new(scenario.program.clone());
    let budget = QueryBudget::unlimited();
    let bound = demand
        .answer(
            scenario.database.as_instance(),
            &scenario.bound_query,
            &budget,
        )
        .expect("bound query takes the magic path");
    assert_eq!(
        bound.answers,
        scenario.bound_query.evaluate(&full.instance),
        "magic answers are identical to the full path's"
    );
    println!(
        "reach({}, Y): {} answers, {} tuples demanded vs {} fully materialised",
        scenario.source,
        bound.answers.len(),
        bound.demanded_tuples,
        full.stats.derived_atoms
    );
    let point = demand
        .answer(
            scenario.database.as_instance(),
            &scenario.point_query,
            &budget,
        )
        .expect("point query takes the magic path");
    println!(
        "reach({}, {}): {} (specialised program cached: {})",
        scenario.source,
        scenario.target,
        if point.answers.is_empty() {
            "no"
        } else {
            "yes"
        },
        point.cache_hit
    );
    let again = demand
        .answer(
            scenario.database.as_instance(),
            &scenario.bound_query,
            &budget,
        )
        .expect("repeat takes the magic path");
    assert!(again.cache_hit, "same pattern: no rewrite, no recompile");
    println!(
        "repeat of reach({}, Y): cache hit, bit-identical ({} answers)",
        scenario.source,
        again.answers.len()
    );
}
