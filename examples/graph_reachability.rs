//! Reachability over generated graphs: the workload behind the paper's
//! space-efficiency claim. The linear proof search decides reachability while
//! holding only a constant-size conjunctive query, whereas bottom-up
//! materialisation stores the full transitive closure.
//!
//! Run with: `cargo run --release --example graph_reachability`

use vadalog::benchgen::graphs::{chain_graph, random_graph};
use vadalog::core::{linear_proof_search, SearchOptions};
use vadalog::datalog::DatalogEngine;
use vadalog::model::parser::{parse_query, parse_rules};
use vadalog::model::Symbol;

fn main() {
    let tc = parse_rules("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).").unwrap();
    let query = parse_query("?(X, Y) :- t(X, Y).").unwrap();

    println!("chain graphs: proof-search frontier stays constant while the closure grows\n");
    println!(
        "{:>8} {:>18} {:>22} {:>20}",
        "edges", "closure atoms", "search node width", "search states"
    );
    for n in [50usize, 100, 200] {
        let db = chain_graph(n);
        let closure = DatalogEngine::new(tc.clone()).unwrap().evaluate(&db);
        let boolean = query
            .instantiate(&[Symbol::new("n0"), Symbol::new(&format!("n{n}"))])
            .unwrap();
        let outcome = linear_proof_search(&tc, &db, &boolean, SearchOptions::default());
        assert!(outcome.is_accepted());
        println!(
            "{:>8} {:>18} {:>22} {:>20}",
            n,
            closure.stats.derived_atoms,
            outcome.stats().max_state_size,
            outcome.stats().states_visited
        );
    }

    // Random graph: positive and negative decisions.
    let db = random_graph(40, 160, 7);
    let dom: Vec<_> = db.domain().into_iter().collect();
    let (from, to) = (dom[0], dom[dom.len() - 1]);
    let boolean = query.instantiate(&[from, to]).unwrap();
    let outcome = linear_proof_search(&tc, &db, &boolean, SearchOptions::default());
    println!(
        "\nrandom graph (40 nodes / 160 edges): {from} reaches {to}? {} ({} states explored)",
        outcome.is_accepted(),
        outcome.stats().states_visited
    );
}
