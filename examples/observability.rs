//! Query-level observability, end to end over loopback TCP: `EXPLAIN` a
//! bound query without running it, `PROFILE` the same query and check the
//! per-round breakdown against the totals, scrape the `METRICS` Prometheus
//! exposition, read the slow-query log back through `STATS SLOW=<n>`, and
//! drain the structured trace spans the request left behind.
//!
//! Run with: `cargo run --example observability`
//!
//! Two invariants are asserted, so this doubles as a smoke test in CI:
//!
//! * the `EXPLAIN` plan says the bound query takes the magic path and
//!   adorns the closure predicate `t^bf`;
//! * in the `PROFILE` breakdown, the per-round `derived_rows` sum to the
//!   `demanded_tuples` figure on the totals line — every scratch tuple is
//!   accounted to exactly one fixpoint round.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use vadalog::model::parser::parse_rules;
use vadalog::service::{DurableEngine, IncrementalEngine, LiveServer, ServerConfig};

/// A minimal blocking protocol client. Multi-line responses are framed by
/// the header's count — `OK <label>=<n> …` is followed by exactly `n`
/// lines and then `END` — so the client whitelists the counted labels and
/// never scans for `END`.
struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to the live server");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            reader,
            writer: BufWriter::new(stream),
        }
    }

    fn send(&mut self, line: &str) -> Vec<String> {
        writeln!(self.writer, "{line}").expect("write request");
        self.writer.flush().expect("flush request");
        let mut lines = vec![self.read_line()];
        let counted = [
            "answers",
            "diagnostics",
            "explain",
            "profile",
            "metrics",
            "slow",
        ]
        .iter()
        .find_map(|label| lines[0].strip_prefix(&format!("OK {label}=")));
        if let Some(rest) = counted {
            let count: usize = rest
                .split_whitespace()
                .next()
                .and_then(|n| n.parse().ok())
                .expect("count in header");
            for _ in 0..count {
                let body = self.read_line();
                lines.push(body);
            }
            let end = self.read_line();
            assert_eq!(end, "END", "counted responses must terminate with END");
            lines.push(end);
        }
        lines
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        line.trim_end_matches('\n').to_string()
    }
}

/// Extracts `key=<u64>` from a space-separated profile/summary line.
fn field(line: &str, key: &str) -> u64 {
    line.split_whitespace()
        .find_map(|part| part.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no {key}= field in {line:?}"))
}

fn main() {
    // Tracing is off by default; turning it on never changes answers or
    // counters (that bit-identity is property-tested in the suite).
    vadalog::obs::set_enabled(true);

    let program = parse_rules("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).")
        .expect("program parses");
    let engine = IncrementalEngine::new(program).expect("plain Datalog program");
    let config = ServerConfig {
        // Threshold 0: every query is "slow", so the log fills immediately.
        slow_query_micros: Some(0),
        ..ServerConfig::default()
    };
    let server = LiveServer::start_with(DurableEngine::volatile(engine), "127.0.0.1:0", config)
        .expect("bind an ephemeral port");
    let addr = server.addr();
    println!("live server listening on {addr}");

    let mut client = Client::connect(addr);
    let show = |request: &str, response: &[String]| {
        println!("> {request}");
        for line in response {
            println!("< {line}");
        }
    };

    let batch = "BATCH edge(a, b). edge(b, c). edge(c, d).";
    show(batch, &client.send(batch));

    // EXPLAIN: the plan, without evaluating anything.
    let explain = client.send("EXPLAIN ?(Y) :- t(a, Y).");
    show("EXPLAIN ?(Y) :- t(a, Y).", &explain);
    assert!(
        explain[0].starts_with("OK explain=") && explain[0].ends_with("magic=true"),
        "bound query must take the magic path: {}",
        explain[0]
    );
    // The asserted plan facts: the closure predicate is adorned
    // bound-free, and the join plan enumerates its build/probe steps.
    assert!(explain.iter().any(|l| l == "adornment t^bf"), "{explain:?}");
    assert!(
        explain
            .iter()
            .any(|l| l.starts_with("plan step=0 atom=t/2 ")),
        "{explain:?}"
    );

    // PROFILE: evaluate the same query, get the breakdown instead of rows.
    let profile = client.send("PROFILE ?(Y) :- t(a, Y).");
    show("PROFILE ?(Y) :- t(a, Y).", &profile);
    assert!(profile[0].contains("answers=3"), "{}", profile[0]);
    assert!(profile[0].contains("path=magic"), "{}", profile[0]);
    let totals = profile
        .iter()
        .find(|l| l.starts_with("totals "))
        .expect("profile carries a totals line");
    // The profile invariant: per-round derived rows sum to the demanded
    // tuples the magic evaluation materialised in its scratch instance.
    let per_round: u64 = profile
        .iter()
        .filter(|l| l.starts_with("phase=stratum "))
        .map(|l| field(l, "derived_rows"))
        .sum();
    assert_eq!(
        per_round,
        field(totals, "demanded_tuples"),
        "per-round derived_rows must sum to demanded_tuples"
    );

    // An ordinary query, so the slow log (threshold 0) has a QUERY entry.
    show(
        "QUERY ?(X) :- t(X, d).",
        &client.send("QUERY ?(X) :- t(X, d)."),
    );

    // The slow-query log, newest first. EXPLAIN never evaluates, so only
    // the PROFILE and the QUERY recorded entries.
    let slow = client.send("STATS SLOW=5");
    show("STATS SLOW=5", &slow);
    assert!(
        slow[0].starts_with("OK slow=2 threshold_micros=0"),
        "{}",
        slow[0]
    );
    assert!(slow[1].contains("verb=query"), "{}", slow[1]);
    assert!(slow[1].contains("query=Q(X) :- t(X, d)."), "{}", slow[1]);

    // METRICS: Prometheus text exposition of the same counters.
    let metrics = client.send("METRICS");
    println!("> METRICS ({} lines)", metrics.len() - 2);
    for line in metrics.iter().filter(|l| {
        l.starts_with("vadalog_epoch ")
            || l.starts_with("vadalog_atoms ")
            || l.starts_with("vadalog_demanded_tuples_total ")
            || l.contains("duration_micros_count{verb=\"query\"}")
    }) {
        println!("< {line}");
    }
    assert!(
        metrics.iter().any(|l| l == "vadalog_epoch 1"),
        "one batch applied"
    );
    assert!(
        metrics
            .iter()
            .any(|l| l.starts_with("vadalog_request_duration_micros_bucket{verb=\"query\",")),
        "latency histogram family present"
    );

    show("SHUTDOWN", &client.send("SHUTDOWN"));
    drop(client);
    server.join();

    // The spans the requests left behind, per instrumentation site.
    let records = vadalog::obs::drain();
    let mut kinds: Vec<&str> = records.iter().map(|r| r.kind).collect();
    kinds.sort_unstable();
    kinds.dedup();
    println!(
        "trace: {} records from {} span kinds",
        records.len(),
        kinds.len()
    );
    for kind in kinds {
        let count = records.iter().filter(|r| r.kind == kind).count();
        println!("  {kind} x{count}");
    }
    assert!(
        records.iter().any(|r| r.kind == "service.request"),
        "request lifecycle spans recorded"
    );
    println!("observability example passed");
}
