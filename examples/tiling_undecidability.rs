//! The Section 5 construction: piece-wise linearity without wardedness is
//! undecidable. This example builds the reduction for a solvable and an
//! unsolvable tiling system, shows that the generated TGD set is piece-wise
//! linear but *not* warded, and cross-checks a bounded chase against the
//! bounded tiling solver.
//!
//! Run with: `cargo run --example tiling_undecidability`

use vadalog::analysis::pwl::is_piecewise_linear;
use vadalog::analysis::wardedness::check_wardedness;
use vadalog::chase::{ChaseConfig, ChaseEngine, TerminationPolicy};
use vadalog::tiling::{has_tiling_within, reduction, TilingSystem};

fn main() {
    for (name, system) in [
        ("solvable corridor", TilingSystem::solvable_example()),
        ("unsolvable corridor", TilingSystem::unsolvable_example()),
    ] {
        println!("== {name} ==");
        let red = reduction(&system);

        // The fixed TGD set Σ of the reduction is PWL but not warded — the
        // combination the paper proves undecidable.
        assert!(is_piecewise_linear(&red.program));
        let wardedness = check_wardedness(&red.program);
        assert!(!wardedness.is_warded());
        println!(
            "Σ: {} TGDs, piece-wise linear, NOT warded (violating rules: {:?})",
            red.program.len(),
            wardedness.violating_tgds()
        );

        // Ground truth from the bounded solver.
        let tiling = has_tiling_within(&system, 4, 4);
        println!(
            "bounded solver (≤4×4): tiling exists = {}",
            tiling.is_some()
        );
        if let Some(t) = &tiling {
            for row in &t.rows {
                println!("   {}", row.join(" "));
            }
        }

        // A bounded chase can only *confirm* solvable systems; it can never
        // refute unsolvable ones — that asymmetry is the undecidability.
        let chase = ChaseEngine::new(
            red.program.clone(),
            ChaseConfig {
                record_provenance: false,
                ..ChaseConfig::restricted(TerminationPolicy::MaxNullDepth(4))
            },
        );
        let result = chase.run(&red.database);
        println!(
            "bounded chase: {} atoms materialised, query answered = {}\n",
            result.instance.len(),
            result.boolean_answer(&red.query)
        );
        assert_eq!(tiling.is_some(), result.boolean_answer(&red.query));
    }
}
