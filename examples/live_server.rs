//! Live materialisation service, end to end over loopback TCP: start the
//! server on an ephemeral port, ingest facts (watch the unaffected stratum
//! being skipped), query the maintained closure, read the stats, shut down.
//!
//! Run with: `cargo run --example live_server`

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use vadalog::model::parser::parse_rules;
use vadalog::service::{IncrementalEngine, LiveServer};

/// A minimal blocking protocol client: send one line, read the response
/// (one line, or header..`END` for query answers).
struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to the live server");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            reader,
            writer: BufWriter::new(stream),
        }
    }

    fn send(&mut self, line: &str) -> Vec<String> {
        writeln!(self.writer, "{line}").expect("write request");
        self.writer.flush().expect("flush request");
        let mut lines = vec![self.read_line()];
        // Query answers are framed by the header's count — read exactly
        // `answers=<n>` tuple lines, then the `END` line.
        if let Some(rest) = lines[0].strip_prefix("OK answers=") {
            let count: usize = rest
                .split_whitespace()
                .next()
                .and_then(|n| n.parse().ok())
                .expect("answer count in header");
            for _ in 0..count {
                let tuple = self.read_line();
                lines.push(tuple);
            }
            let end = self.read_line();
            assert_eq!(end, "END", "answers must terminate with END");
            lines.push(end);
        }
        lines
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        line.trim_end_matches('\n').to_string()
    }
}

fn main() {
    // Two independent closures: `t` over `edge` and `s` over `link`. Deltas
    // touching only one of them must leave the other stratum untouched.
    let program = parse_rules(
        "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).\n\
         s(X, Y) :- link(X, Y).\n s(X, Z) :- link(X, Y), s(Y, Z).",
    )
    .expect("program parses");
    let engine = IncrementalEngine::new(program).expect("plain Datalog program");
    let server = LiveServer::start(engine, "127.0.0.1:0").expect("bind an ephemeral port");
    let addr = server.addr();
    println!("live server listening on {addr}");

    let mut client = Client::connect(addr);
    for request in [
        "BATCH edge(a, b). edge(b, c). link(p, q).",
        "FACT edge(c, d).",
        "QUERY ?(X) :- t(X, d).",
        "QUERY ?(X, Y) :- s(X, Y).",
        "STATS",
    ] {
        let response = client.send(request);
        println!("> {request}");
        for line in &response {
            println!("< {line}");
        }
    }

    // The ingest of `edge(c, d)` must have skipped the link/s stratum and
    // the closure must now connect a, b and c to d.
    let fact_ack = client.send("QUERY ?(X) :- t(X, d).");
    assert_eq!(fact_ack[0], "OK answers=3 epoch=2");
    assert_eq!(&fact_ack[1..], ["a", "b", "c", "END"]);

    println!("> SHUTDOWN");
    let bye = client.send("SHUTDOWN");
    println!("< {}", bye[0]);
    assert_eq!(bye, vec!["OK bye"]);
    drop(client);
    server.join();
    println!("server stopped cleanly");
}
