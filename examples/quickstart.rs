//! Quickstart: parse a program, check that it lies in the space-efficient
//! core (warded ∩ piece-wise linear), and answer a query three ways —
//! with the space-bounded proof search, with the Datalog rewriting, and with
//! the Vadalog-style bottom-up engine.
//!
//! Run with: `cargo run --example quickstart`

use vadalog::analysis::classify::{classify_scenario, ScenarioClass};
use vadalog::core::CertainAnswerEngine;
use vadalog::engine::{EngineConfig, Reasoner};
use vadalog::model::parser;
use vadalog::model::Symbol;

fn main() {
    // A tiny knowledge graph: direct reports and a recursive "works under"
    // relation (piece-wise linear recursion, as in most Vadalog scenarios).
    let source = r#"
        % database
        reports_to(alice, bob).
        reports_to(bob, carol).
        reports_to(dave, carol).
        reports_to(carol, erin).

        % rules: the reflexive-free transitive closure of reports_to
        works_under(X, Y) :- reports_to(X, Y).
        works_under(X, Z) :- reports_to(X, Y), works_under(Y, Z).

        % query: who works under erin?
        ?(X) :- works_under(X, erin).
    "#;

    let parsed = parser::parse(source).expect("the program parses");
    println!(
        "parsed {} rules, {} facts",
        parsed.program.len(),
        parsed.database.len()
    );

    // 1. Classify the program: it should be in WARD ∩ PWL, the space-efficient core.
    let class = classify_scenario(&parsed.program);
    assert_eq!(class, ScenarioClass::WardedPwl);
    println!("program class: {class}");

    // 2. Answer the query with the certain-answer engine (linear proof search
    //    for the decision problem, Datalog rewriting for enumeration).
    let engine = CertainAnswerEngine::with_defaults(parsed.program.clone())
        .expect("warded programs are accepted");
    let query = &parsed.queries[0];
    let answers = engine
        .all_answers(&parsed.database, query)
        .expect("enumeration succeeds");
    println!("everyone working under erin: {answers:?}");
    assert_eq!(answers.len(), 4);

    // The decision problem: is alice a certain answer? Is erin?
    assert!(engine
        .is_certain_answer(&parsed.database, query, &[Symbol::new("alice")])
        .unwrap());
    assert!(!engine
        .is_certain_answer(&parsed.database, query, &[Symbol::new("erin")])
        .unwrap());

    // 3. Cross-check with the bottom-up Vadalog-style engine (Section 7).
    let reasoner = Reasoner::new(&parsed.program, EngineConfig::default());
    let materialised = reasoner.answers(&parsed.database, query);
    assert_eq!(materialised, answers);
    println!("bottom-up engine agrees: {} answers", materialised.len());
}
