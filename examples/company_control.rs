//! A knowledge-graph scenario from the Vadalog papers' motivation: company
//! ownership and control. A shareholder controls a company either directly
//! or through a chain of controlled intermediaries; every controlled company
//! must publish a filing signed by *some* responsible officer (value
//! invention).
//!
//! The resulting program is warded and piece-wise linear, so it lies in the
//! space-efficient core identified by the paper.
//!
//! Run with: `cargo run --example company_control`

use vadalog::analysis::classify::{classify_scenario, ScenarioClass};
use vadalog::core::CertainAnswerEngine;
use vadalog::model::parser;
use vadalog::model::Symbol;

fn main() {
    let source = r#"
        % ownership edges: owner holds a majority stake in company
        majority_stake(holding_a, firm_b).
        majority_stake(firm_b, firm_c).
        majority_stake(firm_c, firm_d).
        majority_stake(holding_x, firm_y).

        % piece-wise linear recursion: control through chains of majorities
        controls(X, Y) :- majority_stake(X, Y).
        controls(X, Z) :- majority_stake(X, Y), controls(Y, Z).

        % every controlled company publishes a filing signed by some officer
        filing(Y, F, O) :- controls(X, Y).
        has_officer(Y, O) :- filing(Y, F, O).

        % who does holding_a ultimately control?
        ?(Y) :- controls(holding_a, Y).
    "#;

    let parsed = parser::parse(source).expect("program parses");
    assert_eq!(classify_scenario(&parsed.program), ScenarioClass::WardedPwl);

    let engine = CertainAnswerEngine::with_defaults(parsed.program.clone()).unwrap();
    let query = &parsed.queries[0];
    let controlled = engine.all_answers(&parsed.database, query).unwrap();
    println!("holding_a controls: {controlled:?}");
    assert_eq!(controlled.len(), 3); // firm_b, firm_c, firm_d
    assert!(!engine
        .is_certain_answer(&parsed.database, query, &[Symbol::new("firm_y")])
        .unwrap());

    // Value invention: each controlled company certainly has *an* officer,
    // even though no officer constant exists in the database.
    let q_officer = parser::parse_query("? :- has_officer(firm_d, O).").unwrap();
    assert!(engine.boolean_certain(&parsed.database, &q_officer));
    println!("firm_d certainly has a responsible officer (a labelled null witness)");

    // But no *specific* officer is a certain answer.
    let q_named = parser::parse_query("?(O) :- has_officer(firm_d, O).").unwrap();
    let named = engine.all_answers(&parsed.database, &q_named).unwrap();
    assert!(named.is_empty());
    println!("…and indeed no concrete officer constant is a certain answer: {named:?}");
}
