//! Ontological reasoning in the style of Example 3.3: the fragment of the
//! OWL 2 QL direct-semantics entailment regime expressed as a warded,
//! piece-wise linear set of TGDs, evaluated over a generated ontology.
//!
//! Run with: `cargo run --example owl2ql_reasoning`

use vadalog::analysis::pwl::is_piecewise_linear;
use vadalog::analysis::wardedness::is_warded;
use vadalog::benchgen::owl::{owl_database, owl_program};
use vadalog::chase::{ChaseConfig, ChaseEngine, TerminationPolicy};
use vadalog::core::CertainAnswerEngine;
use vadalog::model::parser::{parse, parse_query};

fn main() {
    // The fixed rule set of Example 3.3.
    let program = owl_program();
    assert!(is_warded(&program));
    assert!(is_piecewise_linear(&program));
    println!(
        "Example 3.3 rule set: {} TGDs, warded ∩ piece-wise linear",
        program.len()
    );

    // A small hand-written ontology about a university domain.
    let db = parse(
        "subclass(student, person). subclass(person, agent). subclass(professor, person).\n\
         type(alice, student). type(bob, professor). type(alice, enrolled).\n\
         restriction(enrolled, hasCourse). inverse(hasCourse, courseOf).",
    )
    .unwrap()
    .database;

    let engine = CertainAnswerEngine::with_defaults(program.clone()).unwrap();

    // Class subsumption propagates to instance types.
    let q_types = parse_query("?(C) :- type(alice, C).").unwrap();
    let alice_types = engine.all_answers(&db, &q_types).unwrap();
    println!("alice's inferred types: {alice_types:?}");
    assert!(alice_types.iter().any(|t| t[0].as_str() == "person"));
    assert!(alice_types.iter().any(|t| t[0].as_str() == "agent"));

    // Existential value invention: alice is enrolled, so she is related to
    // *some* course via hasCourse — a Boolean certain answer even though the
    // course itself is a labelled null.
    let q_course = parse_query("? :- triple(alice, hasCourse, C).").unwrap();
    assert!(engine.boolean_certain(&db, &q_course));
    println!("alice certainly has some course (witnessed by a labelled null)");

    // The inverse property is populated for the invented value too.
    let q_inverse = parse_query("? :- triple(C, courseOf, alice).").unwrap();
    assert!(engine.boolean_certain(&db, &q_inverse));

    // The same questions can be answered bottom-up with a terminating chase.
    let chase = ChaseEngine::new(
        program,
        ChaseConfig::restricted(TerminationPolicy::MaxNullDepth(4)),
    );
    let result = chase.run(&db);
    println!(
        "bounded chase materialised {} atoms ({} nulls invented)",
        result.instance.len(),
        result.stats.nulls_created
    );
    assert!(result.boolean_answer(&q_course));

    // The generators used by the benchmarks produce larger ontologies of the
    // same shape.
    let big = owl_database(50, 10, 500, 42);
    println!("generated benchmark ontology with {} facts", big.len());
}
