//! Static program linter: runs the multi-pass diagnostics engine over
//! Vadalog source files or over the built-in benchmark scenario suites.
//!
//! Usage:
//!
//! ```text
//! cargo run --example lint -- <file.vada> [more files ...]
//! cargo run --example lint -- --scenarios
//! ```
//!
//! File mode parses the full surface syntax (facts, rules, queries),
//! analyses the rules against the fact section's schema, and prints every
//! diagnostic as its stable one-line form (`VLG0xx <severity> ... ::
//! <message>`). Files carrying a query additionally get the exact plan
//! report the service's `EXPLAIN` verb would return for it — adornment,
//! the magic-vs-full decision (with the fallback reason when the query
//! cannot be specialised), the rewrite, and the build/probe join plan —
//! rendered by the one shared [`explain_query`] path, so the CLI and the
//! wire protocol cannot drift. Scenario mode lints the generated TC,
//! composite-key join, OWL 2 QL and data-exchange suites and fails if any
//! of them produces an error-severity finding — CI runs this as a
//! regression gate.
//!
//! The process exits non-zero iff any error-severity diagnostic was
//! emitted.

use std::collections::BTreeMap;
use std::process::ExitCode;
use vadalog::analysis::classify::classify_with_diagnostics;
use vadalog::analysis::diagnostics::{analyze_with, AnalyzerOptions, DiagnosticReport, Severity};
use vadalog::analysis::stratify::stratify;
use vadalog::benchgen;
use vadalog::datalog::explain_query;
use vadalog::model::parser;
use vadalog::model::{Instance, Predicate, Program};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: lint <file.vada> [more files ...] | lint --scenarios");
        return ExitCode::from(2);
    }
    let clean = if args[0] == "--scenarios" {
        lint_scenarios()
    } else {
        args.iter().all(|path| lint_file(path))
    };
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Lints one source file; returns `false` iff it produced errors.
fn lint_file(path: &str) -> bool {
    let source = match std::fs::read_to_string(path) {
        Ok(source) => source,
        Err(error) => {
            eprintln!("{path}: cannot read: {error}");
            return false;
        }
    };
    let parsed = match parser::parse(&source) {
        Ok(parsed) => parsed,
        Err(error) => {
            // Surface-level parse errors get the same stable code the
            // analyzer would assign.
            println!("{path}: VLG001 error :: {error}");
            return false;
        }
    };
    // The fact section is the deployment's EDB: heads colliding with it and
    // arity conflicts against it are real defects, not style.
    let instance: &Instance = parsed.database.as_instance();
    let known_arities: BTreeMap<Predicate, usize> = instance
        .predicates()
        .filter_map(|p| instance.arity_of(p).map(|a| (p, a)))
        .collect();
    let options = AnalyzerOptions {
        require_datalog: false,
        known_edb: instance.predicates().collect(),
        known_arities,
        query: parsed.queries.first().cloned(),
    };
    let report = analyze_with(&parsed.program, &options);
    print_report(path, &parsed.program, &report);
    // When the file carries a query, print the same plan report the
    // service's EXPLAIN verb returns — one shared renderer, no drift.
    // `cache_hit: None`: the CLI has no specialised-program cache.
    if let Some(query) = parsed.queries.first() {
        let explained = explain_query(&parsed.program, instance, query, true, None);
        println!(
            "  explain path={}:",
            if explained.magic { "magic" } else { "full" }
        );
        for line in &explained.lines {
            println!("    {line}");
        }
    }
    !report.has_errors()
}

/// Lints the generated benchmark suites; returns `false` iff any produced
/// an error-severity diagnostic.
fn lint_scenarios() -> bool {
    let fkjoin = benchgen::fk_join_scenario(8, 64, 7);
    let chain: Vec<String> = fkjoin.pattern.iter().map(|a| a.to_string()).collect();
    let suites: Vec<(&str, Program)> = vec![
        (
            "tc",
            parser::parse_rules(benchgen::TWO_CLOSURE_PROGRAM).expect("TC program parses"),
        ),
        (
            // The fkjoin scenario ships a CQ, not rules; lint the rule form
            // of its canonical 2-key join chain.
            "fkjoin",
            parser::parse_rules(&format!("out(V, W) :- {}.", chain.join(", ")))
                .expect("fkjoin chain parses"),
        ),
        ("owl", benchgen::owl_program()),
        (
            "data-exchange",
            benchgen::data_exchange_scenario(3, 16, 8, 7).program,
        ),
    ];

    let mut clean = true;
    for (name, program) in &suites {
        let (class, report) = classify_with_diagnostics(program);
        println!(
            "{name}: class `{class}`, {} rules, {}, {} diagnostics ({} errors, {} warnings)",
            program.len(),
            stratify(program).summary(),
            report.diagnostics.len(),
            report.count(Severity::Error),
            report.count(Severity::Warning),
        );
        for diagnostic in &report.diagnostics {
            println!("  {diagnostic}");
        }
        if report.has_errors() {
            eprintln!("{name}: scenario suite must lint without errors");
            clean = false;
        }
    }
    clean
}

fn print_report(path: &str, program: &Program, report: &DiagnosticReport) {
    println!(
        "{path}: {} rules, {}, {} diagnostics ({} errors, {} warnings)",
        program.len(),
        stratify(program).summary(),
        report.diagnostics.len(),
        report.count(Severity::Error),
        report.count(Severity::Warning),
    );
    for diagnostic in &report.diagnostics {
        println!("  {diagnostic}");
    }
    if let Some(adornment) = &report.adornment {
        for adorned in &adornment.adorned {
            println!("  adorned: {adorned}");
        }
    }
}
