//! Property-based integration tests for the demand-driven (magic-sets)
//! query path: on randomized programs, random binding patterns and every
//! thread count, the magic path must answer exactly what full
//! materialisation answers — and the specialised-program cache must hand
//! back bit-identical answers on repeated queries.
//!
//! The build environment is offline, so instead of `proptest` these use the
//! in-tree seeded PRNG over a fixed number of deterministic random cases.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vadalog::datalog::{DatalogEngine, DemandEngine, DemandError};
use vadalog::model::parser::{parse_query, parse_rules};
use vadalog::model::{Atom, ConjunctiveQuery, Database, Program, QueryBudget};

fn arb_database(rng: &mut StdRng) -> Database {
    let n_edges = rng.gen_range(1..14usize);
    let mut db = Database::new();
    for _ in 0..n_edges {
        let a = rng.gen_range(0..8u32);
        let b = rng.gen_range(0..8u32);
        if a != b {
            db.insert(Atom::fact(
                "edge",
                &[format!("n{a}").as_str(), format!("n{b}").as_str()],
            ))
            .unwrap();
        }
    }
    db
}

/// A randomly generated *plain Datalog* program over binary predicates
/// `p0..p3` seeded from the `edge` EDB relation (the same shape the
/// cross-engine suite uses), so recursion — including mutual recursion —
/// arises freely and the rewrite must stratify whatever comes out.
fn arb_program(rng: &mut StdRng) -> Program {
    let mut src = String::from("p0(X, Y) :- edge(X, Y).\n");
    let n_rules = rng.gen_range(2..7usize);
    for _ in 0..n_rules {
        let head = rng.gen_range(0..4u32);
        match rng.gen_range(0..4u32) {
            0 => {
                let a = rng.gen_range(0..4u32);
                src.push_str(&format!("p{head}(X, Y) :- p{a}(X, Y).\n"));
            }
            1 => {
                let a = rng.gen_range(0..4u32);
                let b = rng.gen_range(0..4u32);
                src.push_str(&format!("p{head}(X, Z) :- p{a}(X, Y), p{b}(Y, Z).\n"));
            }
            2 => {
                let a = rng.gen_range(0..4u32);
                let b = rng.gen_range(0..4u32);
                src.push_str(&format!("p{head}(X, Y) :- p{a}(X, Y), p{b}(X, Y).\n"));
            }
            _ => {
                let a = rng.gen_range(0..4u32);
                src.push_str(&format!("p{head}(X, Z) :- edge(X, Y), p{a}(Y, Z).\n"));
            }
        }
    }
    parse_rules(&src).expect("generated program parses")
}

/// A random query over `p0..p3` with a random binding pattern: both
/// columns bound, source bound, or sink bound. Constants are drawn from
/// the same `n0..n7` universe as the database, so answers may or may not
/// be empty — both must round-trip.
fn arb_bound_query(rng: &mut StdRng) -> ConjunctiveQuery {
    let p = rng.gen_range(0..4u32);
    let a = rng.gen_range(0..8u32);
    let b = rng.gen_range(0..8u32);
    let source = match rng.gen_range(0..3u32) {
        0 => format!("? :- p{p}(n{a}, n{b})."),
        1 => format!("?(Y) :- p{p}(n{a}, Y)."),
        _ => format!("?(X) :- p{p}(X, n{b})."),
    };
    parse_query(&source).expect("generated query parses")
}

/// Magic answers equal full answers over randomized programs x random
/// binding patterns x 1/2/4/8 worker threads, and the demand path itself
/// is bit-identical across thread counts (same answers, same number of
/// demanded tuples).
#[test]
fn magic_matches_full_on_random_programs_patterns_and_threads() {
    let mut rng = StdRng::seed_from_u64(36);
    let budget = QueryBudget::unlimited();
    for case in 0..10 {
        let db = arb_database(&mut rng);
        let program = arb_program(&mut rng);
        if db.is_empty() {
            continue;
        }
        let queries: Vec<ConjunctiveQuery> = (0..6).map(|_| arb_bound_query(&mut rng)).collect();
        let full = DatalogEngine::new(program.clone()).unwrap().evaluate(&db);
        // (answers, demanded_tuples) per query at one thread — the
        // reference every other thread count must reproduce exactly.
        let mut reference = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            let demand = DemandEngine::new(program.clone()).with_threads(threads);
            for (i, query) in queries.iter().enumerate() {
                let truth = query.evaluate(&full.instance);
                match demand.answer(db.as_instance(), query, &budget) {
                    Ok(answer) => {
                        assert_eq!(
                            answer.answers, truth,
                            "case {case}, {threads} threads, query `{query}`: \
                             magic diverged from full"
                        );
                        if threads == 1 {
                            reference.push(Some((answer.answers, answer.demanded_tuples)));
                        } else {
                            let Some((ref answers, demanded)) = reference[i] else {
                                panic!("case {case}: fallback only at 1 thread");
                            };
                            assert_eq!(&answer.answers, answers);
                            assert_eq!(
                                answer.demanded_tuples, demanded,
                                "case {case}, {threads} threads, query `{query}`: \
                                 demanded-tuple count diverged"
                            );
                        }
                    }
                    // The rewrite declined (e.g. the predicate has no rules
                    // in this random program): the service would fall back
                    // to the full path, which `truth` already is.
                    Err(DemandError::Fallback(_)) => {
                        if threads == 1 {
                            reference.push(None);
                        } else {
                            assert!(reference[i].is_none(), "case {case}: fallback not stable");
                        }
                    }
                    Err(other) => panic!("case {case}: unexpected demand error {other}"),
                }
            }
        }
    }
}

/// Repeating a query — and re-binding its pattern to fresh constants —
/// must come out of the specialised-program cache with bit-identical
/// results: same answers, same demanded-tuple count, `cache_hit` set.
#[test]
fn cached_programs_answer_bit_identically_on_repeats() {
    let mut rng = StdRng::seed_from_u64(37);
    let budget = QueryBudget::unlimited();
    for case in 0..6 {
        let db = arb_database(&mut rng);
        let program = arb_program(&mut rng);
        if db.is_empty() {
            continue;
        }
        let demand = DemandEngine::new(program.clone());
        let mut specialised = 0u64;
        for _ in 0..8 {
            let query = arb_bound_query(&mut rng);
            let first = match demand.answer(db.as_instance(), &query, &budget) {
                Ok(answer) => answer,
                Err(DemandError::Fallback(_)) => continue,
                Err(other) => panic!("case {case}: unexpected demand error {other}"),
            };
            specialised += 1;
            let second = demand.answer(db.as_instance(), &query, &budget).unwrap();
            assert!(
                second.cache_hit,
                "case {case}, query `{query}`: repeat must hit the cache"
            );
            assert_eq!(second.answers, first.answers);
            assert_eq!(second.demanded_tuples, first.demanded_tuples);
            assert_eq!(second.scratch_atoms, first.scratch_atoms);
        }
        if specialised > 0 {
            let stats = demand.stats();
            assert_eq!(stats.magic_queries, specialised * 2);
            assert!(
                stats.magic_cache_hits >= specialised,
                "case {case}: every repeat and every same-pattern query \
                 must count as a hit ({stats:?})"
            );
        }
    }
}
