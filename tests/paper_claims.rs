//! Integration tests that check the paper's individual claims end-to-end:
//! Example 3.3, the node-width bounds, Theorem 5.1's reduction, Lemma 6.7 and
//! the Section 1.2 linearisation.

use vadalog::analysis::classify::{classify_scenario, ScenarioClass};
use vadalog::analysis::levels::PredicateLevels;
use vadalog::analysis::linearize::linearize;
use vadalog::analysis::predicate_graph::PredicateGraph;
use vadalog::analysis::pwl::{is_intensionally_linear, is_piecewise_linear};
use vadalog::analysis::wardedness::is_warded;
use vadalog::benchgen::graphs::random_graph;
use vadalog::core::{
    linear_proof_search, node_width_bound_ward_pwl, CertainAnswerEngine, SearchOptions,
};
use vadalog::datalog::DatalogEngine;
use vadalog::model::parser::{parse, parse_query, parse_rules};
use vadalog::model::{Predicate, Symbol};
use vadalog::tiling::{has_tiling_within, reduction, TilingSystem};

fn owl_rules() -> &'static str {
    "subclassStar(X, Y) :- subclass(X, Y).\n\
     subclassStar(X, Z) :- subclassStar(X, Y), subclass(Y, Z).\n\
     type(X, Z) :- type(X, Y), subclassStar(Y, Z).\n\
     triple(X, Z, W) :- type(X, Y), restriction(Y, Z).\n\
     triple(Z, W, X) :- triple(X, Y, Z), inverse(Y, W).\n\
     type(X, W) :- triple(X, Y, Z), restriction(W, Y)."
}

#[test]
fn example_3_3_is_in_the_space_efficient_core() {
    // Section 3 / Section 4: the OWL 2 QL example is warded, uses non-linear
    // (but piece-wise linear) recursion, and has the level structure used by
    // the node-width bound.
    let program = parse_rules(owl_rules()).unwrap();
    assert!(is_warded(&program));
    assert!(is_piecewise_linear(&program));
    assert!(!is_intensionally_linear(&program));
    let graph = PredicateGraph::new(&program);
    assert!(graph.mutually_recursive(Predicate::new("type"), Predicate::new("triple")));
    let levels = PredicateLevels::compute(&program, &graph);
    assert_eq!(levels.max_level(), 3);
}

#[test]
fn theorem_4_8_node_width_bound_is_respected_in_practice() {
    let program = parse_rules(owl_rules()).unwrap();
    let db = parse(
        "subclass(student, person). subclass(person, agent).\n\
         type(alice, student). type(alice, enrolled).\n\
         restriction(enrolled, hasCourse). inverse(hasCourse, courseOf).",
    )
    .unwrap()
    .database;
    let query = parse_query("?(X, C) :- type(X, C).").unwrap();
    let bound = node_width_bound_ward_pwl(&query, &program);
    let boolean = query
        .instantiate(&[Symbol::new("alice"), Symbol::new("agent")])
        .unwrap();
    let outcome = linear_proof_search(&program, &db, &boolean, SearchOptions::default());
    assert!(outcome.is_accepted());
    assert!(outcome.stats().max_state_size <= bound);
}

#[test]
fn theorem_5_1_reduction_is_pwl_not_warded_and_tracks_the_solver() {
    for (system, solvable) in [
        (TilingSystem::solvable_example(), true),
        (TilingSystem::unsolvable_example(), false),
    ] {
        let red = reduction(&system);
        assert!(is_piecewise_linear(&red.program));
        assert!(!is_warded(&red.program));
        assert_eq!(classify_scenario(&red.program), ScenarioClass::NotWarded);
        assert_eq!(has_tiling_within(&system, 4, 4).is_some(), solvable);
        // The certain-answer engine refuses the unwarded program by default —
        // exactly the guardrail the undecidability result motivates.
        assert!(CertainAnswerEngine::with_defaults(red.program.clone()).is_err());
    }
}

#[test]
fn lemma_6_7_value_invention_separates_the_languages() {
    // Σ = {P(x) → ∃y R(x,y)}, D = {P(c)}: q1 is certain, q2 is not — no
    // Datalog program over the same EDB can reproduce both (program
    // expressive power separation).
    let sigma = parse_rules("r(X, Y) :- p(X).").unwrap();
    let db = parse("p(c).").unwrap().database;
    let engine = CertainAnswerEngine::with_defaults(sigma).unwrap();
    let q1 = parse_query("? :- r(X, Y).").unwrap();
    let q2 = parse_query("? :- r(X, Y), p(Y).").unwrap();
    assert!(engine.boolean_certain(&db, &q1));
    assert!(!engine.boolean_certain(&db, &q2));

    // Any Datalog program deriving an R-fact over dom(D) = {c} makes q2 true:
    // demonstrate with the natural candidate simulation R(x, x) ← P(x).
    let datalog_attempt = DatalogEngine::new(parse_rules("r(X, X) :- p(X).").unwrap()).unwrap();
    let result = datalog_attempt.evaluate(&db);
    assert!(result.holds(&q1));
    assert!(result.holds(&q2)); // …which differs from the TGD semantics above.
}

#[test]
fn section_1_2_linearisation_preserves_certain_answers() {
    let nonlinear = parse_rules("t(X, Y) :- edge(X, Y).\n t(X, Z) :- t(X, Y), t(Y, Z).").unwrap();
    assert_eq!(
        classify_scenario(&nonlinear),
        ScenarioClass::WardedLinearizable
    );
    let outcome = linearize(&nonlinear);
    assert!(outcome.changed());
    assert!(is_piecewise_linear(&outcome.program));

    let query = parse_query("?(X, Y) :- t(X, Y).").unwrap();
    for seed in 0..3u64 {
        let db = random_graph(10, 25, seed);
        let before = DatalogEngine::new(nonlinear.clone())
            .unwrap()
            .answers(&db, &query);
        let after = DatalogEngine::new(outcome.program.clone())
            .unwrap()
            .answers(&db, &query);
        assert_eq!(before, after, "seed {seed}");
    }
}

#[test]
fn introduction_statistics_shape_holds_on_a_generated_suite() {
    use vadalog::benchgen::iwarded::{iwarded_scenario, ScenarioMix};
    let mix = ScenarioMix::default();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let mut pwl = 0usize;
    let mut linearizable = 0usize;
    let mut other = 0usize;
    let total = 60;
    for seed in 0..total as u64 {
        let kind = mix.draw(&mut rng);
        match classify_scenario(&iwarded_scenario(kind, 4, seed)) {
            ScenarioClass::WardedPwl => pwl += 1,
            ScenarioClass::WardedLinearizable => linearizable += 1,
            _ => other += 1,
        }
    }
    // The shape of the paper's statistic: a majority is directly PWL, a small
    // slice is linearisable, and PWL + linearisable dominate the suite.
    assert!(
        pwl > total / 3,
        "directly PWL scenarios should dominate ({pwl}/{total})"
    );
    assert!(linearizable > 0);
    assert!(pwl + linearizable > other);
}
