//! Property-based bit-identity tests for the tracing subsystem: enabling
//! `vadalog_obs` spans must never change what the engines compute. On
//! randomized programs, databases and bound queries, every answer set and
//! every `DatalogStats` counter must be byte-for-byte identical with
//! tracing off and tracing on, across 1/2/4/8 evaluation worker threads —
//! the instrumentation is purely observational, never load-bearing.
//!
//! This lives in its own integration binary on purpose: the obs switches
//! (`set_enabled`, the manual clock) are process-global, so sharing a
//! binary with other tests would race them.
//!
//! The build environment is offline, so instead of `proptest` these use
//! the in-tree seeded PRNG over a fixed number of deterministic cases.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use vadalog::datalog::{DatalogEngine, DatalogStats, DemandEngine, DemandError, IncrementalEngine};
use vadalog::model::parser::{parse_query, parse_rules};
use vadalog::model::{Atom, ConjunctiveQuery, Database, Program, QueryBudget, Symbol};
use vadalog::obs;

fn arb_database(rng: &mut StdRng) -> Database {
    let n_edges = rng.gen_range(2..16usize);
    let mut db = Database::new();
    for _ in 0..n_edges {
        let a = rng.gen_range(0..8u32);
        let b = rng.gen_range(0..8u32);
        if a != b {
            db.insert(Atom::fact(
                "edge",
                &[format!("n{a}").as_str(), format!("n{b}").as_str()],
            ))
            .unwrap();
        }
    }
    db
}

/// A random plain-Datalog program over binary predicates `p0..p3` seeded
/// from `edge`, in the same family the cross-engine and magic property
/// suites draw from — recursion (including mutual recursion) arises
/// freely.
fn arb_program(rng: &mut StdRng) -> Program {
    let mut src = String::from("p0(X, Y) :- edge(X, Y).\n");
    for _ in 0..rng.gen_range(2..6usize) {
        let head = rng.gen_range(0..4u32);
        match rng.gen_range(0..3u32) {
            0 => {
                let a = rng.gen_range(0..4u32);
                src.push_str(&format!("p{head}(X, Y) :- p{a}(X, Y).\n"));
            }
            1 => {
                let a = rng.gen_range(0..4u32);
                let b = rng.gen_range(0..4u32);
                src.push_str(&format!("p{head}(X, Z) :- p{a}(X, Y), p{b}(Y, Z).\n"));
            }
            _ => {
                let a = rng.gen_range(0..4u32);
                src.push_str(&format!("p{head}(X, Z) :- edge(X, Y), p{a}(Y, Z).\n"));
            }
        }
    }
    parse_rules(&src).expect("generated program parses")
}

fn arb_bound_query(rng: &mut StdRng) -> ConjunctiveQuery {
    let p = rng.gen_range(0..4u32);
    let a = rng.gen_range(0..8u32);
    let source = match rng.gen_range(0..2u32) {
        0 => format!("?(Y) :- p{p}(n{a}, Y)."),
        _ => format!("?(X) :- p{p}(X, n{a})."),
    };
    parse_query(&source).expect("generated query parses")
}

/// One demand-path observation: (answers, demanded_tuples, scratch_atoms,
/// fixpoint counters from the profiled run).
type DemandObserved = (BTreeSet<Vec<Symbol>>, u64, usize, DatalogStats);

/// Everything one engine configuration computed, down to the last counter.
/// Two runs are "bit-identical" iff these compare equal.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Observed {
    /// Full materialisation: every engine counter.
    full_stats: DatalogStats,
    /// Full materialisation: per-query answer sets (ground truth).
    full_answers: Vec<BTreeSet<Vec<Symbol>>>,
    /// Demand path per query: `None` on a (stable) magic fallback.
    demand: Vec<Option<DemandObserved>>,
    /// Incremental path: the full-batch ingest outcome counters and the
    /// engine stats afterwards.
    ingest: (usize, usize, usize, usize, usize),
    incremental_stats: DatalogStats,
}

/// Runs every engine (full, demand, incremental) over one generated case
/// at the given thread count, collecting all observable outputs.
fn observe(
    program: &Program,
    db: &Database,
    queries: &[ConjunctiveQuery],
    threads: usize,
) -> Observed {
    let budget = QueryBudget::unlimited();
    let full = DatalogEngine::new(program.clone())
        .unwrap()
        .with_threads(threads)
        .evaluate(db);
    let full_answers: Vec<_> = queries.iter().map(|q| q.evaluate(&full.instance)).collect();

    let demand_engine = DemandEngine::new(program.clone()).with_threads(threads);
    let demand: Vec<_> = queries
        .iter()
        .map(|query| {
            match demand_engine.answer_profiled(db.as_instance(), query, &budget) {
                Ok((answer, profile)) => Some((
                    answer.answers,
                    answer.demanded_tuples,
                    answer.scratch_atoms,
                    // Wall-clock micros in the profile legitimately vary
                    // between runs; the *counters* may not.
                    profile.stats,
                )),
                Err(DemandError::Fallback(_)) => None,
                Err(other) => panic!("unexpected demand error {other}"),
            }
        })
        .collect();

    let mut incremental = IncrementalEngine::new(program.clone())
        .unwrap()
        .with_threads(threads);
    let facts: Vec<Atom> = db.iter().collect();
    let outcome = incremental
        .ingest(&facts)
        .expect("ingest the generated EDB");

    Observed {
        full_stats: full.stats,
        full_answers,
        demand,
        ingest: (
            outcome.facts_inserted,
            outcome.facts_duplicate,
            outcome.derived_atoms,
            outcome.strata_skipped,
            outcome.rounds,
        ),
        incremental_stats: *incremental.stats(),
    }
}

/// The tentpole property: answers and every engine counter are
/// bit-identical with tracing disabled and enabled, across 1/2/4/8
/// threads — and tracing state is what actually varies (disabled runs
/// record nothing, enabled runs record spans).
#[test]
fn tracing_never_changes_answers_or_counters() {
    // Deterministic timestamps; irrelevant to the compared outputs but it
    // keeps the traced runs themselves reproducible.
    obs::use_manual_clock();
    let mut rng = StdRng::seed_from_u64(61);
    for case in 0..8 {
        let db = arb_database(&mut rng);
        let program = arb_program(&mut rng);
        if db.is_empty() {
            continue;
        }
        let queries: Vec<ConjunctiveQuery> = (0..4).map(|_| arb_bound_query(&mut rng)).collect();

        obs::set_enabled(false);
        obs::drain();
        let reference = observe(&program, &db, &queries, 1);
        assert!(
            obs::drain().is_empty(),
            "case {case}: disabled tracing must record nothing"
        );

        for tracing in [false, true] {
            obs::set_enabled(tracing);
            for threads in [1usize, 2, 4, 8] {
                let run = observe(&program, &db, &queries, threads);
                assert_eq!(
                    run, reference,
                    "case {case}: tracing={tracing} threads={threads} diverged"
                );
                let records = obs::drain();
                assert_eq!(
                    !records.is_empty(),
                    tracing,
                    "case {case}: span recording must track the switch"
                );
                if tracing {
                    assert!(
                        records.iter().any(|r| r.kind == "datalog.round"),
                        "case {case}: fixpoint rounds must be instrumented"
                    );
                }
            }
        }
        obs::set_enabled(false);
    }
}

/// The demand path's magic-vs-fallback decision is itself stable under
/// tracing: a query that falls back with tracing off falls back with
/// tracing on (the service surfaces the reason through EXPLAIN, so a
/// flapping decision would make EXPLAIN lie).
#[test]
fn magic_fallbacks_are_stable_under_tracing() {
    let mut rng = StdRng::seed_from_u64(62);
    let budget = QueryBudget::unlimited();
    for _ in 0..6 {
        let db = arb_database(&mut rng);
        let program = arb_program(&mut rng);
        let demand = DemandEngine::new(program.clone());
        for _ in 0..4 {
            let query = arb_bound_query(&mut rng);
            obs::set_enabled(false);
            let off = demand.answer(db.as_instance(), &query, &budget);
            obs::set_enabled(true);
            let on = demand.answer(db.as_instance(), &query, &budget);
            obs::set_enabled(false);
            match (off, on) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.answers, b.answers, "query `{query}`");
                    assert_eq!(a.demanded_tuples, b.demanded_tuples, "query `{query}`");
                }
                (Err(DemandError::Fallback(a)), Err(DemandError::Fallback(b))) => {
                    assert_eq!(a.to_string(), b.to_string(), "query `{query}`");
                }
                (off, on) => panic!("query `{query}`: decision flapped: {off:?} vs {on:?}"),
            }
        }
    }
    obs::drain();
}
