//! Property-based integration tests: on random graph databases, all
//! evaluation strategies must agree, and the proof-tree decision procedure
//! must match the materialised ground truth pair by pair.

use proptest::prelude::*;
use vadalog::chase::{ChaseConfig, ChaseEngine, TerminationPolicy};
use vadalog::core::CertainAnswerEngine;
use vadalog::datalog::DatalogEngine;
use vadalog::engine::{EngineConfig, Reasoner};
use vadalog::model::parser::{parse_query, parse_rules};
use vadalog::model::{Atom, Database, Program, Symbol};

fn tc_program() -> Program {
    parse_rules("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).").unwrap()
}

fn arb_edges() -> impl Strategy<Value = Vec<(u8, u8)>> {
    proptest::collection::vec((0u8..8, 0u8..8), 1..14)
}

fn database_from(edges: &[(u8, u8)]) -> Database {
    let mut db = Database::new();
    for (a, b) in edges {
        if a != b {
            db.insert(Atom::fact("edge", &[format!("n{a}").as_str(), format!("n{b}").as_str()]))
                .unwrap();
        }
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Chase, semi-naive Datalog and the bottom-up engine compute the same
    /// transitive closure on random graphs.
    #[test]
    fn materialising_engines_agree(edges in arb_edges()) {
        let db = database_from(&edges);
        prop_assume!(!db.is_empty());
        let program = tc_program();
        let query = parse_query("?(X, Y) :- t(X, Y).").unwrap();

        let datalog = DatalogEngine::new(program.clone()).unwrap().answers(&db, &query);
        let chase = ChaseEngine::new(
            program.clone(),
            ChaseConfig::restricted(TerminationPolicy::Unbounded),
        )
        .certain_answers(&db, &query);
        let reasoner = Reasoner::new(&program, EngineConfig::default()).answers(&db, &query);

        prop_assert_eq!(&datalog, &chase);
        prop_assert_eq!(&datalog, &reasoner);
    }

    /// The proof-tree decision procedure agrees with the materialised closure
    /// on randomly chosen pairs (both positive and negative).
    #[test]
    fn decision_procedure_matches_ground_truth(
        edges in arb_edges(),
        probe_a in 0u8..8,
        probe_b in 0u8..8,
    ) {
        let db = database_from(&edges);
        prop_assume!(!db.is_empty());
        let program = tc_program();
        let query = parse_query("?(X, Y) :- t(X, Y).").unwrap();
        let truth = DatalogEngine::new(program.clone()).unwrap().answers(&db, &query);

        let engine = CertainAnswerEngine::with_defaults(program).unwrap();
        let tuple = vec![Symbol::new(&format!("n{probe_a}")), Symbol::new(&format!("n{probe_b}"))];
        let decided = engine.is_certain_answer(&db, &query, &tuple).unwrap();
        prop_assert_eq!(decided, truth.contains(&tuple));
    }

    /// Enumeration through the engine (rewriting or chase fallback) equals the
    /// semi-naive ground truth.
    #[test]
    fn enumeration_matches_ground_truth(edges in arb_edges()) {
        let db = database_from(&edges);
        prop_assume!(!db.is_empty());
        let program = tc_program();
        let query = parse_query("?(X, Y) :- t(X, Y).").unwrap();
        let truth = DatalogEngine::new(program.clone()).unwrap().answers(&db, &query);
        let engine = CertainAnswerEngine::with_defaults(program).unwrap();
        prop_assert_eq!(engine.all_answers(&db, &query).unwrap(), truth);
    }
}
