//! Property-based integration tests: on random graph databases, all
//! evaluation strategies must agree, and the proof-tree decision procedure
//! must match the materialised ground truth pair by pair.
//!
//! The build environment is offline, so instead of `proptest` these use the
//! in-tree seeded PRNG over a fixed number of deterministic random cases.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vadalog::chase::{ChaseConfig, ChaseEngine, TerminationPolicy};
use vadalog::core::CertainAnswerEngine;
use vadalog::datalog::DatalogEngine;
use vadalog::engine::{EngineConfig, Reasoner};
use vadalog::model::parser::{parse_query, parse_rules};
use vadalog::model::{Atom, Database, Instance, Program, Symbol};

fn tc_program() -> Program {
    parse_rules("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).").unwrap()
}

fn arb_database(rng: &mut StdRng) -> Database {
    let n_edges = rng.gen_range(1..14usize);
    let mut db = Database::new();
    for _ in 0..n_edges {
        let a = rng.gen_range(0..8u32);
        let b = rng.gen_range(0..8u32);
        if a != b {
            db.insert(Atom::fact(
                "edge",
                &[format!("n{a}").as_str(), format!("n{b}").as_str()],
            ))
            .unwrap();
        }
    }
    db
}

/// Chase, semi-naive Datalog and the bottom-up engine compute the same
/// transitive closure on random graphs.
#[test]
fn materialising_engines_agree() {
    let mut rng = StdRng::seed_from_u64(31);
    for _ in 0..8 {
        let db = arb_database(&mut rng);
        if db.is_empty() {
            continue;
        }
        let program = tc_program();
        let query = parse_query("?(X, Y) :- t(X, Y).").unwrap();

        let datalog = DatalogEngine::new(program.clone())
            .unwrap()
            .answers(&db, &query);
        let chase = ChaseEngine::new(
            program.clone(),
            ChaseConfig::restricted(TerminationPolicy::Unbounded),
        )
        .certain_answers(&db, &query);
        let reasoner = Reasoner::new(&program, EngineConfig::default()).answers(&db, &query);

        assert_eq!(datalog, chase);
        assert_eq!(datalog, reasoner);
    }
}

/// The proof-tree decision procedure agrees with the materialised closure
/// on randomly chosen pairs (both positive and negative).
#[test]
fn decision_procedure_matches_ground_truth() {
    let mut rng = StdRng::seed_from_u64(32);
    for _ in 0..8 {
        let db = arb_database(&mut rng);
        let probe_a = rng.gen_range(0..8u32);
        let probe_b = rng.gen_range(0..8u32);
        if db.is_empty() {
            continue;
        }
        let program = tc_program();
        let query = parse_query("?(X, Y) :- t(X, Y).").unwrap();
        let truth = DatalogEngine::new(program.clone())
            .unwrap()
            .answers(&db, &query);

        let engine = CertainAnswerEngine::with_defaults(program).unwrap();
        let tuple = vec![
            Symbol::new(&format!("n{probe_a}")),
            Symbol::new(&format!("n{probe_b}")),
        ];
        let decided = engine.is_certain_answer(&db, &query, &tuple).unwrap();
        assert_eq!(decided, truth.contains(&tuple));
    }
}

/// A randomly generated *plain Datalog* program over binary predicates
/// `p0..p3` seeded from the `edge` EDB relation: every program starts with
/// `p0(X, Y) :- edge(X, Y).` and adds chain, copy and join rules between the
/// `p` predicates, so recursion (including mutual recursion) arises freely.
fn arb_program(rng: &mut StdRng) -> Program {
    let mut src = String::from("p0(X, Y) :- edge(X, Y).\n");
    let n_rules = rng.gen_range(2..7usize);
    for _ in 0..n_rules {
        let head = rng.gen_range(0..4u32);
        match rng.gen_range(0..4u32) {
            // Copy rule: pk(X, Y) :- pa(X, Y).
            0 => {
                let a = rng.gen_range(0..4u32);
                src.push_str(&format!("p{head}(X, Y) :- p{a}(X, Y).\n"));
            }
            // Chain rule: pk(X, Z) :- pa(X, Y), pb(Y, Z).
            1 => {
                let a = rng.gen_range(0..4u32);
                let b = rng.gen_range(0..4u32);
                src.push_str(&format!("p{head}(X, Z) :- p{a}(X, Y), p{b}(Y, Z).\n"));
            }
            // Intersection rule: pk(X, Y) :- pa(X, Y), pb(X, Y) — both
            // columns of the second atom are bound at once, the shape the
            // composite fused-key probes answer.
            2 => {
                let a = rng.gen_range(0..4u32);
                let b = rng.gen_range(0..4u32);
                src.push_str(&format!("p{head}(X, Y) :- p{a}(X, Y), p{b}(X, Y).\n"));
            }
            // Edge-extension rule: pk(X, Z) :- edge(X, Y), pa(Y, Z).
            _ => {
                let a = rng.gen_range(0..4u32);
                src.push_str(&format!("p{head}(X, Z) :- edge(X, Y), p{a}(Y, Z).\n"));
            }
        }
    }
    parse_rules(&src).expect("generated program parses")
}

/// The canonical per-relation row layout, for asserting bit-identical
/// materialisation across thread counts.
fn row_layout(instance: &Instance) -> Vec<(String, Vec<String>)> {
    instance.row_layout()
}

/// Sharded parallel evaluation must be **bit-identical** to sequential
/// evaluation on randomized programs: same answer sets, same per-relation
/// row-id orderings, and the same `joins_evaluated` / `join_probes` totals.
#[test]
fn sharded_datalog_is_bit_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(34);
    for case in 0..10 {
        let db = arb_database(&mut rng);
        let program = arb_program(&mut rng);
        if db.is_empty() {
            continue;
        }
        let sequential = DatalogEngine::new(program.clone()).unwrap().evaluate(&db);
        for threads in [2usize, 4, 8] {
            let sharded = DatalogEngine::new(program.clone())
                .unwrap()
                .with_threads(threads)
                .evaluate(&db);
            assert_eq!(
                sharded.stats.derived_atoms, sequential.stats.derived_atoms,
                "case {case}, {threads} threads: derived atoms diverged"
            );
            assert_eq!(
                sharded.stats.joins_evaluated, sequential.stats.joins_evaluated,
                "case {case}, {threads} threads: joins_evaluated diverged"
            );
            assert_eq!(
                sharded.stats.join_probes, sequential.stats.join_probes,
                "case {case}, {threads} threads: join_probes diverged"
            );
            assert_eq!(
                sharded.stats.rows_prededuped, sequential.stats.rows_prededuped,
                "case {case}, {threads} threads: worker pre-dedup diverged"
            );
            assert_eq!(
                sharded.stats.composite_probes, sequential.stats.composite_probes,
                "case {case}, {threads} threads: composite probes diverged"
            );
            assert_eq!(
                sharded.stats.probe_misses_filtered, sequential.stats.probe_misses_filtered,
                "case {case}, {threads} threads: fingerprint skips diverged"
            );
            assert_eq!(
                row_layout(&sharded.instance),
                row_layout(&sequential.instance),
                "case {case}, {threads} threads: row-id ordering diverged"
            );
            for p in 0..4 {
                let q = parse_query(&format!("?(X, Y) :- p{p}(X, Y).")).unwrap();
                assert_eq!(sharded.answers(&q), sequential.answers(&q));
                // The sharded CQ kernel answers identically at every thread
                // count, through both the instance-level and engine-level
                // entry points.
                assert_eq!(
                    q.evaluate_with_threads(&sharded.instance, threads),
                    sequential.answers(&q),
                    "case {case}, {threads} threads: sharded CQ answers diverged"
                );
            }
        }
    }
}

/// Parallel trigger detection in the chase and the bottom-up executor must
/// not change results either: both apply triggers sequentially, so instances
/// (row order included) and counters coincide with the sequential run.
#[test]
fn parallel_chase_and_reasoner_match_sequential_runs() {
    let mut rng = StdRng::seed_from_u64(35);
    for _ in 0..6 {
        let db = arb_database(&mut rng);
        if db.is_empty() {
            continue;
        }
        let program = tc_program();

        let chase_seq = ChaseEngine::new(
            program.clone(),
            ChaseConfig::restricted(TerminationPolicy::Unbounded),
        )
        .run(&db);
        let chase_par = ChaseEngine::new(
            program.clone(),
            ChaseConfig::restricted(TerminationPolicy::Unbounded).with_threads(4),
        )
        .run(&db);
        assert_eq!(chase_par.stats.steps, chase_seq.stats.steps);
        assert_eq!(
            row_layout(&chase_par.instance),
            row_layout(&chase_seq.instance)
        );

        let reasoner_seq = Reasoner::new(&program, EngineConfig::default()).run(&db);
        let reasoner_par = Reasoner::new(
            &program,
            EngineConfig {
                threads: 4,
                ..EngineConfig::default()
            },
        )
        .run(&db);
        assert_eq!(
            reasoner_par.stats.join_probes,
            reasoner_seq.stats.join_probes
        );
        assert_eq!(
            row_layout(&reasoner_par.instance),
            row_layout(&reasoner_seq.instance)
        );
    }
}

/// Enumeration through the engine (rewriting or chase fallback) equals the
/// semi-naive ground truth.
#[test]
fn enumeration_matches_ground_truth() {
    let mut rng = StdRng::seed_from_u64(33);
    for _ in 0..8 {
        let db = arb_database(&mut rng);
        if db.is_empty() {
            continue;
        }
        let program = tc_program();
        let query = parse_query("?(X, Y) :- t(X, Y).").unwrap();
        let truth = DatalogEngine::new(program.clone())
            .unwrap()
            .answers(&db, &query);
        let engine = CertainAnswerEngine::with_defaults(program).unwrap();
        assert_eq!(engine.all_answers(&db, &query).unwrap(), truth);
    }
}
