//! Property-based integration tests: on random graph databases, all
//! evaluation strategies must agree, and the proof-tree decision procedure
//! must match the materialised ground truth pair by pair.
//!
//! The build environment is offline, so instead of `proptest` these use the
//! in-tree seeded PRNG over a fixed number of deterministic random cases.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vadalog::chase::{ChaseConfig, ChaseEngine, TerminationPolicy};
use vadalog::core::CertainAnswerEngine;
use vadalog::datalog::DatalogEngine;
use vadalog::engine::{EngineConfig, Reasoner};
use vadalog::model::parser::{parse_query, parse_rules};
use vadalog::model::{Atom, Database, Program, Symbol};

fn tc_program() -> Program {
    parse_rules("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).").unwrap()
}

fn arb_database(rng: &mut StdRng) -> Database {
    let n_edges = rng.gen_range(1..14usize);
    let mut db = Database::new();
    for _ in 0..n_edges {
        let a = rng.gen_range(0..8u32);
        let b = rng.gen_range(0..8u32);
        if a != b {
            db.insert(Atom::fact(
                "edge",
                &[format!("n{a}").as_str(), format!("n{b}").as_str()],
            ))
            .unwrap();
        }
    }
    db
}

/// Chase, semi-naive Datalog and the bottom-up engine compute the same
/// transitive closure on random graphs.
#[test]
fn materialising_engines_agree() {
    let mut rng = StdRng::seed_from_u64(31);
    for _ in 0..8 {
        let db = arb_database(&mut rng);
        if db.is_empty() {
            continue;
        }
        let program = tc_program();
        let query = parse_query("?(X, Y) :- t(X, Y).").unwrap();

        let datalog = DatalogEngine::new(program.clone()).unwrap().answers(&db, &query);
        let chase = ChaseEngine::new(
            program.clone(),
            ChaseConfig::restricted(TerminationPolicy::Unbounded),
        )
        .certain_answers(&db, &query);
        let reasoner = Reasoner::new(&program, EngineConfig::default()).answers(&db, &query);

        assert_eq!(datalog, chase);
        assert_eq!(datalog, reasoner);
    }
}

/// The proof-tree decision procedure agrees with the materialised closure
/// on randomly chosen pairs (both positive and negative).
#[test]
fn decision_procedure_matches_ground_truth() {
    let mut rng = StdRng::seed_from_u64(32);
    for _ in 0..8 {
        let db = arb_database(&mut rng);
        let probe_a = rng.gen_range(0..8u32);
        let probe_b = rng.gen_range(0..8u32);
        if db.is_empty() {
            continue;
        }
        let program = tc_program();
        let query = parse_query("?(X, Y) :- t(X, Y).").unwrap();
        let truth = DatalogEngine::new(program.clone()).unwrap().answers(&db, &query);

        let engine = CertainAnswerEngine::with_defaults(program).unwrap();
        let tuple = vec![
            Symbol::new(&format!("n{probe_a}")),
            Symbol::new(&format!("n{probe_b}")),
        ];
        let decided = engine.is_certain_answer(&db, &query, &tuple).unwrap();
        assert_eq!(decided, truth.contains(&tuple));
    }
}

/// Enumeration through the engine (rewriting or chase fallback) equals the
/// semi-naive ground truth.
#[test]
fn enumeration_matches_ground_truth() {
    let mut rng = StdRng::seed_from_u64(33);
    for _ in 0..8 {
        let db = arb_database(&mut rng);
        if db.is_empty() {
            continue;
        }
        let program = tc_program();
        let query = parse_query("?(X, Y) :- t(X, Y).").unwrap();
        let truth = DatalogEngine::new(program.clone()).unwrap().answers(&db, &query);
        let engine = CertainAnswerEngine::with_defaults(program).unwrap();
        assert_eq!(engine.all_answers(&db, &query).unwrap(), truth);
    }
}
