//! Property-based tests of the incremental engine: ingesting a random fact
//! stream in random batch splits must agree with a one-shot evaluation of
//! the union, and every split must be bit-identical across thread counts.
//!
//! "Agree with one-shot" means: identical answer sets for every predicate,
//! identical per-relation row *sets* (row-id order additionally encodes
//! arrival order, which one-shot evaluation does not have), and the stats
//! invariants — the incremental path derives exactly the same number of
//! atoms and materialises the same instance size. For a *fixed* split the
//! run is fully bit-identical across 1/2/4/8 threads: row layouts, join
//! counters, skip counters.
//!
//! The build environment is offline, so instead of `proptest` these use the
//! in-tree seeded PRNG over a fixed number of deterministic random cases.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vadalog::datalog::{DatalogEngine, IncrementalEngine};
use vadalog::model::parser::{parse_query, parse_rules};
use vadalog::model::{Atom, Database, Instance, Program};

/// A randomly generated *plain Datalog* program over binary predicates
/// `p0..p3` seeded from the `edge` EDB relation (the same generator family
/// as `prop_cross_engine`): chain, copy, intersection and edge-extension
/// rules, so recursion — including mutual recursion — and multi-stratum
/// layering arise freely.
fn arb_program(rng: &mut StdRng) -> Program {
    let mut src = String::from("p0(X, Y) :- edge(X, Y).\n");
    let n_rules = rng.gen_range(2..7usize);
    for _ in 0..n_rules {
        let head = rng.gen_range(0..4u32);
        match rng.gen_range(0..4u32) {
            0 => {
                let a = rng.gen_range(0..4u32);
                src.push_str(&format!("p{head}(X, Y) :- p{a}(X, Y).\n"));
            }
            1 => {
                let a = rng.gen_range(0..4u32);
                let b = rng.gen_range(0..4u32);
                src.push_str(&format!("p{head}(X, Z) :- p{a}(X, Y), p{b}(Y, Z).\n"));
            }
            2 => {
                let a = rng.gen_range(0..4u32);
                let b = rng.gen_range(0..4u32);
                src.push_str(&format!("p{head}(X, Y) :- p{a}(X, Y), p{b}(X, Y).\n"));
            }
            _ => {
                let a = rng.gen_range(0..4u32);
                src.push_str(&format!("p{head}(X, Z) :- edge(X, Y), p{a}(Y, Z).\n"));
            }
        }
    }
    parse_rules(&src).expect("generated program parses")
}

/// A random fact stream over `edge` plus occasional *direct IDB* facts
/// (`p0..p3`) — the service accepts both, and directly ingested IDB rows
/// must feed the fixpoint exactly like EDB-seeded IDB rows do in batch
/// evaluation. Duplicates occur on purpose.
fn arb_stream(rng: &mut StdRng) -> Vec<Atom> {
    let n_facts = rng.gen_range(4..20usize);
    let mut stream = Vec::with_capacity(n_facts);
    for _ in 0..n_facts {
        let a = rng.gen_range(0..6u32);
        let b = rng.gen_range(0..6u32);
        if a == b {
            continue;
        }
        let predicate = if rng.gen_range(0..5u32) == 0 {
            format!("p{}", rng.gen_range(0..4u32))
        } else {
            "edge".to_string()
        };
        stream.push(Atom::fact(
            &predicate,
            &[format!("n{a}").as_str(), format!("n{b}").as_str()],
        ));
    }
    stream
}

/// Splits a stream into non-empty batches at random boundaries.
fn arb_split(rng: &mut StdRng, stream: &[Atom]) -> Vec<Vec<Atom>> {
    let mut batches = Vec::new();
    let mut start = 0;
    while start < stream.len() {
        let len = rng.gen_range(1..stream.len() - start + 1);
        batches.push(stream[start..start + len].to_vec());
        start += len;
    }
    batches
}

fn union_database(stream: &[Atom]) -> Database {
    let mut db = Database::new();
    for fact in stream {
        db.insert(fact.clone()).expect("stream facts are ground");
    }
    db
}

/// Per-relation row sets in canonical (sorted) form: equal sets mean the
/// same materialisation regardless of arrival order.
fn sorted_rows(instance: &Instance) -> Vec<(String, Vec<String>)> {
    instance.sorted_row_layout()
}

/// Ingests every batch of a split, returning the engine and the total
/// number of genuinely new stream rows.
fn ingest_split(
    program: &Program,
    split: &[Vec<Atom>],
    threads: usize,
) -> (IncrementalEngine, usize) {
    let mut engine = IncrementalEngine::new(program.clone())
        .unwrap()
        .with_threads(threads);
    let mut inserted = 0;
    for batch in split {
        inserted += engine.ingest(batch).unwrap().facts_inserted;
    }
    (engine, inserted)
}

/// Random batch splits of a random stream are equivalent to one-shot
/// evaluation of the union: same answers, same row sets, same derivation
/// and size stats.
#[test]
fn random_batch_splits_match_one_shot_evaluation() {
    let mut rng = StdRng::seed_from_u64(41);
    for case in 0..10 {
        let program = arb_program(&mut rng);
        let stream = arb_stream(&mut rng);
        if stream.is_empty() {
            continue;
        }
        let union = union_database(&stream);
        let oneshot = DatalogEngine::new(program.clone())
            .unwrap()
            .evaluate(&union);

        let split_a = arb_split(&mut rng, &stream);
        let split_b = arb_split(&mut rng, &stream);
        for (label, split) in [("a", &split_a), ("b", &split_b)] {
            let (live, inserted) = ingest_split(&program, split, 1);
            for p in 0..4 {
                let q = parse_query(&format!("?(X, Y) :- p{p}(X, Y).")).unwrap();
                assert_eq!(
                    live.answers(&q),
                    oneshot.answers(&q),
                    "case {case}, split {label}: answers diverged on p{p}"
                );
            }
            assert_eq!(
                sorted_rows(live.instance()),
                sorted_rows(&oneshot.instance),
                "case {case}, split {label}: row sets diverged"
            );
            // Stats invariants: every materialised row is either a stream
            // insert or a derivation (a stream fact already derived in an
            // earlier batch is a *derivation* here but a *database fact* in
            // the one-shot accounting, so only the sums are comparable) and
            // both paths end at the same instance.
            assert_eq!(live.instance().len(), oneshot.instance.len());
            assert_eq!(
                live.stats().derived_atoms + inserted,
                live.instance().len(),
                "case {case}, split {label}: rows must be inserts or derivations"
            );
            assert_eq!(
                oneshot.stats.derived_atoms + union.len(),
                oneshot.instance.len()
            );
            assert_eq!(live.stats().peak_atoms, live.instance().len());
            assert!(live.epoch() <= split.len() as u64);
        }
    }
}

/// A fixed split is fully bit-identical across thread counts: the same row
/// layouts (row-id order included) and the same counters, skip counters
/// included.
#[test]
fn splits_are_bit_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(42);
    for case in 0..8 {
        let program = arb_program(&mut rng);
        let stream = arb_stream(&mut rng);
        if stream.is_empty() {
            continue;
        }
        let split = arb_split(&mut rng, &stream);
        let (sequential, _) = ingest_split(&program, &split, 1);
        for threads in [2usize, 4, 8] {
            let (sharded, _) = ingest_split(&program, &split, threads);
            assert_eq!(
                sharded.instance().row_layout(),
                sequential.instance().row_layout(),
                "case {case}, {threads} threads: row-id ordering diverged"
            );
            let (a, b) = (sharded.stats(), sequential.stats());
            assert_eq!(
                a.derived_atoms, b.derived_atoms,
                "case {case}, {threads} threads"
            );
            assert_eq!(
                a.joins_evaluated, b.joins_evaluated,
                "case {case}, {threads} threads"
            );
            assert_eq!(
                a.join_probes, b.join_probes,
                "case {case}, {threads} threads"
            );
            assert_eq!(
                a.rows_prededuped, b.rows_prededuped,
                "case {case}, {threads} threads"
            );
            assert_eq!(a.iterations, b.iterations, "case {case}, {threads} threads");
            assert_eq!(
                a.strata_skipped, b.strata_skipped,
                "case {case}, {threads} threads"
            );
            assert_eq!(
                a.rounds_incremental, b.rounds_incremental,
                "case {case}, {threads} threads"
            );
            assert_eq!(
                a.composite_probes, b.composite_probes,
                "case {case}, {threads} threads"
            );
            assert_eq!(
                a.probe_misses_filtered, b.probe_misses_filtered,
                "case {case}, {threads} threads"
            );
            assert_eq!(sharded.epoch(), sequential.epoch());
        }
    }
}

/// Single-fact batches (the `FACT` protocol path taken to its extreme) also
/// converge to the one-shot fixpoint — the finest split is the worst case
/// for watermark bookkeeping.
#[test]
fn fact_at_a_time_ingestion_converges() {
    let mut rng = StdRng::seed_from_u64(43);
    for case in 0..6 {
        let program = arb_program(&mut rng);
        let stream = arb_stream(&mut rng);
        if stream.is_empty() {
            continue;
        }
        let union = union_database(&stream);
        let oneshot = DatalogEngine::new(program.clone())
            .unwrap()
            .evaluate(&union);
        let mut live = IncrementalEngine::new(program.clone()).unwrap();
        let mut inserted = 0;
        for fact in &stream {
            inserted += live
                .ingest(std::slice::from_ref(fact))
                .unwrap()
                .facts_inserted;
        }
        assert_eq!(
            sorted_rows(live.instance()),
            sorted_rows(&oneshot.instance),
            "case {case}: fact-at-a-time row sets diverged"
        );
        assert_eq!(
            live.stats().derived_atoms + inserted,
            live.instance().len(),
            "case {case}: rows must be inserts or derivations"
        );
    }
}
