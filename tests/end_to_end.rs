//! End-to-end integration tests: the four evaluation strategies (linear proof
//! search, Datalog rewriting, terminating chase, Vadalog-style bottom-up
//! engine) must agree on certain answers across representative scenarios.

use vadalog::benchgen::data_exchange::data_exchange_scenario;
use vadalog::benchgen::graphs::{chain_graph, random_graph};
use vadalog::benchgen::owl::{owl_database, owl_program};
use vadalog::chase::{ChaseConfig, ChaseEngine, TerminationPolicy};
use vadalog::core::{CertainAnswerEngine, Strategy};
use vadalog::datalog::DatalogEngine;
use vadalog::engine::{EngineConfig, JoinOrdering, Reasoner};
use vadalog::model::parser::{parse, parse_query, parse_rules};
use vadalog::model::{Database, Program, Symbol};

fn tc_program() -> Program {
    parse_rules("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).").unwrap()
}

#[test]
fn all_strategies_agree_on_transitive_closure() {
    let program = tc_program();
    let db = random_graph(12, 18, 5);
    let query = parse_query("?(X, Y) :- t(X, Y).").unwrap();

    // Ground truth: semi-naive Datalog (the program is plain Datalog).
    let truth = DatalogEngine::new(program.clone())
        .unwrap()
        .answers(&db, &query);

    // Chase.
    let chase = ChaseEngine::new(
        program.clone(),
        ChaseConfig::restricted(TerminationPolicy::Unbounded),
    );
    assert_eq!(chase.certain_answers(&db, &query), truth);

    // Bottom-up engine, both join orders.
    for ordering in [JoinOrdering::PwlAware, JoinOrdering::AsWritten] {
        let reasoner = Reasoner::new(
            &program,
            EngineConfig {
                join_ordering: ordering,
                ..EngineConfig::default()
            },
        );
        assert_eq!(reasoner.answers(&db, &query), truth);
    }

    // Certain-answer engine: enumeration and per-tuple decision.
    let engine = CertainAnswerEngine::with_defaults(program).unwrap();
    assert_eq!(engine.strategy(), Strategy::LinearProofSearch);
    assert_eq!(engine.all_answers(&db, &query).unwrap(), truth);
    for tuple in truth.iter().take(5) {
        assert!(engine.is_certain_answer(&db, &query, tuple).unwrap());
    }
    // A handful of negative checks (a dense random closure may leave few or
    // no negative pairs among the sampled ones; check whatever is there).
    let dom: Vec<Symbol> = db.domain().into_iter().collect();
    let mut checked = 0;
    for a in dom.iter().take(4) {
        for b in dom.iter().take(4) {
            if checked >= 3 {
                break;
            }
            let tuple = vec![*a, *b];
            if !truth.contains(&tuple) {
                assert!(!engine.is_certain_answer(&db, &query, &tuple).unwrap());
                checked += 1;
            }
        }
    }
}

#[test]
fn existential_scenarios_agree_between_search_and_chase() {
    let program = parse_rules("r(X, Z) :- p(X).\n p(Y) :- r(X, Y).").unwrap();
    let db = parse("p(a). p(b). q(c).").unwrap().database;
    let engine = CertainAnswerEngine::with_defaults(program.clone()).unwrap();

    let q_chain = parse_query("?(A) :- r(A, Y), r(Y, W).").unwrap();
    let from_engine = engine.all_answers(&db, &q_chain).unwrap();
    let chase = ChaseEngine::new(
        program,
        ChaseConfig::restricted(TerminationPolicy::MaxNullDepth(5)),
    );
    let from_chase = chase.certain_answers(&db, &q_chain);
    assert_eq!(from_engine, from_chase);
    assert_eq!(from_engine.len(), 2);
    for tuple in &from_engine {
        assert!(engine.is_certain_answer(&db, &q_chain, tuple).unwrap());
    }
    assert!(!engine
        .is_certain_answer(&db, &q_chain, &[Symbol::new("c")])
        .unwrap());
}

#[test]
fn owl_scenario_cross_engine_agreement() {
    let program = owl_program();
    let db = owl_database(12, 4, 30, 3);
    let engine = CertainAnswerEngine::with_defaults(program.clone()).unwrap();
    let reasoner = Reasoner::new(&program, EngineConfig::default());
    let chase = ChaseEngine::new(
        program,
        ChaseConfig {
            record_provenance: false,
            ..ChaseConfig::restricted(TerminationPolicy::MaxNullDepth(4))
        },
    );

    let query = parse_query("?(X, C) :- type(X, C).").unwrap();
    let from_reasoner = reasoner.answers(&db, &query);
    let from_chase = chase.certain_answers(&db, &query);
    assert_eq!(from_reasoner, from_chase);
    assert!(!from_reasoner.is_empty());
    // Spot-check the decision procedure on a sample of answers.
    for tuple in from_reasoner.iter().take(3) {
        assert!(engine.is_certain_answer(&db, &query, tuple).unwrap());
    }
}

#[test]
fn data_exchange_scenarios_materialise_consistently() {
    let scenario = data_exchange_scenario(2, 25, 12, 9);
    let query = parse_query("?(X, Y) :- connected(X, Y).").unwrap();
    let reasoner = Reasoner::new(&scenario.program, EngineConfig::default());
    let chase = ChaseEngine::new(
        scenario.program.clone(),
        ChaseConfig {
            record_provenance: false,
            ..ChaseConfig::restricted(TerminationPolicy::MaxNullDepth(4))
        },
    );
    let a = reasoner.answers(&scenario.database, &query);
    let b = chase.certain_answers(&scenario.database, &query);
    assert_eq!(a, b);
    assert!(!a.is_empty());
}

#[test]
fn chain_reachability_decisions_match_ground_truth() {
    let program = tc_program();
    let db: Database = chain_graph(10);
    let query = parse_query("?(X, Y) :- t(X, Y).").unwrap();
    let engine = CertainAnswerEngine::with_defaults(program).unwrap();
    // n3 reaches n8, n8 does not reach n3.
    assert!(engine
        .is_certain_answer(&db, &query, &[Symbol::new("n3"), Symbol::new("n8")])
        .unwrap());
    assert!(!engine
        .is_certain_answer(&db, &query, &[Symbol::new("n8"), Symbol::new("n3")])
        .unwrap());
}
