//! ChaseBench-style data-exchange scenarios.
//!
//! Data-exchange benchmarks (ChaseBench, iBench) consist of a source schema
//! populated with data and source-to-target TGDs that invent target
//! identifiers. The generator below produces a family of such scenarios:
//! `width` parallel source relations, a copy/join/invention rule per
//! relation, and a piece-wise linear recursive rule over the target — enough
//! to exercise value invention, joins, and recursion in the same run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vadalog_model::parser::parse_rules;
use vadalog_model::{Atom, Database, Program};

/// A generated data-exchange scenario: the TGDs and the source database.
#[derive(Debug, Clone)]
pub struct DataExchangeScenario {
    /// The source-to-target and target TGDs (warded, piece-wise linear).
    pub program: Program,
    /// The source database.
    pub database: Database,
}

/// Generates a scenario with `width` source relations, `rows` tuples per
/// relation, drawn from a domain of `domain` constants.
pub fn data_exchange_scenario(
    width: usize,
    rows: usize,
    domain: usize,
    seed: u64,
) -> DataExchangeScenario {
    let width = width.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut src = String::new();

    for i in 0..width {
        // Copy with value invention: src_i(X, Y) → ∃Z tgt_i(X, Y, Z).
        src.push_str(&format!("tgt_{i}(X, Y, Z) :- src_{i}(X, Y).\n"));
        // Project the invented object into a shared link relation.
        src.push_str(&format!("link(X, Y) :- tgt_{i}(X, Y, Z).\n"));
    }
    // A piece-wise linear recursion over the target links.
    src.push_str("connected(X, Y) :- link(X, Y).\n");
    src.push_str("connected(X, Z) :- link(X, Y), connected(Y, Z).\n");

    let program = parse_rules(&src).expect("generated scenario is well-formed");

    let mut database = Database::new();
    for i in 0..width {
        for _ in 0..rows {
            let a = rng.gen_range(0..domain.max(2));
            let b = rng.gen_range(0..domain.max(2));
            database
                .insert(Atom::fact(
                    &format!("src_{i}"),
                    &[format!("c{a}").as_str(), format!("c{b}").as_str()],
                ))
                .expect("source facts are ground");
        }
    }
    DataExchangeScenario { program, database }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_analysis::classify::{classify_scenario, ScenarioClass};

    #[test]
    fn scenarios_are_warded_and_pwl() {
        let s = data_exchange_scenario(3, 10, 20, 4);
        assert_eq!(classify_scenario(&s.program), ScenarioClass::WardedPwl);
        // 2 rules per source relation + 2 recursion rules.
        assert_eq!(s.program.len(), 3 * 2 + 2);
    }

    #[test]
    fn databases_have_the_requested_volume() {
        let s = data_exchange_scenario(2, 50, 30, 11);
        // Duplicates are possible, so the size is at most width × rows.
        assert!(s.database.len() <= 100);
        assert!(s.database.len() > 50);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = data_exchange_scenario(2, 20, 10, 5);
        let b = data_exchange_scenario(2, 20, 10, 5);
        assert_eq!(a.database.len(), b.database.len());
        assert_eq!(a.program.to_string(), b.program.to_string());
    }
}
