//! OWL 2 QL-style ontology scenarios (Example 3.3) and a DBpedia-like
//! synthetic knowledge graph.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vadalog_model::parser::parse_rules;
use vadalog_model::{Atom, Database, Program};

/// The fixed rule set of Example 3.3 (the fragment of the OWL 2 QL direct
/// semantics entailment regime shown in the paper). Warded and piece-wise
/// linear.
pub fn owl_program() -> Program {
    parse_rules(
        "subclassStar(X, Y) :- subclass(X, Y).\n\
         subclassStar(X, Z) :- subclassStar(X, Y), subclass(Y, Z).\n\
         type(X, Z) :- type(X, Y), subclassStar(Y, Z).\n\
         triple(X, Z, W) :- type(X, Y), restriction(Y, Z).\n\
         triple(Z, W, X) :- triple(X, Y, Z), inverse(Y, W).\n\
         type(X, W) :- triple(X, Y, Z), restriction(W, Y).",
    )
    .expect("Example 3.3 is well-formed")
}

/// Generates an ontology database for [`owl_program`]:
///
/// * a random forest-shaped class hierarchy over `classes` classes
///   (`subclass` facts);
/// * `properties` properties, each with an inverse and a restriction class;
/// * `individuals` individuals, each typed with a random class.
pub fn owl_database(classes: usize, properties: usize, individuals: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let mut add = |p: &str, args: &[&str]| {
        db.insert(Atom::fact(p, args))
            .expect("generated facts are ground");
    };

    // Class hierarchy: class_i is a subclass of a random lower-numbered class.
    for i in 1..classes {
        let parent = rng.gen_range(0..i);
        add(
            "subclass",
            &[
                format!("class{i}").as_str(),
                format!("class{parent}").as_str(),
            ],
        );
    }
    // Properties, inverses and restriction classes.
    for p in 0..properties {
        add(
            "inverse",
            &[format!("prop{p}").as_str(), format!("inv_prop{p}").as_str()],
        );
        let restriction_class = format!("class{}", rng.gen_range(0..classes.max(1)));
        add(
            "restriction",
            &[restriction_class.as_str(), format!("prop{p}").as_str()],
        );
    }
    // Individuals typed with random classes.
    for i in 0..individuals {
        let class = rng.gen_range(0..classes.max(1));
        add(
            "type",
            &[format!("ind{i}").as_str(), format!("class{class}").as_str()],
        );
    }
    db
}

/// A DBpedia-like synthetic knowledge graph: entities linked by a fixed set
/// of properties stored as `edge`-style triples, plus category memberships —
/// used by the reachability-flavoured experiments on realistic degree
/// distributions.
pub fn synthetic_kg(entities: usize, links: usize, categories: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let mut add = |p: &str, args: &[&str]| {
        db.insert(Atom::fact(p, args))
            .expect("generated facts are ground");
    };
    let props = ["linksTo", "locatedIn", "partOf"];
    for _ in 0..links {
        let a = rng.gen_range(0..entities);
        let b = rng.gen_range(0..entities);
        if a == b {
            continue;
        }
        let prop = props[rng.gen_range(0..props.len())];
        add(prop, &[format!("e{a}").as_str(), format!("e{b}").as_str()]);
    }
    for e in 0..entities {
        let c = rng.gen_range(0..categories.max(1));
        add(
            "category",
            &[format!("e{e}").as_str(), format!("cat{c}").as_str()],
        );
    }
    // A small category hierarchy so that recursive rules have work to do.
    for c in 1..categories {
        let parent = rng.gen_range(0..c);
        add(
            "subcategory",
            &[format!("cat{c}").as_str(), format!("cat{parent}").as_str()],
        );
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_analysis::classify::{classify_scenario, ScenarioClass};

    #[test]
    fn the_fixed_program_is_warded_and_pwl() {
        assert_eq!(classify_scenario(&owl_program()), ScenarioClass::WardedPwl);
    }

    #[test]
    fn ontology_generation_is_reproducible_and_sized() {
        let a = owl_database(20, 5, 50, 42);
        let b = owl_database(20, 5, 50, 42);
        assert_eq!(a.len(), b.len());
        // 19 subclass + 5 inverse + 5 restriction + 50 type facts.
        assert_eq!(a.len(), 19 + 5 + 5 + 50);
    }

    #[test]
    fn ontology_databases_drive_the_rules() {
        use vadalog_chase::{ChaseConfig, ChaseEngine, TerminationPolicy};
        let db = owl_database(10, 3, 20, 1);
        let engine = ChaseEngine::new(
            owl_program(),
            ChaseConfig {
                record_provenance: false,
                ..ChaseConfig::restricted(TerminationPolicy::MaxNullDepth(3))
            },
        );
        let result = engine.run(&db);
        // Something beyond the database must be derivable.
        assert!(result.instance.len() > db.len());
    }

    #[test]
    fn synthetic_kg_has_expected_predicates() {
        let db = synthetic_kg(50, 200, 8, 9);
        let preds: std::collections::BTreeSet<String> = db
            .as_instance()
            .predicates()
            .map(|p| p.name().to_string())
            .collect();
        assert!(preds.contains("category"));
        assert!(preds.contains("subcategory"));
        assert!(preds
            .iter()
            .any(|p| p == "linksTo" || p == "locatedIn" || p == "partOf"));
    }
}
