//! Bound-query workloads for the magic-sets (demand-driven) benchmark:
//! a reachability program over a graph built to make the full/demanded
//! asymmetry structural, plus the three query shapes the harness times.
//!
//! The graph is a union of `chain_count` *disjoint* chains of `chain_len`
//! edges each. Full materialisation derives every chain's closure —
//! `chain_count · chain_len · (chain_len + 1) / 2` reachability pairs —
//! while a query bound to one chain's head can only ever demand that
//! chain's `chain_len` tuples. The separation is therefore a property of
//! the workload, not of evaluator luck, and grows linearly with
//! `chain_count`. Edge insertion order is seed-shuffled so the scenario
//! still exercises order-independence.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vadalog_model::parser::{parse_query, parse_rules};
use vadalog_model::{Atom, ConjunctiveQuery, Database, Program};

/// The linear transitive-closure program of the bound-query scenario.
pub const REACH_PROGRAM: &str = "reach(X, Y) :- edge(X, Y).\n\
                                 reach(X, Z) :- edge(X, Y), reach(Y, Z).";

/// A bound-query workload: one program, one database, and the three query
/// shapes of the magic benchmark, from free-est to most bound.
pub struct BoundQueryScenario {
    /// The reachability program (see [`REACH_PROGRAM`]).
    pub program: Program,
    /// `chain_count` disjoint chains of `chain_len` edges each.
    pub database: Database,
    /// `?(X, Y) :- reach(X, Y).` — all-free; magic must fall back.
    pub full_query: ConjunctiveQuery,
    /// `?(Y) :- reach(c, Y).` — bound source, one chain's head.
    pub bound_query: ConjunctiveQuery,
    /// `? :- reach(c, c').` — both ends bound, head to tail of one chain.
    pub point_query: ConjunctiveQuery,
    /// The bound source constant `c` (the head of chain 0).
    pub source: String,
    /// The point-query target `c'` (the tail of chain 0, so the point
    /// query demands the whole chain and answers non-empty).
    pub target: String,
    /// Tuples full materialisation must derive for `reach`.
    pub full_closure_size: usize,
    /// Answers of the bound query — also what one chain's demand costs.
    pub bound_answer_size: usize,
}

/// Generates a bound-query scenario over `chain_count` disjoint chains of
/// `chain_len` edges, with edge insertion order shuffled by `seed`.
pub fn bound_query_scenario(chain_count: usize, chain_len: usize, seed: u64) -> BoundQueryScenario {
    assert!(chain_count >= 1 && chain_len >= 1, "need a non-empty graph");
    let mut edges: Vec<(String, String)> = Vec::with_capacity(chain_count * chain_len);
    for c in 0..chain_count {
        for j in 0..chain_len {
            edges.push((format!("c{c}_n{j}"), format!("c{c}_n{}", j + 1)));
        }
    }
    // Fisher–Yates with the seeded generator: the scenario must not depend
    // on chain-major insertion order.
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..edges.len()).rev() {
        edges.swap(i, rng.gen_range(0..i + 1));
    }
    let mut database = Database::new();
    for (a, b) in &edges {
        database
            .insert(Atom::fact("edge", &[a.as_str(), b.as_str()]))
            .expect("edge facts are ground");
    }
    let source = "c0_n0".to_string();
    let target = format!("c0_n{chain_len}");
    BoundQueryScenario {
        program: parse_rules(REACH_PROGRAM).expect("reach program parses"),
        database,
        full_query: parse_query("?(X, Y) :- reach(X, Y).").expect("full query parses"),
        bound_query: parse_query(&format!("?(Y) :- reach({source}, Y)."))
            .expect("bound query parses"),
        point_query: parse_query(&format!("? :- reach({source}, {target})."))
            .expect("point query parses"),
        source,
        target,
        full_closure_size: chain_count * chain_len * (chain_len + 1) / 2,
        bound_answer_size: chain_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_datalog::DatalogEngine;

    #[test]
    fn scenario_sizes_match_the_evaluated_closure() {
        let scenario = bound_query_scenario(8, 10, 7);
        assert_eq!(scenario.database.len(), 80);
        let result = DatalogEngine::new(scenario.program.clone())
            .expect("reach program stratifies")
            .evaluate(&scenario.database);
        assert_eq!(
            scenario.full_query.evaluate(&result.instance).len(),
            scenario.full_closure_size,
            "8 chains x 10*11/2 pairs"
        );
        assert_eq!(
            scenario.bound_query.evaluate(&result.instance).len(),
            scenario.bound_answer_size
        );
        // The point query reaches across the whole of chain 0.
        assert_eq!(scenario.point_query.evaluate(&result.instance).len(), 1);
    }

    #[test]
    fn scenario_is_reproducible_per_seed_and_varies_across_seeds() {
        let a = bound_query_scenario(4, 6, 11);
        let b = bound_query_scenario(4, 6, 11);
        assert_eq!(
            a.database.as_instance().row_layout(),
            b.database.as_instance().row_layout()
        );
        assert_eq!(a.source, b.source);
        assert_eq!(a.target, b.target);
    }
}
