//! Seeded workload generators for the reproduction experiments.
//!
//! The paper's empirical observations were made over benchmarks and
//! industrial scenarios that are not publicly available (ChaseBench and
//! iBench data-exchange scenarios, the iWarded generator, DBpedia extracts
//! and partner workloads). This crate provides synthetic stand-ins with the
//! same structural features, all driven by explicit seeds so every experiment
//! is reproducible:
//!
//! * [`graphs`] — chain, grid, random and preferential-attachment graphs for
//!   the reachability / transitive-closure workloads (experiment E1);
//! * [`iwarded`] — random warded TGD scenarios mixing directly piece-wise
//!   linear, linearisable and genuinely non-PWL recursion in configurable
//!   proportions (experiment E2);
//! * [`owl`] — OWL 2 QL-style ontologies shaped like Example 3.3, plus a
//!   DBpedia-like synthetic knowledge graph (experiments E4/E6);
//! * [`data_exchange`] — ChaseBench-style source-to-target scenarios with
//!   existential target dependencies (experiment E6);
//! * [`fkjoin`] — 2-key foreign-key join chains whose every join binds a
//!   two-column key (the composite-index workload of `BENCH_joins.json`);
//! * [`delta`] — delta-stream workloads (base database + small fact
//!   batches) for the incremental-ingestion benchmark of
//!   `BENCH_incremental.json`;
//! * [`magic`] — bound-query reachability workloads (disjoint chains, so
//!   full-closure size vs per-query demand is a structural property) for
//!   the magic-sets benchmark of `BENCH_magic.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data_exchange;
pub mod delta;
pub mod fkjoin;
pub mod graphs;
pub mod iwarded;
pub mod magic;
pub mod owl;

pub use data_exchange::data_exchange_scenario;
pub use delta::{two_closure_delta_stream, DeltaStreamScenario, TWO_CLOSURE_PROGRAM};
pub use fkjoin::{fk_join_scenario, FkJoinScenario};
pub use graphs::{chain_graph, grid_graph, preferential_attachment, random_graph};
pub use iwarded::{iwarded_scenario, ScenarioKind, ScenarioMix};
pub use magic::{bound_query_scenario, BoundQueryScenario, REACH_PROGRAM};
pub use owl::{owl_database, owl_program, synthetic_kg};
