//! iWarded-style random warded scenarios (experiment E2).
//!
//! Section 1.2 of the paper reports that about 55 % of the analysed scenarios
//! use piece-wise linear recursion directly, another ≈15 % become piece-wise
//! linear after eliminating unnecessary non-linear recursion, and the rest
//! use genuinely non-linear recursion. The generator below produces random
//! scenarios of each kind so that the E2 experiment can re-derive that
//! statistic with the classifier of `vadalog-analysis`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vadalog_model::parser::parse_rules;
use vadalog_model::Program;

/// The intended class of a generated scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// Directly piece-wise linear (and warded).
    DirectPwl,
    /// Warded, with a transitive-closure-shaped non-linear rule that the
    /// linearisation rewriting removes.
    Linearizable,
    /// Warded, with genuinely non-piece-wise-linear recursion
    /// (same-generation style).
    NonPwl,
}

/// The proportions of scenario kinds in a generated suite. The defaults are
/// the paper's 55 / 15 / 30 split.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioMix {
    /// Fraction of directly piece-wise linear scenarios (0.0–1.0).
    pub direct_pwl: f64,
    /// Fraction of linearisable scenarios.
    pub linearizable: f64,
}

impl Default for ScenarioMix {
    fn default() -> Self {
        ScenarioMix {
            direct_pwl: 0.55,
            linearizable: 0.15,
        }
    }
}

impl ScenarioMix {
    /// Draws a scenario kind according to the mix.
    pub fn draw(&self, rng: &mut StdRng) -> ScenarioKind {
        let x: f64 = rng.gen();
        if x < self.direct_pwl {
            ScenarioKind::DirectPwl
        } else if x < self.direct_pwl + self.linearizable {
            ScenarioKind::Linearizable
        } else {
            ScenarioKind::NonPwl
        }
    }
}

/// Generates one random warded scenario of the requested kind with roughly
/// `extra_rules` additional non-recursive rules (existential "ontology"
/// rules plus projections), mimicking the rule inventories of the iWarded
/// generator.
pub fn iwarded_scenario(kind: ScenarioKind, extra_rules: usize, seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut src = String::new();

    // A few extensional relations shared by all scenarios.
    let base_relations = ["rel_a", "rel_b", "rel_c"];

    // The recursive core.
    match kind {
        ScenarioKind::DirectPwl => {
            src.push_str(
                "closure(X, Y) :- rel_a(X, Y).\n\
                 closure(X, Z) :- rel_a(X, Y), closure(Y, Z).\n",
            );
        }
        ScenarioKind::Linearizable => {
            src.push_str(
                "closure(X, Y) :- rel_a(X, Y).\n\
                 closure(X, Z) :- closure(X, Y), closure(Y, Z).\n",
            );
        }
        ScenarioKind::NonPwl => {
            src.push_str(
                "same(X, Y) :- rel_b(X, Y).\n\
                 same(X, Y) :- rel_a(X, X1), same(X1, Y1), same(Y1, Y).\n",
            );
        }
    }

    // Warded existential rules: entity(X) → ∃Z owns(X, Z), owns(X, Y) → entity2(Y), …
    // plus harmless projection rules, mirroring ontology-style value invention.
    for i in 0..extra_rules {
        let rel = base_relations[rng.gen_range(0..base_relations.len())];
        match rng.gen_range(0..3) {
            0 => src.push_str(&format!("invented_{i}(X, Z) :- {rel}(X, Y).\n")),
            1 => src.push_str(&format!(
                "marker_{i}(Y) :- invented_{j}(X, Y).\n",
                j = rng.gen_range(0..extra_rules.max(1)).min(i)
            )),
            _ => src.push_str(&format!("proj_{i}(X) :- {rel}(X, Y).\n")),
        }
    }

    parse_rules(&src).expect("generated scenario is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_analysis::classify::{classify_scenario, ScenarioClass};

    #[test]
    fn generated_kinds_classify_as_intended() {
        for seed in 0..10u64 {
            let direct = iwarded_scenario(ScenarioKind::DirectPwl, 5, seed);
            assert_eq!(classify_scenario(&direct), ScenarioClass::WardedPwl);

            let lin = iwarded_scenario(ScenarioKind::Linearizable, 5, seed);
            assert_eq!(classify_scenario(&lin), ScenarioClass::WardedLinearizable);

            let non = iwarded_scenario(ScenarioKind::NonPwl, 5, seed);
            assert_eq!(classify_scenario(&non), ScenarioClass::WardedNonPwl);
        }
    }

    #[test]
    fn scenario_generation_is_reproducible() {
        let a = iwarded_scenario(ScenarioKind::DirectPwl, 8, 99);
        let b = iwarded_scenario(ScenarioKind::DirectPwl, 8, 99);
        assert_eq!(a.to_string(), b.to_string());
    }

    #[test]
    fn mix_draws_follow_the_requested_proportions() {
        let mix = ScenarioMix::default();
        let mut rng = StdRng::seed_from_u64(123);
        let mut counts = std::collections::HashMap::new();
        let n = 2000;
        for _ in 0..n {
            *counts.entry(mix.draw(&mut rng)).or_insert(0usize) += 1;
        }
        let direct = counts[&ScenarioKind::DirectPwl] as f64 / n as f64;
        let lin = counts[&ScenarioKind::Linearizable] as f64 / n as f64;
        assert!((direct - 0.55).abs() < 0.05, "direct fraction {direct}");
        assert!((lin - 0.15).abs() < 0.05, "linearizable fraction {lin}");
    }

    #[test]
    fn extra_rules_scale_the_program_size() {
        let small = iwarded_scenario(ScenarioKind::DirectPwl, 2, 5);
        let large = iwarded_scenario(ScenarioKind::DirectPwl, 20, 5);
        assert!(large.len() > small.len());
    }
}
