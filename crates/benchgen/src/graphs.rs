//! Graph generators producing `edge/2` databases.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vadalog_model::{Atom, Database};

fn node(i: usize) -> String {
    format!("n{i}")
}

fn edge_db(edges: impl IntoIterator<Item = (usize, usize)>) -> Database {
    let mut db = Database::new();
    for (a, b) in edges {
        db.insert(Atom::fact("edge", &[node(a).as_str(), node(b).as_str()]))
            .expect("edge facts are ground");
    }
    db
}

/// A directed chain `n0 → n1 → … → n_len`.
pub fn chain_graph(len: usize) -> Database {
    edge_db((0..len).map(|i| (i, i + 1)))
}

/// A directed grid of `width × height` nodes with edges to the right and
/// downward neighbours (node `(x, y)` has index `y * width + x`).
pub fn grid_graph(width: usize, height: usize) -> Database {
    let mut edges = Vec::new();
    for y in 0..height {
        for x in 0..width {
            let id = y * width + x;
            if x + 1 < width {
                edges.push((id, id + 1));
            }
            if y + 1 < height {
                edges.push((id, id + width));
            }
        }
    }
    edge_db(edges)
}

/// A uniformly random directed graph with `nodes` nodes and (up to) `edges`
/// distinct edges (self-loops excluded).
pub fn random_graph(nodes: usize, edges: usize, seed: u64) -> Database {
    assert!(nodes >= 2, "need at least two nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = std::collections::BTreeSet::new();
    let mut attempts = 0usize;
    while set.len() < edges && attempts < edges * 20 {
        attempts += 1;
        let a = rng.gen_range(0..nodes);
        let b = rng.gen_range(0..nodes);
        if a != b {
            set.insert((a, b));
        }
    }
    edge_db(set)
}

/// A preferential-attachment ("scale-free") digraph: each new node attaches
/// `out_degree` edges to existing nodes with probability proportional to
/// their current degree — the degree distribution of knowledge-graph-like
/// data.
pub fn preferential_attachment(nodes: usize, out_degree: usize, seed: u64) -> Database {
    assert!(nodes >= 2, "need at least two nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(usize, usize)> = vec![(0, 1)];
    let mut degree_pool: Vec<usize> = vec![0, 1];
    for new in 2..nodes {
        for _ in 0..out_degree.max(1) {
            let target = degree_pool[rng.gen_range(0..degree_pool.len())];
            if target != new {
                edges.push((new, target));
                degree_pool.push(target);
                degree_pool.push(new);
            }
        }
    }
    edge_db(edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_model::Predicate;

    #[test]
    fn chain_has_expected_size() {
        let db = chain_graph(10);
        assert_eq!(db.len(), 10);
        assert!(db.contains(&Atom::fact("edge", &["n0", "n1"])));
        assert!(db.contains(&Atom::fact("edge", &["n9", "n10"])));
    }

    #[test]
    fn grid_has_expected_edge_count() {
        // A w×h grid has h·(w−1) horizontal and w·(h−1) vertical edges.
        let db = grid_graph(4, 3);
        assert_eq!(db.len(), 3 * 3 + 4 * 2);
    }

    #[test]
    fn random_graph_is_reproducible_per_seed() {
        let a = random_graph(50, 120, 7);
        let b = random_graph(50, 120, 7);
        let c = random_graph(50, 120, 8);
        let collect = |db: &Database| -> Vec<String> {
            let mut v: Vec<String> = db.iter().map(|a| a.to_string()).collect();
            v.sort();
            v
        };
        assert_eq!(collect(&a), collect(&b));
        assert_ne!(collect(&a), collect(&c));
        assert_eq!(a.len(), 120);
    }

    #[test]
    fn preferential_attachment_produces_edges_over_one_predicate() {
        let db = preferential_attachment(100, 2, 3);
        assert!(db.len() >= 100);
        assert_eq!(db.as_instance().predicates().count(), 1);
        assert_eq!(db.as_instance().arity_of(Predicate::new("edge")), Some(2));
    }
}
