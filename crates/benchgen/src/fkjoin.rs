//! Composite-key ("2-key foreign-key") join-chain workloads.
//!
//! Real warded-chase workloads join on **multi-column** keys: an order line
//! references a (customer, region) pair, an RDF reification joins on
//! (subject, predicate), a data-exchange target joins on a pair of invented
//! identifiers. A single-column index can only probe one of the columns and
//! must filter the rest row by row, so its candidate lists scale with the
//! *per-column* fan-out even when the *pair* is unique. The scenario below
//! makes that gap measurable — and is the workload `BENCH_joins.json`
//! records the composite-index speedup on:
//!
//! * `src(A, B, V)` — the `(A, B)` pairs enumerate a `groups × (rows /
//!   groups)` grid, so every pair is unique while column `A` is shared by
//!   `rows / groups` facts and column `B` by `groups` facts: the best
//!   single-column probe still wades through `min(groups, rows / groups)`
//!   candidates, the fused pair probe through exactly one;
//! * `link(A, B, C, D)` — maps ~70% of the source pairs to a `(C, D)` pair
//!   drawn from the same kind of grid. The remaining ~30% of source pairs
//!   have **no** link: probing them misses, which is what the fingerprint
//!   filters short-circuit;
//! * `dst(C, D, W)` — resolves ~80% of the linked pairs (the rest dangle:
//!   probing them misses, which is what the fingerprint filters
//!   short-circuit), plus `rows` noise facts over a disjoint `C` pool that
//!   make `dst` the largest relation — so the greedy planner drives the
//!   chain from `link` and actually has to probe the dangling pairs.
//!
//! The canonical CQ is the chain
//! `?- src(A, B, V), link(A, B, C, D), dst(C, D, W)`: both joins bind a
//! two-column key, so a composite plan probes each fused pair exactly,
//! while a single-column plan scans the shared-`A` (resp. shared-`C`)
//! candidate lists row by row.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vadalog_model::{Atom, Database, Term};

/// A generated composite-key join scenario: the database, the canonical
/// 2-key join-chain CQ pattern over it, and the exact answer count the
/// generation bookkeeping predicts (a cheap bit-identity witness for
/// benches and tests).
#[derive(Debug, Clone)]
pub struct FkJoinScenario {
    /// The `src` / `link` / `dst` facts.
    pub database: Database,
    /// The chain CQ `src(A, B, V), link(A, B, C, D), dst(C, D, W)` — every
    /// join binds a two-column key.
    pub pattern: Vec<Atom>,
    /// Number of answers the chain CQ has: the source rows whose link and
    /// destination both exist.
    pub expected_answers: usize,
}

/// Generates a scenario with `rows` source facts over a `groups ×
/// (rows / groups)` key grid (so column `A` fans out to `rows / groups`
/// rows and column `B` to `groups`, while each `(A, B)` pair is unique).
/// Link and destination survival are drawn deterministically from `seed`.
pub fn fk_join_scenario(groups: usize, rows: usize, seed: u64) -> FkJoinScenario {
    let groups = groups.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut database = Database::new();
    let mut expected_answers = 0usize;

    for i in 0..rows {
        let a = format!("a{}", i % groups);
        let b = format!("b{}", i / groups);
        database
            .insert(Atom::fact("src", &[&a, &b, &format!("v{i}")]))
            .expect("src facts are ground");
        // ~70% of source pairs carry a link; the rest are guaranteed probe
        // misses for the second chain atom.
        if rng.gen_bool(0.7) {
            let c = format!("c{}", i % groups);
            let d = format!("d{}", i / groups);
            database
                .insert(Atom::fact("link", &[&a, &b, &c, &d]))
                .expect("link facts are ground");
            // ~80% of linked pairs resolve; the rest dangle (third-atom
            // misses).
            if rng.gen_bool(0.8) {
                database
                    .insert(Atom::fact("dst", &[&c, &d, &format!("w{i}")]))
                    .expect("dst facts are ground");
                expected_answers += 1;
            }
        }
    }

    // Noise destinations over a *disjoint* first-key pool: they bulk the
    // relation (so the planner drives the chain from `link`, the smallest
    // relation, and really probes the dangling pairs) and they keep both
    // destination key columns heavy, without ever joining the chain.
    for i in 0..rows {
        database
            .insert(Atom::fact(
                "dst",
                &[
                    &format!("cx{}", i % groups),
                    &format!("d{}", i / groups),
                    &format!("nw{i}"),
                ],
            ))
            .expect("noise dst facts are ground");
    }

    let v = Term::variable;
    let pattern = vec![
        Atom::new("src", vec![v("A"), v("B"), v("V")]),
        Atom::new("link", vec![v("A"), v("B"), v("C"), v("D")]),
        Atom::new("dst", vec![v("C"), v("D"), v("W")]),
    ];
    FkJoinScenario {
        database,
        pattern,
        expected_answers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_model::Predicate;

    #[test]
    fn scenario_sizes_and_shape() {
        let s = fk_join_scenario(10, 200, 7);
        let inst = s.database.as_instance();
        assert_eq!(inst.relation_size(Predicate::new("src")), 200);
        let links = inst.relation_size(Predicate::new("link"));
        assert!(
            (100..=180).contains(&links),
            "≈70% of 200 pairs link, got {links}"
        );
        assert!(
            inst.relation_size(Predicate::new("dst")) > links,
            "noise keeps dst the largest relation, so link drives the plan"
        );
        assert_eq!(inst.arity_of(Predicate::new("link")), Some(4));
        assert_eq!(s.pattern.len(), 3);
        // Key-grid fan-outs: column A shared by rows/groups facts, column B
        // by groups facts, pairs unique.
        let src = inst.relation(Predicate::new("src")).unwrap();
        assert_eq!(src.distinct_count(0), 10);
        assert_eq!(src.distinct_count(1), 20);
        assert_eq!(
            src.key_distinct_count(vadalog_model::ColSet::new(&[0, 1])),
            200
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = fk_join_scenario(8, 100, 3);
        let b = fk_join_scenario(8, 100, 3);
        assert_eq!(
            a.database.as_instance().row_layout(),
            b.database.as_instance().row_layout()
        );
        assert_eq!(a.expected_answers, b.expected_answers);
    }

    #[test]
    fn expected_answers_matches_actual_enumeration() {
        let s = fk_join_scenario(5, 100, 1);
        let answers = vadalog_model::homomorphisms(
            &s.pattern,
            s.database.as_instance(),
            &vadalog_model::Substitution::new(),
            vadalog_model::HomSearch::all(),
        );
        assert_eq!(answers.len(), s.expected_answers);
        assert!(s.expected_answers > 0);
    }
}
