//! Delta-stream workloads for the incremental-ingestion benchmark: a base
//! database plus a stream of small fact batches, with the union retained so
//! the incremental materialisation can be checked bit-identical against a
//! from-scratch evaluation.
//!
//! The canonical scenario runs **two independent transitive closures** —
//! `t` over `edge` and `s` over `link` — and streams deltas that touch only
//! `edge`. The `s` stratum is therefore provably unaffected by every delta
//! batch, which is exactly what the incremental engine's affected-strata
//! pruning must detect (`strata_skipped ≥ 1` per ingest) while the `t`
//! stratum re-derives from its watermarks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vadalog_model::parser::parse_rules;
use vadalog_model::{Atom, Database, Program};

/// The two-closure program of the delta-stream scenario.
pub const TWO_CLOSURE_PROGRAM: &str = "t(X, Y) :- edge(X, Y).\n\
                                       t(X, Z) :- edge(X, Y), t(Y, Z).\n\
                                       s(X, Y) :- link(X, Y).\n\
                                       s(X, Z) :- link(X, Y), s(Y, Z).";

/// A delta-stream workload: evaluate `base`, then ingest the `deltas`
/// batches in order; the result must match a from-scratch evaluation of
/// `union`.
pub struct DeltaStreamScenario {
    /// The two-closure program (see [`TWO_CLOSURE_PROGRAM`]).
    pub program: Program,
    /// Everything except the streamed deltas (all `link` facts and the
    /// retained `edge` facts).
    pub base: Database,
    /// The streamed batches, in ingestion order; every fact is an `edge`
    /// fact, so each batch touches exactly one stratum's inputs.
    pub deltas: Vec<Vec<Atom>>,
    /// Base plus all deltas, in the same arrival order.
    pub union: Database,
}

/// Generates a delta-stream scenario: a random `edge` graph of
/// `edge_count + delta_batches * batch_size` distinct edges over `nodes`
/// nodes whose last batches are held back as the stream, plus an
/// independent random `link` graph of `link_count` edges (same node count)
/// that no delta ever touches.
pub fn two_closure_delta_stream(
    nodes: usize,
    edge_count: usize,
    link_count: usize,
    delta_batches: usize,
    batch_size: usize,
    seed: u64,
) -> DeltaStreamScenario {
    assert!(nodes >= 2, "need at least two nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut draw_edges = |target: usize| -> Vec<(usize, usize)> {
        let mut set = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < target * 20 {
            attempts += 1;
            let a = rng.gen_range(0..nodes);
            let b = rng.gen_range(0..nodes);
            if a != b && set.insert((a, b)) {
                out.push((a, b));
            }
        }
        out
    };
    let streamed = delta_batches * batch_size;
    let edges = draw_edges(edge_count + streamed);
    let links = draw_edges(link_count);
    assert!(
        edges.len() > streamed,
        "graph too dense for the requested delta stream"
    );

    let fact = |pred: &str, (a, b): (usize, usize)| -> Atom {
        Atom::fact(pred, &[format!("n{a}").as_str(), format!("n{b}").as_str()])
    };
    let split = edges.len() - streamed;
    let mut base = Database::new();
    let mut union = Database::new();
    for &pair in &edges[..split] {
        base.insert(fact("edge", pair))
            .expect("edge facts are ground");
        union
            .insert(fact("edge", pair))
            .expect("edge facts are ground");
    }
    for &pair in &links {
        base.insert(fact("link", pair))
            .expect("link facts are ground");
        union
            .insert(fact("link", pair))
            .expect("link facts are ground");
    }
    let deltas: Vec<Vec<Atom>> = edges[split..]
        .chunks(batch_size)
        .map(|chunk| chunk.iter().map(|&pair| fact("edge", pair)).collect())
        .collect();
    for batch in &deltas {
        for atom in batch {
            union.insert(atom.clone()).expect("edge facts are ground");
        }
    }
    DeltaStreamScenario {
        program: parse_rules(TWO_CLOSURE_PROGRAM).expect("two-closure program parses"),
        base,
        deltas,
        union,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_model::Predicate;

    #[test]
    fn scenario_splits_the_stream_off_the_union() {
        let scenario = two_closure_delta_stream(40, 60, 30, 3, 4, 7);
        assert_eq!(scenario.deltas.len(), 3);
        assert!(scenario.deltas.iter().all(|batch| batch.len() == 4));
        assert_eq!(scenario.base.len() + 12, scenario.union.len());
        // Deltas touch only `edge`.
        for batch in &scenario.deltas {
            for atom in batch {
                assert_eq!(atom.predicate, Predicate::new("edge"));
                assert!(
                    !scenario.base.contains(atom),
                    "streamed facts are held back"
                );
                assert!(scenario.union.contains(atom));
            }
        }
        // Reproducible per seed.
        let again = two_closure_delta_stream(40, 60, 30, 3, 4, 7);
        assert_eq!(
            scenario.union.as_instance().row_layout(),
            again.union.as_instance().row_layout()
        );
    }
}
