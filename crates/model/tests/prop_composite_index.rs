//! Property tests of the composite-key index layer: on randomized patterns
//! and instances over wide (arity 3–4) predicates, the composite-probe plan,
//! the single-column plan, the adaptive streaming kernel and the retained
//! reference oracle must enumerate exactly the same homomorphism sets (and
//! the same matched-row-id sets); fingerprint filters must never change any
//! result; and the CSR storage must stay exact through arbitrary
//! append/probe interleavings (overflow extension and geometric rebuilds).
//!
//! The generators deliberately use small constant pools over wide
//! predicates, so multi-column bound sets — the shapes composite indexes
//! exist for — occur in almost every case.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::ops::ControlFlow;
use vadalog_model::homomorphism::reference::homomorphisms_reference;
use vadalog_model::{
    fuse_key, Atom, ColSet, Database, HomSearch, Instance, JoinPlan, JoinSpec, Matcher, PackedTerm,
    PlanOptions, Predicate, RowId, Substitution, Term,
};

const CASES: usize = 200;

/// Predicates wide enough that two or three columns can be bound at once.
const PREDICATES: [(&str, usize); 3] = [("p", 3), ("q", 4), ("r", 3)];

fn arb_term(rng: &mut StdRng) -> Term {
    if rng.gen_bool(0.55) {
        Term::constant(["a", "b", "c"][rng.gen_range(0..3usize)])
    } else {
        Term::variable(["X", "Y", "Z", "W", "U"][rng.gen_range(0..5usize)])
    }
}

fn arb_atom(rng: &mut StdRng) -> Atom {
    let (p, arity) = PREDICATES[rng.gen_range(0..PREDICATES.len())];
    Atom::new(p, (0..arity).map(|_| arb_term(rng)).collect())
}

fn arb_ground_atom(rng: &mut StdRng) -> Atom {
    let (p, arity) = PREDICATES[rng.gen_range(0..PREDICATES.len())];
    Atom::new(
        p,
        (0..arity)
            .map(|_| Term::constant(["a", "b", "c", "d"][rng.gen_range(0..4usize)]))
            .collect(),
    )
}

fn arb_instance(rng: &mut StdRng, max_facts: usize) -> Instance {
    let n = rng.gen_range(1..max_facts + 1);
    let mut db = Database::new();
    for _ in 0..n {
        db.insert(arb_ground_atom(rng)).expect("consistent arities");
    }
    db.into_instance()
}

fn arb_pattern(rng: &mut StdRng, max_atoms: usize) -> Vec<Atom> {
    let n = rng.gen_range(1..max_atoms + 1);
    (0..n).map(|_| arb_atom(rng)).collect()
}

fn canon(hs: &[Substitution]) -> BTreeSet<String> {
    hs.iter().map(|h| h.to_string()).collect()
}

/// Runs a matcher over `inst` with the given plan, collecting the canonical
/// answer set, the matched-row-id set, and the kernel counters.
#[allow(clippy::type_complexity)]
fn run_plan(
    spec: &JoinSpec,
    plan: Option<&JoinPlan>,
    inst: &Instance,
) -> (BTreeSet<String>, BTreeSet<Vec<(usize, RowId)>>, u64, u64) {
    let mut matcher = Matcher::new(spec);
    matcher.set_plan(plan);
    let mut answers: Vec<Substitution> = Vec::new();
    let mut rows: BTreeSet<Vec<(usize, RowId)>> = BTreeSet::new();
    let stats = matcher.for_each(inst, |b| {
        answers.push(b.to_substitution());
        rows.insert(b.matched_rows().iter().copied().enumerate().collect());
        ControlFlow::Continue(())
    });
    (canon(&answers), rows, stats.matches, stats.composite_probes)
}

/// Composite-probe plans, single-column plans, the adaptive streaming path
/// and the reference oracle are bit-identical on answers, match counts and
/// matched-row-id sets — and composite probes really occur across the suite.
#[test]
fn composite_single_column_streaming_and_reference_agree() {
    let mut rng = StdRng::seed_from_u64(4001);
    let mut composite_probes_total = 0u64;
    for case in 0..CASES {
        let inst = arb_instance(&mut rng, 18);
        let pattern = arb_pattern(&mut rng, 3);
        let spec = JoinSpec::compile(&pattern);
        let composite_plan = spec.plan(&inst, &[]);
        let single_plan = spec.plan_with_options(
            &inst,
            &[],
            PlanOptions {
                composite_keys: false,
            },
        );

        let (comp_answers, comp_rows, comp_matches, comp_probes) =
            run_plan(&spec, Some(&composite_plan), &inst);
        let (single_answers, single_rows, single_matches, single_probes) =
            run_plan(&spec, Some(&single_plan), &inst);
        let (stream_answers, stream_rows, stream_matches, _) = run_plan(&spec, None, &inst);
        composite_probes_total += comp_probes;
        assert_eq!(
            single_probes, 0,
            "case {case}: single-column plans never fuse"
        );

        assert_eq!(comp_answers, single_answers, "case {case}: {pattern:?}");
        assert_eq!(comp_answers, stream_answers, "case {case}: {pattern:?}");
        assert_eq!(comp_matches, single_matches, "case {case}");
        assert_eq!(comp_matches, stream_matches, "case {case}");
        assert_eq!(comp_rows, single_rows, "case {case}: matched row ids");
        assert_eq!(comp_rows, stream_rows, "case {case}: matched row ids");

        let oracle =
            homomorphisms_reference(&pattern, &inst, &Substitution::new(), HomSearch::all());
        assert_eq!(comp_answers, canon(&oracle), "case {case} vs oracle");
        assert_eq!(
            comp_matches as usize,
            oracle.len(),
            "case {case} count vs oracle"
        );
    }
    assert!(
        composite_probes_total > 0,
        "the suite must actually exercise composite probe steps"
    );
}

/// Delta-style prematching: for every choice of prematched atom and delta
/// row, the composite plan agrees with the single-column plan and the
/// streaming path.
#[test]
fn composite_prematch_agrees_with_single_column_and_streaming() {
    let mut rng = StdRng::seed_from_u64(4002);
    for case in 0..CASES {
        let inst = arb_instance(&mut rng, 15);
        let pattern = arb_pattern(&mut rng, 3);
        let spec = JoinSpec::compile(&pattern);
        let pos = rng.gen_range(0..pattern.len());
        let Some(rel) = inst.relation(pattern[pos].predicate) else {
            continue;
        };
        if rel.arity() != pattern[pos].arity() || rel.is_empty() {
            continue;
        }
        let row_id = rng.gen_range(0..rel.len()) as RowId;
        let composite_plan = spec.plan(&inst, &[pos]);
        let single_plan = spec.plan_with_options(
            &inst,
            &[pos],
            PlanOptions {
                composite_keys: false,
            },
        );
        let run = |plan: Option<&JoinPlan>| {
            let mut matcher = Matcher::new(&spec);
            matcher.set_plan(plan);
            if !matcher.prematch(pos, rel.row(row_id)) {
                return None;
            }
            let mut answers: Vec<Substitution> = Vec::new();
            let stats = matcher.for_each(&inst, |b| {
                answers.push(b.to_substitution());
                ControlFlow::Continue(())
            });
            Some((canon(&answers), stats.matches))
        };
        let composite = run(Some(&composite_plan));
        assert_eq!(
            composite,
            run(Some(&single_plan)),
            "case {case}: atom {pos} row {row_id} of {pattern:?}"
        );
        assert_eq!(
            composite,
            run(None),
            "case {case}: atom {pos} row {row_id} of {pattern:?}"
        );
    }
}

/// Fingerprint false positives and filter skips are harmless: probing random
/// (mostly absent) fused keys through the public probe API returns exactly
/// the rows a full scan finds, for single columns and composites alike.
#[test]
fn fingerprint_filters_are_transparent_to_probe_results() {
    // Phase 1: a relation with enough distinct composite keys that its
    // indexes genuinely cross the filter size gate, probed with a mix of
    // present and absent pairs — the filtered path must agree with a scan.
    {
        let mut db = Database::new();
        for i in 0..6000u32 {
            db.insert(Atom::new(
                "w",
                vec![
                    Term::constant(&format!("fa{}", i % 120)),
                    Term::constant(&format!("fb{}", i / 120)),
                    Term::constant(&format!("fv{i}")),
                ],
            ))
            .unwrap();
        }
        let inst = db.into_instance();
        let rel = inst.relation(Predicate::new("w")).unwrap();
        let cols = ColSet::new(&[0, 1]);
        assert_eq!(rel.key_distinct_count(cols), 6000);
        // One linear pass builds the oracle buckets; every probe compares
        // against it.
        let mut oracle: std::collections::BTreeMap<(PackedTerm, PackedTerm), Vec<RowId>> =
            std::collections::BTreeMap::new();
        for id in 0..rel.row_count() {
            let row = rel.row(id);
            oracle.entry((row[0], row[1])).or_default().push(id);
        }
        let mut filtered = 0usize;
        for a in 0..140u32 {
            for b in 0..60u32 {
                let pa = PackedTerm::pack(Term::constant(&format!("fa{a}"))).unwrap();
                let pb = PackedTerm::pack(Term::constant(&format!("fb{b}"))).unwrap();
                let key = fuse_key(&[pa, pb]);
                let (indexed, skipped): (Vec<RowId>, bool) =
                    rel.with_key_matching_rows(cols, key, |c| {
                        (c.iter().collect(), c.skipped_by_filter())
                    });
                filtered += usize::from(skipped);
                let expected = oracle.get(&(pa, pb)).cloned().unwrap_or_default();
                assert_eq!(indexed, expected, "pair (fa{a}, fb{b})");
            }
        }
        // 140×60 probes cover 6000 present pairs and 2400 absent ones; the
        // absent ones must be mostly filter-skipped (the filter exists).
        assert!(
            filtered > 1500,
            "only {filtered} probes were filter-skipped"
        );
    }

    // Phase 2: randomized small instances (below the filter gate — the
    // unfiltered path must be just as transparent).
    let mut rng = StdRng::seed_from_u64(4003);
    for case in 0..60 {
        let inst = arb_instance(&mut rng, 120);
        for p in ["p", "q", "r"] {
            let Some(rel) = inst.relation(Predicate::new(p)) else {
                continue;
            };
            let arity = rel.arity();
            for _ in 0..40 {
                // Random (often absent) probe values over a wider pool than
                // the stored data, on a random column pair.
                let c0 = rng.gen_range(0..arity);
                let c1 = (c0 + 1 + rng.gen_range(0..arity - 1)) % arity;
                let cols = ColSet::new(&[c0.min(c1), c0.max(c1)]);
                let v0 = Term::constant(["a", "b", "c", "d", "e", "zz"][rng.gen_range(0..6usize)]);
                let v1 = Term::constant(["a", "b", "c", "d", "e", "zz"][rng.gen_range(0..6usize)]);
                let (lo, hi) = if c0 < c1 { (v0, v1) } else { (v1, v0) };
                let key = fuse_key(&[PackedTerm::pack(lo).unwrap(), PackedTerm::pack(hi).unwrap()]);
                let indexed: Vec<RowId> =
                    rel.with_key_matching_rows(cols, key, |c| c.iter().collect());
                let scanned: Vec<RowId> = (0..rel.row_count())
                    .filter(|&id| {
                        let row = rel.row(id);
                        row[c0.min(c1)] == PackedTerm::pack(lo).unwrap()
                            && row[c0.max(c1)] == PackedTerm::pack(hi).unwrap()
                    })
                    .collect();
                assert_eq!(indexed, scanned, "case {case}: {p} cols {cols} probe");
            }
        }
    }
}

/// CSR exactness through interleaved appends and probes: after every batch
/// of inserts (which drives the index through overflow extension and
/// geometric rebuilds), the index answers equal a full scan on single
/// columns and composites.
#[test]
fn csr_stays_exact_through_append_probe_interleavings() {
    let mut rng = StdRng::seed_from_u64(4004);
    for case in 0..25 {
        let mut inst = Instance::new();
        let p = Predicate::new("q");
        let cols = ColSet::new(&[0, 2]);
        for batch in 0..12 {
            let grow = rng.gen_range(1..40usize);
            for _ in 0..grow {
                let atom = Atom::new(
                    "q",
                    (0..4)
                        .map(|_| Term::constant(["a", "b", "c", "d"][rng.gen_range(0..4usize)]))
                        .collect(),
                );
                inst.insert(atom).unwrap();
            }
            let rel = inst.relation(p).unwrap();
            for v0 in ["a", "b", "c", "d"] {
                // Single column.
                let key0 = PackedTerm::pack(Term::constant(v0)).unwrap();
                let got: Vec<RowId> = rel.with_matching_rows(0, key0, |c| c.iter().collect());
                let want: Vec<RowId> = (0..rel.row_count())
                    .filter(|&id| rel.row(id)[0] == key0)
                    .collect();
                assert_eq!(got, want, "case {case} batch {batch}: column 0 = {v0}");
                // Composite (0, 2).
                for v2 in ["a", "c"] {
                    let key2 = PackedTerm::pack(Term::constant(v2)).unwrap();
                    let key = fuse_key(&[key0, key2]);
                    let got: Vec<RowId> =
                        rel.with_key_matching_rows(cols, key, |c| c.iter().collect());
                    let want: Vec<RowId> = (0..rel.row_count())
                        .filter(|&id| rel.row(id)[0] == key0 && rel.row(id)[2] == key2)
                        .collect();
                    assert_eq!(got, want, "case {case} batch {batch}: ({v0}, {v2})");
                }
            }
            // The memoised distinct counts match a recount from scratch.
            let mut single = BTreeSet::new();
            let mut pairs = BTreeSet::new();
            for id in 0..rel.row_count() {
                single.insert(rel.row(id)[0]);
                pairs.insert((rel.row(id)[0], rel.row(id)[2]));
            }
            assert_eq!(
                rel.distinct_count(0),
                single.len(),
                "case {case} batch {batch}"
            );
            assert_eq!(
                rel.key_distinct_count(cols),
                pairs.len(),
                "case {case} batch {batch}"
            );
        }
    }
}
