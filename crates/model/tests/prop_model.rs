//! Property-based tests for the core model data structures: unification,
//! substitutions, homomorphisms and CQ evaluation.

use proptest::prelude::*;
use vadalog_model::{
    exists_homomorphism, homomorphisms, mgu_atom_with_atom, Atom, Database, HomSearch, Substitution,
    Term, Variable,
};

/// A small vocabulary so that random atoms collide often enough to make the
/// properties interesting.
fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(Term::constant),
        prop_oneof![Just("X"), Just("Y"), Just("Z"), Just("W")].prop_map(Term::variable),
    ]
}

fn arb_atom() -> impl Strategy<Value = Atom> {
    (
        prop_oneof![Just("p"), Just("q"), Just("r")],
        proptest::collection::vec(arb_term(), 1..4),
    )
        .prop_map(|(p, terms)| Atom::new(p, terms))
}

fn arb_ground_atom() -> impl Strategy<Value = Atom> {
    (
        prop_oneof![Just("p"), Just("q"), Just("r")],
        proptest::collection::vec(
            prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")].prop_map(Term::constant),
            2usize..3,
        ),
    )
        .prop_map(|(p, terms)| Atom::new(p, terms))
}

proptest! {
    /// An MGU, when it exists, is a unifier: applying it to both atoms yields
    /// syntactically equal atoms.
    #[test]
    fn mgu_unifies(a in arb_atom(), b in arb_atom()) {
        if let Some(mgu) = mgu_atom_with_atom(&a, &b) {
            prop_assert_eq!(mgu.apply_atom(&a), mgu.apply_atom(&b));
        }
    }

    /// Unification is symmetric in its success/failure.
    #[test]
    fn mgu_symmetric(a in arb_atom(), b in arb_atom()) {
        prop_assert_eq!(
            mgu_atom_with_atom(&a, &b).is_some(),
            mgu_atom_with_atom(&b, &a).is_some()
        );
    }

    /// Unifying an atom with itself always succeeds and the unifier does not
    /// bind any variable to a different term (it may be empty or identity-like).
    #[test]
    fn mgu_reflexive(a in arb_atom()) {
        let mgu = mgu_atom_with_atom(&a, &a);
        prop_assert!(mgu.is_some());
        let mgu = mgu.unwrap();
        prop_assert_eq!(mgu.apply_atom(&a), a);
    }

    /// Substitution application is idempotent for grounding substitutions.
    #[test]
    fn grounding_substitutions_are_idempotent(a in arb_atom()) {
        let mut s = Substitution::new();
        for v in a.variables() {
            s.bind_var(v, Term::constant("a"));
        }
        let once = s.apply_atom(&a);
        let twice = s.apply_atom(&once);
        prop_assert_eq!(once, twice);
    }

    /// Every homomorphism returned by the search actually maps each pattern
    /// atom onto an atom of the target instance.
    #[test]
    fn homomorphisms_are_sound(
        facts in proptest::collection::vec(arb_ground_atom(), 1..12),
        pattern in proptest::collection::vec(arb_atom(), 1..3),
    ) {
        // Keep only patterns whose predicates have consistent arity with the
        // facts (otherwise the database constructor rejects nothing, but no
        // match is possible — still a valid check).
        let mut db = Database::new();
        let mut ok = true;
        for f in &facts {
            if db.insert(f.clone()).is_err() { ok = false; break; }
        }
        prop_assume!(ok);
        let inst = db.into_instance();
        let hs = homomorphisms(&pattern, &inst, &Substitution::new(), HomSearch::all());
        for h in hs {
            for atom in &pattern {
                prop_assert!(inst.contains(&h.apply_atom(atom)),
                    "homomorphism image {:?} not in instance", h.apply_atom(atom));
            }
        }
    }

    /// If a pattern consists of facts already in the database, a homomorphism
    /// always exists (the identity).
    #[test]
    fn identity_homomorphism_exists(facts in proptest::collection::vec(arb_ground_atom(), 1..8)) {
        let mut db = Database::new();
        let mut inserted = Vec::new();
        for f in facts {
            if db.insert(f.clone()).unwrap_or(false) {
                inserted.push(f);
            }
        }
        prop_assume!(!inserted.is_empty());
        let inst = db.into_instance();
        prop_assert!(exists_homomorphism(&inserted, &inst, &Substitution::new()));
    }

    /// Composition of substitutions agrees with sequential application on atoms.
    #[test]
    fn composition_matches_sequential_application(a in arb_atom()) {
        let mut s1 = Substitution::new();
        s1.bind_var(Variable::new("X"), Term::variable("Y"));
        let mut s2 = Substitution::new();
        s2.bind_var(Variable::new("Y"), Term::constant("c"));
        let composed = s1.compose(&s2);
        prop_assert_eq!(composed.apply_atom(&a), s2.apply_atom(&s1.apply_atom(&a)));
    }
}
