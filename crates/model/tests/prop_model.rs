//! Property-based tests for the core model data structures: unification,
//! substitutions, homomorphisms and CQ evaluation.
//!
//! The build environment is offline, so instead of `proptest` these use the
//! in-tree seeded PRNG: every property is checked over a few hundred randomly
//! generated cases with a fixed seed (fully deterministic and reproducible).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vadalog_model::{
    exists_homomorphism, homomorphisms, mgu_atom_with_atom, Atom, Database, HomSearch, NullId,
    PackedTerm, Substitution, Symbol, Term, Variable,
};

const CASES: usize = 300;

/// Every ground term — random constants (fresh and shared interner entries)
/// and nulls across the full 30-bit payload — round-trips through the packed
/// 4-byte representation, preserving equality, ordering and display.
#[test]
fn packed_terms_round_trip_all_ground_terms() {
    let mut rng = StdRng::seed_from_u64(77);
    let mut prev: Option<(PackedTerm, Term)> = None;
    for case in 0..CASES {
        let t = if rng.gen_bool(0.5) {
            // A mix of shared and distinct symbols.
            if rng.gen_bool(0.5) {
                Term::constant(["a", "b", "c", "d"][rng.gen_range(0..4usize)])
            } else {
                Term::Const(Symbol::new(&format!("pk_prop_{}", rng.gen_range(0..50u32))))
            }
        } else {
            Term::Null(NullId(rng.gen_range(0..(1u64 << 30))))
        };
        let p = PackedTerm::pack(t).expect("ground term within the dictionary packs");
        assert_eq!(p.unpack(), t, "case {case}: round trip of {t}");
        assert_eq!(p.to_string(), t.to_string(), "case {case}: display");
        assert_eq!(p.is_const(), t.is_const());
        assert_eq!(p.is_null(), t.is_null());
        assert_eq!(p.as_const(), t.as_const());
        assert_eq!(p.as_null(), t.as_null());
        assert_eq!(
            PackedTerm::pack(t),
            Some(p),
            "case {case}: packing is stable"
        );
        if let Some((q, u)) = prev {
            assert_eq!(p.cmp(&q), t.cmp(&u), "case {case}: order isomorphism");
            assert_eq!(p == q, t == u, "case {case}: equality isomorphism");
        }
        prev = Some((p, t));
    }
    // Variables never pack.
    assert_eq!(PackedTerm::pack(Term::variable("X")), None);
}

/// A small vocabulary so that random atoms collide often enough to make the
/// properties interesting.
pub fn arb_term(rng: &mut StdRng) -> Term {
    if rng.gen_bool(0.5) {
        Term::constant(["a", "b", "c"][rng.gen_range(0..3usize)])
    } else {
        Term::variable(["X", "Y", "Z", "W"][rng.gen_range(0..4usize)])
    }
}

pub fn arb_atom(rng: &mut StdRng) -> Atom {
    let p = ["p", "q", "r"][rng.gen_range(0..3usize)];
    let arity = rng.gen_range(1..4usize);
    Atom::new(p, (0..arity).map(|_| arb_term(rng)).collect())
}

pub fn arb_ground_atom(rng: &mut StdRng) -> Atom {
    let p = ["p", "q", "r"][rng.gen_range(0..3usize)];
    Atom::new(
        p,
        (0..2)
            .map(|_| Term::constant(["a", "b", "c", "d"][rng.gen_range(0..4usize)]))
            .collect(),
    )
}

pub fn arb_pattern(rng: &mut StdRng, max_atoms: usize) -> Vec<Atom> {
    let n = rng.gen_range(1..max_atoms + 1);
    (0..n).map(|_| arb_atom(rng)).collect()
}

/// An MGU, when it exists, is a unifier: applying it to both atoms yields
/// syntactically equal atoms.
#[test]
fn mgu_unifies() {
    let mut rng = StdRng::seed_from_u64(101);
    for _ in 0..CASES {
        let a = arb_atom(&mut rng);
        let b = arb_atom(&mut rng);
        if let Some(mgu) = mgu_atom_with_atom(&a, &b) {
            assert_eq!(mgu.apply_atom(&a), mgu.apply_atom(&b), "a={a} b={b}");
        }
    }
}

/// Unification is symmetric in its success/failure.
#[test]
fn mgu_symmetric() {
    let mut rng = StdRng::seed_from_u64(102);
    for _ in 0..CASES {
        let a = arb_atom(&mut rng);
        let b = arb_atom(&mut rng);
        assert_eq!(
            mgu_atom_with_atom(&a, &b).is_some(),
            mgu_atom_with_atom(&b, &a).is_some(),
            "a={a} b={b}"
        );
    }
}

/// Unifying an atom with itself always succeeds and the unifier does not
/// bind any variable to a different term (it may be empty or identity-like).
#[test]
fn mgu_reflexive() {
    let mut rng = StdRng::seed_from_u64(103);
    for _ in 0..CASES {
        let a = arb_atom(&mut rng);
        let mgu = mgu_atom_with_atom(&a, &a).expect("self-unification succeeds");
        assert_eq!(mgu.apply_atom(&a), a, "a={a}");
    }
}

/// Substitution application is idempotent for grounding substitutions.
#[test]
fn grounding_substitutions_are_idempotent() {
    let mut rng = StdRng::seed_from_u64(104);
    for _ in 0..CASES {
        let a = arb_atom(&mut rng);
        let mut s = Substitution::new();
        for v in a.variables() {
            s.bind_var(v, Term::constant("a"));
        }
        let once = s.apply_atom(&a);
        let twice = s.apply_atom(&once);
        assert_eq!(once, twice, "a={a}");
    }
}

/// Every homomorphism returned by the search actually maps each pattern
/// atom onto an atom of the target instance.
#[test]
fn homomorphisms_are_sound() {
    let mut rng = StdRng::seed_from_u64(105);
    'case: for _ in 0..CASES {
        let n_facts = rng.gen_range(1..12usize);
        let mut db = Database::new();
        for _ in 0..n_facts {
            // Skip cases with arity conflicts (the generators use arity 2 for
            // ground atoms, so this cannot trigger, but stay defensive).
            if db.insert(arb_ground_atom(&mut rng)).is_err() {
                continue 'case;
            }
        }
        let pattern = arb_pattern(&mut rng, 2);
        let inst = db.into_instance();
        let hs = homomorphisms(&pattern, &inst, &Substitution::new(), HomSearch::all());
        for h in hs {
            for atom in &pattern {
                assert!(
                    inst.contains(&h.apply_atom(atom)),
                    "homomorphism image {:?} not in instance",
                    h.apply_atom(atom)
                );
            }
        }
    }
}

/// If a pattern consists of facts already in the database, a homomorphism
/// always exists (the identity).
#[test]
fn identity_homomorphism_exists() {
    let mut rng = StdRng::seed_from_u64(106);
    for _ in 0..CASES {
        let n_facts = rng.gen_range(1..8usize);
        let mut db = Database::new();
        let mut inserted = Vec::new();
        for _ in 0..n_facts {
            let f = arb_ground_atom(&mut rng);
            if db.insert(f.clone()).unwrap_or(false) {
                inserted.push(f);
            }
        }
        if inserted.is_empty() {
            continue;
        }
        let inst = db.into_instance();
        assert!(exists_homomorphism(&inserted, &inst, &Substitution::new()));
    }
}

/// Composition of substitutions agrees with sequential application on atoms.
#[test]
fn composition_matches_sequential_application() {
    let mut rng = StdRng::seed_from_u64(107);
    for _ in 0..CASES {
        let a = arb_atom(&mut rng);
        let mut s1 = Substitution::new();
        s1.bind_var(Variable::new("X"), Term::variable("Y"));
        let mut s2 = Substitution::new();
        s2.bind_var(Variable::new("Y"), Term::constant("c"));
        let composed = s1.compose(&s2);
        assert_eq!(
            composed.apply_atom(&a),
            s2.apply_atom(&s1.apply_atom(&a)),
            "a={a}"
        );
    }
}
