//! Cross-checks of the zero-allocation join kernel against the retained
//! naive nested-loop reference search
//! ([`vadalog_model::homomorphism::reference`]) on randomized patterns,
//! databases and rule programs: the answer sets must be set-equal in every
//! case. The generators mirror the `prop_model.rs` vocabulary (shared small
//! constant/variable/predicate pools so collisions and joins are frequent).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::ops::ControlFlow;
use vadalog_model::homomorphism::reference::homomorphisms_reference;
use vadalog_model::{
    homomorphisms, Atom, Database, HomSearch, Instance, JoinSpec, Matcher, Substitution, Term,
    Variable,
};

const CASES: usize = 250;

fn arb_term(rng: &mut StdRng) -> Term {
    if rng.gen_bool(0.5) {
        Term::constant(["a", "b", "c"][rng.gen_range(0..3usize)])
    } else {
        Term::variable(["X", "Y", "Z", "W"][rng.gen_range(0..4usize)])
    }
}

/// Random atom with predicate-determined arity so that arities are globally
/// consistent and patterns genuinely join.
fn arb_atom(rng: &mut StdRng) -> Atom {
    let (p, arity) = [("p", 2usize), ("q", 2), ("r", 3)][rng.gen_range(0..3usize)];
    Atom::new(p, (0..arity).map(|_| arb_term(rng)).collect())
}

fn arb_ground_atom(rng: &mut StdRng) -> Atom {
    let (p, arity) = [("p", 2usize), ("q", 2), ("r", 3)][rng.gen_range(0..3usize)];
    Atom::new(
        p,
        (0..arity)
            .map(|_| Term::constant(["a", "b", "c", "d"][rng.gen_range(0..4usize)]))
            .collect(),
    )
}

fn arb_instance(rng: &mut StdRng, max_facts: usize) -> Instance {
    let n = rng.gen_range(1..max_facts + 1);
    let mut db = Database::new();
    for _ in 0..n {
        db.insert(arb_ground_atom(rng)).expect("consistent arities");
    }
    db.into_instance()
}

fn arb_pattern(rng: &mut StdRng, max_atoms: usize) -> Vec<Atom> {
    let n = rng.gen_range(1..max_atoms + 1);
    (0..n).map(|_| arb_atom(rng)).collect()
}

/// Canonical form of an answer set for set-equality comparison.
fn canon(hs: &[Substitution]) -> BTreeSet<String> {
    hs.iter().map(|h| h.to_string()).collect()
}

/// Kernel and reference enumerate exactly the same homomorphism sets on
/// random patterns over random instances.
#[test]
fn kernel_matches_reference_on_random_joins() {
    let mut rng = StdRng::seed_from_u64(2019);
    for case in 0..CASES {
        let inst = arb_instance(&mut rng, 15);
        let pattern = arb_pattern(&mut rng, 3);
        let kernel = homomorphisms(&pattern, &inst, &Substitution::new(), HomSearch::all());
        let naive =
            homomorphisms_reference(&pattern, &inst, &Substitution::new(), HomSearch::all());
        assert_eq!(
            canon(&kernel),
            canon(&naive),
            "case {case}: pattern {pattern:?} over {inst:?}"
        );
        // The two searches must also agree on counting (no duplicates on
        // either side beyond what the other produces).
        assert_eq!(kernel.len(), naive.len(), "case {case}");
    }
}

/// Seeded searches agree as well (seeds exercise the rigid-argument paths).
#[test]
fn kernel_matches_reference_with_seeds() {
    let mut rng = StdRng::seed_from_u64(2020);
    for case in 0..CASES {
        let inst = arb_instance(&mut rng, 12);
        let pattern = arb_pattern(&mut rng, 3);
        let mut seed = Substitution::new();
        for name in ["X", "Y"] {
            if rng.gen_bool(0.5) {
                seed.bind_var(
                    Variable::new(name),
                    Term::constant(["a", "b", "c", "d"][rng.gen_range(0..4usize)]),
                );
            }
        }
        let kernel = homomorphisms(&pattern, &inst, &seed, HomSearch::all());
        let naive = homomorphisms_reference(&pattern, &inst, &seed, HomSearch::all());
        assert_eq!(
            canon(&kernel),
            canon(&naive),
            "case {case}: pattern {pattern:?} seed {seed} over {inst:?}"
        );
    }
}

/// A random single-head full rule (no existentials), as `(body, head)`.
fn arb_rule(rng: &mut StdRng) -> (Vec<Atom>, Atom) {
    let body = arb_pattern(rng, 2);
    // Head over the body's variables only (fall back to a constant when the
    // body is ground), so the rule derives ground facts.
    let vars = vadalog_model::atom::variables_of(&body);
    let head_terms: Vec<Term> = (0..2)
        .map(|_| {
            if vars.is_empty() || rng.gen_bool(0.3) {
                Term::constant(["a", "b", "c", "d"][rng.gen_range(0..4usize)])
            } else {
                Term::Var(vars[rng.gen_range(0..vars.len())])
            }
        })
        .collect();
    (body, Atom::new("derived", head_terms))
}

/// Saturates `instance` under the rules using the provided homomorphism
/// enumerator — a deliberately naive round-based fixpoint, shared by both
/// sides of the cross-check so only the join implementation differs.
fn fixpoint_with<F>(rules: &[(Vec<Atom>, Atom)], mut instance: Instance, enumerate: F) -> Instance
where
    F: Fn(&[Atom], &Instance) -> Vec<Substitution>,
{
    loop {
        let mut new_facts = Vec::new();
        for (body, head) in rules {
            for h in enumerate(body, &instance) {
                let fact = h.apply_atom(head);
                if fact.is_variable_free() && !instance.contains(&fact) {
                    new_facts.push(fact);
                }
            }
        }
        let mut changed = false;
        for fact in new_facts {
            changed |= instance
                .insert(fact)
                .expect("derived fact is variable-free");
        }
        if !changed {
            return instance;
        }
    }
}

/// On randomized programs and databases, a fixpoint computed with the kernel
/// equals the fixpoint computed with the naive reference evaluator.
#[test]
fn kernel_fixpoint_matches_reference_on_random_programs() {
    let mut rng = StdRng::seed_from_u64(2021);
    for case in 0..60 {
        let n_rules = rng.gen_range(1..4usize);
        let rules: Vec<(Vec<Atom>, Atom)> = (0..n_rules).map(|_| arb_rule(&mut rng)).collect();
        let base = arb_instance(&mut rng, 10);

        let with_kernel = fixpoint_with(&rules, base.clone(), |body, inst| {
            let spec = JoinSpec::compile(body);
            let mut matcher = Matcher::new(&spec);
            let mut out = Vec::new();
            matcher.for_each(inst, |b| {
                out.push(b.to_substitution());
                ControlFlow::Continue(())
            });
            out
        });
        let with_reference = fixpoint_with(&rules, base.clone(), |body, inst| {
            homomorphisms_reference(body, inst, &Substitution::new(), HomSearch::all())
        });

        let a: BTreeSet<String> = with_kernel.iter().map(|x| x.to_string()).collect();
        let b: BTreeSet<String> = with_reference.iter().map(|x| x.to_string()).collect();
        assert_eq!(a, b, "case {case}: rules {rules:?} over {base:?}");
    }
}

/// The planned build/probe path is bit-identical to the adaptive streaming
/// path and the reference oracle on random patterns: same answer sets, same
/// match counts, and the same matched-row-id *sets* (the set of target rows
/// each full match binds is enumeration-order independent).
#[test]
fn planned_path_matches_streaming_and_reference_on_random_joins() {
    let mut rng = StdRng::seed_from_u64(2023);
    for case in 0..CASES {
        let inst = arb_instance(&mut rng, 15);
        let pattern = arb_pattern(&mut rng, 3);
        let spec = JoinSpec::compile(&pattern);
        let plan = spec.plan(&inst, &[]);

        let run = |plan: Option<&vadalog_model::JoinPlan>| {
            let mut matcher = Matcher::new(&spec);
            matcher.set_plan(plan);
            let mut answers: Vec<Substitution> = Vec::new();
            let mut rows: BTreeSet<Vec<(usize, u32)>> = BTreeSet::new();
            let stats = matcher.for_each(&inst, |b| {
                answers.push(b.to_substitution());
                rows.insert(
                    b.matched_rows()
                        .iter()
                        .enumerate()
                        .map(|(atom, &id)| (atom, id))
                        .collect(),
                );
                ControlFlow::Continue(())
            });
            (answers, rows, stats.matches)
        };
        let (planned, planned_rows, planned_matches) = run(Some(&plan));
        let (streamed, streamed_rows, streamed_matches) = run(None);
        assert_eq!(
            canon(&planned),
            canon(&streamed),
            "case {case}: {pattern:?}"
        );
        assert_eq!(planned_matches, streamed_matches, "case {case}");
        assert_eq!(planned_rows, streamed_rows, "case {case}: matched row ids");
        let naive =
            homomorphisms_reference(&pattern, &inst, &Substitution::new(), HomSearch::all());
        assert_eq!(canon(&planned), canon(&naive), "case {case} vs oracle");
        assert_eq!(planned.len(), naive.len(), "case {case} count vs oracle");
    }
}

/// The planned path under delta-style prematching agrees with the streaming
/// path for every choice of prematched atom and delta row.
#[test]
fn planned_prematch_matches_streaming_on_random_joins() {
    let mut rng = StdRng::seed_from_u64(2024);
    for case in 0..CASES {
        let inst = arb_instance(&mut rng, 12);
        let pattern = arb_pattern(&mut rng, 3);
        let spec = JoinSpec::compile(&pattern);
        let pos = rng.gen_range(0..pattern.len());
        let Some(rel) = inst.relation(pattern[pos].predicate) else {
            continue;
        };
        if rel.arity() != pattern[pos].arity() || rel.is_empty() {
            continue;
        }
        let row_id = rng.gen_range(0..rel.len()) as u32;
        let plan = spec.plan(&inst, &[pos]);
        let run = |plan: Option<&vadalog_model::JoinPlan>| {
            let mut matcher = Matcher::new(&spec);
            matcher.set_plan(plan);
            if !matcher.prematch(pos, rel.row(row_id)) {
                return None;
            }
            let mut answers: Vec<Substitution> = Vec::new();
            let stats = matcher.for_each(&inst, |b| {
                answers.push(b.to_substitution());
                ControlFlow::Continue(())
            });
            Some((canon(&answers), stats.matches))
        };
        assert_eq!(
            run(Some(&plan)),
            run(None),
            "case {case}: atom {pos} row {row_id} of {pattern:?}"
        );
    }
}

/// `HomSearch::first()` agrees with the reference on *existence* (the first
/// match found may differ, its existence may not).
#[test]
fn kernel_existence_matches_reference() {
    let mut rng = StdRng::seed_from_u64(2022);
    for case in 0..CASES {
        let inst = arb_instance(&mut rng, 10);
        let pattern = arb_pattern(&mut rng, 3);
        let kernel = homomorphisms(&pattern, &inst, &Substitution::new(), HomSearch::first());
        let naive =
            homomorphisms_reference(&pattern, &inst, &Substitution::new(), HomSearch::first());
        assert_eq!(
            kernel.is_empty(),
            naive.is_empty(),
            "case {case}: {pattern:?}"
        );
    }
}
