//! Terms: constants, variables and labelled nulls (Section 2 of the paper).

use crate::symbols::Symbol;
use std::fmt;

/// A variable. Variables are identified by their (interned) name; renaming a
/// rule apart simply produces variables with fresh names.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Variable(pub Symbol);

impl Variable {
    /// Creates a variable with the given name.
    pub fn new(name: &str) -> Variable {
        Variable(Symbol::new(name))
    }

    /// The variable's name.
    pub fn name(&self) -> &'static str {
        self.0.as_str()
    }
}

impl fmt::Display for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Debug for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var({})", self.name())
    }
}

/// A labelled null, invented by a chase step for an existentially quantified
/// variable. Nulls are identified by a numeric id that is unique within a
/// chase run.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NullId(pub u64);

impl fmt::Display for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⊥{}", self.0)
    }
}

impl fmt::Debug for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Null({})", self.0)
    }
}

/// A term: a constant of **C**, a variable of **V**, or a labelled null of
/// **N** (the three disjoint countably infinite sets of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A constant.
    Const(Symbol),
    /// A variable.
    Var(Variable),
    /// A labelled null.
    Null(NullId),
}

impl Term {
    /// Convenience constructor for a constant term.
    pub fn constant(name: &str) -> Term {
        Term::Const(Symbol::new(name))
    }

    /// Convenience constructor for a variable term.
    pub fn variable(name: &str) -> Term {
        Term::Var(Variable::new(name))
    }

    /// `true` iff this term is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// `true` iff this term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// `true` iff this term is a labelled null.
    pub fn is_null(&self) -> bool {
        matches!(self, Term::Null(_))
    }

    /// The variable inside this term, if any.
    pub fn as_var(&self) -> Option<Variable> {
        match self {
            Term::Var(v) => Some(*v),
            _ => None,
        }
    }

    /// The constant inside this term, if any.
    pub fn as_const(&self) -> Option<Symbol> {
        match self {
            Term::Const(c) => Some(*c),
            _ => None,
        }
    }

    /// The null inside this term, if any.
    pub fn as_null(&self) -> Option<NullId> {
        match self {
            Term::Null(n) => Some(*n),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(c) => write!(f, "{c}"),
            Term::Var(v) => write!(f, "{v}"),
            Term::Null(n) => write!(f, "{n}"),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A ground term dictionary-encoded into 4 bytes: 2 tag bits and a 30-bit
/// payload (a [`Symbol`] interner index for constants, a [`NullId`] for
/// labelled nulls).
///
/// The columnar fact store ([`crate::database::Relation`]) and the join
/// kernel ([`crate::homomorphism`]) work exclusively on packed terms: rows
/// are `&[PackedTerm]` slices, so row hashing, dedup probes and slot
/// comparisons are u32 operations over a table a quarter the width of the
/// enum representation. The public [`Term`] API survives at the edges via
/// [`PackedTerm::pack`] / [`PackedTerm::unpack`], both O(1) bit fiddling
/// (no interner access).
///
/// Variables are deliberately unrepresentable — a packed row is ground by
/// construction. Ground terms whose payload exceeds 30 bits (more than 2^30
/// distinct symbols or nulls) cannot be packed; insert paths report
/// [`crate::error::ModelError::PackOverflow`] for them, and rigid pattern
/// terms that fail to pack compile to [`PackedTerm::UNMATCHABLE`], a
/// reserved-tag value that compares equal to no stored term (such a term
/// cannot occur in any instance, so "matches nothing" is exact).
///
/// The derived ordering is order-isomorphic to [`Term`]'s ordering
/// restricted to ground terms: the constant tag (0) sorts before the null
/// tag (1), constants sort by interner index and nulls by id — exactly as
/// the enum sorts them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PackedTerm(u32);

const PACK_TAG_SHIFT: u32 = 30;
const PACK_PAYLOAD_MASK: u32 = (1 << PACK_TAG_SHIFT) - 1;
const PACK_TAG_CONST: u32 = 0;
const PACK_TAG_NULL: u32 = 1;
const PACK_TAG_RESERVED: u32 = 2;

impl PackedTerm {
    /// Largest payload (symbol index or null id) that fits the 30-bit field.
    pub const MAX_PAYLOAD: u32 = PACK_PAYLOAD_MASK;

    /// A reserved-tag value equal to no packable term. Rigid pattern
    /// arguments whose term cannot be packed compile to this sentinel: the
    /// term provably occurs in no instance, so a probe with it finds nothing.
    pub const UNMATCHABLE: PackedTerm = PackedTerm(PACK_TAG_RESERVED << PACK_TAG_SHIFT);

    /// Packs a ground term. Returns `None` for variables and for terms whose
    /// payload exceeds [`PackedTerm::MAX_PAYLOAD`].
    pub fn pack(t: Term) -> Option<PackedTerm> {
        match t {
            Term::Const(c) => PackedTerm::pack_symbol(c),
            Term::Null(n) => PackedTerm::pack_null(n),
            Term::Var(_) => None,
        }
    }

    /// Packs a constant. `None` if the symbol index exceeds the payload.
    pub fn pack_symbol(c: Symbol) -> Option<PackedTerm> {
        (c.index() <= PACK_PAYLOAD_MASK)
            .then(|| PackedTerm((PACK_TAG_CONST << PACK_TAG_SHIFT) | c.index()))
    }

    /// Packs a labelled null. `None` if the null id exceeds the payload.
    pub fn pack_null(n: NullId) -> Option<PackedTerm> {
        u32::try_from(n.0)
            .ok()
            .filter(|&id| id <= PACK_PAYLOAD_MASK)
            .map(|id| PackedTerm((PACK_TAG_NULL << PACK_TAG_SHIFT) | id))
    }

    /// Decodes back to a [`Term`]. O(1): rebuilds the symbol/null id from the
    /// payload without touching the interner.
    ///
    /// # Panics
    ///
    /// On the reserved tags (e.g. [`PackedTerm::UNMATCHABLE`]), which never
    /// denote a term and are never stored in a relation.
    pub fn unpack(self) -> Term {
        let payload = self.0 & PACK_PAYLOAD_MASK;
        match self.0 >> PACK_TAG_SHIFT {
            PACK_TAG_CONST => Term::Const(Symbol::from_raw(payload)),
            PACK_TAG_NULL => Term::Null(NullId(payload as u64)),
            _ => panic!("reserved packed-term tag denotes no term"),
        }
    }

    /// The raw 4-byte encoding (2 tag bits + 30-bit payload). Stored terms
    /// only ever carry the constant/null tags, so their raw value fits 31
    /// bits — which is what lets two packed columns fuse losslessly into one
    /// u64 composite join key (see [`crate::database::fuse_key`]).
    pub(crate) fn raw(self) -> u32 {
        self.0
    }

    /// `true` iff this packed term encodes a constant.
    pub fn is_const(self) -> bool {
        self.0 >> PACK_TAG_SHIFT == PACK_TAG_CONST
    }

    /// The constant inside this packed term, if any.
    pub fn as_const(self) -> Option<Symbol> {
        self.is_const()
            .then(|| Symbol::from_raw(self.0 & PACK_PAYLOAD_MASK))
    }

    /// `true` iff this packed term encodes a labelled null.
    pub fn is_null(self) -> bool {
        self.0 >> PACK_TAG_SHIFT == PACK_TAG_NULL
    }

    /// The null inside this packed term, if any.
    pub fn as_null(self) -> Option<NullId> {
        self.is_null()
            .then_some(NullId((self.0 & PACK_PAYLOAD_MASK) as u64))
    }
}

impl fmt::Display for PackedTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >> PACK_TAG_SHIFT >= PACK_TAG_RESERVED {
            f.write_str("⊗unmatchable")
        } else {
            fmt::Display::fmt(&self.unpack(), f)
        }
    }
}

impl fmt::Debug for PackedTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Same text as the unpacked term's Debug, so packed row dumps (e.g.
        // `Instance::row_layout`) read identically to term row dumps.
        fmt::Display::fmt(self, f)
    }
}

impl From<Variable> for Term {
    fn from(v: Variable) -> Term {
        Term::Var(v)
    }
}

impl From<NullId> for Term {
    fn from(n: NullId) -> Term {
        Term::Null(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_predicates() {
        let c = Term::constant("a");
        let v = Term::variable("X");
        let n = Term::Null(NullId(3));
        assert!(c.is_const() && !c.is_var() && !c.is_null());
        assert!(v.is_var() && !v.is_const());
        assert!(n.is_null());
        assert_eq!(v.as_var(), Some(Variable::new("X")));
        assert_eq!(c.as_const(), Some(Symbol::new("a")));
        assert_eq!(n.as_null(), Some(NullId(3)));
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(Term::constant("a"), Term::constant("a"));
        assert_ne!(Term::constant("a"), Term::variable("a"));
        assert_ne!(Term::Null(NullId(1)), Term::Null(NullId(2)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::constant("a").to_string(), "a");
        assert_eq!(Term::variable("X").to_string(), "X");
        assert_eq!(Term::Null(NullId(7)).to_string(), "⊥7");
    }

    #[test]
    fn packed_terms_round_trip_ground_terms() {
        for t in [
            Term::constant("a"),
            Term::constant("packed_roundtrip_sym"),
            Term::Null(NullId(0)),
            Term::Null(NullId(12345)),
            Term::Null(NullId(PackedTerm::MAX_PAYLOAD as u64)),
        ] {
            let p = PackedTerm::pack(t).expect("ground term packs");
            assert_eq!(p.unpack(), t, "round trip of {t}");
            assert_eq!(p.to_string(), t.to_string());
            assert_eq!(format!("{p:?}"), format!("{t:?}"));
        }
    }

    #[test]
    fn packed_terms_reject_variables_and_overflow() {
        assert_eq!(PackedTerm::pack(Term::variable("X")), None);
        assert_eq!(
            PackedTerm::pack(Term::Null(NullId(PackedTerm::MAX_PAYLOAD as u64 + 1))),
            None
        );
        assert_eq!(PackedTerm::pack(Term::Null(NullId(u64::MAX))), None);
    }

    #[test]
    fn packed_ordering_is_isomorphic_to_term_ordering() {
        let mut terms = vec![
            Term::Null(NullId(3)),
            Term::constant("pk_ord_b"),
            Term::Null(NullId(1)),
            Term::constant("pk_ord_a"),
        ];
        let mut packed: Vec<PackedTerm> = terms
            .iter()
            .map(|&t| PackedTerm::pack(t).unwrap())
            .collect();
        terms.sort();
        packed.sort();
        assert_eq!(packed.iter().map(|p| p.unpack()).collect::<Vec<_>>(), terms);
    }

    #[test]
    fn unmatchable_sentinel_equals_no_packable_term() {
        assert_ne!(
            PackedTerm::pack(Term::constant("a")).unwrap(),
            PackedTerm::UNMATCHABLE
        );
        assert_eq!(PackedTerm::UNMATCHABLE.to_string(), "⊗unmatchable");
        assert!(!PackedTerm::UNMATCHABLE.is_const());
        assert!(!PackedTerm::UNMATCHABLE.is_null());
    }
}
