//! Terms: constants, variables and labelled nulls (Section 2 of the paper).

use crate::symbols::Symbol;
use std::fmt;

/// A variable. Variables are identified by their (interned) name; renaming a
/// rule apart simply produces variables with fresh names.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Variable(pub Symbol);

impl Variable {
    /// Creates a variable with the given name.
    pub fn new(name: &str) -> Variable {
        Variable(Symbol::new(name))
    }

    /// The variable's name.
    pub fn name(&self) -> &'static str {
        self.0.as_str()
    }
}

impl fmt::Display for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Debug for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var({})", self.name())
    }
}

/// A labelled null, invented by a chase step for an existentially quantified
/// variable. Nulls are identified by a numeric id that is unique within a
/// chase run.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NullId(pub u64);

impl fmt::Display for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⊥{}", self.0)
    }
}

impl fmt::Debug for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Null({})", self.0)
    }
}

/// A term: a constant of **C**, a variable of **V**, or a labelled null of
/// **N** (the three disjoint countably infinite sets of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A constant.
    Const(Symbol),
    /// A variable.
    Var(Variable),
    /// A labelled null.
    Null(NullId),
}

impl Term {
    /// Convenience constructor for a constant term.
    pub fn constant(name: &str) -> Term {
        Term::Const(Symbol::new(name))
    }

    /// Convenience constructor for a variable term.
    pub fn variable(name: &str) -> Term {
        Term::Var(Variable::new(name))
    }

    /// `true` iff this term is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// `true` iff this term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// `true` iff this term is a labelled null.
    pub fn is_null(&self) -> bool {
        matches!(self, Term::Null(_))
    }

    /// The variable inside this term, if any.
    pub fn as_var(&self) -> Option<Variable> {
        match self {
            Term::Var(v) => Some(*v),
            _ => None,
        }
    }

    /// The constant inside this term, if any.
    pub fn as_const(&self) -> Option<Symbol> {
        match self {
            Term::Const(c) => Some(*c),
            _ => None,
        }
    }

    /// The null inside this term, if any.
    pub fn as_null(&self) -> Option<NullId> {
        match self {
            Term::Null(n) => Some(*n),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(c) => write!(f, "{c}"),
            Term::Var(v) => write!(f, "{v}"),
            Term::Null(n) => write!(f, "{n}"),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<Variable> for Term {
    fn from(v: Variable) -> Term {
        Term::Var(v)
    }
}

impl From<NullId> for Term {
    fn from(n: NullId) -> Term {
        Term::Null(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_predicates() {
        let c = Term::constant("a");
        let v = Term::variable("X");
        let n = Term::Null(NullId(3));
        assert!(c.is_const() && !c.is_var() && !c.is_null());
        assert!(v.is_var() && !v.is_const());
        assert!(n.is_null());
        assert_eq!(v.as_var(), Some(Variable::new("X")));
        assert_eq!(c.as_const(), Some(Symbol::new("a")));
        assert_eq!(n.as_null(), Some(NullId(3)));
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(Term::constant("a"), Term::constant("a"));
        assert_ne!(Term::constant("a"), Term::variable("a"));
        assert_ne!(Term::Null(NullId(1)), Term::Null(NullId(2)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::constant("a").to_string(), "a");
        assert_eq!(Term::variable("X").to_string(), "X");
        assert_eq!(Term::Null(NullId(7)).to_string(), "⊥7");
    }
}
