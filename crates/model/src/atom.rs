//! Relational atoms and predicates.

use crate::symbols::Symbol;
use crate::term::{NullId, Term, Variable};
use std::collections::BTreeSet;
use std::fmt;

/// A predicate name. Arity is determined by the atoms using the predicate and
/// validated by [`crate::program::Program`] / [`crate::database::Instance`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Predicate(pub Symbol);

impl Predicate {
    /// Creates a predicate with the given name.
    pub fn new(name: &str) -> Predicate {
        Predicate(Symbol::new(name))
    }

    /// The predicate name.
    pub fn name(&self) -> &'static str {
        self.0.as_str()
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Debug for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pred({})", self.name())
    }
}

impl From<&str> for Predicate {
    fn from(s: &str) -> Self {
        Predicate::new(s)
    }
}

/// An atom `R(t1, …, tn)`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// The predicate `R`.
    pub predicate: Predicate,
    /// The argument terms `t1, …, tn`.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Creates an atom from a predicate and terms.
    pub fn new(predicate: impl Into<Predicate>, terms: Vec<Term>) -> Atom {
        Atom {
            predicate: predicate.into(),
            terms,
        }
    }

    /// Creates a ground atom (a fact) from constant names.
    pub fn fact(predicate: &str, constants: &[&str]) -> Atom {
        Atom::new(
            predicate,
            constants.iter().map(|c| Term::constant(c)).collect(),
        )
    }

    /// The arity of the atom.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// `true` iff the atom contains only constants.
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(Term::is_const)
    }

    /// `true` iff the atom contains no variables (constants and nulls only).
    pub fn is_variable_free(&self) -> bool {
        self.terms.iter().all(|t| !t.is_var())
    }

    /// The set of variables occurring in the atom, in order of first
    /// occurrence.
    pub fn variables(&self) -> Vec<Variable> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if seen.insert(*v) {
                    out.push(*v);
                }
            }
        }
        out
    }

    /// The set of constants occurring in the atom.
    pub fn constants(&self) -> BTreeSet<Symbol> {
        self.terms.iter().filter_map(Term::as_const).collect()
    }

    /// The set of labelled nulls occurring in the atom.
    pub fn nulls(&self) -> BTreeSet<NullId> {
        self.terms.iter().filter_map(Term::as_null).collect()
    }

    /// `true` iff the given variable occurs in this atom.
    pub fn mentions_var(&self, v: Variable) -> bool {
        self.terms.iter().any(|t| t.as_var() == Some(v))
    }

    /// The positions (0-based argument indexes) at which `v` occurs.
    pub fn positions_of_var(&self, v: Variable) -> Vec<usize> {
        self.terms
            .iter()
            .enumerate()
            .filter_map(|(i, t)| (t.as_var() == Some(v)).then_some(i))
            .collect()
    }
}

/// Collects the distinct variables of a set of atoms, in order of first
/// occurrence (the paper's `var(·)` notation lifted to sets).
pub fn variables_of(atoms: &[Atom]) -> Vec<Variable> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for a in atoms {
        for t in &a.terms {
            if let Term::Var(v) = t {
                if seen.insert(*v) {
                    out.push(*v);
                }
            }
        }
    }
    out
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(s: &str, terms: Vec<Term>) -> Atom {
        Atom::new(s, terms)
    }

    #[test]
    fn groundness_and_arity() {
        let a = Atom::fact("edge", &["a", "b"]);
        assert!(a.is_ground());
        assert_eq!(a.arity(), 2);

        let b = atom("edge", vec![Term::constant("a"), Term::variable("X")]);
        assert!(!b.is_ground());
        assert!(!b.is_variable_free());

        let c = atom("edge", vec![Term::constant("a"), Term::Null(NullId(0))]);
        assert!(!c.is_ground());
        assert!(c.is_variable_free());
    }

    #[test]
    fn variable_extraction_preserves_first_occurrence_order() {
        let a = atom(
            "r",
            vec![
                Term::variable("Y"),
                Term::variable("X"),
                Term::variable("Y"),
            ],
        );
        assert_eq!(a.variables(), vec![Variable::new("Y"), Variable::new("X")]);
        assert_eq!(a.positions_of_var(Variable::new("Y")), vec![0, 2]);
        assert!(a.mentions_var(Variable::new("X")));
        assert!(!a.mentions_var(Variable::new("Z")));
    }

    #[test]
    fn variables_of_set() {
        let a = atom("r", vec![Term::variable("X"), Term::variable("Y")]);
        let b = atom("s", vec![Term::variable("Y"), Term::variable("Z")]);
        let vars = variables_of(&[a, b]);
        assert_eq!(
            vars,
            vec![Variable::new("X"), Variable::new("Y"), Variable::new("Z")]
        );
    }

    #[test]
    fn display_matches_expected_syntax() {
        let a = atom("edge", vec![Term::constant("a"), Term::variable("X")]);
        assert_eq!(a.to_string(), "edge(a, X)");
    }

    #[test]
    fn constants_and_nulls_are_collected() {
        let a = atom(
            "r",
            vec![
                Term::constant("a"),
                Term::Null(NullId(1)),
                Term::constant("b"),
            ],
        );
        assert_eq!(a.constants().len(), 2);
        assert_eq!(a.nulls().len(), 1);
    }
}
