//! Sharded parallel execution over a read-only [`Instance`] snapshot — the
//! shard/merge machinery shared by every fixpoint engine.
//!
//! # Model
//!
//! All engines in this workspace alternate two phases per round:
//!
//! 1. **Match (read-only, parallel).** The round's work is split into
//!    *tasks* — e.g. one task per (rule, differentiated body position, delta
//!    shard) in the semi-naive Datalog engine, or one task per TGD in the
//!    chase. Workers created with [`std::thread::scope`] pull task ids from a
//!    shared atomic cursor and run the [`crate::homomorphism`] join kernel
//!    **read-only** against the shared `&Instance` (which is [`Sync`]: the
//!    lazy column indexes sit behind per-column `RwLock`s). Each task streams
//!    its derivations into a private columnar [`DerivationBatch`], so workers
//!    never contend on anything but the task cursor and cold index builds.
//! 2. **Merge (sequential, deterministic).** Task results are re-ordered by
//!    task id and flushed with one batched dedup insert per relation
//!    ([`Instance::insert_batch`]). Because the task decomposition and the
//!    merge order depend only on the data — delta rows are hash-partitioned
//!    into a *fixed* number of shards ([`DELTA_SHARDS`]), never into
//!    "one shard per thread" — the row ids assigned during the merge are
//!    **bit-identical for every thread count**, including the sequential
//!    `threads = 1` path, which runs the same tasks inline without spawning.
//!
//! # Determinism contract
//!
//! Anything that influences results must be independent of the thread count:
//! the task list, each task's output (the kernel is deterministic over a
//! frozen instance), and the merge order. Thread count only decides which
//! worker happens to execute a task. This is what lets the cross-engine
//! property tests assert bit-identical instances and counter totals between
//! `threads = 1` and `threads = N`.

use crate::atom::Predicate;
use crate::database::{Instance, Relation, RowId};
use crate::error::ModelError;
use crate::fasthash::FxHashMap;
use crate::homomorphism::{JoinSpec, JoinStats, Matcher};
use crate::term::Term;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of shards a delta row range is hash-partitioned into. Fixed (and
/// deliberately *not* the thread count) so that the task decomposition — and
/// with it row-id assignment order — is identical for every thread count;
/// larger than any sane core count so work stealing can still balance skew.
pub const DELTA_SHARDS: usize = 32;

/// Resolves a requested thread count: `0` means "use all available
/// parallelism", anything else is taken literally. The result is at least 1.
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        requested
    }
}

/// Hash-partitions the delta row range `lo..hi` of `rel` into
/// [`DELTA_SHARDS`] row-id lists keyed on the row's content hash (its join
/// key). Row order inside each shard stays ascending, and the partition
/// depends only on the rows, never on the thread count.
pub fn shard_delta_rows(rel: &Relation, lo: RowId, hi: RowId) -> Vec<Vec<RowId>> {
    let mut shards: Vec<Vec<RowId>> = vec![Vec::new(); DELTA_SHARDS];
    for id in lo..hi {
        shards[rel.row_shard(id, DELTA_SHARDS)].push(id);
    }
    shards
}

/// Runs `num_tasks` tasks on up to `threads` workers (resolved through
/// [`effective_threads`]) and returns the results **in task order**.
///
/// Tasks are pulled from a shared atomic cursor, so load balances even when
/// task costs are skewed. With an effective thread count of 1 — or a single
/// task — the tasks run inline on the calling thread, with no spawn, no
/// atomics traffic and no re-sort: the sequential path is exactly "call
/// `task` in a loop".
pub fn run_tasks<R, F>(threads: usize, num_tasks: usize, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = effective_threads(threads).min(num_tasks.max(1));
    if threads <= 1 {
        return (0..num_tasks).map(task).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut collected: Vec<(usize, R)> = Vec::with_capacity(num_tasks);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let id = cursor.fetch_add(1, Ordering::Relaxed);
                        if id >= num_tasks {
                            break;
                        }
                        out.push((id, task(id)));
                    }
                    out
                })
            })
            .collect();
        for worker in workers {
            collected.extend(worker.join().expect("parallel worker panicked"));
        }
    });
    collected.sort_unstable_by_key(|&(id, _)| id);
    collected.into_iter().map(|(_, r)| r).collect()
}

/// One task's derivations for a single head predicate, parked in columnar
/// form (row-major term buffer) while the instance is immutably shared.
#[derive(Debug, Clone)]
pub struct DerivationBatch {
    /// Head predicate of the derivations.
    pub predicate: Predicate,
    /// Arity of the head predicate (0 for propositional heads).
    pub arity: usize,
    /// Row-major derived rows (`rows.len()` is a multiple of `arity`;
    /// empty for 0-ary heads).
    pub rows: Vec<Term>,
    /// Number of kernel matches; for 0-ary heads this alone says whether the
    /// fact was derived.
    pub matches: u64,
}

impl DerivationBatch {
    /// An empty batch for a head predicate.
    pub fn new(predicate: Predicate, arity: usize) -> DerivationBatch {
        DerivationBatch {
            predicate,
            arity,
            rows: Vec::new(),
            matches: 0,
        }
    }
}

/// Merges task batches into the instance **in iteration order** with one
/// batched dedup insert per relation, returning the number of newly inserted
/// atoms. Row ids are assigned per relation in batch order, which is exactly
/// the order a sequential run would have inserted them in.
pub fn merge_derivations(
    instance: &mut Instance,
    batches: impl IntoIterator<Item = DerivationBatch>,
) -> Result<usize, ModelError> {
    // Group per predicate preserving first-seen order; order across
    // relations does not affect row ids (ids are per relation), order within
    // a relation is batch order.
    let mut order: Vec<Predicate> = Vec::new();
    let mut merged: FxHashMap<Predicate, DerivationBatch> = FxHashMap::default();
    for batch in batches {
        match merged.entry(batch.predicate) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                order.push(batch.predicate);
                slot.insert(batch);
            }
            std::collections::hash_map::Entry::Occupied(mut slot) => {
                let existing = slot.get_mut();
                debug_assert_eq!(existing.arity, batch.arity);
                existing.rows.extend_from_slice(&batch.rows);
                existing.matches += batch.matches;
            }
        }
    }
    let mut inserted = 0;
    for predicate in order {
        let batch = merged.remove(&predicate).expect("grouped above");
        if batch.arity == 0 {
            if batch.matches > 0 && instance.insert_terms(predicate, &[])? {
                inserted += 1;
            }
        } else if !batch.rows.is_empty() {
            inserted += instance.insert_batch(predicate, batch.arity, &batch.rows)?;
        }
    }
    Ok(inserted)
}

/// Counts the matches of a compiled pattern by sharding the rows of the
/// pattern's first atom across workers: each task prematches atom 0 with one
/// shard's rows and enumerates the remaining atoms read-only. Every full
/// match binds atom 0 to exactly one row, so the shard counts partition the
/// match set. Each prematch attempt is counted as one probe, mirroring what
/// the sequential kernel would spend enumerating the driver atom.
pub fn sharded_match_count(spec: &JoinSpec, instance: &Instance, threads: usize) -> JoinStats {
    let mut total = JoinStats::default();
    if spec.num_atoms() == 0 {
        total.matches = 1; // the empty pattern has the identity homomorphism
        return total;
    }
    let predicate = spec.atom_predicate(0);
    let Some(rel) = instance
        .relation(predicate)
        .filter(|r| r.arity() == spec.atom_arity(0))
    else {
        return total;
    };
    let shards = shard_delta_rows(rel, 0, rel.row_count());
    let results = run_tasks(threads, shards.len(), |shard| {
        let mut matcher = Matcher::new(spec);
        let mut stats = JoinStats::default();
        for &id in &shards[shard] {
            stats.probes += 1;
            matcher.clear();
            if !matcher.prematch(0, rel.row(id)) {
                continue;
            }
            let run = matcher.for_each(instance, |_| ControlFlow::Continue(()));
            stats.probes += run.probes;
            stats.matches += run.matches;
        }
        stats
    });
    for stats in results {
        total.probes += stats.probes;
        total.matches += stats.matches;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::database::Database;
    use crate::term::Term;

    fn chain_db(n: usize) -> Instance {
        let mut db = Database::new();
        for i in 0..n {
            db.insert(Atom::fact(
                "edge",
                &[format!("n{i}").as_str(), format!("n{}", i + 1).as_str()],
            ))
            .unwrap();
        }
        db.into_instance()
    }

    #[test]
    fn run_tasks_returns_results_in_task_order() {
        for threads in [1, 2, 4] {
            let results = run_tasks(threads, 100, |id| id * 3);
            assert_eq!(results, (0..100).map(|id| id * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_tasks_handles_zero_tasks() {
        assert!(run_tasks::<usize, _>(4, 0, |id| id).is_empty());
    }

    #[test]
    fn shards_partition_the_delta_range() {
        let inst = chain_db(50);
        let rel = inst.relation(Predicate::new("edge")).unwrap();
        let shards = shard_delta_rows(rel, 10, 40);
        let mut all: Vec<RowId> = shards.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (10..40).collect::<Vec<RowId>>());
        // Within a shard, row order stays ascending.
        for shard in &shards {
            assert!(shard.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn merge_assigns_row_ids_in_batch_order() {
        let p = Predicate::new("out");
        let rows1 = vec![Term::constant("a"), Term::constant("b")];
        let rows2 = vec![
            Term::constant("a"),
            Term::constant("b"), // duplicate of batch 1's row
            Term::constant("c"),
            Term::constant("d"),
        ];
        let mut inst = Instance::new();
        let inserted = merge_derivations(
            &mut inst,
            [
                DerivationBatch {
                    predicate: p,
                    arity: 2,
                    rows: rows1,
                    matches: 1,
                },
                DerivationBatch {
                    predicate: p,
                    arity: 2,
                    rows: rows2,
                    matches: 2,
                },
            ],
        )
        .unwrap();
        assert_eq!(inserted, 2);
        let rel = inst.relation(p).unwrap();
        assert_eq!(rel.find_row(&[Term::constant("a"), Term::constant("b")]), Some(0));
        assert_eq!(rel.find_row(&[Term::constant("c"), Term::constant("d")]), Some(1));
    }

    #[test]
    fn merge_handles_zero_ary_heads() {
        let p = Predicate::new("goal");
        let mut inst = Instance::new();
        let inserted =
            merge_derivations(&mut inst, [DerivationBatch::new(p, 0)]).unwrap();
        assert_eq!(inserted, 0);
        let mut hit = DerivationBatch::new(p, 0);
        hit.matches = 3;
        assert_eq!(merge_derivations(&mut inst, [hit]).unwrap(), 1);
        assert_eq!(inst.len(), 1);
    }

    #[test]
    fn sharded_match_count_agrees_with_sequential_kernel() {
        let inst = chain_db(30);
        let v = Term::variable;
        let pattern = vec![
            Atom::new("edge", vec![v("X"), v("Y")]),
            Atom::new("edge", vec![v("Y"), v("Z")]),
        ];
        let spec = JoinSpec::compile(&pattern);
        let sequential = Matcher::new(&spec).for_each(&inst, |_| ControlFlow::Continue(()));
        for threads in [1, 2, 4] {
            let sharded = sharded_match_count(&spec, &inst, threads);
            assert_eq!(sharded.matches, sequential.matches);
        }
    }

    #[test]
    fn sharded_match_count_of_missing_relation_is_zero() {
        let inst = chain_db(3);
        let pattern = vec![Atom::new("zzz", vec![Term::variable("X")])];
        let spec = JoinSpec::compile(&pattern);
        assert_eq!(sharded_match_count(&spec, &inst, 2).matches, 0);
    }
}
