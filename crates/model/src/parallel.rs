//! Sharded parallel execution over a read-only [`Instance`] snapshot — the
//! shard/merge machinery shared by every fixpoint engine.
//!
//! # Model
//!
//! All engines in this workspace alternate two phases per round:
//!
//! 1. **Match (read-only, parallel).** The round's work is split into
//!    *tasks* — e.g. one task per (rule, differentiated body position, delta
//!    shard) in the semi-naive Datalog engine, or one task per TGD in the
//!    chase. Workers created with [`std::thread::scope`] pull task ids from a
//!    shared atomic cursor and run the [`crate::homomorphism`] join kernel
//!    **read-only** against the shared `&Instance` (which is [`Sync`]: the
//!    lazy column indexes sit behind per-column `RwLock`s). Each task streams
//!    its derivations into a private columnar [`DerivationBatch`], so workers
//!    never contend on anything but the task cursor and cold index builds.
//! 2. **Merge (sequential, deterministic).** Task results are re-ordered by
//!    task id and flushed with one batched dedup insert per relation
//!    ([`Instance::insert_batch`]). Because the task decomposition and the
//!    merge order depend only on the data — delta rows are hash-partitioned
//!    into a *fixed* number of shards ([`DELTA_SHARDS`]), never into
//!    "one shard per thread" — the row ids assigned during the merge are
//!    **bit-identical for every thread count**, including the sequential
//!    `threads = 1` path, which runs the same tasks inline without spawning.
//!
//! # Determinism contract
//!
//! Anything that influences results must be independent of the thread count:
//! the task list, each task's output (the kernel is deterministic over a
//! frozen instance), and the merge order. Thread count only decides which
//! worker happens to execute a task. This is what lets the cross-engine
//! property tests assert bit-identical instances and counter totals between
//! `threads = 1` and `threads = N`.

use crate::atom::Predicate;
use crate::budget::{BudgetExceeded, CancelCell, KernelBudget, QueryBudget};
use crate::database::{Instance, Relation, RowId};
use crate::error::ModelError;
use crate::fasthash::FxHashMap;
use crate::homomorphism::{JoinSpec, JoinStats, Matcher};
use crate::symbols::Symbol;
use crate::term::{PackedTerm, Variable};
use std::collections::BTreeSet;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of shards a delta row range is hash-partitioned into. Fixed (and
/// deliberately *not* the thread count) so that the task decomposition — and
/// with it row-id assignment order — is identical for every thread count;
/// larger than any sane core count so work stealing can still balance skew.
pub const DELTA_SHARDS: usize = 32;

/// Resolves a requested thread count: `0` means "use all available
/// parallelism", anything else is taken literally. The result is at least 1.
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        requested
    }
}

/// Hash-partitions the delta row range `lo..hi` of `rel` into
/// [`DELTA_SHARDS`] row-id lists keyed on the row's content hash (its join
/// key). Row order inside each shard stays ascending, and the partition
/// depends only on the rows, never on the thread count.
pub fn shard_delta_rows(rel: &Relation, lo: RowId, hi: RowId) -> Vec<Vec<RowId>> {
    let mut shards: Vec<Vec<RowId>> = vec![Vec::new(); DELTA_SHARDS];
    for id in lo..hi {
        shards[rel.row_shard(id, DELTA_SHARDS)].push(id);
    }
    shards
}

/// Runs `num_tasks` tasks on up to `threads` workers (resolved through
/// [`effective_threads`]) and returns the results **in task order**.
///
/// Tasks are pulled from a shared atomic cursor, so load balances even when
/// task costs are skewed. With an effective thread count of 1 — or a single
/// task — the tasks run inline on the calling thread, with no spawn, no
/// atomics traffic and no re-sort: the sequential path is exactly "call
/// `task` in a loop".
pub fn run_tasks<R, F>(threads: usize, num_tasks: usize, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = effective_threads(threads).min(num_tasks.max(1));
    if threads <= 1 {
        return (0..num_tasks).map(task).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut collected: Vec<(usize, R)> = Vec::with_capacity(num_tasks);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let id = cursor.fetch_add(1, Ordering::Relaxed);
                        if id >= num_tasks {
                            break;
                        }
                        out.push((id, task(id)));
                    }
                    out
                })
            })
            .collect();
        for worker in workers {
            collected.extend(worker.join().expect("parallel worker panicked"));
        }
    });
    collected.sort_unstable_by_key(|&(id, _)| id);
    collected.into_iter().map(|(_, r)| r).collect()
}

/// One task's derivations for a single head predicate, parked in columnar
/// **packed** form (row-major `PackedTerm` buffer) while the instance is
/// immutably shared.
#[derive(Debug, Clone)]
pub struct DerivationBatch {
    /// Head predicate of the derivations.
    pub predicate: Predicate,
    /// Arity of the head predicate (0 for propositional heads).
    pub arity: usize,
    /// Row-major derived packed rows (`rows.len()` is a multiple of `arity`;
    /// empty for 0-ary heads).
    pub rows: Vec<PackedTerm>,
    /// Number of kernel matches; for 0-ary heads this alone says whether the
    /// fact was derived.
    pub matches: u64,
}

impl DerivationBatch {
    /// An empty batch for a head predicate.
    pub fn new(predicate: Predicate, arity: usize) -> DerivationBatch {
        DerivationBatch {
            predicate,
            arity,
            rows: Vec::new(),
            matches: 0,
        }
    }

    /// Drops every row that is already present in `instance`, compacting the
    /// buffer in place, and returns how many rows were dropped.
    ///
    /// This is the **worker-side pre-dedup** that shrinks the sequential
    /// merge phase: `&Instance` is `Sync` and the dedup probe
    /// ([`crate::database::Relation::contains_packed_row`]) takes no locks,
    /// so each parallel task filters its own batch against the round's
    /// frozen instance before parking it. The merge then only re-dedups
    /// rows derived *within* the round (by this or a sibling task), never
    /// the bulk of re-derivations of old facts. Row-id assignment is
    /// unchanged: the dropped rows are exactly those the batched insert
    /// would have skipped as duplicates.
    pub fn prededup_against(&mut self, instance: &Instance) -> u64 {
        if self.arity == 0 || self.rows.is_empty() {
            return 0;
        }
        let Some(rel) = instance.relation(self.predicate) else {
            return 0;
        };
        let arity = self.arity;
        let mut write = 0;
        let mut dropped = 0u64;
        for read in (0..self.rows.len()).step_by(arity) {
            if rel.contains_packed_row(&self.rows[read..read + arity]) {
                dropped += 1;
            } else {
                self.rows.copy_within(read..read + arity, write);
                write += arity;
            }
        }
        self.rows.truncate(write);
        dropped
    }
}

/// Reusable scratch state for [`merge_derivations_with`]: the per-predicate
/// grouping map keeps its entries (and their row-buffer capacities) across
/// rounds, so a fixpoint engine's merge phase stops allocating after the
/// first round.
#[derive(Debug, Default)]
pub struct MergeScratch {
    /// Predicates touched this round, in first-seen batch order (one entry
    /// per predicate per round).
    order: Vec<Predicate>,
    /// Per-predicate accumulation buffers. Entries persist across rounds
    /// with cleared-but-capacitated row vectors; the `round` stamp marks the
    /// last round that touched an entry, so first-touch detection does not
    /// depend on the batch contents (tasks routinely park empty batches).
    merged: FxHashMap<Predicate, ScratchEntry>,
    /// Monotonic round counter for the first-touch stamps.
    round: u64,
}

#[derive(Debug)]
struct ScratchEntry {
    batch: DerivationBatch,
    round: u64,
}

impl MergeScratch {
    /// Creates empty scratch state.
    pub fn new() -> MergeScratch {
        MergeScratch::default()
    }
}

/// Merges task batches into the instance **in iteration order** with one
/// batched dedup insert per relation, returning the number of newly inserted
/// atoms. Row ids are assigned per relation in batch order, which is exactly
/// the order a sequential run would have inserted them in.
///
/// Convenience wrapper over [`merge_derivations_with`] with throwaway
/// scratch; engines that merge every round hold a [`MergeScratch`] instead.
pub fn merge_derivations(
    instance: &mut Instance,
    batches: impl IntoIterator<Item = DerivationBatch>,
) -> Result<usize, ModelError> {
    merge_derivations_with(&mut MergeScratch::new(), instance, batches)
}

/// [`merge_derivations`] with caller-owned scratch buffers that are reused
/// across rounds instead of reallocated per round.
pub fn merge_derivations_with(
    scratch: &mut MergeScratch,
    instance: &mut Instance,
    batches: impl IntoIterator<Item = DerivationBatch>,
) -> Result<usize, ModelError> {
    // Group per predicate preserving first-seen order; order across
    // relations does not affect row ids (ids are per relation), order within
    // a relation is batch order.
    scratch.order.clear();
    scratch.round += 1;
    let round = scratch.round;
    for batch in batches {
        match scratch.merged.entry(batch.predicate) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                scratch.order.push(batch.predicate);
                slot.insert(ScratchEntry { batch, round });
            }
            std::collections::hash_map::Entry::Occupied(mut slot) => {
                let existing = slot.get_mut();
                debug_assert_eq!(existing.batch.arity, batch.arity);
                // First batch of this round for a retained entry: mark the
                // predicate as touched exactly once.
                if existing.round != round {
                    existing.round = round;
                    scratch.order.push(batch.predicate);
                }
                existing.batch.rows.extend_from_slice(&batch.rows);
                existing.batch.matches += batch.matches;
            }
        }
    }
    let mut inserted = 0;
    let mut failure: Option<ModelError> = None;
    for predicate in &scratch.order {
        let batch = &mut scratch
            .merged
            .get_mut(predicate)
            .expect("grouped above")
            .batch;
        if failure.is_none() {
            let result = if batch.arity == 0 {
                if batch.matches > 0 {
                    instance.insert_terms(*predicate, &[]).map(usize::from)
                } else {
                    Ok(0)
                }
            } else if !batch.rows.is_empty() {
                instance.insert_batch(*predicate, batch.arity, &batch.rows)
            } else {
                Ok(0)
            };
            match result {
                Ok(n) => inserted += n,
                Err(e) => failure = Some(e),
            }
        }
        // Reset for the next round (even after a failure, so the scratch
        // never carries stale rows), keeping the allocation.
        batch.rows.clear();
        batch.matches = 0;
    }
    match failure {
        Some(e) => Err(e),
        None => Ok(inserted),
    }
}

/// Counts the matches of a compiled pattern by sharding the rows of the
/// pattern's first atom across workers: each task prematches atom 0 with one
/// shard's rows and enumerates the remaining atoms read-only. Every full
/// match binds atom 0 to exactly one row, so the shard counts partition the
/// match set. Each prematch attempt is counted as one probe, mirroring what
/// the sequential kernel would spend enumerating the driver atom.
pub fn sharded_match_count(spec: &JoinSpec, instance: &Instance, threads: usize) -> JoinStats {
    let mut total = JoinStats::default();
    if spec.num_atoms() == 0 {
        total.matches = 1; // the empty pattern has the identity homomorphism
        return total;
    }
    let predicate = spec.atom_predicate(0);
    let Some(rel) = instance
        .relation(predicate)
        .filter(|r| r.arity() == spec.atom_arity(0))
    else {
        return total;
    };
    let shards = shard_delta_rows(rel, 0, rel.row_count());
    let plan = spec.plan(instance, &[0]);
    let results = run_tasks(threads, shards.len(), |shard| {
        let mut matcher = Matcher::new(spec);
        matcher.set_plan(Some(&plan));
        let mut stats = JoinStats::default();
        for &id in &shards[shard] {
            stats.probes += 1;
            matcher.clear();
            if !matcher.prematch(0, rel.row(id)) {
                continue;
            }
            stats.absorb(matcher.for_each(instance, |_| ControlFlow::Continue(())));
        }
        stats
    });
    for stats in results {
        total.absorb(stats);
    }
    total
}

/// Evaluates a compiled conjunctive-query pattern and collects the **answer
/// tuples** (constants bound to `output`, certain-answer semantics: tuples
/// touching a null or an unbound variable are dropped) by sharding the rows
/// of the pattern's first atom across workers, exactly like
/// [`sharded_match_count`]. Each task probes with the shared build/probe
/// plan and collects into a private set; the union is returned. Answers are
/// a set, so the result is independent of both enumeration order and thread
/// count.
pub fn sharded_query_answers(
    spec: &JoinSpec,
    output: &[Variable],
    instance: &Instance,
    threads: usize,
) -> BTreeSet<Vec<Symbol>> {
    sharded_query_answers_budgeted(spec, output, instance, threads, &QueryBudget::unlimited())
        .expect("an unlimited budget can never be exceeded")
}

/// [`sharded_query_answers`] under a [`QueryBudget`]: the same sharded
/// evaluation, but every worker carries a [`KernelBudget`] over one shared
/// [`CancelCell`], polled per driver row and (inside the kernel) every
/// [`crate::BUDGET_POLL_INTERVAL`] probes. The row cap counts tuples as
/// workers materialise them (per-worker distinct, so cross-shard duplicates
/// may count twice — the cap is a resource bound that can only trip *early*;
/// it is exact on the single-shard path). A tripped budget returns
/// `Err(reason)` — never a partial answer set passed off as complete. With
/// an unlimited budget the result is bit-identical to the unbudgeted path.
pub fn sharded_query_answers_budgeted(
    spec: &JoinSpec,
    output: &[Variable],
    instance: &Instance,
    threads: usize,
    budget: &QueryBudget,
) -> Result<BTreeSet<Vec<Symbol>>, BudgetExceeded> {
    let mut answers = BTreeSet::new();
    if spec.num_atoms() == 0 {
        // The empty pattern has the identity homomorphism; with no output
        // variables that is the single empty answer tuple.
        if output.is_empty() {
            answers.insert(Vec::new());
        }
        return Ok(answers);
    }
    let predicate = spec.atom_predicate(0);
    let Some(rel) = instance
        .relation(predicate)
        .filter(|r| r.arity() == spec.atom_arity(0))
    else {
        return Ok(answers);
    };
    // Output slots resolve once; an output variable outside the pattern can
    // never be bound, so no tuple is certain.
    let mut slots = Vec::with_capacity(output.len());
    for v in output {
        match spec.slot_of(*v) {
            Some(s) => slots.push(s),
            None => return Ok(answers),
        }
    }
    let budgeted = !budget.is_unlimited();
    let cell = CancelCell::new();
    let deadline = budget.deadline();
    let max_rows = budget.max_rows;
    let rows_collected = AtomicUsize::new(0);
    let shards = shard_delta_rows(rel, 0, rel.row_count());
    let plan = spec.plan(instance, &[0]);
    let results = run_tasks(threads, shards.len(), |shard| {
        let kernel = KernelBudget::new(&cell, deadline);
        let mut matcher = Matcher::new(spec);
        matcher.set_plan(Some(&plan));
        if budgeted {
            matcher.set_budget(Some(kernel));
        }
        let mut found: BTreeSet<Vec<Symbol>> = BTreeSet::new();
        for &id in &shards[shard] {
            if budgeted && kernel.poll() {
                break;
            }
            matcher.clear();
            if !matcher.prematch(0, rel.row(id)) {
                continue;
            }
            matcher.for_each(instance, |bindings| {
                let mut tuple = Vec::with_capacity(slots.len());
                for &s in &slots {
                    match bindings.packed_slot(s).and_then(PackedTerm::as_const) {
                        Some(c) => tuple.push(c),
                        // Null or unbound: not a certain answer.
                        None => return ControlFlow::Continue(()),
                    }
                }
                if found.insert(tuple) {
                    if let Some(cap) = max_rows {
                        if rows_collected.fetch_add(1, Ordering::Relaxed) + 1 > cap {
                            cell.cancel(BudgetExceeded::RowLimit);
                            return ControlFlow::Break(());
                        }
                    }
                }
                ControlFlow::Continue(())
            });
        }
        found
    });
    if let Some(reason) = cell.get() {
        return Err(reason);
    }
    for found in results {
        answers.extend(found);
    }
    Ok(answers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::database::Database;
    use crate::term::Term;

    fn chain_db(n: usize) -> Instance {
        let mut db = Database::new();
        for i in 0..n {
            db.insert(Atom::fact(
                "edge",
                &[format!("n{i}").as_str(), format!("n{}", i + 1).as_str()],
            ))
            .unwrap();
        }
        db.into_instance()
    }

    #[test]
    fn run_tasks_returns_results_in_task_order() {
        for threads in [1, 2, 4] {
            let results = run_tasks(threads, 100, |id| id * 3);
            assert_eq!(results, (0..100).map(|id| id * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_tasks_handles_zero_tasks() {
        assert!(run_tasks::<usize, _>(4, 0, |id| id).is_empty());
    }

    #[test]
    fn shards_partition_the_delta_range() {
        let inst = chain_db(50);
        let rel = inst.relation(Predicate::new("edge")).unwrap();
        let shards = shard_delta_rows(rel, 10, 40);
        let mut all: Vec<RowId> = shards.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (10..40).collect::<Vec<RowId>>());
        // Within a shard, row order stays ascending.
        for shard in &shards {
            assert!(shard.windows(2).all(|w| w[0] < w[1]));
        }
    }

    fn pk(name: &str) -> PackedTerm {
        PackedTerm::pack(Term::constant(name)).expect("constant packs")
    }

    #[test]
    fn merge_assigns_row_ids_in_batch_order() {
        let p = Predicate::new("out");
        let rows1 = vec![pk("a"), pk("b")];
        let rows2 = vec![
            pk("a"),
            pk("b"), // duplicate of batch 1's row
            pk("c"),
            pk("d"),
        ];
        let mut inst = Instance::new();
        let inserted = merge_derivations(
            &mut inst,
            [
                DerivationBatch {
                    predicate: p,
                    arity: 2,
                    rows: rows1,
                    matches: 1,
                },
                DerivationBatch {
                    predicate: p,
                    arity: 2,
                    rows: rows2,
                    matches: 2,
                },
            ],
        )
        .unwrap();
        assert_eq!(inserted, 2);
        let rel = inst.relation(p).unwrap();
        assert_eq!(
            rel.find_row(&[Term::constant("a"), Term::constant("b")]),
            Some(0)
        );
        assert_eq!(
            rel.find_row(&[Term::constant("c"), Term::constant("d")]),
            Some(1)
        );
    }

    #[test]
    fn merge_handles_zero_ary_heads() {
        let p = Predicate::new("goal");
        let mut inst = Instance::new();
        let inserted = merge_derivations(&mut inst, [DerivationBatch::new(p, 0)]).unwrap();
        assert_eq!(inserted, 0);
        let mut hit = DerivationBatch::new(p, 0);
        hit.matches = 3;
        assert_eq!(merge_derivations(&mut inst, [hit]).unwrap(), 1);
        assert_eq!(inst.len(), 1);
    }

    #[test]
    fn prededup_drops_exactly_the_frozen_rows() {
        let mut inst = Instance::new();
        inst.insert(Atom::fact("out", &["a", "b"])).unwrap();
        inst.insert(Atom::fact("out", &["c", "d"])).unwrap();
        let mut batch = DerivationBatch {
            predicate: Predicate::new("out"),
            arity: 2,
            rows: vec![
                pk("a"),
                pk("b"), // frozen duplicate → dropped
                pk("x"),
                pk("y"), // novel → kept
                pk("c"),
                pk("d"), // frozen duplicate → dropped
                pk("x"),
                pk("y"), // novel duplicate *within* the round → kept for merge
            ],
            matches: 4,
        };
        assert_eq!(batch.prededup_against(&inst), 2);
        assert_eq!(batch.rows, vec![pk("x"), pk("y"), pk("x"), pk("y")]);
        assert_eq!(
            batch.matches, 4,
            "pre-dedup never touches the match counter"
        );
        // Merging the filtered batch assigns the same ids a full merge would.
        let inserted = merge_derivations(&mut inst, [batch]).unwrap();
        assert_eq!(inserted, 1);
        let rel = inst.relation(Predicate::new("out")).unwrap();
        assert_eq!(
            rel.find_row(&[Term::constant("x"), Term::constant("y")]),
            Some(2)
        );
    }

    #[test]
    fn prededup_of_unknown_predicate_keeps_everything() {
        let inst = Instance::new();
        let mut batch = DerivationBatch {
            predicate: Predicate::new("fresh"),
            arity: 1,
            rows: vec![pk("a")],
            matches: 1,
        };
        assert_eq!(batch.prededup_against(&inst), 0);
        assert_eq!(batch.rows.len(), 1);
    }

    #[test]
    fn merge_scratch_is_reusable_across_rounds() {
        let p = Predicate::new("out");
        let mut inst = Instance::new();
        let mut scratch = MergeScratch::new();
        let round = |rows: Vec<PackedTerm>| DerivationBatch {
            predicate: p,
            arity: 1,
            rows,
            matches: 0,
        };
        assert_eq!(
            merge_derivations_with(&mut scratch, &mut inst, [round(vec![pk("a")])]).unwrap(),
            1
        );
        // Second round reuses the retained entry; stale rows must not leak.
        assert_eq!(
            merge_derivations_with(
                &mut scratch,
                &mut inst,
                [round(vec![pk("a"), pk("b")]), round(vec![pk("c")])]
            )
            .unwrap(),
            2
        );
        // An empty round flushes nothing.
        assert_eq!(
            merge_derivations_with(&mut scratch, &mut inst, std::iter::empty()).unwrap(),
            0
        );
        assert_eq!(inst.len(), 3);
        let rel = inst.relation(p).unwrap();
        assert_eq!(rel.find_row(&[Term::constant("b")]), Some(1));
        assert_eq!(rel.find_row(&[Term::constant("c")]), Some(2));
    }

    #[test]
    fn sharded_query_answers_match_sequential_evaluation() {
        let inst = chain_db(25);
        let v = Term::variable;
        let pattern = vec![
            Atom::new("edge", vec![v("X"), v("Y")]),
            Atom::new("edge", vec![v("Y"), v("Z")]),
        ];
        let spec = JoinSpec::compile(&pattern);
        let output = [Variable::new("X"), Variable::new("Z")];
        let sequential = sharded_query_answers(&spec, &output, &inst, 1);
        assert_eq!(sequential.len(), 24); // 2-hop pairs on a 25-edge chain
        for threads in [2, 4, 8] {
            assert_eq!(
                sharded_query_answers(&spec, &output, &inst, threads),
                sequential
            );
        }
    }

    #[test]
    fn budgeted_query_answers_match_unbudgeted_under_an_unlimited_budget() {
        let inst = chain_db(25);
        let v = Term::variable;
        let pattern = vec![
            Atom::new("edge", vec![v("X"), v("Y")]),
            Atom::new("edge", vec![v("Y"), v("Z")]),
        ];
        let spec = JoinSpec::compile(&pattern);
        let output = [Variable::new("X"), Variable::new("Z")];
        let reference = sharded_query_answers(&spec, &output, &inst, 4);
        for threads in [1, 2, 4] {
            let budgeted = sharded_query_answers_budgeted(
                &spec,
                &output,
                &inst,
                threads,
                &QueryBudget::unlimited(),
            );
            assert_eq!(budgeted, Ok(reference.clone()));
            // A generous budget that never trips is equally invisible.
            let roomy = QueryBudget {
                timeout: Some(std::time::Duration::from_secs(3600)),
                max_rows: Some(1_000_000),
            };
            let under_roomy =
                sharded_query_answers_budgeted(&spec, &output, &inst, threads, &roomy);
            assert_eq!(under_roomy, Ok(reference.clone()));
        }
    }

    #[test]
    fn an_expired_deadline_cancels_instead_of_answering() {
        let inst = chain_db(25);
        let v = Term::variable;
        let pattern = vec![Atom::new("edge", vec![v("X"), v("Y")])];
        let spec = JoinSpec::compile(&pattern);
        let output = [Variable::new("X")];
        let expired = QueryBudget {
            timeout: Some(std::time::Duration::ZERO),
            max_rows: None,
        };
        for threads in [1, 4] {
            let result = sharded_query_answers_budgeted(&spec, &output, &inst, threads, &expired);
            assert_eq!(result, Err(BudgetExceeded::Deadline));
        }
    }

    #[test]
    fn a_row_cap_trips_on_large_answer_sets_and_admits_small_ones() {
        // edge × edge cross product: 40 × 40 = 1600 binding pairs, 40
        // distinct (X, Z) projections per variable — plenty to trip a cap.
        let inst = chain_db(40);
        let v = Term::variable;
        let pattern = vec![
            Atom::new("edge", vec![v("X"), v("_y")]),
            Atom::new("edge", vec![v("Z"), v("_w")]),
        ];
        let spec = JoinSpec::compile(&pattern);
        let output = [Variable::new("X"), Variable::new("Z")];
        let capped = QueryBudget {
            timeout: None,
            max_rows: Some(10),
        };
        for threads in [1, 4] {
            let result = sharded_query_answers_budgeted(&spec, &output, &inst, threads, &capped);
            assert_eq!(result, Err(BudgetExceeded::RowLimit));
        }
        // The full answer set (1600 tuples) fits under a cap of 1600 on the
        // exact single-shard path.
        let exact = QueryBudget {
            timeout: None,
            max_rows: Some(1600),
        };
        let full = sharded_query_answers_budgeted(&spec, &output, &inst, 1, &exact).unwrap();
        assert_eq!(full.len(), 1600);
    }

    #[test]
    fn sharded_match_count_agrees_with_sequential_kernel() {
        let inst = chain_db(30);
        let v = Term::variable;
        let pattern = vec![
            Atom::new("edge", vec![v("X"), v("Y")]),
            Atom::new("edge", vec![v("Y"), v("Z")]),
        ];
        let spec = JoinSpec::compile(&pattern);
        let sequential = Matcher::new(&spec).for_each(&inst, |_| ControlFlow::Continue(()));
        for threads in [1, 2, 4] {
            let sharded = sharded_match_count(&spec, &inst, threads);
            assert_eq!(sharded.matches, sequential.matches);
        }
    }

    #[test]
    fn sharded_match_count_of_missing_relation_is_zero() {
        let inst = chain_db(3);
        let pattern = vec![Atom::new("zzz", vec![Term::variable("X")])];
        let spec = JoinSpec::compile(&pattern);
        assert_eq!(sharded_match_count(&spec, &inst, 2).matches, 0);
    }
}
