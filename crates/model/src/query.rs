//! Conjunctive queries in the rule-based syntax of the paper:
//! `Q(x̄) ← R₁(z̄₁), …, Rₙ(z̄ₙ)`.

use crate::atom::{variables_of, Atom};
use crate::budget::{BudgetExceeded, QueryBudget};
use crate::database::Instance;
use crate::error::ModelError;
use crate::homomorphism::{exists_homomorphism, JoinSpec, Matcher};
use crate::substitution::Substitution;
use crate::symbols::Symbol;
use crate::term::{Term, Variable};
use std::collections::BTreeSet;
use std::fmt;
use std::ops::ControlFlow;

/// A conjunctive query with output (free) variables `output` and body
/// `atoms`. A Boolean CQ has no output variables.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ConjunctiveQuery {
    /// The output variables x̄ (answer tuple positions, in order).
    pub output: Vec<Variable>,
    /// The body atoms.
    pub atoms: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Creates a CQ, validating that every output variable occurs in the body
    /// and that body atoms contain no nulls.
    pub fn new(output: Vec<Variable>, atoms: Vec<Atom>) -> Result<ConjunctiveQuery, ModelError> {
        let q = ConjunctiveQuery { output, atoms };
        q.validate()?;
        Ok(q)
    }

    /// Creates a CQ without validation.
    pub fn new_unchecked(output: Vec<Variable>, atoms: Vec<Atom>) -> ConjunctiveQuery {
        ConjunctiveQuery { output, atoms }
    }

    /// Creates a Boolean CQ from body atoms.
    pub fn boolean(atoms: Vec<Atom>) -> Result<ConjunctiveQuery, ModelError> {
        ConjunctiveQuery::new(Vec::new(), atoms)
    }

    /// Structural validation.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.atoms.is_empty() {
            return Err(ModelError::InvalidQuery("empty body".into()));
        }
        let body_vars: BTreeSet<Variable> = variables_of(&self.atoms).into_iter().collect();
        for v in &self.output {
            if !body_vars.contains(v) {
                return Err(ModelError::InvalidQuery(format!(
                    "output variable {v} does not occur in the body"
                )));
            }
        }
        for atom in &self.atoms {
            if atom.terms.iter().any(Term::is_null) {
                return Err(ModelError::InvalidQuery(format!(
                    "query atom {atom} contains a labelled null"
                )));
            }
        }
        Ok(())
    }

    /// `true` iff the query has no output variables.
    pub fn is_boolean(&self) -> bool {
        self.output.is_empty()
    }

    /// The number of body atoms (the paper's `|q|`).
    pub fn size(&self) -> usize {
        self.atoms.len()
    }

    /// All variables occurring in the body, in order of first occurrence.
    pub fn variables(&self) -> Vec<Variable> {
        variables_of(&self.atoms)
    }

    /// The non-output (existential) variables of the query.
    pub fn existential_variables(&self) -> Vec<Variable> {
        let out: BTreeSet<Variable> = self.output.iter().copied().collect();
        self.variables()
            .into_iter()
            .filter(|v| !out.contains(v))
            .collect()
    }

    /// Evaluates the query over an instance: the set of tuples `h(x̄)` for
    /// homomorphisms `h` from the body into the instance **such that the
    /// answer tuple contains only constants** (certain-answer semantics never
    /// returns nulls). Sequential; see
    /// [`ConjunctiveQuery::evaluate_with_threads`] for the sharded kernel.
    pub fn evaluate(&self, instance: &Instance) -> BTreeSet<Vec<Symbol>> {
        let spec = JoinSpec::compile(&self.atoms);
        // A cold CQ still benefits from the static build/probe plan: the
        // body is joined once, but every candidate row of the driver atom
        // re-plans in the adaptive kernel, and for CQ-shaped patterns the
        // plan is decided by the same statistics every time.
        let plan = spec.plan(instance, &[]);
        let mut matcher = Matcher::new(&spec);
        matcher.set_plan(Some(&plan));
        let mut answers = BTreeSet::new();
        matcher.for_each(instance, |bindings| {
            let mut tuple = Vec::with_capacity(self.output.len());
            for v in &self.output {
                match bindings.get(*v) {
                    Some(Term::Const(c)) => tuple.push(c),
                    // Output mapped to a null (or unbound): not a certain answer.
                    _ => return ControlFlow::Continue(()),
                }
            }
            answers.insert(tuple);
            ControlFlow::Continue(())
        });
        answers
    }

    /// Evaluates the query with the sharded parallel kernel: the driver
    /// atom's rows are hash-partitioned across `threads` workers
    /// ([`crate::parallel::sharded_query_answers`]), each joining the rest
    /// of the body read-only with a shared build/probe plan. Answer sets are
    /// identical for every thread count; `threads <= 1` uses the sequential
    /// path.
    pub fn evaluate_with_threads(
        &self,
        instance: &Instance,
        threads: usize,
    ) -> BTreeSet<Vec<Symbol>> {
        if crate::parallel::effective_threads(threads) <= 1 {
            return self.evaluate(instance);
        }
        let spec = JoinSpec::compile(&self.atoms);
        crate::parallel::sharded_query_answers(&spec, &self.output, instance, threads)
    }

    /// Evaluates the query under a [`QueryBudget`]: the sharded kernel with
    /// cooperative cancellation threaded into every worker (deadline checks
    /// every [`crate::BUDGET_POLL_INTERVAL`] probes, a shared row-count cap
    /// across shards). Returns `Err` with the exceeded limit instead of a
    /// partial answer set. An unlimited budget is bit-identical to
    /// [`ConjunctiveQuery::evaluate_with_threads`].
    pub fn evaluate_budgeted(
        &self,
        instance: &Instance,
        threads: usize,
        budget: &QueryBudget,
    ) -> Result<BTreeSet<Vec<Symbol>>, BudgetExceeded> {
        let spec = JoinSpec::compile(&self.atoms);
        crate::parallel::sharded_query_answers_budgeted(
            &spec,
            &self.output,
            instance,
            threads,
            budget,
        )
    }

    /// Evaluates a Boolean query: `true` iff some homomorphism exists whose
    /// answer tuple (empty here) is constant-free, i.e. iff the body matches.
    pub fn holds_in(&self, instance: &Instance) -> bool {
        if self.is_boolean() {
            exists_homomorphism(&self.atoms, instance, &Substitution::new())
        } else {
            !self.evaluate(instance).is_empty()
        }
    }

    /// Instantiates the output variables with the constants of `tuple`,
    /// producing the Boolean CQ `q(c̄)` used as the first step of the
    /// decision-problem algorithms. Returns `None` if the arity differs.
    pub fn instantiate(&self, tuple: &[Symbol]) -> Option<ConjunctiveQuery> {
        if tuple.len() != self.output.len() {
            return None;
        }
        let mut subst = Substitution::new();
        for (v, c) in self.output.iter().zip(tuple.iter()) {
            subst.bind_var(*v, Term::Const(*c));
        }
        Some(ConjunctiveQuery {
            output: Vec::new(),
            atoms: subst.apply_atoms(&self.atoms),
        })
    }

    /// Applies a substitution to the body, keeping output variables that are
    /// still variables after the substitution.
    pub fn apply(&self, subst: &Substitution) -> ConjunctiveQuery {
        let output = self
            .output
            .iter()
            .filter_map(|v| subst.apply_term(&Term::Var(*v)).as_var())
            .collect();
        ConjunctiveQuery {
            output,
            atoms: subst.apply_atoms(&self.atoms),
        }
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let out: Vec<String> = self.output.iter().map(|v| v.to_string()).collect();
        let body: Vec<String> = self.atoms.iter().map(|a| a.to_string()).collect();
        write!(f, "Q({}) :- {}.", out.join(", "), body.join(", "))
    }
}

impl fmt::Debug for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;

    fn var(n: &str) -> Term {
        Term::variable(n)
    }

    fn v(n: &str) -> Variable {
        Variable::new(n)
    }

    fn chain_instance() -> Instance {
        Database::from_facts([
            ("edge", vec!["a", "b"]),
            ("edge", vec!["b", "c"]),
            ("colour", vec!["b", "red"]),
        ])
        .unwrap()
        .into_instance()
    }

    #[test]
    fn evaluation_returns_answer_tuples() {
        let q = ConjunctiveQuery::new(
            vec![v("X"), v("Z")],
            vec![
                Atom::new("edge", vec![var("X"), var("Y")]),
                Atom::new("edge", vec![var("Y"), var("Z")]),
            ],
        )
        .unwrap();
        let answers = q.evaluate(&chain_instance());
        assert_eq!(answers.len(), 1);
        assert!(answers.contains(&vec![Symbol::new("a"), Symbol::new("c")]));
    }

    #[test]
    fn boolean_queries_report_satisfiability() {
        let yes = ConjunctiveQuery::boolean(vec![Atom::new(
            "colour",
            vec![var("X"), Term::constant("red")],
        )])
        .unwrap();
        let no = ConjunctiveQuery::boolean(vec![Atom::new(
            "colour",
            vec![var("X"), Term::constant("blue")],
        )])
        .unwrap();
        let inst = chain_instance();
        assert!(yes.holds_in(&inst));
        assert!(!no.holds_in(&inst));
    }

    #[test]
    fn output_variables_must_occur_in_body() {
        let bad = ConjunctiveQuery::new(
            vec![v("Missing")],
            vec![Atom::new("edge", vec![var("X"), var("Y")])],
        );
        assert!(bad.is_err());
    }

    #[test]
    fn answers_with_nulls_are_dropped() {
        use crate::term::NullId;
        let mut inst = Instance::new();
        inst.insert(Atom::new(
            "r",
            vec![Term::constant("a"), Term::Null(NullId(0))],
        ))
        .unwrap();
        let q = ConjunctiveQuery::new(vec![v("Y")], vec![Atom::new("r", vec![var("X"), var("Y")])])
            .unwrap();
        assert!(q.evaluate(&inst).is_empty());
        // But the Boolean projection of the same query holds.
        let b = ConjunctiveQuery::boolean(vec![Atom::new("r", vec![var("X"), var("Y")])]).unwrap();
        assert!(b.holds_in(&inst));
    }

    #[test]
    fn instantiate_freezes_output_variables() {
        let q = ConjunctiveQuery::new(
            vec![v("X")],
            vec![Atom::new("edge", vec![var("X"), var("Y")])],
        )
        .unwrap();
        let frozen = q.instantiate(&[Symbol::new("a")]).unwrap();
        assert!(frozen.is_boolean());
        assert_eq!(frozen.atoms[0].to_string(), "edge(a, Y)");
        assert!(q
            .instantiate(&[Symbol::new("a"), Symbol::new("b")])
            .is_none());
    }

    #[test]
    fn existential_variables_exclude_output() {
        let q = ConjunctiveQuery::new(
            vec![v("X")],
            vec![Atom::new("edge", vec![var("X"), var("Y")])],
        )
        .unwrap();
        assert_eq!(q.existential_variables(), vec![v("Y")]);
    }
}
