//! Homomorphisms from sets of atoms into instances.
//!
//! A homomorphism is a substitution that is the identity on constants and maps
//! every atom of the source set onto an atom of the target instance. This is
//! exactly conjunctive-query evaluation, and it is used pervasively: CQ
//! evaluation over the chase, trigger detection in the chase, the
//! "match-and-drop" step of the proof-tree search, and the leaves of chase
//! trees.
//!
//! The search is a straightforward backtracking join that picks the next atom
//! with the most bound arguments first and uses the instance's position index
//! to enumerate candidates.

use crate::atom::Atom;
use crate::database::Instance;
use crate::substitution::Substitution;
use crate::term::Term;

/// Options for the homomorphism search.
#[derive(Clone, Copy, Debug)]
pub struct HomSearch {
    /// Stop after this many homomorphisms have been found (`usize::MAX` for
    /// all of them).
    pub limit: usize,
}

impl Default for HomSearch {
    fn default() -> Self {
        HomSearch { limit: usize::MAX }
    }
}

impl HomSearch {
    /// A search that stops after the first homomorphism.
    pub fn first() -> HomSearch {
        HomSearch { limit: 1 }
    }

    /// A search that enumerates every homomorphism.
    pub fn all() -> HomSearch {
        HomSearch::default()
    }
}

/// Finds homomorphisms from `atoms` into `target`, extending the partial
/// substitution `seed`. Every returned substitution `h` satisfies
/// `h(atoms) ⊆ target` and agrees with `seed`.
pub fn homomorphisms(
    atoms: &[Atom],
    target: &Instance,
    seed: &Substitution,
    options: HomSearch,
) -> Vec<Substitution> {
    let mut results = Vec::new();
    if options.limit == 0 {
        return results;
    }
    let mut remaining: Vec<&Atom> = atoms.iter().collect();
    let mut current = seed.clone();
    search(&mut remaining, target, &mut current, &mut results, options.limit);
    results
}

/// Finds one homomorphism from `atoms` into `target` extending `seed`, if any.
pub fn find_homomorphism(
    atoms: &[Atom],
    target: &Instance,
    seed: &Substitution,
) -> Option<Substitution> {
    homomorphisms(atoms, target, seed, HomSearch::first())
        .into_iter()
        .next()
}

/// `true` iff some homomorphism from `atoms` into `target` extends `seed`.
pub fn exists_homomorphism(atoms: &[Atom], target: &Instance, seed: &Substitution) -> bool {
    find_homomorphism(atoms, target, seed).is_some()
}

fn search(
    remaining: &mut Vec<&Atom>,
    target: &Instance,
    current: &mut Substitution,
    results: &mut Vec<Substitution>,
    limit: usize,
) {
    if results.len() >= limit {
        return;
    }
    if remaining.is_empty() {
        results.push(current.clone());
        return;
    }
    // Pick the atom with the most bound (non-variable after substitution)
    // arguments: it has the fewest candidate matches.
    let (best_idx, _) = remaining
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let bound = a
                .terms
                .iter()
                .filter(|t| !current.apply_term(t).is_var())
                .count();
            (i, bound)
        })
        .max_by_key(|&(_, bound)| bound)
        .expect("remaining is non-empty");
    let atom = remaining.swap_remove(best_idx);
    let partial = current.apply_atom(atom);

    // Use the position index on the first bound argument, otherwise scan the
    // whole relation.
    let candidates: Vec<&Atom> = match partial
        .terms
        .iter()
        .enumerate()
        .find(|(_, t)| !t.is_var())
    {
        Some((pos, term)) => target.atoms_matching(partial.predicate, pos, *term),
        None => target.atoms_with_predicate(partial.predicate).iter().collect(),
    };

    'candidates: for candidate in candidates {
        if candidate.arity() != partial.arity() {
            continue;
        }
        let mut extension = Substitution::new();
        for (pattern, value) in partial.terms.iter().zip(candidate.terms.iter()) {
            match pattern {
                Term::Var(_) => match extension.get(pattern) {
                    Some(existing) if existing != *value => continue 'candidates,
                    Some(_) => {}
                    None => extension.bind(*pattern, *value),
                },
                // Constants and nulls must match exactly.
                other => {
                    if other != value {
                        continue 'candidates;
                    }
                }
            }
        }
        let saved = current.clone();
        if current.merge_compatible(&extension) {
            search(remaining, target, current, results, limit);
        }
        *current = saved;
        if results.len() >= limit {
            break;
        }
    }

    remaining.push(atom);
    // Restore original ordering irrelevant — remaining is a set.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::database::Database;
    use crate::term::{NullId, Term, Variable};

    fn chain_db() -> Instance {
        Database::from_facts([
            ("edge", vec!["a", "b"]),
            ("edge", vec!["b", "c"]),
            ("edge", vec!["c", "d"]),
        ])
        .unwrap()
        .into_instance()
    }

    fn var(name: &str) -> Term {
        Term::variable(name)
    }

    #[test]
    fn single_atom_matching() {
        let db = chain_db();
        let pattern = vec![Atom::new("edge", vec![var("X"), var("Y")])];
        let hs = homomorphisms(&pattern, &db, &Substitution::new(), HomSearch::all());
        assert_eq!(hs.len(), 3);
    }

    #[test]
    fn join_via_shared_variable() {
        let db = chain_db();
        // edge(X,Y), edge(Y,Z) — two-step paths: a-b-c, b-c-d.
        let pattern = vec![
            Atom::new("edge", vec![var("X"), var("Y")]),
            Atom::new("edge", vec![var("Y"), var("Z")]),
        ];
        let hs = homomorphisms(&pattern, &db, &Substitution::new(), HomSearch::all());
        assert_eq!(hs.len(), 2);
        for h in &hs {
            let y = h.get_var(Variable::new("Y")).unwrap();
            assert!(y == Term::constant("b") || y == Term::constant("c"));
        }
    }

    #[test]
    fn seed_constrains_the_search() {
        let db = chain_db();
        let pattern = vec![Atom::new("edge", vec![var("X"), var("Y")])];
        let mut seed = Substitution::new();
        seed.bind_var(Variable::new("X"), Term::constant("b"));
        let hs = homomorphisms(&pattern, &db, &seed, HomSearch::all());
        assert_eq!(hs.len(), 1);
        assert_eq!(
            hs[0].get_var(Variable::new("Y")),
            Some(Term::constant("c"))
        );
    }

    #[test]
    fn constants_in_patterns_must_match() {
        let db = chain_db();
        let pattern = vec![Atom::new("edge", vec![Term::constant("a"), var("Y")])];
        let hs = homomorphisms(&pattern, &db, &Substitution::new(), HomSearch::all());
        assert_eq!(hs.len(), 1);

        let no_match = vec![Atom::new("edge", vec![Term::constant("z"), var("Y")])];
        assert!(!exists_homomorphism(&no_match, &db, &Substitution::new()));
    }

    #[test]
    fn repeated_variables_require_equal_values() {
        let mut db = Database::new();
        db.insert(Atom::fact("r", &["a", "a"])).unwrap();
        db.insert(Atom::fact("r", &["a", "b"])).unwrap();
        let inst = db.into_instance();
        let pattern = vec![Atom::new("r", vec![var("X"), var("X")])];
        let hs = homomorphisms(&pattern, &inst, &Substitution::new(), HomSearch::all());
        assert_eq!(hs.len(), 1);
        assert_eq!(
            hs[0].get_var(Variable::new("X")),
            Some(Term::constant("a"))
        );
    }

    #[test]
    fn nulls_in_target_can_be_matched_by_variables() {
        let mut inst = Instance::new();
        inst.insert(Atom::new(
            "r",
            vec![Term::constant("a"), Term::Null(NullId(5))],
        ))
        .unwrap();
        let pattern = vec![Atom::new("r", vec![var("X"), var("Y")])];
        let hs = homomorphisms(&pattern, &inst, &Substitution::new(), HomSearch::all());
        assert_eq!(hs.len(), 1);
        assert_eq!(
            hs[0].get_var(Variable::new("Y")),
            Some(Term::Null(NullId(5)))
        );
    }

    #[test]
    fn limit_short_circuits() {
        let db = chain_db();
        let pattern = vec![Atom::new("edge", vec![var("X"), var("Y")])];
        let hs = homomorphisms(&pattern, &db, &Substitution::new(), HomSearch::first());
        assert_eq!(hs.len(), 1);
    }

    #[test]
    fn empty_pattern_has_the_identity_homomorphism() {
        let db = chain_db();
        let hs = homomorphisms(&[], &db, &Substitution::new(), HomSearch::all());
        assert_eq!(hs.len(), 1);
        assert!(hs[0].is_empty());
    }
}
