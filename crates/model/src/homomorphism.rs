//! Homomorphisms from sets of atoms into instances — the join kernel.
//!
//! A homomorphism is a substitution that is the identity on constants and maps
//! every atom of the source set onto an atom of the target instance. This is
//! exactly conjunctive-query evaluation, and it is used pervasively: CQ
//! evaluation over the chase, trigger detection in the chase, the
//! "match-and-drop" step of the proof-tree search, and the leaves of chase
//! trees.
//!
//! # The zero-allocation kernel
//!
//! The hot path is [`JoinSpec`] + [`Matcher`]: a pattern is compiled once
//! into per-atom argument specs (`Rigid` term or variable `Slot`), and the
//! backtracking search binds slots in a fixed-size array with an **undo
//! trail** (bind on match, pop on backtrack). Candidate atoms are enumerated
//! as row ids borrowed from the instance's lazy column indexes
//! ([`crate::database::Relation::with_matching_rows`]). The inner per-candidate
//! loop therefore performs **no heap allocation** and never clones a
//! substitution; results are streamed to a callback as a [`Bindings`] view.
//!
//! Atom selection is adaptive by default: at every search node the kernel
//! picks the *most selective* remaining atom, where an atom's cost is the
//! smallest candidate-list length over all of its already-resolved argument
//! positions (not merely the first bound position — a first-bound-position
//! probe can be arbitrarily worse than the best one). A fixed-order mode
//! ([`Matcher::set_fixed_order`]) preserves a caller-chosen join order for
//! join-ordering experiments; it still probes the most selective position of
//! each atom.
//!
//! The classic [`homomorphisms`] / [`find_homomorphism`] /
//! [`exists_homomorphism`] entry points are thin compatibility wrappers that
//! compile a spec per call and materialise `Substitution`s from the streamed
//! bindings. Engines (Datalog, chase, executor, proof search) drive the
//! kernel directly.
//!
//! A faithful port of the seed's allocation-heavy algorithm is retained in
//! [`reference`] as a correctness oracle for property tests and as the
//! baseline the join benchmarks compare against.

use crate::atom::Atom;
use crate::database::{Instance, Relation, RowId};
use crate::substitution::Substitution;
use crate::term::{Term, Variable};
use std::ops::ControlFlow;

/// Options for the homomorphism search.
#[derive(Clone, Copy, Debug)]
pub struct HomSearch {
    /// Stop after this many homomorphisms have been found (`usize::MAX` for
    /// all of them).
    pub limit: usize,
}

impl Default for HomSearch {
    fn default() -> Self {
        HomSearch { limit: usize::MAX }
    }
}

impl HomSearch {
    /// A search that stops after the first homomorphism.
    pub fn first() -> HomSearch {
        HomSearch { limit: 1 }
    }

    /// A search that enumerates every homomorphism.
    pub fn all() -> HomSearch {
        HomSearch::default()
    }
}

/// Counters for one kernel run.
#[derive(Clone, Copy, Debug, Default)]
pub struct JoinStats {
    /// Candidate rows examined (the unit shared by every engine's
    /// probe counter).
    pub probes: u64,
    /// Homomorphisms emitted.
    pub matches: u64,
}

/// One compiled pattern argument: either a term that must match exactly
/// (constant, null, or seed-substituted term) or a variable slot.
#[derive(Clone, Copy, Debug)]
enum ArgSpec {
    Rigid(Term),
    Slot(u32),
}

#[derive(Clone, Debug)]
struct CompiledAtom {
    predicate: crate::atom::Predicate,
    args: Vec<ArgSpec>,
}

/// A pattern (conjunction of atoms) compiled for the join kernel: variables
/// are numbered into dense slots, every argument becomes an [`ArgSpec`].
/// Compile once, run many times via [`Matcher`].
#[derive(Clone, Debug)]
pub struct JoinSpec {
    atoms: Vec<CompiledAtom>,
    /// Slot → variable, in order of first occurrence.
    vars: Vec<Variable>,
}

impl JoinSpec {
    /// Compiles a pattern.
    pub fn compile(atoms: &[Atom]) -> JoinSpec {
        JoinSpec::compile_seeded(atoms, &Substitution::new())
    }

    /// Compiles a pattern with a seed substitution applied on the fly:
    /// variables mapped by the seed become rigid terms (or slots for the
    /// *renamed* variable if the seed maps variable to variable), exactly as
    /// if `seed.apply_atoms(atoms)` had been compiled — without allocating
    /// the intermediate atoms.
    pub fn compile_seeded(atoms: &[Atom], seed: &Substitution) -> JoinSpec {
        let mut vars: Vec<Variable> = Vec::new();
        let mut compiled = Vec::with_capacity(atoms.len());
        for atom in atoms {
            let args = atom
                .terms
                .iter()
                .map(|t| match seed.apply_term(t) {
                    Term::Var(v) => {
                        let slot = vars.iter().position(|&w| w == v).unwrap_or_else(|| {
                            vars.push(v);
                            vars.len() - 1
                        });
                        ArgSpec::Slot(slot as u32)
                    }
                    rigid => ArgSpec::Rigid(rigid),
                })
                .collect();
            compiled.push(CompiledAtom {
                predicate: atom.predicate,
                args,
            });
        }
        JoinSpec {
            atoms: compiled,
            vars,
        }
    }

    /// Number of variable slots.
    pub fn num_slots(&self) -> usize {
        self.vars.len()
    }

    /// Number of pattern atoms.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// The predicate of pattern atom `i`.
    pub fn atom_predicate(&self, i: usize) -> crate::atom::Predicate {
        self.atoms[i].predicate
    }

    /// The arity of pattern atom `i`.
    pub fn atom_arity(&self, i: usize) -> usize {
        self.atoms[i].args.len()
    }

    /// The slot of a variable, if the variable occurs in the pattern.
    pub fn slot_of(&self, v: Variable) -> Option<usize> {
        self.vars.iter().position(|&w| w == v)
    }

    /// The variable of a slot.
    pub fn var_of(&self, slot: usize) -> Variable {
        self.vars[slot]
    }

    /// The image of `atom` where each pattern variable resolves to
    /// `values[slot]` (a dense trigger tuple as collected from a match).
    pub fn image(&self, atom: &Atom, values: &[Term]) -> Atom {
        self.image_with(atom, values, |_| None)
    }

    /// Like [`JoinSpec::image`], but variables outside the pattern (e.g. a
    /// TGD head's existential variables) fall back to `extra`.
    pub fn image_with(
        &self,
        atom: &Atom,
        values: &[Term],
        extra: impl Fn(Variable) -> Option<Term>,
    ) -> Atom {
        Atom {
            predicate: atom.predicate,
            terms: atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => self
                        .slot_of(*v)
                        .and_then(|s| values.get(s).copied())
                        .or_else(|| extra(*v))
                        .unwrap_or(*t),
                    other => *other,
                })
                .collect(),
        }
    }
}

/// Row-id sentinel for pattern atoms satisfied by [`Matcher::prematch`]
/// (their "row" lives outside the target instance).
pub const PREMATCHED_ROW: RowId = RowId::MAX;

/// A streamed result: read-only view of the kernel's bind state at a match.
pub struct Bindings<'a> {
    vars: &'a [Variable],
    slots: &'a [Option<Term>],
    rows: &'a [RowId],
}

impl Bindings<'_> {
    /// The binding of a variable, if bound.
    pub fn get(&self, v: Variable) -> Option<Term> {
        let slot = self.vars.iter().position(|&w| w == v)?;
        self.slots[slot]
    }

    /// Applies the bindings to a term (variables resolve to their binding or
    /// themselves; constants and nulls are fixed).
    pub fn resolve(&self, t: &Term) -> Term {
        match t {
            Term::Var(v) => self.get(*v).unwrap_or(*t),
            other => *other,
        }
    }

    /// The image of an atom under the bindings.
    pub fn image(&self, atom: &Atom) -> Atom {
        Atom {
            predicate: atom.predicate,
            terms: atom.terms.iter().map(|t| self.resolve(t)).collect(),
        }
    }

    /// The image of an atom where unbound variables fall back to `extra`
    /// (used by the chase to substitute fresh nulls for existentials).
    pub fn image_with(&self, atom: &Atom, extra: impl Fn(Variable) -> Option<Term>) -> Atom {
        Atom {
            predicate: atom.predicate,
            terms: atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => self.get(*v).or_else(|| extra(*v)).unwrap_or(*t),
                    other => *other,
                })
                .collect(),
        }
    }

    /// The target row id matched by each pattern atom, in pattern order
    /// ([`PREMATCHED_ROW`] for atoms satisfied via [`Matcher::prematch`]).
    pub fn matched_rows(&self) -> &[RowId] {
        self.rows
    }

    /// Materialises the bound slots as a [`Substitution`].
    pub fn to_substitution(&self) -> Substitution {
        self.substitution_extending(&Substitution::new())
    }

    /// Materialises `seed` extended with the bound slots (the contract of the
    /// classic [`homomorphisms`] entry point).
    pub fn substitution_extending(&self, seed: &Substitution) -> Substitution {
        let mut out = seed.clone();
        for (slot, binding) in self.slots.iter().enumerate() {
            if let Some(t) = binding {
                out.bind_var(self.vars[slot], *t);
            }
        }
        out
    }
}

/// Reusable search state for a [`JoinSpec`]. Create once, then per run:
/// [`Matcher::clear`], optional [`Matcher::prebind`] / [`Matcher::prematch`],
/// then [`Matcher::for_each`]. All buffers are reused across runs, so a
/// matcher driven in a loop (the semi-naive delta loop, the chase trigger
/// loop) allocates nothing after its first run.
pub struct Matcher<'s> {
    spec: &'s JoinSpec,
    slots: Vec<Option<Term>>,
    trail: Vec<u32>,
    used: Vec<bool>,
    rows: Vec<RowId>,
    fixed_order: bool,
    limit: usize,
}

impl<'s> Matcher<'s> {
    /// Creates a matcher for a compiled pattern.
    pub fn new(spec: &'s JoinSpec) -> Matcher<'s> {
        Matcher {
            slots: vec![None; spec.num_slots()],
            trail: Vec::with_capacity(spec.num_slots()),
            used: vec![false; spec.num_atoms()],
            rows: vec![PREMATCHED_ROW; spec.num_atoms()],
            spec,
            fixed_order: false,
            limit: usize::MAX,
        }
    }

    /// Resets all bindings and pre-matches for the next run.
    pub fn clear(&mut self) {
        self.slots.fill(None);
        self.trail.clear();
        self.used.fill(false);
        self.rows.fill(PREMATCHED_ROW);
    }

    /// Follow the pattern's atom order instead of adaptive most-selective
    /// selection (for join-ordering experiments).
    pub fn set_fixed_order(&mut self, fixed: bool) -> &mut Self {
        self.fixed_order = fixed;
        self
    }

    /// Stop after `limit` matches.
    pub fn set_limit(&mut self, limit: usize) -> &mut Self {
        self.limit = limit;
        self
    }

    /// Pre-binds a variable before the search. Returns `false` on conflict
    /// with an existing pre-binding (no state is changed in that case).
    pub fn prebind(&mut self, v: Variable, t: Term) -> bool {
        match self.spec.slot_of(v) {
            // Binding a variable the pattern never mentions constrains nothing.
            None => true,
            Some(slot) => match self.slots[slot] {
                Some(existing) => existing == t,
                None => {
                    self.slots[slot] = Some(t);
                    true
                }
            },
        }
    }

    /// Matches pattern atom `atom_index` against a concrete row (typically a
    /// delta fact living outside the target instance), binding its slots and
    /// marking the atom as satisfied. Returns `false` if the row does not
    /// match (the caller should [`Matcher::clear`] before the next attempt).
    pub fn prematch(&mut self, atom_index: usize, row: &[Term]) -> bool {
        let atom = &self.spec.atoms[atom_index];
        if atom.args.len() != row.len() {
            return false;
        }
        for (arg, &val) in atom.args.iter().zip(row.iter()) {
            match *arg {
                ArgSpec::Rigid(t) => {
                    if t != val {
                        return false;
                    }
                }
                ArgSpec::Slot(s) => match self.slots[s as usize] {
                    Some(existing) => {
                        if existing != val {
                            return false;
                        }
                    }
                    None => self.slots[s as usize] = Some(val),
                },
            }
        }
        self.used[atom_index] = true;
        self.rows[atom_index] = PREMATCHED_ROW;
        true
    }

    /// Runs the search over `target`, streaming every homomorphism to `f`.
    /// Returning `ControlFlow::Break(())` from `f` stops the enumeration.
    pub fn for_each<F>(&mut self, target: &Instance, mut f: F) -> JoinStats
    where
        F: FnMut(&Bindings<'_>) -> ControlFlow<()>,
    {
        let mut stats = JoinStats::default();
        if self.limit == 0 {
            return stats;
        }
        // Fail fast if some open pattern atom has no relation (or the wrong
        // arity) in the target: the pattern cannot match at all.
        let open = self.used.iter().filter(|u| !**u).count();
        for (i, atom) in self.spec.atoms.iter().enumerate() {
            if !self.used[i]
                && target
                    .relation(atom.predicate)
                    .filter(|r| r.arity() == atom.args.len())
                    .is_none()
            {
                return stats;
            }
        }
        let mut ctx = SearchCtx {
            spec: self.spec,
            target,
            slots: &mut self.slots,
            trail: &mut self.trail,
            used: &mut self.used,
            rows: &mut self.rows,
            fixed_order: self.fixed_order,
            limit: self.limit,
            emitted: 0,
            stats: &mut stats,
        };
        let _ = search(&mut ctx, open, &mut f);
        stats
    }
}

struct SearchCtx<'a, 'b> {
    spec: &'a JoinSpec,
    target: &'b Instance,
    slots: &'a mut Vec<Option<Term>>,
    trail: &'a mut Vec<u32>,
    used: &'a mut Vec<bool>,
    rows: &'a mut Vec<RowId>,
    fixed_order: bool,
    limit: usize,
    emitted: usize,
    stats: &'a mut JoinStats,
}

/// The cheapest way to enumerate candidates for one atom.
enum Probe {
    /// Use the column index at this position with this term.
    Index(usize, Term),
    /// Scan the whole relation.
    Scan,
}

impl<'b> SearchCtx<'_, 'b> {
    /// The resolved value of an argument, if rigid or already bound.
    fn resolved(&self, arg: ArgSpec) -> Option<Term> {
        match arg {
            ArgSpec::Rigid(t) => Some(t),
            ArgSpec::Slot(s) => self.slots[s as usize],
        }
    }

    /// The relation of pattern atom `i` (validated to exist, with matching
    /// arity, before the search starts; resolving it is one lookup in the
    /// Fx-hashed relation map and keeps the run allocation-free).
    fn rel_of(&self, i: usize) -> &'b Relation {
        self.target
            .relation(self.spec.atoms[i].predicate)
            .expect("unsatisfiable atoms are rejected before the search")
    }

    /// Estimates the candidate count for atom `i` and picks its best probe:
    /// the indexed position with the smallest candidate list, falling back to
    /// a full scan when no argument is resolved yet.
    fn cost_of(&self, i: usize) -> (usize, Probe) {
        let rel = self.rel_of(i);
        let mut best = (rel.len(), Probe::Scan);
        for (pos, &arg) in self.spec.atoms[i].args.iter().enumerate() {
            if let Some(term) = self.resolved(arg) {
                let count = rel.matching_count(pos, term);
                if count < best.0 || matches!(best.1, Probe::Scan) {
                    best = (count, Probe::Index(pos, term));
                    if count == 0 {
                        break;
                    }
                }
            }
        }
        best
    }

    /// The probe for atom `i` when its candidate *count* is not needed (the
    /// atom is the only choice): with zero or one resolved position no index
    /// size has to be consulted at all.
    fn probe_of(&self, i: usize) -> Probe {
        let mut found: Option<Probe> = None;
        for (pos, &arg) in self.spec.atoms[i].args.iter().enumerate() {
            if let Some(term) = self.resolved(arg) {
                if found.is_some() {
                    // Several resolved positions: pick the most selective.
                    return self.cost_of(i).1;
                }
                found = Some(Probe::Index(pos, term));
            }
        }
        found.unwrap_or(Probe::Scan)
    }

    /// Picks the next atom: pattern order when `fixed_order`, otherwise the
    /// unused atom with the fewest candidates.
    fn select(&self, open: usize) -> Option<(usize, Probe)> {
        if self.fixed_order || open == 1 {
            let i = self.used.iter().position(|u| !u)?;
            return Some((i, self.probe_of(i)));
        }
        let mut best: Option<(usize, usize, Probe)> = None;
        for i in 0..self.spec.atoms.len() {
            if self.used[i] {
                continue;
            }
            let (cost, probe) = self.cost_of(i);
            if best.as_ref().is_none_or(|(_, c, _)| cost < *c) {
                let zero = cost == 0;
                best = Some((i, cost, probe));
                if zero {
                    break; // dead end; fail as fast as possible
                }
            }
        }
        best.map(|(i, _, probe)| (i, probe))
    }

    /// Binds atom `i`'s slots against `row`, pushing to the trail; returns
    /// `false` on mismatch (caller unwinds the trail).
    fn match_row(&mut self, i: usize, row: &[Term]) -> bool {
        for (arg, &val) in self.spec.atoms[i].args.iter().zip(row.iter()) {
            match *arg {
                ArgSpec::Rigid(t) => {
                    if t != val {
                        return false;
                    }
                }
                ArgSpec::Slot(s) => match self.slots[s as usize] {
                    Some(existing) => {
                        if existing != val {
                            return false;
                        }
                    }
                    None => {
                        self.slots[s as usize] = Some(val);
                        self.trail.push(s);
                    }
                },
            }
        }
        true
    }

    fn unwind(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let slot = self.trail.pop().expect("trail is non-empty above the mark");
            self.slots[slot as usize] = None;
        }
    }
}

/// The recursive kernel: zero heap allocation per candidate — candidates are
/// borrowed row-id slices, bindings go through the slot array + undo trail.
fn search<F>(ctx: &mut SearchCtx<'_, '_>, open: usize, f: &mut F) -> ControlFlow<()>
where
    F: FnMut(&Bindings<'_>) -> ControlFlow<()>,
{
    if open == 0 {
        ctx.emitted += 1;
        ctx.stats.matches += 1;
        let view = Bindings {
            vars: &ctx.spec.vars,
            slots: ctx.slots,
            rows: ctx.rows,
        };
        f(&view)?;
        if ctx.emitted >= ctx.limit {
            return ControlFlow::Break(());
        }
        return ControlFlow::Continue(());
    }
    let Some((atom, probe)) = ctx.select(open) else {
        return ControlFlow::Continue(());
    };
    let rel = ctx.rel_of(atom);
    ctx.used[atom] = true;
    let result = match probe {
        Probe::Index(pos, term) => rel.with_matching_rows(pos, term, |ids| {
            try_candidates(ctx, atom, rel, ids.iter().copied(), open, f)
        }),
        Probe::Scan => {
            let ids = 0..rel.row_count();
            try_candidates(ctx, atom, rel, ids, open, f)
        }
    };
    ctx.used[atom] = false;
    result
}

fn try_candidates<F>(
    ctx: &mut SearchCtx<'_, '_>,
    atom: usize,
    rel: &Relation,
    candidates: impl Iterator<Item = RowId>,
    open: usize,
    f: &mut F,
) -> ControlFlow<()>
where
    F: FnMut(&Bindings<'_>) -> ControlFlow<()>,
{
    for id in candidates {
        ctx.stats.probes += 1;
        let mark = ctx.trail.len();
        if ctx.match_row(atom, rel.row(id)) {
            ctx.rows[atom] = id;
            let flow = search(ctx, open - 1, f);
            ctx.unwind(mark);
            flow?;
        } else {
            ctx.unwind(mark);
        }
    }
    ControlFlow::Continue(())
}

/// Finds homomorphisms from `atoms` into `target`, extending the partial
/// substitution `seed`. Every returned substitution `h` satisfies
/// `h(atoms) ⊆ target` and agrees with `seed`.
///
/// Compatibility wrapper over the streaming kernel; engines drive
/// [`JoinSpec`] / [`Matcher`] directly and never materialise this vector.
pub fn homomorphisms(
    atoms: &[Atom],
    target: &Instance,
    seed: &Substitution,
    options: HomSearch,
) -> Vec<Substitution> {
    let mut results = Vec::new();
    if options.limit == 0 {
        return results;
    }
    let spec = JoinSpec::compile_seeded(atoms, seed);
    let mut matcher = Matcher::new(&spec);
    matcher.set_limit(options.limit);
    matcher.for_each(target, |b| {
        results.push(b.substitution_extending(seed));
        ControlFlow::Continue(())
    });
    results
}

/// Finds one homomorphism from `atoms` into `target` extending `seed`, if any.
pub fn find_homomorphism(
    atoms: &[Atom],
    target: &Instance,
    seed: &Substitution,
) -> Option<Substitution> {
    let spec = JoinSpec::compile_seeded(atoms, seed);
    let mut matcher = Matcher::new(&spec);
    matcher.set_limit(1);
    let mut found = None;
    matcher.for_each(target, |b| {
        found = Some(b.substitution_extending(seed));
        ControlFlow::Break(())
    });
    found
}

/// `true` iff some homomorphism from `atoms` into `target` extends `seed`.
pub fn exists_homomorphism(atoms: &[Atom], target: &Instance, seed: &Substitution) -> bool {
    let spec = JoinSpec::compile_seeded(atoms, seed);
    let mut matcher = Matcher::new(&spec);
    matcher.set_limit(1);
    let mut found = false;
    matcher.for_each(target, |_| {
        found = true;
        ControlFlow::Break(())
    });
    found
}

/// The seed repository's allocation-heavy search, retained verbatim in
/// spirit: `BTreeMap`-backed substitutions cloned once per candidate, all
/// results materialised into a `Vec`, candidates probed on the *first* bound
/// argument position only. It is the correctness oracle for the kernel's
/// property tests and the baseline of the join benchmarks.
pub mod reference {
    use super::{HomSearch, Instance, Substitution};
    use crate::atom::Atom;
    use crate::term::Term;

    /// Finds homomorphisms with the seed algorithm (see module docs).
    pub fn homomorphisms_reference(
        atoms: &[Atom],
        target: &Instance,
        seed: &Substitution,
        options: HomSearch,
    ) -> Vec<Substitution> {
        let mut results = Vec::new();
        if options.limit == 0 {
            return results;
        }
        let mut remaining: Vec<&Atom> = atoms.iter().collect();
        let mut current = seed.clone();
        search(&mut remaining, target, &mut current, &mut results, options.limit);
        results
    }

    fn search(
        remaining: &mut Vec<&Atom>,
        target: &Instance,
        current: &mut Substitution,
        results: &mut Vec<Substitution>,
        limit: usize,
    ) {
        if results.len() >= limit {
            return;
        }
        if remaining.is_empty() {
            results.push(current.clone());
            return;
        }
        // Pick the atom with the most bound (non-variable after substitution)
        // arguments: it has the fewest candidate matches.
        let (best_idx, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let bound = a
                    .terms
                    .iter()
                    .filter(|t| !current.apply_term(t).is_var())
                    .count();
                (i, bound)
            })
            .max_by_key(|&(_, bound)| bound)
            .expect("remaining is non-empty");
        let atom = remaining.swap_remove(best_idx);
        let partial = current.apply_atom(atom);

        // Use the position index on the first bound argument, otherwise scan
        // the whole relation.
        let candidates: Vec<Atom> = match partial
            .terms
            .iter()
            .enumerate()
            .find(|(_, t)| !t.is_var())
        {
            Some((pos, term)) => target.atoms_matching(partial.predicate, pos, *term).collect(),
            None => target.atoms_with_predicate(partial.predicate).collect(),
        };

        'candidates: for candidate in candidates {
            if candidate.arity() != partial.arity() {
                continue;
            }
            let mut extension = Substitution::new();
            for (pattern, value) in partial.terms.iter().zip(candidate.terms.iter()) {
                match pattern {
                    Term::Var(_) => match extension.get(pattern) {
                        Some(existing) if existing != *value => continue 'candidates,
                        Some(_) => {}
                        None => extension.bind(*pattern, *value),
                    },
                    // Constants and nulls must match exactly.
                    other => {
                        if other != value {
                            continue 'candidates;
                        }
                    }
                }
            }
            let saved = current.clone();
            if current.merge_compatible(&extension) {
                search(remaining, target, current, results, limit);
            }
            *current = saved;
            if results.len() >= limit {
                break;
            }
        }

        remaining.push(atom);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::database::Database;
    use crate::term::{NullId, Term, Variable};

    fn chain_db() -> Instance {
        Database::from_facts([
            ("edge", vec!["a", "b"]),
            ("edge", vec!["b", "c"]),
            ("edge", vec!["c", "d"]),
        ])
        .unwrap()
        .into_instance()
    }

    fn var(name: &str) -> Term {
        Term::variable(name)
    }

    #[test]
    fn single_atom_matching() {
        let db = chain_db();
        let pattern = vec![Atom::new("edge", vec![var("X"), var("Y")])];
        let hs = homomorphisms(&pattern, &db, &Substitution::new(), HomSearch::all());
        assert_eq!(hs.len(), 3);
    }

    #[test]
    fn join_via_shared_variable() {
        let db = chain_db();
        // edge(X,Y), edge(Y,Z) — two-step paths: a-b-c, b-c-d.
        let pattern = vec![
            Atom::new("edge", vec![var("X"), var("Y")]),
            Atom::new("edge", vec![var("Y"), var("Z")]),
        ];
        let hs = homomorphisms(&pattern, &db, &Substitution::new(), HomSearch::all());
        assert_eq!(hs.len(), 2);
        for h in &hs {
            let y = h.get_var(Variable::new("Y")).unwrap();
            assert!(y == Term::constant("b") || y == Term::constant("c"));
        }
    }

    #[test]
    fn seed_constrains_the_search() {
        let db = chain_db();
        let pattern = vec![Atom::new("edge", vec![var("X"), var("Y")])];
        let mut seed = Substitution::new();
        seed.bind_var(Variable::new("X"), Term::constant("b"));
        let hs = homomorphisms(&pattern, &db, &seed, HomSearch::all());
        assert_eq!(hs.len(), 1);
        assert_eq!(
            hs[0].get_var(Variable::new("Y")),
            Some(Term::constant("c"))
        );
        // The seed's own bindings are part of the result.
        assert_eq!(
            hs[0].get_var(Variable::new("X")),
            Some(Term::constant("b"))
        );
    }

    #[test]
    fn constants_in_patterns_must_match() {
        let db = chain_db();
        let pattern = vec![Atom::new("edge", vec![Term::constant("a"), var("Y")])];
        let hs = homomorphisms(&pattern, &db, &Substitution::new(), HomSearch::all());
        assert_eq!(hs.len(), 1);

        let no_match = vec![Atom::new("edge", vec![Term::constant("z"), var("Y")])];
        assert!(!exists_homomorphism(&no_match, &db, &Substitution::new()));
    }

    #[test]
    fn repeated_variables_require_equal_values() {
        let mut db = Database::new();
        db.insert(Atom::fact("r", &["a", "a"])).unwrap();
        db.insert(Atom::fact("r", &["a", "b"])).unwrap();
        let inst = db.into_instance();
        let pattern = vec![Atom::new("r", vec![var("X"), var("X")])];
        let hs = homomorphisms(&pattern, &inst, &Substitution::new(), HomSearch::all());
        assert_eq!(hs.len(), 1);
        assert_eq!(
            hs[0].get_var(Variable::new("X")),
            Some(Term::constant("a"))
        );
    }

    #[test]
    fn nulls_in_target_can_be_matched_by_variables() {
        let mut inst = Instance::new();
        inst.insert(Atom::new(
            "r",
            vec![Term::constant("a"), Term::Null(NullId(5))],
        ))
        .unwrap();
        let pattern = vec![Atom::new("r", vec![var("X"), var("Y")])];
        let hs = homomorphisms(&pattern, &inst, &Substitution::new(), HomSearch::all());
        assert_eq!(hs.len(), 1);
        assert_eq!(
            hs[0].get_var(Variable::new("Y")),
            Some(Term::Null(NullId(5)))
        );
    }

    #[test]
    fn limit_short_circuits() {
        let db = chain_db();
        let pattern = vec![Atom::new("edge", vec![var("X"), var("Y")])];
        let hs = homomorphisms(&pattern, &db, &Substitution::new(), HomSearch::first());
        assert_eq!(hs.len(), 1);
    }

    #[test]
    fn empty_pattern_has_the_identity_homomorphism() {
        let db = chain_db();
        let hs = homomorphisms(&[], &db, &Substitution::new(), HomSearch::all());
        assert_eq!(hs.len(), 1);
        assert!(hs[0].is_empty());
    }

    #[test]
    fn kernel_streams_matched_row_ids() {
        let db = chain_db();
        let pattern = vec![
            Atom::new("edge", vec![var("X"), var("Y")]),
            Atom::new("edge", vec![var("Y"), var("Z")]),
        ];
        let spec = JoinSpec::compile(&pattern);
        let mut matcher = Matcher::new(&spec);
        let rel = db.relation(crate::atom::Predicate::new("edge")).unwrap();
        let mut seen = Vec::new();
        matcher.for_each(&db, |b| {
            let rows = b.matched_rows();
            assert_eq!(rows.len(), 2);
            // The matched rows really are the atoms' images.
            assert_eq!(rel.atom(rows[0]), b.image(&pattern[0]));
            assert_eq!(rel.atom(rows[1]), b.image(&pattern[1]));
            seen.push((rows[0], rows[1]));
            ControlFlow::Continue(())
        });
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn prematch_drives_semi_naive_style_joins() {
        let db = chain_db();
        let pattern = vec![
            Atom::new("edge", vec![var("X"), var("Y")]),
            Atom::new("edge", vec![var("Y"), var("Z")]),
        ];
        let spec = JoinSpec::compile(&pattern);
        let mut matcher = Matcher::new(&spec);
        // Pretend edge(b, c) arrived in the delta: seed atom 1 with it.
        assert!(matcher.prematch(1, &[Term::constant("b"), Term::constant("c")]));
        let mut images = Vec::new();
        matcher.for_each(&db, |b| {
            images.push((b.resolve(&var("X")), b.resolve(&var("Z"))));
            ControlFlow::Continue(())
        });
        assert_eq!(images, vec![(Term::constant("a"), Term::constant("c"))]);

        // A conflicting row does not match.
        matcher.clear();
        assert!(!matcher.prematch(1, &[Term::constant("b")]));
    }

    #[test]
    fn prebind_constrains_like_a_seed() {
        let db = chain_db();
        let pattern = vec![Atom::new("edge", vec![var("X"), var("Y")])];
        let spec = JoinSpec::compile(&pattern);
        let mut matcher = Matcher::new(&spec);
        assert!(matcher.prebind(Variable::new("X"), Term::constant("b")));
        let mut count = 0;
        matcher.for_each(&db, |b| {
            assert_eq!(b.resolve(&var("Y")), Term::constant("c"));
            count += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(count, 1);
        // Conflicting prebind is rejected.
        assert!(!matcher.prebind(Variable::new("X"), Term::constant("z")));
    }

    #[test]
    fn fixed_order_and_adaptive_order_agree_on_answers() {
        let db = chain_db();
        let pattern = vec![
            Atom::new("edge", vec![var("X"), var("Y")]),
            Atom::new("edge", vec![Term::constant("b"), var("Z")]),
        ];
        let spec = JoinSpec::compile(&pattern);
        let collect = |fixed: bool| {
            let mut matcher = Matcher::new(&spec);
            matcher.set_fixed_order(fixed);
            let mut out = Vec::new();
            matcher.for_each(&db, |b| {
                out.push(b.to_substitution().to_string());
                ControlFlow::Continue(())
            });
            out.sort();
            out
        };
        assert_eq!(collect(true), collect(false));
    }

    #[test]
    fn adaptive_selection_prefers_the_most_selective_position() {
        // Relation r: many rows share column 0's value, exactly one matches
        // on column 1. A first-bound-position probe would examine all rows
        // with r(c, _); the kernel must pick column 1 (one candidate).
        let mut db = Database::new();
        for i in 0..50 {
            db.insert(Atom::fact("r", &["c", &format!("v{i}")])).unwrap();
        }
        let inst = db.into_instance();
        let pattern = vec![Atom::new(
            "r",
            vec![Term::constant("c"), Term::constant("v7")],
        )];
        let spec = JoinSpec::compile(&pattern);
        let mut matcher = Matcher::new(&spec);
        let stats = matcher.for_each(&inst, |_| ControlFlow::Continue(()));
        assert_eq!(stats.matches, 1);
        assert_eq!(stats.probes, 1, "most selective index position must be used");
    }

    #[test]
    fn reference_and_kernel_agree_on_a_join() {
        let db = chain_db();
        let pattern = vec![
            Atom::new("edge", vec![var("X"), var("Y")]),
            Atom::new("edge", vec![var("Y"), var("Z")]),
        ];
        let mut kernel: Vec<String> =
            homomorphisms(&pattern, &db, &Substitution::new(), HomSearch::all())
                .iter()
                .map(|h| h.to_string())
                .collect();
        let mut naive: Vec<String> =
            reference::homomorphisms_reference(&pattern, &db, &Substitution::new(), HomSearch::all())
                .iter()
                .map(|h| h.to_string())
                .collect();
        kernel.sort();
        naive.sort();
        assert_eq!(kernel, naive);
    }
}
