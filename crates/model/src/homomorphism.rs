//! Homomorphisms from sets of atoms into instances — the join kernel.
//!
//! A homomorphism is a substitution that is the identity on constants and maps
//! every atom of the source set onto an atom of the target instance. This is
//! exactly conjunctive-query evaluation, and it is used pervasively: CQ
//! evaluation over the chase, trigger detection in the chase, the
//! "match-and-drop" step of the proof-tree search, and the leaves of chase
//! trees.
//!
//! # The zero-allocation kernel
//!
//! The hot path is [`JoinSpec`] + [`Matcher`]: a pattern is compiled once
//! into per-atom argument specs (`Rigid` term or variable `Slot`), and the
//! backtracking search binds slots in a fixed-size array with an **undo
//! trail** (bind on match, pop on backtrack). Candidate atoms are enumerated
//! as row ids borrowed from the instance's lazy column indexes
//! ([`crate::database::Relation::with_matching_rows`]). The inner per-candidate
//! loop therefore performs **no heap allocation** and never clones a
//! substitution; results are streamed to a callback as a [`Bindings`] view.
//!
//! The kernel works on **packed terms** ([`crate::term::PackedTerm`]):
//! slots, rigid arguments and candidate rows are all 4-byte u32 values, so
//! the innermost compare-and-bind loop touches a quarter of the memory the
//! enum representation would. Pattern terms are packed once at compile time
//! (a rigid term past the 30-bit dictionary compiles to the `UNMATCHABLE`
//! sentinel, which correctly matches nothing), and results unpack lazily in
//! the [`Bindings`] accessors.
//!
//! # Join paths: adaptive streaming vs. planned build/probe
//!
//! Atom selection is adaptive by default: at every search node the kernel
//! picks the *most selective* remaining atom, where an atom's cost is the
//! smallest candidate-list length over all of its already-resolved argument
//! positions (not merely the first bound position — a first-bound-position
//! probe can be arbitrarily worse than the best one). A fixed-order mode
//! ([`Matcher::set_fixed_order`]) preserves a caller-chosen join order for
//! join-ordering experiments; it still probes the most selective position of
//! each atom.
//!
//! The adaptive search re-estimates every remaining atom at every node —
//! several index probes (each a column `RwLock` acquisition) per candidate
//! row. For the fixpoint engines, which run the *same* pattern with the
//! *same* shape of bound slots thousands of times per round, that planning
//! work is identical on every run. [`JoinSpec::plan`] therefore computes a
//! **static build/probe plan** once per (pattern, prematched-atom set,
//! frozen instance): a greedy join order in which each step probes a lazy
//! key index (the "build" side — built once, reused by every probe) at the
//! position — or, when two or more positions of an atom are rigid or bound
//! by earlier steps, the **composite column set** — estimated most
//! selective, using (memoised) distinct key counts for positions that will
//! be bound by the trail and exact index hits for rigid keys. A composite
//! step fuses its resolved values into one u64
//! ([`crate::database::fuse_key`]) and probes the composite index, so every
//! fused position is settled by the key itself instead of row-at-a-time
//! residual filtering; the miss-heavy probes of semi-naive delta rounds are
//! additionally short-circuited by the indexes' fingerprint filters
//! (observable as [`JoinStats::misses_filtered`] and
//! [`JoinStats::composite_probes`]). Execution with [`Matcher::set_plan`]
//! then skips all per-node estimation: one index probe per step per binding.
//! When the greedy planner detects a step with no bound position (a cross
//! product — the estimates cannot distinguish orders), the plan records that
//! streaming is preferable and the matcher transparently falls back to the
//! adaptive path; this is the selectivity-based choice between the two
//! kernels.
//!
//! Both paths enumerate the same match set over the same frozen instance and
//! count `probes` in the same unit (candidate rows examined); the planned
//! path additionally fixes the emission order, which is what makes row-id
//! assignment reproducible across thread counts in the sharded engines.
//!
//! The classic [`homomorphisms`] / [`find_homomorphism`] /
//! [`exists_homomorphism`] entry points are thin compatibility wrappers that
//! compile a spec per call and materialise `Substitution`s from the streamed
//! bindings. Engines (Datalog, chase, executor, proof search) drive the
//! kernel directly.
//!
//! A faithful port of the seed's allocation-heavy algorithm is retained in
//! [`reference`] as a correctness oracle for property tests and as the
//! baseline the join benchmarks compare against.

use crate::atom::Atom;
use crate::budget::{KernelBudget, BUDGET_POLL_INTERVAL};
use crate::database::{fuse_key, ColSet, Instance, Relation, RowId};
use crate::substitution::Substitution;
use crate::term::{PackedTerm, Term, Variable};
use std::ops::ControlFlow;

/// Options for the homomorphism search.
#[derive(Clone, Copy, Debug)]
pub struct HomSearch {
    /// Stop after this many homomorphisms have been found (`usize::MAX` for
    /// all of them).
    pub limit: usize,
}

impl Default for HomSearch {
    fn default() -> Self {
        HomSearch { limit: usize::MAX }
    }
}

impl HomSearch {
    /// A search that stops after the first homomorphism.
    pub fn first() -> HomSearch {
        HomSearch { limit: 1 }
    }

    /// A search that enumerates every homomorphism.
    pub fn all() -> HomSearch {
        HomSearch::default()
    }
}

/// Counters for one kernel run.
#[derive(Clone, Copy, Debug, Default)]
pub struct JoinStats {
    /// Candidate rows examined (the unit shared by every engine's
    /// probe counter).
    pub probes: u64,
    /// Homomorphisms emitted.
    pub matches: u64,
    /// Planned probe steps answered by a composite (multi-column) key index
    /// — each one replaces a single-column probe plus row-at-a-time residual
    /// filtering of the other bound positions.
    pub composite_probes: u64,
    /// Index probes skipped entirely because the fingerprint filter proved
    /// the key absent (the dominant case in miss-heavy semi-naive delta
    /// rounds). Skipped probes have zero candidates either way, so this
    /// counter never correlates with a result change.
    pub misses_filtered: u64,
}

impl JoinStats {
    /// Folds another run's counters into this one.
    pub fn absorb(&mut self, other: JoinStats) {
        self.probes += other.probes;
        self.matches += other.matches;
        self.composite_probes += other.composite_probes;
        self.misses_filtered += other.misses_filtered;
    }
}

/// One compiled pattern argument: either a packed term that must match
/// exactly (constant, null, or seed-substituted term — `UNMATCHABLE` when
/// the term cannot be packed and therefore occurs in no instance) or a
/// variable slot.
#[derive(Clone, Copy, Debug)]
enum ArgSpec {
    Rigid(PackedTerm),
    Slot(u32),
}

#[derive(Clone, Debug)]
struct CompiledAtom {
    predicate: crate::atom::Predicate,
    args: Vec<ArgSpec>,
}

/// A pattern (conjunction of atoms) compiled for the join kernel: variables
/// are numbered into dense slots, every argument becomes an [`ArgSpec`].
/// Compile once, run many times via [`Matcher`].
#[derive(Clone, Debug)]
pub struct JoinSpec {
    atoms: Vec<CompiledAtom>,
    /// Slot → variable, in order of first occurrence.
    vars: Vec<Variable>,
}

impl JoinSpec {
    /// Compiles a pattern.
    pub fn compile(atoms: &[Atom]) -> JoinSpec {
        JoinSpec::compile_seeded(atoms, &Substitution::new())
    }

    /// Compiles a pattern with a seed substitution applied on the fly:
    /// variables mapped by the seed become rigid terms (or slots for the
    /// *renamed* variable if the seed maps variable to variable), exactly as
    /// if `seed.apply_atoms(atoms)` had been compiled — without allocating
    /// the intermediate atoms.
    pub fn compile_seeded(atoms: &[Atom], seed: &Substitution) -> JoinSpec {
        let mut vars: Vec<Variable> = Vec::new();
        let mut compiled = Vec::with_capacity(atoms.len());
        for atom in atoms {
            let args = atom
                .terms
                .iter()
                .map(|t| match seed.apply_term(t) {
                    Term::Var(v) => {
                        let slot = vars.iter().position(|&w| w == v).unwrap_or_else(|| {
                            vars.push(v);
                            vars.len() - 1
                        });
                        ArgSpec::Slot(slot as u32)
                    }
                    rigid => {
                        ArgSpec::Rigid(PackedTerm::pack(rigid).unwrap_or(PackedTerm::UNMATCHABLE))
                    }
                })
                .collect();
            compiled.push(CompiledAtom {
                predicate: atom.predicate,
                args,
            });
        }
        JoinSpec {
            atoms: compiled,
            vars,
        }
    }

    /// Number of variable slots.
    pub fn num_slots(&self) -> usize {
        self.vars.len()
    }

    /// Number of pattern atoms.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// The predicate of pattern atom `i`.
    pub fn atom_predicate(&self, i: usize) -> crate::atom::Predicate {
        self.atoms[i].predicate
    }

    /// The arity of pattern atom `i`.
    pub fn atom_arity(&self, i: usize) -> usize {
        self.atoms[i].args.len()
    }

    /// The slot of a variable, if the variable occurs in the pattern.
    pub fn slot_of(&self, v: Variable) -> Option<usize> {
        self.vars.iter().position(|&w| w == v)
    }

    /// The variable of a slot.
    pub fn var_of(&self, slot: usize) -> Variable {
        self.vars[slot]
    }

    /// The image of `atom` where each pattern variable resolves to
    /// `values[slot]` (a dense trigger tuple as collected from a match).
    pub fn image(&self, atom: &Atom, values: &[Term]) -> Atom {
        self.image_with(atom, values, |_| None)
    }

    /// Like [`JoinSpec::image`], but variables outside the pattern (e.g. a
    /// TGD head's existential variables) fall back to `extra`.
    pub fn image_with(
        &self,
        atom: &Atom,
        values: &[Term],
        extra: impl Fn(Variable) -> Option<Term>,
    ) -> Atom {
        Atom {
            predicate: atom.predicate,
            terms: atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => self
                        .slot_of(*v)
                        .and_then(|s| values.get(s).copied())
                        .or_else(|| extra(*v))
                        .unwrap_or(*t),
                    other => *other,
                })
                .collect(),
        }
    }

    /// Compiles `atom` into a packed row template over this spec's slots:
    /// constants and nulls pack once, variables become slot references. With
    /// a template, [`Bindings::emit`] appends the atom's image to a packed
    /// row buffer with zero per-term searching — the emission path of the
    /// batched fixpoint engines.
    ///
    /// # Panics
    ///
    /// If `atom` mentions a variable that does not occur in the pattern
    /// (engines only build templates for heads whose variables are covered
    /// by the body), or a rigid term past the packed dictionary.
    pub fn row_template(&self, atom: &Atom) -> RowTemplate {
        RowTemplate {
            args: atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => ArgSpec::Slot(
                        self.slot_of(*v)
                            .expect("row-template variable must occur in the pattern")
                            as u32,
                    ),
                    rigid => ArgSpec::Rigid(
                        PackedTerm::pack(*rigid)
                            .expect("row-template term fits the packed dictionary"),
                    ),
                })
                .collect(),
        }
    }

    /// Computes a static **build/probe join plan** for this pattern against
    /// `target` with the default options (composite keys enabled), assuming
    /// the atoms in `prematched` are already satisfied (with all their
    /// variable slots bound — the state a [`Matcher::prematch`] of those
    /// atoms produces). See [`JoinSpec::plan_with_options`].
    pub fn plan(&self, target: &Instance, prematched: &[usize]) -> JoinPlan {
        self.plan_with_options(target, prematched, PlanOptions::default())
    }

    /// Computes a static **build/probe join plan** (see [`JoinSpec::plan`])
    /// with explicit [`PlanOptions`].
    ///
    /// The greedy planner repeatedly picks the cheapest remaining atom,
    /// estimating each candidate atom by the most selective of:
    ///
    /// * an exact column-index hit count for rigid arguments,
    /// * `rows / distinct_keys(column)` (the average probe fan-out of the
    ///   lazy column index, which doubles as the build side of the hash
    ///   join) for arguments bound by earlier steps,
    /// * when ≥ 2 positions are resolvable and composite keys are enabled:
    ///   the analogous **composite** estimate over the fused key of the (up
    ///   to [`ColSet::MAX_COLS`]) individually most selective resolvable
    ///   positions — an exact fused-key hit count when they are all rigid,
    ///   `rows / distinct_keys(column set)` (memoised in the composite
    ///   index) otherwise. A strictly better composite estimate emits a
    ///   composite probe step, which covers every fused position at probe
    ///   time — no residual row-at-a-time filtering of the other bound
    ///   columns remains,
    /// * and the full relation size when nothing is bound (a scan).
    ///
    /// Estimates depend only on the frozen instance's statistics, so over a
    /// fixpoint round the plan — and with it the match emission order — is
    /// identical for every worker and every thread count.
    ///
    /// If some step other than the first has no bound position (a cross
    /// product), the plan records a preference for the adaptive streaming
    /// kernel ([`JoinPlan::prefers_streaming`]); [`Matcher::for_each`] then
    /// ignores the plan, which is the selectivity-based fallback.
    pub fn plan_with_options(
        &self,
        target: &Instance,
        prematched: &[usize],
        options: PlanOptions,
    ) -> JoinPlan {
        let mut bound = vec![false; self.vars.len()];
        let mut used = vec![false; self.atoms.len()];
        for &i in prematched {
            used[i] = true;
            for arg in &self.atoms[i].args {
                if let ArgSpec::Slot(s) = arg {
                    bound[*s as usize] = true;
                }
            }
        }
        let mut steps = Vec::with_capacity(self.atoms.len());
        let mut prefer_streaming = false;
        while let Some(_next) = used.iter().position(|u| !u) {
            let mut best: Option<(usize, usize, PlanProbe)> = None;
            for (i, atom) in self.atoms.iter().enumerate() {
                if used[i] {
                    continue;
                }
                let Some(rel) = target
                    .relation(atom.predicate)
                    .filter(|r| r.arity() == atom.args.len())
                else {
                    // Missing relation: the pattern cannot match at all (the
                    // matcher fail-fasts before consulting the plan), so any
                    // placement works; estimate zero to settle it first.
                    if best.as_ref().is_none_or(|&(_, c, _)| c > 0) {
                        best = Some((i, 0, PlanProbe::Scan));
                    }
                    continue;
                };
                let mut atom_best = (rel.len(), PlanProbe::Scan);
                // (estimate, position) of every resolvable argument, for the
                // composite bound-set scoring below.
                let mut resolvable: Vec<(usize, usize)> = Vec::new();
                for (pos, &arg) in atom.args.iter().enumerate() {
                    let est = match arg {
                        ArgSpec::Rigid(key) => Some(rel.matching_count_packed(pos, key)),
                        ArgSpec::Slot(s) if bound[s as usize] => {
                            // Average fan-out of the build side.
                            Some(rel.len().div_ceil(rel.distinct_count(pos).max(1)))
                        }
                        ArgSpec::Slot(_) => None,
                    };
                    if let Some(est) = est {
                        resolvable.push((est, pos));
                        if est < atom_best.0 || matches!(atom_best.1, PlanProbe::Scan) {
                            atom_best = (est, PlanProbe::Index { pos });
                        }
                    }
                }
                // Composite bound set: fuse the individually most selective
                // resolvable positions. Skipped when a single position is
                // already (near-)exact — a composite cannot beat estimate
                // ≤ 1, so the extra index would never pay for itself.
                if options.composite_keys && resolvable.len() >= 2 && atom_best.0 > 1 {
                    resolvable.sort_unstable();
                    let take = resolvable.len().min(ColSet::MAX_COLS);
                    let mut cols: Vec<usize> =
                        resolvable[..take].iter().map(|&(_, pos)| pos).collect();
                    cols.sort_unstable();
                    let cols = ColSet::new(&cols);
                    let rigid_key = self.fused_rigid_key(i, cols);
                    // Pre-gate before materialising the composite index,
                    // for the fan-out branch only: under column
                    // independence the fused distinct count is at most the
                    // product of the per-column ones (memoised, and
                    // already built for the single-column plan), so the
                    // optimistic estimate below lower-bounds the real
                    // average fan-out — if even it cannot beat the current
                    // best, the composite index would never be probed.
                    // An all-rigid set bypasses the gate: its estimate is
                    // an *exact* hit count, which can undercut any
                    // average-based bound (down to 0 for a pair that
                    // never co-occurs).
                    let worth_scoring = rigid_key.is_some() || {
                        let optimistic_distinct = cols
                            .iter()
                            .map(|pos| rel.distinct_count(pos))
                            .fold(1usize, |acc, d| acc.saturating_mul(d.max(1)))
                            .min(rel.len());
                        rel.len().div_ceil(optimistic_distinct.max(1)) < atom_best.0
                    };
                    if worth_scoring {
                        let est = match rigid_key {
                            // All fused positions rigid: exact hit count.
                            Some(key) => rel.key_matching_count(cols, key),
                            // Some position binds at run time: average
                            // fan-out of the composite build side
                            // (memoised distinct).
                            None => rel.len().div_ceil(rel.key_distinct_count(cols).max(1)),
                        };
                        if est < atom_best.0 {
                            atom_best = (est, PlanProbe::Composite { cols });
                        }
                    }
                }
                if best.as_ref().is_none_or(|&(_, c, _)| atom_best.0 < c) {
                    best = Some((i, atom_best.0, atom_best.1));
                }
            }
            let (atom, estimate, probe) = best.expect("some atom is open");
            if !steps.is_empty() && matches!(probe, PlanProbe::Scan) {
                let has_rigid = self.atoms[atom]
                    .args
                    .iter()
                    .any(|a| matches!(a, ArgSpec::Rigid(_)));
                if !has_rigid {
                    prefer_streaming = true;
                }
            }
            used[atom] = true;
            for arg in &self.atoms[atom].args {
                if let ArgSpec::Slot(s) = arg {
                    bound[*s as usize] = true;
                }
            }
            steps.push(PlanStep {
                atom,
                probe,
                estimate,
            });
        }
        let mut prematched = prematched.to_vec();
        prematched.sort_unstable();
        let plan = JoinPlan {
            prematched,
            steps,
            prefer_streaming,
        };
        vadalog_obs::event("model.plan", || plan.explain(self).join("; "));
        plan
    }

    /// The fused key of atom `i` over `cols` when every fused position is
    /// rigid (plan-time exact counting); `None` as soon as one position is a
    /// slot, whose value only exists at run time.
    fn fused_rigid_key(&self, i: usize, cols: ColSet) -> Option<u64> {
        let mut vals = [PackedTerm::UNMATCHABLE; ColSet::MAX_COLS];
        let mut n = 0;
        for pos in cols.iter() {
            match self.atoms[i].args[pos] {
                ArgSpec::Rigid(t) => {
                    vals[n] = t;
                    n += 1;
                }
                ArgSpec::Slot(_) => return None,
            }
        }
        Some(fuse_key(&vals[..n]))
    }
}

/// Options of [`JoinSpec::plan_with_options`].
#[derive(Clone, Copy, Debug)]
pub struct PlanOptions {
    /// Allow composite (multi-column) probe steps backed by fused-key
    /// indexes. On by default; the joins benchmark disables it to time the
    /// single-column probe path on identical data.
    pub composite_keys: bool,
}

impl Default for PlanOptions {
    fn default() -> PlanOptions {
        PlanOptions {
            composite_keys: true,
        }
    }
}

/// An atom compiled into packed slot references, for appending match images
/// to packed row buffers without re-resolving variables per match. Built by
/// [`JoinSpec::row_template`], consumed by [`Bindings::emit`].
#[derive(Clone, Debug)]
pub struct RowTemplate {
    args: Vec<ArgSpec>,
}

impl RowTemplate {
    /// Number of terms the template emits per match.
    pub fn arity(&self) -> usize {
        self.args.len()
    }
}

/// One step of a static build/probe plan.
#[derive(Clone, Copy, Debug)]
enum PlanProbe {
    /// Probe the lazy column key index at this position with the step's
    /// runtime value (a rigid term or a slot bound by an earlier step).
    Index { pos: usize },
    /// Probe the composite key index over this column set with the fused
    /// key of the step's runtime values (each position rigid or bound by an
    /// earlier step). The candidates already agree on every fused position,
    /// so no residual filtering on them survives — the remaining full-row
    /// comparison only settles positions outside the set (and the
    /// vanishingly rare 3-column fold collision).
    Composite { cols: ColSet },
    /// Enumerate the whole relation.
    Scan,
}

#[derive(Clone, Copy, Debug)]
struct PlanStep {
    atom: usize,
    probe: PlanProbe,
    /// The planner's estimated fan-out (matching rows) when this step was
    /// chosen — exact for rigid single/fused keys, an average otherwise.
    /// Purely observational: surfaced by [`JoinPlan::explain`], never read
    /// by the kernel.
    estimate: usize,
}

/// A static join order with per-atom probe positions, computed once by
/// [`JoinSpec::plan`] and replayed by [`Matcher::set_plan`] /
/// [`Matcher::for_each`] without any per-node re-estimation.
#[derive(Clone, Debug)]
pub struct JoinPlan {
    /// Atom indexes assumed prematched (sorted).
    prematched: Vec<usize>,
    steps: Vec<PlanStep>,
    prefer_streaming: bool,
}

impl JoinPlan {
    /// `true` when the planner estimated the adaptive streaming kernel to be
    /// the better path (some mid-join step would be an unbound cross-product
    /// scan). The matcher honours this automatically.
    pub fn prefers_streaming(&self) -> bool {
        self.prefer_streaming
    }

    /// Renders the plan as one line per step — the shared plan text used
    /// by the service's `EXPLAIN` verb, the lint CLI and the `model.plan`
    /// trace event, so plan descriptions cannot drift between surfaces.
    ///
    /// Each line reads
    /// `step=<k> atom=<predicate>/<arity> probe=<kind> est=<fan-out>`
    /// where `<kind>` is `scan`, `index(col=<pos>)` or
    /// `composite(cols=<pos>+<pos>…)` and `est` is the planner's estimated
    /// matching-row count when the step was chosen. When the planner
    /// recorded a preference for the adaptive streaming kernel, a final
    /// `fallback=streaming …` line says so.
    pub fn explain(&self, spec: &JoinSpec) -> Vec<String> {
        let mut lines = Vec::with_capacity(self.steps.len() + 1);
        for (k, step) in self.steps.iter().enumerate() {
            let probe = match step.probe {
                PlanProbe::Index { pos } => format!("index(col={pos})"),
                PlanProbe::Composite { cols } => {
                    let cols: Vec<String> = cols.iter().map(|c| c.to_string()).collect();
                    format!("composite(cols={})", cols.join("+"))
                }
                PlanProbe::Scan => "scan".to_string(),
            };
            lines.push(format!(
                "step={k} atom={}/{} probe={probe} est={}",
                spec.atom_predicate(step.atom),
                spec.atom_arity(step.atom),
                step.estimate,
            ));
        }
        if self.prefer_streaming {
            lines.push("fallback=streaming reason=unbound-mid-join-scan".to_string());
        }
        lines
    }

    /// `true` iff the plan was computed for exactly this prematched-atom
    /// usage state.
    fn applies_to(&self, used: &[bool]) -> bool {
        let mut expected = self.prematched.iter().copied();
        for (i, &u) in used.iter().enumerate() {
            if u && expected.next() != Some(i) {
                return false;
            }
        }
        expected.next().is_none()
    }
}

/// Row-id sentinel for pattern atoms satisfied by [`Matcher::prematch`]
/// (their "row" lives outside the target instance).
pub const PREMATCHED_ROW: RowId = RowId::MAX;

/// A streamed result: read-only view of the kernel's bind state at a match.
pub struct Bindings<'a> {
    vars: &'a [Variable],
    slots: &'a [Option<PackedTerm>],
    rows: &'a [RowId],
}

impl Bindings<'_> {
    /// The binding of a variable, if bound.
    pub fn get(&self, v: Variable) -> Option<Term> {
        let slot = self.vars.iter().position(|&w| w == v)?;
        self.slots[slot].map(PackedTerm::unpack)
    }

    /// The packed binding of a slot, if bound.
    pub fn packed_slot(&self, slot: usize) -> Option<PackedTerm> {
        self.slots[slot]
    }

    /// Appends the image of a compiled [`RowTemplate`] to a packed row
    /// buffer: rigid terms are copied, slots read directly — no variable
    /// lookup, no unpacking. This is how the batched engines park derived
    /// rows.
    ///
    /// # Panics
    ///
    /// If a template slot is unbound (templates are emitted on full matches,
    /// which bind every pattern slot).
    pub fn emit(&self, template: &RowTemplate, out: &mut Vec<PackedTerm>) {
        for arg in &template.args {
            out.push(match *arg {
                ArgSpec::Rigid(p) => p,
                ArgSpec::Slot(s) => {
                    self.slots[s as usize].expect("template slot bound by a full match")
                }
            });
        }
    }

    /// Applies the bindings to a term (variables resolve to their binding or
    /// themselves; constants and nulls are fixed).
    pub fn resolve(&self, t: &Term) -> Term {
        match t {
            Term::Var(v) => self.get(*v).unwrap_or(*t),
            other => *other,
        }
    }

    /// The image of an atom under the bindings.
    pub fn image(&self, atom: &Atom) -> Atom {
        Atom {
            predicate: atom.predicate,
            terms: atom.terms.iter().map(|t| self.resolve(t)).collect(),
        }
    }

    /// The image of an atom where unbound variables fall back to `extra`
    /// (used by the chase to substitute fresh nulls for existentials).
    pub fn image_with(&self, atom: &Atom, extra: impl Fn(Variable) -> Option<Term>) -> Atom {
        Atom {
            predicate: atom.predicate,
            terms: atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => self.get(*v).or_else(|| extra(*v)).unwrap_or(*t),
                    other => *other,
                })
                .collect(),
        }
    }

    /// The target row id matched by each pattern atom, in pattern order
    /// ([`PREMATCHED_ROW`] for atoms satisfied via [`Matcher::prematch`]).
    pub fn matched_rows(&self) -> &[RowId] {
        self.rows
    }

    /// Materialises the bound slots as a [`Substitution`].
    pub fn to_substitution(&self) -> Substitution {
        self.substitution_extending(&Substitution::new())
    }

    /// Materialises `seed` extended with the bound slots (the contract of the
    /// classic [`homomorphisms`] entry point).
    pub fn substitution_extending(&self, seed: &Substitution) -> Substitution {
        let mut out = seed.clone();
        for (slot, binding) in self.slots.iter().enumerate() {
            if let Some(t) = binding {
                out.bind_var(self.vars[slot], t.unpack());
            }
        }
        out
    }
}

/// Reusable search state for a [`JoinSpec`]. Create once, then per run:
/// [`Matcher::clear`], optional [`Matcher::prebind`] / [`Matcher::prematch`],
/// then [`Matcher::for_each`]. All buffers are reused across runs, so a
/// matcher driven in a loop (the semi-naive delta loop, the chase trigger
/// loop) allocates nothing after its first run.
pub struct Matcher<'s> {
    spec: &'s JoinSpec,
    slots: Vec<Option<PackedTerm>>,
    trail: Vec<u32>,
    used: Vec<bool>,
    rows: Vec<RowId>,
    fixed_order: bool,
    plan: Option<&'s JoinPlan>,
    limit: usize,
    budget: Option<KernelBudget<'s>>,
}

impl<'s> Matcher<'s> {
    /// Creates a matcher for a compiled pattern.
    pub fn new(spec: &'s JoinSpec) -> Matcher<'s> {
        Matcher {
            slots: vec![None; spec.num_slots()],
            trail: Vec::with_capacity(spec.num_slots()),
            used: vec![false; spec.num_atoms()],
            rows: vec![PREMATCHED_ROW; spec.num_atoms()],
            spec,
            fixed_order: false,
            plan: None,
            limit: usize::MAX,
            budget: None,
        }
    }

    /// Resets all bindings and pre-matches for the next run (the plan, the
    /// fixed-order flag and the limit are run configuration and persist).
    pub fn clear(&mut self) {
        self.slots.fill(None);
        self.trail.clear();
        self.used.fill(false);
        self.rows.fill(PREMATCHED_ROW);
    }

    /// Follow the pattern's atom order instead of adaptive most-selective
    /// selection (for join-ordering experiments).
    pub fn set_fixed_order(&mut self, fixed: bool) -> &mut Self {
        self.fixed_order = fixed;
        self
    }

    /// Installs a static build/probe plan (see [`JoinSpec::plan`]). The plan
    /// is used by [`Matcher::for_each`] whenever it does not prefer
    /// streaming and its prematched-atom assumption matches the matcher's
    /// state; otherwise the adaptive streaming search runs, so setting a
    /// plan never changes the match set.
    pub fn set_plan(&mut self, plan: Option<&'s JoinPlan>) -> &mut Self {
        self.plan = plan;
        self
    }

    /// Stop after `limit` matches.
    pub fn set_limit(&mut self, limit: usize) -> &mut Self {
        self.limit = limit;
        self
    }

    /// Installs a cooperative cancellation budget (see [`crate::budget`]).
    /// The kernel's candidate loops poll it every
    /// [`crate::budget::BUDGET_POLL_INTERVAL`] probes; a tripped budget
    /// stops the enumeration like a callback `Break`, and the caller reads
    /// the reason off the budget's [`crate::budget::CancelCell`]. With no
    /// budget (the default) the kernel behaves — and counts — exactly as
    /// before.
    pub fn set_budget(&mut self, budget: Option<KernelBudget<'s>>) -> &mut Self {
        self.budget = budget;
        self
    }

    /// Pre-binds a variable before the search. Returns `false` on conflict
    /// with an existing pre-binding (no state is changed in that case).
    /// Terms outside the packed dictionary bind the `UNMATCHABLE` sentinel:
    /// they occur in no instance, so the constrained slots match nothing —
    /// the search correctly yields zero results.
    pub fn prebind(&mut self, v: Variable, t: Term) -> bool {
        let packed = PackedTerm::pack(t).unwrap_or(PackedTerm::UNMATCHABLE);
        match self.spec.slot_of(v) {
            // Binding a variable the pattern never mentions constrains nothing.
            None => true,
            Some(slot) => match self.slots[slot] {
                Some(existing) => existing == packed,
                None => {
                    self.slots[slot] = Some(packed);
                    true
                }
            },
        }
    }

    /// Matches pattern atom `atom_index` against a concrete packed row
    /// (typically a delta fact addressed by row id), binding its slots and
    /// marking the atom as satisfied. Returns `false` if the row does not
    /// match (the caller should [`Matcher::clear`] before the next attempt).
    pub fn prematch(&mut self, atom_index: usize, row: &[PackedTerm]) -> bool {
        let atom = &self.spec.atoms[atom_index];
        if atom.args.len() != row.len() {
            return false;
        }
        for (arg, &val) in atom.args.iter().zip(row.iter()) {
            match *arg {
                ArgSpec::Rigid(t) => {
                    if t != val {
                        return false;
                    }
                }
                ArgSpec::Slot(s) => match self.slots[s as usize] {
                    Some(existing) => {
                        if existing != val {
                            return false;
                        }
                    }
                    None => self.slots[s as usize] = Some(val),
                },
            }
        }
        self.used[atom_index] = true;
        self.rows[atom_index] = PREMATCHED_ROW;
        true
    }

    /// Runs the search over `target`, streaming every homomorphism to `f`.
    /// Returning `ControlFlow::Break(())` from `f` stops the enumeration.
    pub fn for_each<F>(&mut self, target: &Instance, mut f: F) -> JoinStats
    where
        F: FnMut(&Bindings<'_>) -> ControlFlow<()>,
    {
        let mut stats = JoinStats::default();
        if self.limit == 0 {
            return stats;
        }
        // Fail fast if some open pattern atom has no relation (or the wrong
        // arity) in the target: the pattern cannot match at all.
        let open = self.used.iter().filter(|u| !**u).count();
        for (i, atom) in self.spec.atoms.iter().enumerate() {
            if !self.used[i]
                && target
                    .relation(atom.predicate)
                    .filter(|r| r.arity() == atom.args.len())
                    .is_none()
            {
                return stats;
            }
        }
        // A planned run replays the static build/probe order; the plan is
        // honoured only when it does not prefer streaming and was computed
        // for exactly this prematched-atom state, so a stale or unsuitable
        // plan degrades to the adaptive search instead of misbehaving.
        let planned = self
            .plan
            .filter(|p| !self.fixed_order && !p.prefer_streaming && p.applies_to(&self.used));
        // A budget that is already exceeded stops the run before any probe.
        if self.budget.is_some_and(|b| b.poll()) {
            return stats;
        }
        let mut ctx = SearchCtx {
            spec: self.spec,
            target,
            slots: &mut self.slots,
            trail: &mut self.trail,
            used: &mut self.used,
            rows: &mut self.rows,
            fixed_order: self.fixed_order,
            limit: self.limit,
            emitted: 0,
            budget: self.budget,
            stats: &mut stats,
        };
        let _ = match planned {
            Some(plan) => search_planned(&mut ctx, plan, 0, &mut f),
            None => search(&mut ctx, open, &mut f),
        };
        stats
    }
}

struct SearchCtx<'a, 'b> {
    spec: &'a JoinSpec,
    target: &'b Instance,
    slots: &'a mut Vec<Option<PackedTerm>>,
    trail: &'a mut Vec<u32>,
    used: &'a mut Vec<bool>,
    rows: &'a mut Vec<RowId>,
    fixed_order: bool,
    limit: usize,
    emitted: usize,
    budget: Option<KernelBudget<'a>>,
    stats: &'a mut JoinStats,
}

/// The cheapest way to enumerate candidates for one atom.
enum Probe {
    /// Use the column index at this position with this packed key.
    Index(usize, PackedTerm),
    /// Scan the whole relation.
    Scan,
}

impl<'b> SearchCtx<'_, 'b> {
    /// The resolved value of an argument, if rigid or already bound.
    fn resolved(&self, arg: ArgSpec) -> Option<PackedTerm> {
        match arg {
            ArgSpec::Rigid(t) => Some(t),
            ArgSpec::Slot(s) => self.slots[s as usize],
        }
    }

    /// The relation of pattern atom `i` (validated to exist, with matching
    /// arity, before the search starts; resolving it is one lookup in the
    /// Fx-hashed relation map and keeps the run allocation-free).
    fn rel_of(&self, i: usize) -> &'b Relation {
        self.target
            .relation(self.spec.atoms[i].predicate)
            .expect("unsatisfiable atoms are rejected before the search")
    }

    /// Estimates the candidate count for atom `i` and picks its best probe:
    /// the indexed position with the smallest candidate list, falling back to
    /// a full scan when no argument is resolved yet.
    fn cost_of(&self, i: usize) -> (usize, Probe) {
        let rel = self.rel_of(i);
        let mut best = (rel.len(), Probe::Scan);
        for (pos, &arg) in self.spec.atoms[i].args.iter().enumerate() {
            if let Some(key) = self.resolved(arg) {
                let count = rel.matching_count_packed(pos, key);
                if count < best.0 || matches!(best.1, Probe::Scan) {
                    best = (count, Probe::Index(pos, key));
                    if count == 0 {
                        break;
                    }
                }
            }
        }
        best
    }

    /// The probe for atom `i` when its candidate *count* is not needed (the
    /// atom is the only choice): with zero or one resolved position no index
    /// size has to be consulted at all.
    fn probe_of(&self, i: usize) -> Probe {
        let mut found: Option<Probe> = None;
        for (pos, &arg) in self.spec.atoms[i].args.iter().enumerate() {
            if let Some(key) = self.resolved(arg) {
                if found.is_some() {
                    // Several resolved positions: pick the most selective.
                    return self.cost_of(i).1;
                }
                found = Some(Probe::Index(pos, key));
            }
        }
        found.unwrap_or(Probe::Scan)
    }

    /// Picks the next atom: pattern order when `fixed_order`, otherwise the
    /// unused atom with the fewest candidates.
    fn select(&self, open: usize) -> Option<(usize, Probe)> {
        if self.fixed_order || open == 1 {
            let i = self.used.iter().position(|u| !u)?;
            return Some((i, self.probe_of(i)));
        }
        let mut best: Option<(usize, usize, Probe)> = None;
        for i in 0..self.spec.atoms.len() {
            if self.used[i] {
                continue;
            }
            let (cost, probe) = self.cost_of(i);
            if best.as_ref().is_none_or(|(_, c, _)| cost < *c) {
                let zero = cost == 0;
                best = Some((i, cost, probe));
                if zero {
                    break; // dead end; fail as fast as possible
                }
            }
        }
        best.map(|(i, _, probe)| (i, probe))
    }

    /// Binds atom `i`'s slots against a packed row, pushing to the trail;
    /// returns `false` on mismatch (caller unwinds the trail).
    fn match_row(&mut self, i: usize, row: &[PackedTerm]) -> bool {
        for (arg, &val) in self.spec.atoms[i].args.iter().zip(row.iter()) {
            match *arg {
                ArgSpec::Rigid(t) => {
                    if t != val {
                        return false;
                    }
                }
                ArgSpec::Slot(s) => match self.slots[s as usize] {
                    Some(existing) => {
                        if existing != val {
                            return false;
                        }
                    }
                    None => {
                        self.slots[s as usize] = Some(val);
                        self.trail.push(s);
                    }
                },
            }
        }
        true
    }

    fn unwind(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let slot = self.trail.pop().expect("trail is non-empty above the mark");
            self.slots[slot as usize] = None;
        }
    }
}

/// The recursive kernel: zero heap allocation per candidate — candidates are
/// borrowed row-id slices, bindings go through the slot array + undo trail.
fn search<F>(ctx: &mut SearchCtx<'_, '_>, open: usize, f: &mut F) -> ControlFlow<()>
where
    F: FnMut(&Bindings<'_>) -> ControlFlow<()>,
{
    if open == 0 {
        ctx.emitted += 1;
        ctx.stats.matches += 1;
        let view = Bindings {
            vars: &ctx.spec.vars,
            slots: ctx.slots,
            rows: ctx.rows,
        };
        f(&view)?;
        if ctx.emitted >= ctx.limit {
            return ControlFlow::Break(());
        }
        return ControlFlow::Continue(());
    }
    let Some((atom, probe)) = ctx.select(open) else {
        return ControlFlow::Continue(());
    };
    let rel = ctx.rel_of(atom);
    ctx.used[atom] = true;
    let result = match probe {
        Probe::Index(pos, term) => rel.with_matching_rows(pos, term, |ids| {
            if ids.skipped_by_filter() {
                ctx.stats.misses_filtered += 1;
            }
            // Consume the CSR and overflow parts as two plain slice loops
            // (ascending overall) instead of one chained iterator, keeping
            // the per-candidate hot loop branch-free.
            try_candidates(ctx, atom, rel, ids.merged().iter().copied(), open, f)?;
            try_candidates(ctx, atom, rel, ids.appended().iter().copied(), open, f)
        }),
        Probe::Scan => {
            let ids = 0..rel.row_count();
            try_candidates(ctx, atom, rel, ids, open, f)
        }
    };
    ctx.used[atom] = false;
    result
}

fn try_candidates<F>(
    ctx: &mut SearchCtx<'_, '_>,
    atom: usize,
    rel: &Relation,
    candidates: impl Iterator<Item = RowId>,
    open: usize,
    f: &mut F,
) -> ControlFlow<()>
where
    F: FnMut(&Bindings<'_>) -> ControlFlow<()>,
{
    for id in candidates {
        ctx.stats.probes += 1;
        if ctx.stats.probes.is_multiple_of(BUDGET_POLL_INTERVAL)
            && ctx.budget.is_some_and(|b| b.poll())
        {
            return ControlFlow::Break(());
        }
        let mark = ctx.trail.len();
        if ctx.match_row(atom, rel.row(id)) {
            ctx.rows[atom] = id;
            let flow = search(ctx, open - 1, f);
            ctx.unwind(mark);
            flow?;
        } else {
            ctx.unwind(mark);
        }
    }
    ControlFlow::Continue(())
}

/// The planned build/probe kernel: replays a static [`JoinPlan`] — no
/// per-node selection or cost estimation, exactly one column-index probe (or
/// a scan, where planned) per step per binding. Candidate streaming, slot
/// binding, the undo trail and the `probes` unit are shared with the
/// adaptive path, so both enumerate the same match set.
fn search_planned<F>(
    ctx: &mut SearchCtx<'_, '_>,
    plan: &JoinPlan,
    step: usize,
    f: &mut F,
) -> ControlFlow<()>
where
    F: FnMut(&Bindings<'_>) -> ControlFlow<()>,
{
    let Some(&PlanStep { atom, probe, .. }) = plan.steps.get(step) else {
        ctx.emitted += 1;
        ctx.stats.matches += 1;
        let view = Bindings {
            vars: &ctx.spec.vars,
            slots: ctx.slots,
            rows: ctx.rows,
        };
        f(&view)?;
        if ctx.emitted >= ctx.limit {
            return ControlFlow::Break(());
        }
        return ControlFlow::Continue(());
    };
    let rel = ctx.rel_of(atom);
    ctx.used[atom] = true;
    let result = match probe {
        PlanProbe::Index { pos } => {
            let key = ctx
                .resolved(ctx.spec.atoms[atom].args[pos])
                .expect("planned probe position is rigid or bound by an earlier step");
            rel.with_matching_rows(pos, key, |ids| {
                if ids.skipped_by_filter() {
                    ctx.stats.misses_filtered += 1;
                }
                try_candidates_planned(
                    ctx,
                    plan,
                    step,
                    atom,
                    rel,
                    ids.merged().iter().copied(),
                    f,
                )?;
                try_candidates_planned(
                    ctx,
                    plan,
                    step,
                    atom,
                    rel,
                    ids.appended().iter().copied(),
                    f,
                )
            })
        }
        PlanProbe::Composite { cols } => {
            // Fuse the step's runtime values (rigid terms and slots bound by
            // earlier steps) into the composite probe key, in ascending
            // column order — the fusion order of the index itself.
            let mut vals = [PackedTerm::UNMATCHABLE; ColSet::MAX_COLS];
            let mut n = 0;
            for pos in cols.iter() {
                vals[n] = ctx
                    .resolved(ctx.spec.atoms[atom].args[pos])
                    .expect("planned composite position is rigid or bound by an earlier step");
                n += 1;
            }
            let key = fuse_key(&vals[..n]);
            ctx.stats.composite_probes += 1;
            rel.with_key_matching_rows(cols, key, |ids| {
                if ids.skipped_by_filter() {
                    ctx.stats.misses_filtered += 1;
                }
                try_candidates_planned(
                    ctx,
                    plan,
                    step,
                    atom,
                    rel,
                    ids.merged().iter().copied(),
                    f,
                )?;
                try_candidates_planned(
                    ctx,
                    plan,
                    step,
                    atom,
                    rel,
                    ids.appended().iter().copied(),
                    f,
                )
            })
        }
        PlanProbe::Scan => {
            let ids = 0..rel.row_count();
            try_candidates_planned(ctx, plan, step, atom, rel, ids, f)
        }
    };
    ctx.used[atom] = false;
    result
}

fn try_candidates_planned<F>(
    ctx: &mut SearchCtx<'_, '_>,
    plan: &JoinPlan,
    step: usize,
    atom: usize,
    rel: &Relation,
    candidates: impl Iterator<Item = RowId>,
    f: &mut F,
) -> ControlFlow<()>
where
    F: FnMut(&Bindings<'_>) -> ControlFlow<()>,
{
    for id in candidates {
        ctx.stats.probes += 1;
        if ctx.stats.probes.is_multiple_of(BUDGET_POLL_INTERVAL)
            && ctx.budget.is_some_and(|b| b.poll())
        {
            return ControlFlow::Break(());
        }
        let mark = ctx.trail.len();
        if ctx.match_row(atom, rel.row(id)) {
            ctx.rows[atom] = id;
            let flow = search_planned(ctx, plan, step + 1, f);
            ctx.unwind(mark);
            flow?;
        } else {
            ctx.unwind(mark);
        }
    }
    ControlFlow::Continue(())
}

/// Finds homomorphisms from `atoms` into `target`, extending the partial
/// substitution `seed`. Every returned substitution `h` satisfies
/// `h(atoms) ⊆ target` and agrees with `seed`.
///
/// Compatibility wrapper over the streaming kernel; engines drive
/// [`JoinSpec`] / [`Matcher`] directly and never materialise this vector.
pub fn homomorphisms(
    atoms: &[Atom],
    target: &Instance,
    seed: &Substitution,
    options: HomSearch,
) -> Vec<Substitution> {
    let mut results = Vec::new();
    if options.limit == 0 {
        return results;
    }
    let spec = JoinSpec::compile_seeded(atoms, seed);
    let mut matcher = Matcher::new(&spec);
    matcher.set_limit(options.limit);
    matcher.for_each(target, |b| {
        results.push(b.substitution_extending(seed));
        ControlFlow::Continue(())
    });
    results
}

/// Finds one homomorphism from `atoms` into `target` extending `seed`, if any.
pub fn find_homomorphism(
    atoms: &[Atom],
    target: &Instance,
    seed: &Substitution,
) -> Option<Substitution> {
    let spec = JoinSpec::compile_seeded(atoms, seed);
    let mut matcher = Matcher::new(&spec);
    matcher.set_limit(1);
    let mut found = None;
    matcher.for_each(target, |b| {
        found = Some(b.substitution_extending(seed));
        ControlFlow::Break(())
    });
    found
}

/// `true` iff some homomorphism from `atoms` into `target` extends `seed`.
pub fn exists_homomorphism(atoms: &[Atom], target: &Instance, seed: &Substitution) -> bool {
    let spec = JoinSpec::compile_seeded(atoms, seed);
    let mut matcher = Matcher::new(&spec);
    matcher.set_limit(1);
    let mut found = false;
    matcher.for_each(target, |_| {
        found = true;
        ControlFlow::Break(())
    });
    found
}

/// The seed repository's allocation-heavy search, retained verbatim in
/// spirit: `BTreeMap`-backed substitutions cloned once per candidate, all
/// results materialised into a `Vec`, candidates probed on the *first* bound
/// argument position only. It is the correctness oracle for the kernel's
/// property tests and the baseline of the join benchmarks.
pub mod reference {
    use super::{HomSearch, Instance, Substitution};
    use crate::atom::Atom;
    use crate::term::Term;

    /// Finds homomorphisms with the seed algorithm (see module docs).
    pub fn homomorphisms_reference(
        atoms: &[Atom],
        target: &Instance,
        seed: &Substitution,
        options: HomSearch,
    ) -> Vec<Substitution> {
        let mut results = Vec::new();
        if options.limit == 0 {
            return results;
        }
        let mut remaining: Vec<&Atom> = atoms.iter().collect();
        let mut current = seed.clone();
        search(
            &mut remaining,
            target,
            &mut current,
            &mut results,
            options.limit,
        );
        results
    }

    fn search(
        remaining: &mut Vec<&Atom>,
        target: &Instance,
        current: &mut Substitution,
        results: &mut Vec<Substitution>,
        limit: usize,
    ) {
        if results.len() >= limit {
            return;
        }
        if remaining.is_empty() {
            results.push(current.clone());
            return;
        }
        // Pick the atom with the most bound (non-variable after substitution)
        // arguments: it has the fewest candidate matches.
        let (best_idx, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let bound = a
                    .terms
                    .iter()
                    .filter(|t| !current.apply_term(t).is_var())
                    .count();
                (i, bound)
            })
            .max_by_key(|&(_, bound)| bound)
            .expect("remaining is non-empty");
        let atom = remaining.swap_remove(best_idx);
        let partial = current.apply_atom(atom);

        // Use the position index on the first bound argument, otherwise scan
        // the whole relation.
        let candidates: Vec<Atom> =
            match partial.terms.iter().enumerate().find(|(_, t)| !t.is_var()) {
                Some((pos, term)) => target
                    .atoms_matching(partial.predicate, pos, *term)
                    .collect(),
                None => target.atoms_with_predicate(partial.predicate).collect(),
            };

        'candidates: for candidate in candidates {
            if candidate.arity() != partial.arity() {
                continue;
            }
            let mut extension = Substitution::new();
            for (pattern, value) in partial.terms.iter().zip(candidate.terms.iter()) {
                match pattern {
                    Term::Var(_) => match extension.get(pattern) {
                        Some(existing) if existing != *value => continue 'candidates,
                        Some(_) => {}
                        None => extension.bind(*pattern, *value),
                    },
                    // Constants and nulls must match exactly.
                    other => {
                        if other != value {
                            continue 'candidates;
                        }
                    }
                }
            }
            let saved = current.clone();
            if current.merge_compatible(&extension) {
                search(remaining, target, current, results, limit);
            }
            *current = saved;
            if results.len() >= limit {
                break;
            }
        }

        remaining.push(atom);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::database::Database;
    use crate::term::{NullId, Term, Variable};

    fn chain_db() -> Instance {
        Database::from_facts([
            ("edge", vec!["a", "b"]),
            ("edge", vec!["b", "c"]),
            ("edge", vec!["c", "d"]),
        ])
        .unwrap()
        .into_instance()
    }

    fn var(name: &str) -> Term {
        Term::variable(name)
    }

    fn packed(ts: &[Term]) -> Vec<PackedTerm> {
        ts.iter()
            .map(|&t| PackedTerm::pack(t).expect("ground term packs"))
            .collect()
    }

    #[test]
    fn single_atom_matching() {
        let db = chain_db();
        let pattern = vec![Atom::new("edge", vec![var("X"), var("Y")])];
        let hs = homomorphisms(&pattern, &db, &Substitution::new(), HomSearch::all());
        assert_eq!(hs.len(), 3);
    }

    #[test]
    fn join_via_shared_variable() {
        let db = chain_db();
        // edge(X,Y), edge(Y,Z) — two-step paths: a-b-c, b-c-d.
        let pattern = vec![
            Atom::new("edge", vec![var("X"), var("Y")]),
            Atom::new("edge", vec![var("Y"), var("Z")]),
        ];
        let hs = homomorphisms(&pattern, &db, &Substitution::new(), HomSearch::all());
        assert_eq!(hs.len(), 2);
        for h in &hs {
            let y = h.get_var(Variable::new("Y")).unwrap();
            assert!(y == Term::constant("b") || y == Term::constant("c"));
        }
    }

    #[test]
    fn seed_constrains_the_search() {
        let db = chain_db();
        let pattern = vec![Atom::new("edge", vec![var("X"), var("Y")])];
        let mut seed = Substitution::new();
        seed.bind_var(Variable::new("X"), Term::constant("b"));
        let hs = homomorphisms(&pattern, &db, &seed, HomSearch::all());
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0].get_var(Variable::new("Y")), Some(Term::constant("c")));
        // The seed's own bindings are part of the result.
        assert_eq!(hs[0].get_var(Variable::new("X")), Some(Term::constant("b")));
    }

    #[test]
    fn constants_in_patterns_must_match() {
        let db = chain_db();
        let pattern = vec![Atom::new("edge", vec![Term::constant("a"), var("Y")])];
        let hs = homomorphisms(&pattern, &db, &Substitution::new(), HomSearch::all());
        assert_eq!(hs.len(), 1);

        let no_match = vec![Atom::new("edge", vec![Term::constant("z"), var("Y")])];
        assert!(!exists_homomorphism(&no_match, &db, &Substitution::new()));
    }

    #[test]
    fn repeated_variables_require_equal_values() {
        let mut db = Database::new();
        db.insert(Atom::fact("r", &["a", "a"])).unwrap();
        db.insert(Atom::fact("r", &["a", "b"])).unwrap();
        let inst = db.into_instance();
        let pattern = vec![Atom::new("r", vec![var("X"), var("X")])];
        let hs = homomorphisms(&pattern, &inst, &Substitution::new(), HomSearch::all());
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0].get_var(Variable::new("X")), Some(Term::constant("a")));
    }

    #[test]
    fn nulls_in_target_can_be_matched_by_variables() {
        let mut inst = Instance::new();
        inst.insert(Atom::new(
            "r",
            vec![Term::constant("a"), Term::Null(NullId(5))],
        ))
        .unwrap();
        let pattern = vec![Atom::new("r", vec![var("X"), var("Y")])];
        let hs = homomorphisms(&pattern, &inst, &Substitution::new(), HomSearch::all());
        assert_eq!(hs.len(), 1);
        assert_eq!(
            hs[0].get_var(Variable::new("Y")),
            Some(Term::Null(NullId(5)))
        );
    }

    #[test]
    fn limit_short_circuits() {
        let db = chain_db();
        let pattern = vec![Atom::new("edge", vec![var("X"), var("Y")])];
        let hs = homomorphisms(&pattern, &db, &Substitution::new(), HomSearch::first());
        assert_eq!(hs.len(), 1);
    }

    #[test]
    fn empty_pattern_has_the_identity_homomorphism() {
        let db = chain_db();
        let hs = homomorphisms(&[], &db, &Substitution::new(), HomSearch::all());
        assert_eq!(hs.len(), 1);
        assert!(hs[0].is_empty());
    }

    #[test]
    fn kernel_streams_matched_row_ids() {
        let db = chain_db();
        let pattern = vec![
            Atom::new("edge", vec![var("X"), var("Y")]),
            Atom::new("edge", vec![var("Y"), var("Z")]),
        ];
        let spec = JoinSpec::compile(&pattern);
        let mut matcher = Matcher::new(&spec);
        let rel = db.relation(crate::atom::Predicate::new("edge")).unwrap();
        let mut seen = Vec::new();
        matcher.for_each(&db, |b| {
            let rows = b.matched_rows();
            assert_eq!(rows.len(), 2);
            // The matched rows really are the atoms' images.
            assert_eq!(rel.atom(rows[0]), b.image(&pattern[0]));
            assert_eq!(rel.atom(rows[1]), b.image(&pattern[1]));
            seen.push((rows[0], rows[1]));
            ControlFlow::Continue(())
        });
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn prematch_drives_semi_naive_style_joins() {
        let db = chain_db();
        let pattern = vec![
            Atom::new("edge", vec![var("X"), var("Y")]),
            Atom::new("edge", vec![var("Y"), var("Z")]),
        ];
        let spec = JoinSpec::compile(&pattern);
        let mut matcher = Matcher::new(&spec);
        // Pretend edge(b, c) arrived in the delta: seed atom 1 with it.
        assert!(matcher.prematch(1, &packed(&[Term::constant("b"), Term::constant("c")])));
        let mut images = Vec::new();
        matcher.for_each(&db, |b| {
            images.push((b.resolve(&var("X")), b.resolve(&var("Z"))));
            ControlFlow::Continue(())
        });
        assert_eq!(images, vec![(Term::constant("a"), Term::constant("c"))]);

        // A conflicting row does not match.
        matcher.clear();
        assert!(!matcher.prematch(1, &packed(&[Term::constant("b")])));
    }

    #[test]
    fn prebind_constrains_like_a_seed() {
        let db = chain_db();
        let pattern = vec![Atom::new("edge", vec![var("X"), var("Y")])];
        let spec = JoinSpec::compile(&pattern);
        let mut matcher = Matcher::new(&spec);
        assert!(matcher.prebind(Variable::new("X"), Term::constant("b")));
        let mut count = 0;
        matcher.for_each(&db, |b| {
            assert_eq!(b.resolve(&var("Y")), Term::constant("c"));
            count += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(count, 1);
        // Conflicting prebind is rejected.
        assert!(!matcher.prebind(Variable::new("X"), Term::constant("z")));
    }

    #[test]
    fn fixed_order_and_adaptive_order_agree_on_answers() {
        let db = chain_db();
        let pattern = vec![
            Atom::new("edge", vec![var("X"), var("Y")]),
            Atom::new("edge", vec![Term::constant("b"), var("Z")]),
        ];
        let spec = JoinSpec::compile(&pattern);
        let collect = |fixed: bool| {
            let mut matcher = Matcher::new(&spec);
            matcher.set_fixed_order(fixed);
            let mut out = Vec::new();
            matcher.for_each(&db, |b| {
                out.push(b.to_substitution().to_string());
                ControlFlow::Continue(())
            });
            out.sort();
            out
        };
        assert_eq!(collect(true), collect(false));
    }

    #[test]
    fn adaptive_selection_prefers_the_most_selective_position() {
        // Relation r: many rows share column 0's value, exactly one matches
        // on column 1. A first-bound-position probe would examine all rows
        // with r(c, _); the kernel must pick column 1 (one candidate).
        let mut db = Database::new();
        for i in 0..50 {
            db.insert(Atom::fact("r", &["c", &format!("v{i}")]))
                .unwrap();
        }
        let inst = db.into_instance();
        let pattern = vec![Atom::new(
            "r",
            vec![Term::constant("c"), Term::constant("v7")],
        )];
        let spec = JoinSpec::compile(&pattern);
        let mut matcher = Matcher::new(&spec);
        let stats = matcher.for_each(&inst, |_| ControlFlow::Continue(()));
        assert_eq!(stats.matches, 1);
        assert_eq!(
            stats.probes, 1,
            "most selective index position must be used"
        );
    }

    #[test]
    fn planned_and_adaptive_paths_agree() {
        let db = chain_db();
        let pattern = vec![
            Atom::new("edge", vec![var("X"), var("Y")]),
            Atom::new("edge", vec![var("Y"), var("Z")]),
        ];
        let spec = JoinSpec::compile(&pattern);
        let plan = spec.plan(&db, &[]);
        assert!(!plan.prefers_streaming(), "connected join plans fully");
        let collect = |plan: Option<&JoinPlan>| {
            let mut matcher = Matcher::new(&spec);
            matcher.set_plan(plan);
            let mut out = Vec::new();
            let stats = matcher.for_each(&db, |b| {
                out.push(b.to_substitution().to_string());
                ControlFlow::Continue(())
            });
            out.sort();
            (out, stats.matches)
        };
        let (planned, planned_matches) = collect(Some(&plan));
        let (adaptive, adaptive_matches) = collect(None);
        assert_eq!(planned, adaptive);
        assert_eq!(planned_matches, adaptive_matches);
    }

    #[test]
    fn planned_path_respects_prematch_assumptions() {
        let db = chain_db();
        let pattern = vec![
            Atom::new("edge", vec![var("X"), var("Y")]),
            Atom::new("edge", vec![var("Y"), var("Z")]),
        ];
        let spec = JoinSpec::compile(&pattern);
        // Plan assuming atom 0 is prematched (the delta-driver shape).
        let plan = spec.plan(&db, &[0]);
        let mut matcher = Matcher::new(&spec);
        matcher.set_plan(Some(&plan));
        assert!(matcher.prematch(0, &packed(&[Term::constant("a"), Term::constant("b")])));
        let mut images = Vec::new();
        matcher.for_each(&db, |b| {
            images.push((b.resolve(&var("X")), b.resolve(&var("Z"))));
            ControlFlow::Continue(())
        });
        assert_eq!(images, vec![(Term::constant("a"), Term::constant("c"))]);

        // The same matcher without the prematch: the plan no longer applies
        // and the adaptive path answers (correctly) instead.
        matcher.clear();
        let mut count = 0;
        matcher.for_each(&db, |_| {
            count += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(count, 2);
    }

    #[test]
    fn disconnected_patterns_prefer_streaming() {
        let db = chain_db();
        let pattern = vec![
            Atom::new("edge", vec![var("X"), var("Y")]),
            Atom::new("edge", vec![var("Z"), var("W")]),
        ];
        let spec = JoinSpec::compile(&pattern);
        let plan = spec.plan(&db, &[]);
        assert!(
            plan.prefers_streaming(),
            "cross product has no good static order"
        );
        // Setting the plan anyway must not change the (cartesian) match set.
        let mut matcher = Matcher::new(&spec);
        matcher.set_plan(Some(&plan));
        let stats = matcher.for_each(&db, |_| ControlFlow::Continue(()));
        assert_eq!(stats.matches, 9);
    }

    #[test]
    fn composite_plans_probe_multi_column_bound_sets_exactly() {
        // r(x, y, z) over a 10×10×3 grid: both single columns fan out to 30
        // rows, the (0, 1) pair to only 3 — the composite key index is an
        // order of magnitude more selective than any single column, so the
        // planner must emit a composite probe step for the join below.
        let mut db = Database::new();
        for x in 0..10 {
            for y in 0..10 {
                for z in 0..3 {
                    db.insert(Atom::fact(
                        "r",
                        &[&format!("x{x}"), &format!("y{y}"), &format!("z{z}")],
                    ))
                    .unwrap();
                }
            }
        }
        for i in 0..20 {
            db.insert(Atom::fact(
                "e",
                &[&format!("x{}", i % 10), &format!("y{}", (i * 3) % 10)],
            ))
            .unwrap();
        }
        let inst = db.into_instance();
        // e(X, Y) drives (the smallest relation scans first); r(X, Y, Z)
        // then has two bound positions whose fused key is the cheap probe.
        let pattern = vec![
            Atom::new("e", vec![var("X"), var("Y")]),
            Atom::new("r", vec![var("X"), var("Y"), var("Z")]),
        ];
        let spec = JoinSpec::compile(&pattern);
        let plan = spec.plan(&inst, &[]);
        let run_with = |plan: Option<&JoinPlan>| {
            let mut matcher = Matcher::new(&spec);
            matcher.set_plan(plan);
            let mut answers = Vec::new();
            let stats = matcher.for_each(&inst, |b| {
                answers.push(b.to_substitution().to_string());
                ControlFlow::Continue(())
            });
            answers.sort();
            (answers, stats)
        };
        let (composite_answers, composite_stats) = run_with(Some(&plan));
        let (adaptive_answers, adaptive_stats) = run_with(None);
        assert_eq!(composite_answers, adaptive_answers);
        assert_eq!(composite_stats.matches, adaptive_stats.matches);
        assert!(
            composite_stats.composite_probes > 0,
            "two bound columns must plan a composite probe"
        );
        // The single-column plan on the same data answers identically.
        let single = spec.plan_with_options(
            &inst,
            &[],
            PlanOptions {
                composite_keys: false,
            },
        );
        let (single_answers, single_stats) = run_with(Some(&single));
        assert_eq!(single_answers, composite_answers);
        assert_eq!(single_stats.composite_probes, 0);
        assert!(
            composite_stats.probes <= single_stats.probes,
            "composite probes must never examine more candidates"
        );
    }

    #[test]
    fn composite_plans_skip_misses_through_the_fingerprint_filter() {
        // Delta-style joins where most probes miss: edge(X, Y), probe(Y, X)
        // — only one pair exists in `probe`, so almost every composite key
        // fused from an edge row is absent and should be filtered.
        let mut db = Database::new();
        for i in 0..100 {
            db.insert(Atom::fact("edge", &[&format!("a{i}"), &format!("b{i}")]))
                .unwrap();
        }
        db.insert(Atom::fact("probe", &["b7", "a7"])).unwrap();
        // Pad `probe` with enough distinct pairs that its composite index
        // crosses the filter size gate (small tables carry no filter).
        for i in 0..2500 {
            db.insert(Atom::fact("probe", &[&format!("x{i}"), &format!("y{i}")]))
                .unwrap();
        }
        let inst = db.into_instance();
        let pattern = vec![
            Atom::new("edge", vec![var("X"), var("Y")]),
            Atom::new("probe", vec![var("Y"), var("X")]),
        ];
        let spec = JoinSpec::compile(&pattern);
        let plan = spec.plan(&inst, &[0]);
        let mut matches = 0u64;
        let mut stats = JoinStats::default();
        let rel = inst.relation(crate::atom::Predicate::new("edge")).unwrap();
        let mut matcher = Matcher::new(&spec);
        matcher.set_plan(Some(&plan));
        for row in 0..rel.row_count() {
            matcher.clear();
            assert!(matcher.prematch(0, rel.row(row)));
            stats.absorb(matcher.for_each(&inst, |_| ControlFlow::Continue(())));
        }
        matches += stats.matches;
        assert_eq!(matches, 1, "only edge(a7, b7) joins probe(b7, a7)");
        assert!(
            stats.misses_filtered > 50,
            "miss-heavy composite probes must be filter-skipped (got {})",
            stats.misses_filtered
        );
    }

    #[test]
    fn row_templates_emit_match_images() {
        let db = chain_db();
        let pattern = vec![
            Atom::new("edge", vec![var("X"), var("Y")]),
            Atom::new("edge", vec![var("Y"), var("Z")]),
        ];
        let spec = JoinSpec::compile(&pattern);
        let head = Atom::new("t", vec![var("X"), var("Z"), Term::constant("tag")]);
        let template = spec.row_template(&head);
        assert_eq!(template.arity(), 3);
        let mut rows: Vec<PackedTerm> = Vec::new();
        let mut matcher = Matcher::new(&spec);
        matcher.for_each(&db, |b| {
            b.emit(&template, &mut rows);
            ControlFlow::Continue(())
        });
        let mut unpacked: Vec<Vec<Term>> = rows
            .chunks_exact(3)
            .map(|row| row.iter().map(|p| p.unpack()).collect())
            .collect();
        unpacked.sort();
        assert_eq!(
            unpacked,
            vec![
                vec![
                    Term::constant("a"),
                    Term::constant("c"),
                    Term::constant("tag")
                ],
                vec![
                    Term::constant("b"),
                    Term::constant("d"),
                    Term::constant("tag")
                ],
            ]
        );
    }

    #[test]
    fn reference_and_kernel_agree_on_a_join() {
        let db = chain_db();
        let pattern = vec![
            Atom::new("edge", vec![var("X"), var("Y")]),
            Atom::new("edge", vec![var("Y"), var("Z")]),
        ];
        let mut kernel: Vec<String> =
            homomorphisms(&pattern, &db, &Substitution::new(), HomSearch::all())
                .iter()
                .map(|h| h.to_string())
                .collect();
        let mut naive: Vec<String> = reference::homomorphisms_reference(
            &pattern,
            &db,
            &Substitution::new(),
            HomSearch::all(),
        )
        .iter()
        .map(|h| h.to_string())
        .collect();
        kernel.sort();
        naive.sort();
        assert_eq!(kernel, naive);
    }
}
