//! Cheap hashing for the columnar store.
//!
//! Every key hashed on the storage hot path is built from interned integers
//! (symbols, predicates, row hashes, terms), so the DoS-resistant default
//! SipHash costs far more than it buys. This is the FxHash multiply-rotate
//! scheme used by rustc: one rotate, one xor, one multiply per word.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for small integer-shaped keys.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// Mixes one u64 with a single Fibonacci multiply (Knuth's multiplicative
/// hashing: the golden-ratio constant ⌊2^64/φ⌋).
///
/// This is the slot hash of the open-addressed CSR index tables in
/// [`crate::database`]: fused composite join keys are single u64 words, so
/// one multiply per probe beats even the (cheap) hasher construction.
/// **Consumers must take the *high* output bits** — a difference in input
/// bit `i` only propagates to product bits ≥ `i`, so the top bits see every
/// input bit while the low bits ignore the high input half (and fused keys
/// carry one packed column per 32-bit half). The index tables therefore
/// index slots by `hash >> (64 - log2(capacity))`. The fingerprint filters
/// do **not** reuse this hash — they need [`mix_u64`] below.
#[inline]
pub fn hash_u64(word: u64) -> u64 {
    word.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Fully avalanches one u64 (the murmur3 `fmix64` finalizer: xor-shifts
/// interleaved with two odd multiplies).
///
/// This is the fingerprint-filter mix of the CSR index tables. The filter
/// cannot reuse [`hash_u64`]: a bare multiply maps arithmetic progressions
/// of keys (interned symbol ids are handed out sequentially!) onto
/// arithmetic progressions of bits, so an absent key drawn from the same
/// progression as the stored keys would alias their filter bits
/// systematically instead of at the provisioned false-positive rate. The
/// filter is only consulted on large tables — where it spares a probable
/// cache miss — so the extra multiply is well spent.
#[inline]
pub fn mix_u64(word: u64) -> u64 {
    let mut x = word;
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn hash_u64_top_bits_see_every_input_bit() {
        // Fused composite keys put one packed column in each 32-bit half;
        // the slot index is taken from the top bits, so keys sharing either
        // half must still spread over slots.
        let top_bits = |x: u64| hash_u64(x) >> (64 - 16); // a realistic slot width
        let shared_low: std::collections::BTreeSet<u64> =
            (0..64u64).map(|hi| top_bits((hi << 32) | 7)).collect();
        assert!(shared_low.len() > 60, "high halves must spread over slots");
        let shared_high: std::collections::BTreeSet<u64> =
            (0..64u64).map(|lo| top_bits((7 << 32) | lo)).collect();
        assert!(shared_high.len() > 60, "low halves must spread over slots");
        assert_eq!(hash_u64(42), hash_u64(42));
    }

    #[test]
    fn equal_values_hash_equal() {
        let b = FxBuildHasher::default();
        let h = |x: &[u64]| b.hash_one(x);
        assert_eq!(h(&[1, 2, 3]), h(&[1, 2, 3]));
        assert_ne!(h(&[1, 2, 3]), h(&[1, 2, 4]));
        assert_ne!(h(&[1, 2]), h(&[2, 1]));
    }
}
