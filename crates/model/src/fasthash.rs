//! Cheap hashing for the columnar store.
//!
//! Every key hashed on the storage hot path is built from interned integers
//! (symbols, predicates, row hashes, terms), so the DoS-resistant default
//! SipHash costs far more than it buys. This is the FxHash multiply-rotate
//! scheme used by rustc: one rotate, one xor, one multiply per word.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for small integer-shaped keys.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    #[test]
    fn equal_values_hash_equal() {
        let b = FxBuildHasher::default();
        let h = |x: &[u64]| {
            let mut hasher = b.build_hasher();
            x.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h(&[1, 2, 3]), h(&[1, 2, 3]));
        assert_ne!(h(&[1, 2, 3]), h(&[1, 2, 4]));
        assert_ne!(h(&[1, 2]), h(&[2, 1]));
    }
}
