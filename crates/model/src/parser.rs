//! A small Vadalog-like surface syntax.
//!
//! The syntax is the rule-based notation used throughout the paper:
//!
//! ```text
//! % facts are ground atoms terminated by a full stop
//! edge(a, b).
//! edge(b, c).
//!
//! % TGDs are written head :- body. Variables start with an upper-case
//! % letter (or `_`); head-only variables are existentially quantified.
//! t(X, Y) :- edge(X, Y).
//! t(X, Z) :- edge(X, Y), t(Y, Z).
//! triple(X, Z, W) :- type(X, Y), restriction(Y, Z).   % W is existential
//!
//! % queries are written with the reserved head `?`; the arguments are the
//! % output variables. `? :- body.` is a Boolean query.
//! ?(X, Z) :- t(X, Z).
//! ```
//!
//! `_` denotes a don't-care variable (fresh at every occurrence), mirroring
//! the paper's Prolog-style convention in Section 5. Comments start with `%`
//! or `#` and run to the end of the line.

use crate::atom::Atom;
use crate::database::Database;
use crate::error::ModelError;
use crate::program::Program;
use crate::query::ConjunctiveQuery;
use crate::term::{Term, Variable};
use crate::tgd::Tgd;

/// The result of parsing a source text: TGDs, ground facts and queries.
#[derive(Debug, Default, Clone)]
pub struct ParsedProgram {
    /// The set of TGDs Σ.
    pub program: Program,
    /// The database D (ground facts).
    pub database: Database,
    /// The conjunctive queries, in source order.
    pub queries: Vec<ConjunctiveQuery>,
}

/// Parses a complete source text.
pub fn parse(source: &str) -> Result<ParsedProgram, ModelError> {
    Parser::new(source)?.parse_program()
}

/// Parses a single conjunctive query written as `?(X, …) :- body.`.
pub fn parse_query(source: &str) -> Result<ConjunctiveQuery, ModelError> {
    let parsed = parse(source)?;
    parsed
        .queries
        .into_iter()
        .next()
        .ok_or_else(|| ModelError::InvalidQuery("no query found in source".into()))
}

/// Parses a source text expected to contain only TGDs.
pub fn parse_rules(source: &str) -> Result<Program, ModelError> {
    let parsed = parse(source)?;
    Ok(parsed.program)
}

/// Parses a source text expected to contain only ground facts.
pub fn parse_facts(source: &str) -> Result<Database, ModelError> {
    let parsed = parse(source)?;
    Ok(parsed.database)
}

/// Parses a source text expected to contain only ground facts, returning
/// them **in source order** (duplicates preserved).
///
/// [`parse_facts`] routes through a [`Database`], whose per-predicate
/// relation map does not remember statement order across predicates.
/// Stream-oriented consumers — the live ingestion service feeds batches to
/// an append-only store whose row-id assignment *is* the arrival order —
/// need the facts exactly as written.
pub fn parse_fact_list(source: &str) -> Result<Vec<Atom>, ModelError> {
    let mut parser = Parser::new(source)?;
    let mut facts = Vec::new();
    while parser.peek().is_some() {
        let atoms = parser.parse_atom_list()?;
        if matches!(parser.peek().map(|t| &t.token), Some(Token::Implies)) {
            return Err(parser.error_at("expected a fact, found a rule"));
        }
        parser.expect(Token::Dot, "`.`")?;
        for atom in atoms {
            if !atom.is_ground() {
                return Err(ModelError::NonGroundFact(atom.to_string()));
            }
            facts.push(atom);
        }
    }
    Ok(facts)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    UpperIdent(String),
    Number(String),
    QuotedString(String),
    Question,
    LParen,
    RParen,
    Comma,
    Dot,
    Implies, // :-
    Underscore,
}

#[derive(Debug, Clone)]
struct LocatedToken {
    token: Token,
    line: usize,
    column: usize,
}

struct Parser {
    tokens: Vec<LocatedToken>,
    pos: usize,
    anon_counter: usize,
}

impl Parser {
    fn new(source: &str) -> Result<Parser, ModelError> {
        Ok(Parser {
            tokens: lex(source)?,
            pos: 0,
            anon_counter: 0,
        })
    }

    fn peek(&self) -> Option<&LocatedToken> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<LocatedToken> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error_at(&self, message: impl Into<String>) -> ModelError {
        let (line, column) = self.peek().map(|t| (t.line, t.column)).unwrap_or_else(|| {
            self.tokens
                .last()
                .map(|t| (t.line, t.column))
                .unwrap_or((1, 1))
        });
        ModelError::Parse {
            line,
            column,
            message: message.into(),
        }
    }

    fn expect(&mut self, expected: Token, what: &str) -> Result<(), ModelError> {
        match self.next() {
            Some(t) if t.token == expected => Ok(()),
            Some(t) => Err(ModelError::Parse {
                line: t.line,
                column: t.column,
                message: format!("expected {what}, found {:?}", t.token),
            }),
            None => Err(self.error_at(format!("expected {what}, found end of input"))),
        }
    }

    fn parse_program(&mut self) -> Result<ParsedProgram, ModelError> {
        let mut out = ParsedProgram::default();
        while self.peek().is_some() {
            self.parse_statement(&mut out)?;
        }
        Ok(out)
    }

    fn parse_statement(&mut self, out: &mut ParsedProgram) -> Result<(), ModelError> {
        // Query: `? ( vars )? :- body .`
        if matches!(self.peek().map(|t| &t.token), Some(Token::Question)) {
            self.next();
            let output = if matches!(self.peek().map(|t| &t.token), Some(Token::LParen)) {
                self.parse_output_variables()?
            } else {
                Vec::new()
            };
            self.expect(Token::Implies, "`:-`")?;
            let body = self.parse_atom_list()?;
            self.expect(Token::Dot, "`.`")?;
            out.queries.push(ConjunctiveQuery::new(output, body)?);
            return Ok(());
        }

        // Otherwise: an atom list (head) optionally followed by `:- body`.
        let head = self.parse_atom_list()?;
        if matches!(self.peek().map(|t| &t.token), Some(Token::Implies)) {
            self.next();
            let body = self.parse_atom_list()?;
            self.expect(Token::Dot, "`.`")?;
            out.program.add(Tgd::new(body, head)?)?;
        } else {
            self.expect(Token::Dot, "`.`")?;
            for fact in head {
                out.database.insert(fact)?;
            }
        }
        Ok(())
    }

    fn parse_output_variables(&mut self) -> Result<Vec<Variable>, ModelError> {
        self.expect(Token::LParen, "`(`")?;
        let mut vars = Vec::new();
        if matches!(self.peek().map(|t| &t.token), Some(Token::RParen)) {
            self.next();
            return Ok(vars);
        }
        loop {
            match self.next() {
                Some(LocatedToken {
                    token: Token::UpperIdent(name),
                    ..
                }) => vars.push(Variable::new(&name)),
                Some(t) => {
                    return Err(ModelError::Parse {
                        line: t.line,
                        column: t.column,
                        message: "query output positions must be variables".into(),
                    })
                }
                None => return Err(self.error_at("unexpected end of input in query head")),
            }
            match self.next() {
                Some(LocatedToken {
                    token: Token::Comma,
                    ..
                }) => continue,
                Some(LocatedToken {
                    token: Token::RParen,
                    ..
                }) => break,
                Some(t) => {
                    return Err(ModelError::Parse {
                        line: t.line,
                        column: t.column,
                        message: "expected `,` or `)` in query head".into(),
                    })
                }
                None => return Err(self.error_at("unexpected end of input in query head")),
            }
        }
        Ok(vars)
    }

    fn parse_atom_list(&mut self) -> Result<Vec<Atom>, ModelError> {
        let mut atoms = vec![self.parse_atom()?];
        while matches!(self.peek().map(|t| &t.token), Some(Token::Comma)) {
            self.next();
            atoms.push(self.parse_atom()?);
        }
        Ok(atoms)
    }

    fn parse_atom(&mut self) -> Result<Atom, ModelError> {
        let predicate = match self.next() {
            Some(LocatedToken {
                token: Token::Ident(name),
                ..
            }) => name,
            Some(t) => {
                return Err(ModelError::Parse {
                    line: t.line,
                    column: t.column,
                    message: format!("expected a predicate name, found {:?}", t.token),
                })
            }
            None => return Err(self.error_at("expected a predicate name, found end of input")),
        };
        self.expect(Token::LParen, "`(`")?;
        let mut terms = Vec::new();
        if matches!(self.peek().map(|t| &t.token), Some(Token::RParen)) {
            self.next();
            return Ok(Atom::new(predicate.as_str(), terms));
        }
        loop {
            terms.push(self.parse_term()?);
            match self.next() {
                Some(LocatedToken {
                    token: Token::Comma,
                    ..
                }) => continue,
                Some(LocatedToken {
                    token: Token::RParen,
                    ..
                }) => break,
                Some(t) => {
                    return Err(ModelError::Parse {
                        line: t.line,
                        column: t.column,
                        message: "expected `,` or `)` in atom".into(),
                    })
                }
                None => return Err(self.error_at("unexpected end of input in atom")),
            }
        }
        Ok(Atom::new(predicate.as_str(), terms))
    }

    fn parse_term(&mut self) -> Result<Term, ModelError> {
        match self.next() {
            Some(LocatedToken {
                token: Token::Ident(name),
                ..
            }) => Ok(Term::constant(&name)),
            Some(LocatedToken {
                token: Token::Number(n),
                ..
            }) => Ok(Term::constant(&n)),
            Some(LocatedToken {
                token: Token::QuotedString(s),
                ..
            }) => Ok(Term::constant(&s)),
            Some(LocatedToken {
                token: Token::UpperIdent(name),
                ..
            }) => Ok(Term::variable(&name)),
            Some(LocatedToken {
                token: Token::Underscore,
                ..
            }) => {
                self.anon_counter += 1;
                Ok(Term::variable(&format!("_Anon{}", self.anon_counter)))
            }
            Some(t) => Err(ModelError::Parse {
                line: t.line,
                column: t.column,
                message: format!("expected a term, found {:?}", t.token),
            }),
            None => Err(self.error_at("expected a term, found end of input")),
        }
    }
}

fn lex(source: &str) -> Result<Vec<LocatedToken>, ModelError> {
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut column = 1usize;
    let mut chars = source.chars().peekable();

    macro_rules! push {
        ($tok:expr, $col:expr) => {
            tokens.push(LocatedToken {
                token: $tok,
                line,
                column: $col,
            })
        };
    }

    while let Some(&c) = chars.peek() {
        let start_col = column;
        match c {
            '\n' => {
                chars.next();
                line += 1;
                column = 1;
            }
            c if c.is_whitespace() => {
                chars.next();
                column += 1;
            }
            '%' | '#' => {
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    chars.next();
                    column += 1;
                }
            }
            '(' => {
                chars.next();
                column += 1;
                push!(Token::LParen, start_col);
            }
            ')' => {
                chars.next();
                column += 1;
                push!(Token::RParen, start_col);
            }
            ',' => {
                chars.next();
                column += 1;
                push!(Token::Comma, start_col);
            }
            '.' => {
                chars.next();
                column += 1;
                push!(Token::Dot, start_col);
            }
            '?' => {
                chars.next();
                column += 1;
                push!(Token::Question, start_col);
            }
            ':' => {
                chars.next();
                column += 1;
                match chars.peek() {
                    Some('-') => {
                        chars.next();
                        column += 1;
                        push!(Token::Implies, start_col);
                    }
                    _ => {
                        return Err(ModelError::Parse {
                            line,
                            column: start_col,
                            message: "expected `:-`".into(),
                        })
                    }
                }
            }
            '"' => {
                chars.next();
                column += 1;
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => {
                            column += 1;
                            break;
                        }
                        Some('\n') => {
                            return Err(ModelError::Parse {
                                line,
                                column: start_col,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(c) => {
                            column += 1;
                            s.push(c);
                        }
                        None => {
                            return Err(ModelError::Parse {
                                line,
                                column: start_col,
                                message: "unterminated string literal".into(),
                            })
                        }
                    }
                }
                push!(Token::QuotedString(s), start_col);
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() {
                        s.push(c);
                        chars.next();
                        column += 1;
                    } else {
                        break;
                    }
                }
                push!(Token::Number(s), start_col);
            }
            '_' => {
                // Either a lone `_` (anonymous variable) or an identifier
                // starting with `_`, which we treat as a variable name.
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                        column += 1;
                    } else {
                        break;
                    }
                }
                if s == "_" {
                    push!(Token::Underscore, start_col);
                } else {
                    push!(Token::UpperIdent(s), start_col);
                }
            }
            c if c.is_alphabetic() => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                        column += 1;
                    } else {
                        break;
                    }
                }
                if s.chars().next().unwrap().is_uppercase() {
                    push!(Token::UpperIdent(s), start_col);
                } else {
                    push!(Token::Ident(s), start_col);
                }
            }
            other => {
                return Err(ModelError::Parse {
                    line,
                    column: start_col,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Predicate;
    use crate::symbols::Symbol;

    #[test]
    fn parses_facts_rules_and_queries() {
        let src = r#"
            % transitive closure
            edge(a, b).
            edge(b, c).
            t(X, Y) :- edge(X, Y).
            t(X, Z) :- edge(X, Y), t(Y, Z).
            ?(X, Z) :- t(X, Z).
        "#;
        let parsed = parse(src).unwrap();
        assert_eq!(parsed.database.len(), 2);
        assert_eq!(parsed.program.len(), 2);
        assert_eq!(parsed.queries.len(), 1);
        assert_eq!(parsed.queries[0].output.len(), 2);
    }

    #[test]
    fn head_only_variables_are_existential() {
        let src = "r(X, Z) :- p(X).";
        let parsed = parse(src).unwrap();
        let tgd = &parsed.program.tgds()[0];
        assert_eq!(tgd.existential_variables().len(), 1);
    }

    #[test]
    fn multi_atom_heads_are_supported() {
        let src = "r(X, Z), s(Z) :- p(X).";
        let parsed = parse(src).unwrap();
        let tgd = &parsed.program.tgds()[0];
        assert_eq!(tgd.head.len(), 2);
    }

    #[test]
    fn boolean_queries_parse() {
        let src = "? :- t(X, Y), finish(Y).";
        let q = parse_query(src).unwrap();
        assert!(q.is_boolean());
        assert_eq!(q.atoms.len(), 2);
    }

    #[test]
    fn anonymous_variables_are_fresh() {
        let src = "row(X, U, Y, W) :- row(_, X, Y, Z), h(Z, W).";
        let parsed = parse(src).unwrap();
        let tgd = &parsed.program.tgds()[0];
        // The `_` must not equal any named variable and appears only once.
        let vars = tgd.body_variables();
        let anon: Vec<_> = vars
            .iter()
            .filter(|v| v.name().starts_with("_Anon"))
            .collect();
        assert_eq!(anon.len(), 1);
    }

    #[test]
    fn quoted_strings_and_numbers_are_constants() {
        let src = r#"label(n1, "Hello world"). count(n1, 42)."#;
        let parsed = parse(src).unwrap();
        assert_eq!(parsed.database.len(), 2);
        assert!(parsed
            .database
            .domain()
            .contains(&Symbol::new("Hello world")));
        assert!(parsed.database.domain().contains(&Symbol::new("42")));
    }

    #[test]
    fn comments_are_ignored() {
        let src = "# hash comment\n% percent comment\nedge(a, b). % trailing\n";
        let parsed = parse(src).unwrap();
        assert_eq!(parsed.database.len(), 1);
    }

    #[test]
    fn facts_with_variables_are_rejected() {
        let src = "edge(X, b).";
        assert!(parse(src).is_err());
    }

    #[test]
    fn fact_lists_preserve_source_order_across_predicates() {
        let src = r#"edge(a, b). node(c). edge(b, c). label(c, "x.y"). edge(a, b)."#;
        let facts = parse_fact_list(src).unwrap();
        let rendered: Vec<String> = facts.iter().map(|f| f.to_string()).collect();
        assert_eq!(
            rendered,
            vec![
                "edge(a, b)",
                "node(c)",
                "edge(b, c)",
                "label(c, x.y)",
                "edge(a, b)"
            ]
        );
        // Rules and non-ground atoms are rejected with a useful error.
        assert!(parse_fact_list("t(X, Y) :- edge(X, Y).").is_err());
        assert!(matches!(
            parse_fact_list("edge(X, b)."),
            Err(ModelError::NonGroundFact(_))
        ));
    }

    #[test]
    fn rules_with_constants_are_rejected() {
        // The paper's TGDs are constant-free; the parser surfaces the model error.
        let src = "t(X, Y) :- edge(X, a), foo(Y).";
        assert!(parse(src).is_err());
    }

    #[test]
    fn parse_errors_carry_location() {
        let err = parse("edge(a, b)").unwrap_err(); // missing dot
        match err {
            ModelError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
        let err2 = parse("edge(a, ; b).").unwrap_err();
        assert!(matches!(err2, ModelError::Parse { .. }));
    }

    #[test]
    fn example_3_3_owl_program_parses_and_has_expected_schema() {
        let src = r#"
            subclassStar(X, Y) :- subclass(X, Y).
            subclassStar(X, Z) :- subclassStar(X, Y), subclass(Y, Z).
            type(X, Z) :- type(X, Y), subclassStar(Y, Z).
            triple(X, Z, W) :- type(X, Y), restriction(Y, Z).
            triple(Z, W, X) :- triple(X, Y, Z), inverse(Y, W).
            type(X, W) :- triple(X, Y, Z), restriction(W, Y).
        "#;
        let parsed = parse(src).unwrap();
        assert_eq!(parsed.program.len(), 6);
        let edb = parsed.program.extensional_predicates();
        assert!(edb.contains(&Predicate::new("subclass")));
        assert!(edb.contains(&Predicate::new("restriction")));
        assert!(edb.contains(&Predicate::new("inverse")));
        let idb = parsed.program.intensional_predicates();
        assert!(idb.contains(&Predicate::new("subclassStar")));
        assert!(idb.contains(&Predicate::new("type")));
        assert!(idb.contains(&Predicate::new("triple")));
    }

    #[test]
    fn display_round_trip_for_rules() {
        let src = "t(X, Z) :- edge(X, Y), t(Y, Z).";
        let parsed = parse(src).unwrap();
        let printed = parsed.program.tgds()[0].to_string();
        let reparsed = parse(&printed).unwrap();
        assert_eq!(reparsed.program.tgds()[0], parsed.program.tgds()[0]);
    }
}
