//! Query budgets: deadlines, row limits and cooperative cancellation.
//!
//! A served query must never be able to take the service down with it: a
//! pathological join can enumerate for minutes, and a result set can exceed
//! the memory of the machine. The budget machinery here bounds both without
//! making any *successful* evaluation observably different:
//!
//! * A [`QueryBudget`] is the caller-facing limit declaration — an optional
//!   wall-clock timeout and an optional cap on collected answer tuples.
//! * A [`CancelCell`] is the shared cancellation flag a budgeted run
//!   threads through its workers: one relaxed atomic, written once (the
//!   first exceeded limit wins), polled cheaply everywhere.
//! * A [`KernelBudget`] is what the join kernel itself polls: the cell plus
//!   the resolved deadline. [`crate::homomorphism::Matcher::set_budget`]
//!   installs one, and the kernel's candidate loops poll it every
//!   [`BUDGET_POLL_INTERVAL`] probes — frequent enough that a runaway
//!   cross product is cut within microseconds of the deadline, rare enough
//!   that an unbudgeted probe loop pays a single predictable branch.
//!
//! Cancellation is **cooperative and conservative**: a cancelled run stops
//! early and reports [`BudgetExceeded`]; it never returns a partial answer
//! set as if it were complete. Runs without a budget take the `None` branch
//! of every poll and remain bit-identical to the pre-budget kernel.

use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// How often (in kernel probes) the candidate loops poll the budget. A
/// power of two so the check compiles to a mask test on the probe counter.
pub const BUDGET_POLL_INTERVAL: u64 = 1024;

/// Why a budgeted evaluation stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetExceeded {
    /// The wall-clock deadline passed.
    Deadline,
    /// The collected answer tuples exceeded the row cap.
    RowLimit,
    /// The run was cancelled externally (e.g. server shutdown).
    Cancelled,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetExceeded::Deadline => f.write_str("deadline"),
            BudgetExceeded::RowLimit => f.write_str("row-limit"),
            BudgetExceeded::Cancelled => f.write_str("cancelled"),
        }
    }
}

const STATE_LIVE: u8 = 0;
const STATE_DEADLINE: u8 = 1;
const STATE_ROW_LIMIT: u8 = 2;
const STATE_CANCELLED: u8 = 3;

/// A shared, write-once cancellation flag. The first
/// [`CancelCell::cancel`] call records its reason; later calls (from other
/// workers racing on the same budget) are ignored, so every worker of a
/// budgeted run reports the same cause.
#[derive(Debug, Default)]
pub struct CancelCell {
    state: AtomicU8,
}

impl CancelCell {
    /// A live (uncancelled) cell.
    pub fn new() -> CancelCell {
        CancelCell::default()
    }

    /// Requests cancellation for `reason`. The first reason sticks.
    pub fn cancel(&self, reason: BudgetExceeded) {
        let state = match reason {
            BudgetExceeded::Deadline => STATE_DEADLINE,
            BudgetExceeded::RowLimit => STATE_ROW_LIMIT,
            BudgetExceeded::Cancelled => STATE_CANCELLED,
        };
        let _ =
            self.state
                .compare_exchange(STATE_LIVE, state, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// The recorded cancellation reason, if the cell has been cancelled.
    pub fn get(&self) -> Option<BudgetExceeded> {
        match self.state.load(Ordering::Relaxed) {
            STATE_DEADLINE => Some(BudgetExceeded::Deadline),
            STATE_ROW_LIMIT => Some(BudgetExceeded::RowLimit),
            STATE_CANCELLED => Some(BudgetExceeded::Cancelled),
            _ => None,
        }
    }

    /// `true` iff cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.state.load(Ordering::Relaxed) != STATE_LIVE
    }
}

/// The kernel-facing view of a budget: the shared cancel cell plus the
/// resolved absolute deadline. Copyable so every worker and every
/// [`crate::homomorphism::Matcher`] can carry its own.
#[derive(Debug, Clone, Copy)]
pub struct KernelBudget<'a> {
    cell: &'a CancelCell,
    deadline: Option<Instant>,
}

impl<'a> KernelBudget<'a> {
    /// A budget polled against `cell`, timing out at `deadline` (if any).
    pub fn new(cell: &'a CancelCell, deadline: Option<Instant>) -> KernelBudget<'a> {
        KernelBudget { cell, deadline }
    }

    /// The shared cancel cell.
    pub fn cell(&self) -> &'a CancelCell {
        self.cell
    }

    /// Polls the budget: `true` means "stop now". A passed deadline is
    /// recorded in the cell, so sibling workers observe it on their next
    /// poll without reading the clock themselves.
    #[inline]
    pub fn poll(&self) -> bool {
        if self.cell.is_cancelled() {
            return true;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.cell.cancel(BudgetExceeded::Deadline);
                return true;
            }
        }
        false
    }
}

/// The caller-facing resource budget of one query evaluation.
///
/// `Default` is unlimited — a defaulted budget never cancels anything and
/// adds only the poll branches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryBudget {
    /// Wall-clock limit for the whole evaluation.
    pub timeout: Option<Duration>,
    /// Cap on collected answer tuples, counted across all workers as tuples
    /// are materialised (per-worker distinct; a tuple found by two workers
    /// can count twice, so the cap is a resource bound, not an exact answer
    /// count — it can only trip *earlier*, never later).
    pub max_rows: Option<usize>,
}

impl QueryBudget {
    /// No limits at all.
    pub fn unlimited() -> QueryBudget {
        QueryBudget::default()
    }

    /// `true` iff neither limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.timeout.is_none() && self.max_rows.is_none()
    }

    /// Resolves the relative timeout against "now" into an absolute
    /// deadline.
    pub fn deadline(&self) -> Option<Instant> {
        self.timeout.map(|t| Instant::now() + t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_cancellation_reason_wins() {
        let cell = CancelCell::new();
        assert_eq!(cell.get(), None);
        assert!(!cell.is_cancelled());
        cell.cancel(BudgetExceeded::RowLimit);
        cell.cancel(BudgetExceeded::Deadline);
        assert_eq!(cell.get(), Some(BudgetExceeded::RowLimit));
        assert!(cell.is_cancelled());
    }

    #[test]
    fn polling_records_a_passed_deadline_in_the_cell() {
        let cell = CancelCell::new();
        let live = KernelBudget::new(&cell, Some(Instant::now() + Duration::from_secs(3600)));
        assert!(!live.poll());
        assert_eq!(cell.get(), None);

        let passed = KernelBudget::new(&cell, Some(Instant::now() - Duration::from_millis(1)));
        assert!(passed.poll());
        assert_eq!(cell.get(), Some(BudgetExceeded::Deadline));
        // Siblings without their own deadline see the shared cell.
        let sibling = KernelBudget::new(&cell, None);
        assert!(sibling.poll());
    }

    #[test]
    fn unlimited_budget_never_polls_true() {
        let cell = CancelCell::new();
        let budget = KernelBudget::new(&cell, None);
        assert!(!budget.poll());
        assert!(QueryBudget::unlimited().is_unlimited());
        assert!(QueryBudget::default().deadline().is_none());
    }
}
