//! Epoch-stamped immutable snapshots of a materialised [`Instance`].
//!
//! A long-lived service interleaves two kinds of work over one
//! materialisation: **ingestion** (mutates the instance through the
//! incremental engine) and **query serving** (read-only, potentially long
//! running, and ideally never blocked behind an ingest). The broker between
//! them is an [`InstanceSnapshot`]: an `Arc`-shared, immutable view of the
//! instance frozen at a specific **epoch** (a counter the owner bumps once
//! per successful mutation batch).
//!
//! Snapshots are *copy-on-publish*: taking one clones the live instance —
//! O(data), but only once per epoch, because a [`SnapshotCell`] caches the
//! snapshot keyed by epoch and every later acquire at the same epoch is a
//! reference-count bump. Readers therefore run entirely against frozen data
//! (the same freezing discipline the sharded evaluator's rounds use, see
//! [`crate::parallel`]) while the owner keeps appending to the live
//! instance; no lock is held across a query.

use crate::database::Instance;
use std::ops::Deref;
use std::sync::{Arc, Mutex};

/// An immutable view of an [`Instance`], frozen at a specific epoch.
///
/// Cloning is an `Arc` bump; the underlying instance is shared, never
/// copied. Dereferences to [`Instance`], so the whole read-only query
/// surface (CQ evaluation, the sharded kernel, …) works on a snapshot
/// directly.
#[derive(Clone, Debug)]
pub struct InstanceSnapshot {
    epoch: u64,
    instance: Arc<Instance>,
}

impl InstanceSnapshot {
    /// Freezes `instance` (by cloning it) at `epoch`.
    pub fn freeze(instance: &Instance, epoch: u64) -> InstanceSnapshot {
        InstanceSnapshot {
            epoch,
            instance: Arc::new(instance.clone()),
        }
    }

    /// The epoch the snapshot was frozen at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The frozen instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }
}

impl Deref for InstanceSnapshot {
    type Target = Instance;

    fn deref(&self) -> &Instance {
        &self.instance
    }
}

/// An epoch-keyed snapshot cache: the owner of a live instance acquires
/// snapshots through the cell, and only the **first** acquire after a
/// mutation pays the instance clone — every later acquire at the same epoch
/// hands out the cached `Arc`.
///
/// The cell itself is cheap to hold next to the live instance; it does not
/// keep the instance alive and holds no lock beyond the brief cache probe.
#[derive(Debug, Default)]
pub struct SnapshotCell {
    cached: Mutex<Option<InstanceSnapshot>>,
}

impl SnapshotCell {
    /// Creates an empty cell (the first acquire clones).
    pub fn new() -> SnapshotCell {
        SnapshotCell::default()
    }

    /// The snapshot of `live` at `epoch`: the cached one when fresh, a newly
    /// frozen (cloned) one otherwise. The caller is responsible for bumping
    /// `epoch` whenever `live` has been mutated — the cell trusts the epoch,
    /// it does not inspect the instance.
    pub fn acquire(&self, live: &Instance, epoch: u64) -> InstanceSnapshot {
        let mut cached = self.cached.lock().expect("snapshot cache lock poisoned");
        match cached.as_ref() {
            Some(snapshot) if snapshot.epoch == epoch => snapshot.clone(),
            _ => {
                let snapshot = InstanceSnapshot::freeze(live, epoch);
                *cached = Some(snapshot.clone());
                snapshot
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;

    #[test]
    fn snapshots_are_frozen_views_of_the_live_instance() {
        let mut live = Instance::new();
        live.insert(Atom::fact("edge", &["a", "b"])).unwrap();
        let snap = InstanceSnapshot::freeze(&live, 1);
        assert_eq!(snap.epoch(), 1);
        assert_eq!(snap.len(), 1);
        // Later mutations of the live instance are invisible to the snapshot.
        live.insert(Atom::fact("edge", &["b", "c"])).unwrap();
        assert_eq!(snap.len(), 1);
        assert_eq!(live.len(), 2);
    }

    #[test]
    fn the_cell_caches_per_epoch_and_refreshes_on_epoch_change() {
        let mut live = Instance::new();
        live.insert(Atom::fact("edge", &["a", "b"])).unwrap();
        let cell = SnapshotCell::new();
        let first = cell.acquire(&live, 1);
        let second = cell.acquire(&live, 1);
        // Same epoch: the very same shared instance, no re-clone.
        assert!(Arc::ptr_eq(&first.instance, &second.instance));
        // New epoch: a fresh freeze that sees the mutation.
        live.insert(Atom::fact("edge", &["b", "c"])).unwrap();
        let third = cell.acquire(&live, 2);
        assert!(!Arc::ptr_eq(&first.instance, &third.instance));
        assert_eq!(third.epoch(), 2);
        assert_eq!(third.len(), 2);
        assert_eq!(first.len(), 1);
    }

    #[test]
    fn snapshots_are_shareable_across_threads() {
        let mut live = Instance::new();
        live.insert(Atom::fact("edge", &["a", "b"])).unwrap();
        let snap = InstanceSnapshot::freeze(&live, 7);
        let counts: Vec<usize> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let snap = snap.clone();
                    scope.spawn(move || snap.len())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(counts, vec![1; 4]);
    }
}
