//! Tuple-generating dependencies (TGDs), a.k.a. existential rules /
//! Datalog∃ rules (Section 2 of the paper).

use crate::atom::{variables_of, Atom, Predicate};
use crate::error::ModelError;
use crate::substitution::Substitution;
use crate::term::{Term, Variable};
use std::collections::BTreeSet;
use std::fmt;

/// A TGD `∀x̄∀ȳ (φ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄))`, stored as a body and a head list of
/// atoms. Universally quantified variables are the body variables; variables
/// occurring only in the head are implicitly existentially quantified.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Tgd {
    /// The body φ.
    pub body: Vec<Atom>,
    /// The head ψ.
    pub head: Vec<Atom>,
}

impl Tgd {
    /// Creates a TGD and validates it structurally.
    pub fn new(body: Vec<Atom>, head: Vec<Atom>) -> Result<Tgd, ModelError> {
        let tgd = Tgd { body, head };
        tgd.validate()?;
        Ok(tgd)
    }

    /// Creates a TGD without validation (used internally when the invariants
    /// are known to hold, e.g. after renaming variables apart).
    pub fn new_unchecked(body: Vec<Atom>, head: Vec<Atom>) -> Tgd {
        Tgd { body, head }
    }

    /// Structural validation: non-empty body and head, no constants or nulls
    /// in the TGD (the paper's TGDs are constant-free; the parser enforces the
    /// same restriction), and at least one frontier or existential variable in
    /// each head atom is not required but each head atom must only use body
    /// variables or existential variables (trivially true).
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.body.is_empty() {
            return Err(ModelError::InvalidTgd("empty body".into()));
        }
        if self.head.is_empty() {
            return Err(ModelError::InvalidTgd("empty head".into()));
        }
        for atom in self.body.iter().chain(self.head.iter()) {
            for t in &atom.terms {
                match t {
                    Term::Null(_) => {
                        return Err(ModelError::InvalidTgd(format!(
                            "TGD contains a labelled null in {atom}"
                        )))
                    }
                    Term::Const(_) => {
                        return Err(ModelError::InvalidTgd(format!(
                            "TGD contains a constant in {atom}; the formalism of the paper is constant-free"
                        )))
                    }
                    Term::Var(_) => {}
                }
            }
        }
        Ok(())
    }

    /// The variables occurring in the body.
    pub fn body_variables(&self) -> Vec<Variable> {
        variables_of(&self.body)
    }

    /// The variables occurring in the head.
    pub fn head_variables(&self) -> Vec<Variable> {
        variables_of(&self.head)
    }

    /// The frontier: variables occurring in both body and head.
    pub fn frontier(&self) -> BTreeSet<Variable> {
        let body: BTreeSet<Variable> = self.body_variables().into_iter().collect();
        self.head_variables()
            .into_iter()
            .filter(|v| body.contains(v))
            .collect()
    }

    /// The existentially quantified variables: head variables that do not
    /// occur in the body (the paper's `var∃(σ)`).
    pub fn existential_variables(&self) -> BTreeSet<Variable> {
        let body: BTreeSet<Variable> = self.body_variables().into_iter().collect();
        self.head_variables()
            .into_iter()
            .filter(|v| !body.contains(v))
            .collect()
    }

    /// `true` iff the TGD has no existential variables (a *full* TGD).
    pub fn is_full(&self) -> bool {
        self.existential_variables().is_empty()
    }

    /// `true` iff the TGD is full and has a single head atom — i.e. a Datalog
    /// rule (the paper's class `FULL₁`).
    pub fn is_datalog_rule(&self) -> bool {
        self.is_full() && self.head.len() == 1
    }

    /// The predicates occurring in the body.
    pub fn body_predicates(&self) -> BTreeSet<Predicate> {
        self.body.iter().map(|a| a.predicate).collect()
    }

    /// The predicates occurring in the head.
    pub fn head_predicates(&self) -> BTreeSet<Predicate> {
        self.head.iter().map(|a| a.predicate).collect()
    }

    /// Renames every variable `x` of the TGD to `x__<tag>` (the paper's `σ_o`
    /// device for avoiding variable clashes during resolution).
    pub fn rename_apart(&self, tag: &str) -> Tgd {
        let mut subst = Substitution::new();
        for v in self
            .body_variables()
            .into_iter()
            .chain(self.head_variables())
        {
            let fresh = Variable::new(&format!("{}__{}", v.name(), tag));
            subst.bind_var(v, Term::Var(fresh));
        }
        Tgd {
            body: subst.apply_atoms(&self.body),
            head: subst.apply_atoms(&self.head),
        }
    }

    /// Applies a substitution to both body and head.
    pub fn apply(&self, subst: &Substitution) -> Tgd {
        Tgd {
            body: subst.apply_atoms(&self.body),
            head: subst.apply_atoms(&self.head),
        }
    }
}

impl fmt::Display for Tgd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let body: Vec<String> = self.body.iter().map(|a| a.to_string()).collect();
        let head: Vec<String> = self.head.iter().map(|a| a.to_string()).collect();
        write!(f, "{} :- {}.", head.join(", "), body.join(", "))
    }
}

/// Which side of a rule an [`AtomSpan`] points into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RulePart {
    /// The body φ of the TGD.
    Body,
    /// The head ψ of the TGD.
    Head,
}

/// A (part, atom-index) coordinate into one rule, used by diagnostics to
/// point at the offending atom. Renders as `body[2]` / `head[0]` and parses
/// back from that form, so spans survive a trip over the line protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AtomSpan {
    /// Body or head.
    pub part: RulePart,
    /// Index of the atom within that part.
    pub index: usize,
}

impl AtomSpan {
    /// A span into the body.
    pub fn body(index: usize) -> AtomSpan {
        AtomSpan {
            part: RulePart::Body,
            index,
        }
    }

    /// A span into the head.
    pub fn head(index: usize) -> AtomSpan {
        AtomSpan {
            part: RulePart::Head,
            index,
        }
    }
}

impl fmt::Display for AtomSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let part = match self.part {
            RulePart::Body => "body",
            RulePart::Head => "head",
        };
        write!(f, "{part}[{}]", self.index)
    }
}

impl std::str::FromStr for AtomSpan {
    type Err = String;

    fn from_str(s: &str) -> Result<AtomSpan, String> {
        let (part, rest) = if let Some(rest) = s.strip_prefix("body[") {
            (RulePart::Body, rest)
        } else if let Some(rest) = s.strip_prefix("head[") {
            (RulePart::Head, rest)
        } else {
            return Err(format!("bad atom span `{s}`"));
        };
        let index = rest
            .strip_suffix(']')
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| format!("bad atom span `{s}`"))?;
        Ok(AtomSpan { part, index })
    }
}

impl Tgd {
    /// The atom a span points at, if the span is in range.
    pub fn atom_at(&self, span: AtomSpan) -> Option<&Atom> {
        match span.part {
            RulePart::Body => self.body.get(span.index),
            RulePart::Head => self.head.get(span.index),
        }
    }
}

/// Renders a list of variables as source names (`Y, Z`) — diagnostics must
/// never leak the interner's debug representation. Names are sorted, so the
/// rendering does not depend on interner state.
pub fn display_variables<'a>(vars: impl IntoIterator<Item = &'a Variable>) -> String {
    let mut names: Vec<&str> = vars.into_iter().map(|v| v.name()).collect();
    names.sort_unstable();
    names.join(", ")
}

impl fmt::Debug for Tgd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(n: &str) -> Term {
        Term::variable(n)
    }

    /// P(x) → ∃z R(x, z)
    fn existential_tgd() -> Tgd {
        Tgd::new(
            vec![Atom::new("p", vec![var("X")])],
            vec![Atom::new("r", vec![var("X"), var("Z")])],
        )
        .unwrap()
    }

    #[test]
    fn frontier_and_existential_variables() {
        let t = existential_tgd();
        assert_eq!(
            t.frontier().into_iter().collect::<Vec<_>>(),
            vec![Variable::new("X")]
        );
        assert_eq!(
            t.existential_variables().into_iter().collect::<Vec<_>>(),
            vec![Variable::new("Z")]
        );
        assert!(!t.is_full());
        assert!(!t.is_datalog_rule());
    }

    #[test]
    fn full_single_head_tgds_are_datalog_rules() {
        let t = Tgd::new(
            vec![Atom::new("edge", vec![var("X"), var("Y")])],
            vec![Atom::new("t", vec![var("X"), var("Y")])],
        )
        .unwrap();
        assert!(t.is_full());
        assert!(t.is_datalog_rule());
    }

    #[test]
    fn empty_body_or_head_is_invalid() {
        assert!(Tgd::new(vec![], vec![Atom::new("p", vec![var("X")])]).is_err());
        assert!(Tgd::new(vec![Atom::new("p", vec![var("X")])], vec![]).is_err());
    }

    #[test]
    fn constants_in_tgds_are_rejected() {
        let bad = Tgd::new(
            vec![Atom::new("p", vec![Term::constant("a")])],
            vec![Atom::new("q", vec![var("X")])],
        );
        assert!(bad.is_err());
    }

    #[test]
    fn rename_apart_produces_disjoint_variables() {
        let t = existential_tgd();
        let renamed = t.rename_apart("7");
        let original_vars: BTreeSet<Variable> = t
            .body_variables()
            .into_iter()
            .chain(t.head_variables())
            .collect();
        let renamed_vars: BTreeSet<Variable> = renamed
            .body_variables()
            .into_iter()
            .chain(renamed.head_variables())
            .collect();
        assert!(original_vars.is_disjoint(&renamed_vars));
        // Structure preserved.
        assert_eq!(renamed.body.len(), 1);
        assert_eq!(renamed.head.len(), 1);
        assert_eq!(renamed.existential_variables().len(), 1);
    }

    #[test]
    fn display_uses_rule_syntax() {
        let t = existential_tgd();
        assert_eq!(t.to_string(), "r(X, Z) :- p(X).");
    }

    #[test]
    fn predicates_are_reported() {
        let t = existential_tgd();
        assert!(t.body_predicates().contains(&Predicate::new("p")));
        assert!(t.head_predicates().contains(&Predicate::new("r")));
    }
}
