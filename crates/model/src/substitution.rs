//! Substitutions: finite mappings from variables (and nulls) to terms.
//!
//! Substitutions are the workhorse of the whole system: homomorphisms,
//! most-general unifiers, chase triggers and chunk unifiers are all
//! substitutions with extra conditions. Following the paper, a substitution is
//! always the identity on constants; we additionally allow labelled nulls in
//! the domain because homomorphisms between chase instances must map nulls.

use crate::atom::Atom;
use crate::term::{Term, Variable};
use std::collections::BTreeMap;
use std::fmt;

/// A substitution `{x₁ ↦ t₁, …, xₙ ↦ tₙ}` with variables or nulls in its
/// domain. The identity on everything not explicitly mapped.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Substitution {
    map: BTreeMap<Term, Term>,
}

impl Substitution {
    /// The empty (identity) substitution.
    pub fn new() -> Substitution {
        Substitution::default()
    }

    /// Number of explicit bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` iff no bindings are present.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Binds `from` (a variable or null term) to `to`. Panics if `from` is a
    /// constant — substitutions are always the identity on constants.
    pub fn bind(&mut self, from: Term, to: Term) {
        assert!(
            !from.is_const(),
            "substitutions must be the identity on constants (tried to bind {from})"
        );
        self.map.insert(from, to);
    }

    /// Convenience: binds a variable to a term.
    pub fn bind_var(&mut self, v: Variable, to: Term) {
        self.map.insert(Term::Var(v), to);
    }

    /// Looks up the image of a term. Returns `None` if the term is unmapped.
    pub fn get(&self, t: &Term) -> Option<Term> {
        self.map.get(t).copied()
    }

    /// The image of a variable, if bound.
    pub fn get_var(&self, v: Variable) -> Option<Term> {
        self.map.get(&Term::Var(v)).copied()
    }

    /// Applies the substitution to a term (single step, no path compression —
    /// bindings produced by unification are already fully resolved).
    pub fn apply_term(&self, t: &Term) -> Term {
        match t {
            Term::Const(_) => *t,
            other => self.map.get(other).copied().unwrap_or(*other),
        }
    }

    /// Applies the substitution to every argument of an atom.
    pub fn apply_atom(&self, a: &Atom) -> Atom {
        Atom {
            predicate: a.predicate,
            terms: a.terms.iter().map(|t| self.apply_term(t)).collect(),
        }
    }

    /// Applies the substitution to a sequence of atoms.
    pub fn apply_atoms(&self, atoms: &[Atom]) -> Vec<Atom> {
        atoms.iter().map(|a| self.apply_atom(a)).collect()
    }

    /// Restricts the substitution to the given domain of variables
    /// (the paper's `h|S`).
    pub fn restrict_to_vars(&self, vars: &[Variable]) -> Substitution {
        let mut out = Substitution::new();
        for v in vars {
            if let Some(t) = self.get_var(*v) {
                out.bind_var(*v, t);
            }
        }
        out
    }

    /// Composition `other ∘ self`: first apply `self`, then `other`.
    /// Every binding of `self` is rewritten by `other`, and bindings of
    /// `other` whose domain is untouched by `self` are added.
    pub fn compose(&self, other: &Substitution) -> Substitution {
        let mut out = Substitution::new();
        for (from, to) in &self.map {
            out.map.insert(*from, other.apply_term(to));
        }
        for (from, to) in &other.map {
            out.map.entry(*from).or_insert(*to);
        }
        out
    }

    /// Extends this substitution with the bindings of `other`, failing (by
    /// returning `false`) on any conflicting binding.
    pub fn merge_compatible(&mut self, other: &Substitution) -> bool {
        for (from, to) in &other.map {
            match self.map.get(from) {
                Some(existing) if existing != to => return false,
                Some(_) => {}
                None => {
                    self.map.insert(*from, *to);
                }
            }
        }
        true
    }

    /// Iterates over the explicit bindings.
    pub fn iter(&self) -> impl Iterator<Item = (&Term, &Term)> {
        self.map.iter()
    }

    /// The explicit domain of the substitution.
    pub fn domain(&self) -> impl Iterator<Item = &Term> {
        self.map.keys()
    }

    /// `true` iff every explicit binding maps a term to a constant.
    pub fn is_grounding(&self) -> bool {
        self.map.values().all(Term::is_const)
    }
}

impl fmt::Display for Substitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (from, to)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{from} ↦ {to}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Substitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromIterator<(Variable, Term)> for Substitution {
    fn from_iter<I: IntoIterator<Item = (Variable, Term)>>(iter: I) -> Self {
        let mut s = Substitution::new();
        for (v, t) in iter {
            s.bind_var(v, t);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::NullId;

    fn v(name: &str) -> Variable {
        Variable::new(name)
    }

    #[test]
    fn apply_to_atom_replaces_only_bound_terms() {
        let mut s = Substitution::new();
        s.bind_var(v("X"), Term::constant("a"));
        let atom = Atom::new(
            "r",
            vec![
                Term::variable("X"),
                Term::variable("Y"),
                Term::constant("c"),
            ],
        );
        let applied = s.apply_atom(&atom);
        assert_eq!(applied.to_string(), "r(a, Y, c)");
    }

    #[test]
    #[should_panic(expected = "identity on constants")]
    fn binding_a_constant_panics() {
        let mut s = Substitution::new();
        s.bind(Term::constant("a"), Term::constant("b"));
    }

    #[test]
    fn restriction_keeps_only_requested_vars() {
        let mut s = Substitution::new();
        s.bind_var(v("X"), Term::constant("a"));
        s.bind_var(v("Y"), Term::constant("b"));
        let r = s.restrict_to_vars(&[v("X")]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.get_var(v("X")), Some(Term::constant("a")));
        assert_eq!(r.get_var(v("Y")), None);
    }

    #[test]
    fn composition_applies_left_then_right() {
        // self: X -> Y ; other: Y -> a. compose = X -> a (plus Y -> a).
        let mut s = Substitution::new();
        s.bind_var(v("X"), Term::variable("Y"));
        let mut o = Substitution::new();
        o.bind_var(v("Y"), Term::constant("a"));
        let c = s.compose(&o);
        assert_eq!(c.get_var(v("X")), Some(Term::constant("a")));
        assert_eq!(c.get_var(v("Y")), Some(Term::constant("a")));
    }

    #[test]
    fn merge_compatible_detects_conflicts() {
        let mut s = Substitution::new();
        s.bind_var(v("X"), Term::constant("a"));
        let mut o = Substitution::new();
        o.bind_var(v("X"), Term::constant("b"));
        assert!(!s.clone().merge_compatible(&o));

        let mut o2 = Substitution::new();
        o2.bind_var(v("X"), Term::constant("a"));
        o2.bind_var(v("Y"), Term::constant("c"));
        assert!(s.merge_compatible(&o2));
        assert_eq!(s.get_var(v("Y")), Some(Term::constant("c")));
    }

    #[test]
    fn nulls_can_be_mapped() {
        let mut s = Substitution::new();
        s.bind(Term::Null(NullId(0)), Term::constant("a"));
        assert_eq!(s.apply_term(&Term::Null(NullId(0))), Term::constant("a"));
        assert!(s.is_grounding());
    }
}
