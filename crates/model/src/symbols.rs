//! Global string interning.
//!
//! Constants, predicate names and variable names all appear many times in
//! atoms, rules and database facts. Interning them once turns every later
//! comparison and hash into an integer operation, which is essential for the
//! join- and unification-heavy workloads of the chase and the proof-tree
//! search.
//!
//! The interner is global and append-only: a [`Symbol`] is a `u32` index into
//! a process-wide table. Interned strings are leaked exactly once, so
//! [`Symbol::as_str`] can hand out `&'static str` without a guard.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string. Cheap to copy, compare and hash.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    by_name: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            by_name: HashMap::new(),
            names: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `name` and returns its symbol. Interning the same string twice
    /// yields the same symbol.
    pub fn new(name: &str) -> Symbol {
        {
            let guard = interner().read().expect("interner lock poisoned");
            if let Some(&id) = guard.by_name.get(name) {
                return Symbol(id);
            }
        }
        let mut guard = interner().write().expect("interner lock poisoned");
        if let Some(&id) = guard.by_name.get(name) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = u32::try_from(guard.names.len())
            .expect("interner capacity exceeded: more than 2^32 distinct symbols");
        guard.names.push(leaked);
        guard.by_name.insert(leaked, id);
        Symbol(id)
    }

    /// The string this symbol was interned from.
    pub fn as_str(&self) -> &'static str {
        interner().read().expect("interner lock poisoned").names[self.0 as usize]
    }

    /// The raw interner index. Useful for dense per-symbol tables.
    pub fn index(&self) -> u32 {
        self.0
    }

    /// Rebuilds a symbol from a raw interner index. Only used by the packed
    /// term representation ([`crate::term::PackedTerm`]), which always packs
    /// indexes of symbols that were interned earlier.
    pub(crate) fn from_raw(index: u32) -> Symbol {
        Symbol(index)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol::new(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::new("edge");
        let b = Symbol::new("edge");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "edge");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = Symbol::new("alpha_sym_test");
        let b = Symbol::new("beta_sym_test");
        assert_ne!(a, b);
        assert_eq!(a.as_str(), "alpha_sym_test");
        assert_eq!(b.as_str(), "beta_sym_test");
    }

    #[test]
    fn display_round_trips() {
        let a = Symbol::new("hello_world");
        assert_eq!(a.to_string(), "hello_world");
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Symbol::new("concurrent_symbol").index()))
            .collect();
        let ids: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
