//! Databases and instances (Section 2 of the paper).
//!
//! An [`Instance`] is a finite set of atoms over constants and nulls, indexed
//! by predicate and by (position, term) pairs so that the chase and the
//! homomorphism search can retrieve candidate atoms without scanning entire
//! relations. A [`Database`] is an instance whose atoms are all ground
//! (facts).

use crate::atom::{Atom, Predicate};
use crate::error::ModelError;
use crate::symbols::Symbol;
use crate::term::{NullId, Term};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// A finite set of atoms over constants and labelled nulls.
#[derive(Clone, Default)]
pub struct Instance {
    by_predicate: HashMap<Predicate, Vec<Atom>>,
    /// Index: (predicate, argument position, term) → indexes into
    /// `by_predicate[predicate]`.
    position_index: HashMap<(Predicate, usize, Term), Vec<usize>>,
    set: HashSet<Atom>,
    arities: HashMap<Predicate, usize>,
}

impl Instance {
    /// Creates an empty instance.
    pub fn new() -> Instance {
        Instance::default()
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// `true` iff the instance has no atoms.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Inserts an atom; returns `true` if it was not already present.
    /// Returns an error if the atom contains a variable or if its arity
    /// conflicts with earlier atoms over the same predicate.
    pub fn insert(&mut self, atom: Atom) -> Result<bool, ModelError> {
        if !atom.is_variable_free() {
            return Err(ModelError::NonGroundFact(atom.to_string()));
        }
        if let Some(&arity) = self.arities.get(&atom.predicate) {
            if arity != atom.arity() {
                return Err(ModelError::ArityMismatch {
                    predicate: atom.predicate.name().to_string(),
                    expected: arity,
                    found: atom.arity(),
                });
            }
        } else {
            self.arities.insert(atom.predicate, atom.arity());
        }
        if self.set.contains(&atom) {
            return Ok(false);
        }
        self.set.insert(atom.clone());
        let rel = self.by_predicate.entry(atom.predicate).or_default();
        let idx = rel.len();
        for (pos, term) in atom.terms.iter().enumerate() {
            self.position_index
                .entry((atom.predicate, pos, *term))
                .or_default()
                .push(idx);
        }
        rel.push(atom);
        Ok(true)
    }

    /// `true` iff the atom is present.
    pub fn contains(&self, atom: &Atom) -> bool {
        self.set.contains(atom)
    }

    /// All atoms with the given predicate.
    pub fn atoms_with_predicate(&self, p: Predicate) -> &[Atom] {
        self.by_predicate.get(&p).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Atoms with predicate `p` whose argument at `position` equals `term`.
    /// Used by the homomorphism search to exploit already-bound arguments.
    pub fn atoms_matching(&self, p: Predicate, position: usize, term: Term) -> Vec<&Atom> {
        match self.position_index.get(&(p, position, term)) {
            Some(indexes) => {
                let rel = &self.by_predicate[&p];
                indexes.iter().map(|&i| &rel[i]).collect()
            }
            None => Vec::new(),
        }
    }

    /// Iterates over all atoms.
    pub fn iter(&self) -> impl Iterator<Item = &Atom> {
        self.by_predicate.values().flatten()
    }

    /// The predicates present in the instance.
    pub fn predicates(&self) -> impl Iterator<Item = Predicate> + '_ {
        self.by_predicate.keys().copied()
    }

    /// The arity of a predicate, if it occurs in the instance.
    pub fn arity_of(&self, p: Predicate) -> Option<usize> {
        self.arities.get(&p).copied()
    }

    /// The active domain: all constants and nulls occurring in the instance.
    pub fn active_domain(&self) -> BTreeSet<Term> {
        self.iter().flat_map(|a| a.terms.iter().copied()).collect()
    }

    /// All constants occurring in the instance.
    pub fn constants(&self) -> BTreeSet<Symbol> {
        self.iter().flat_map(|a| a.constants()).collect()
    }

    /// All labelled nulls occurring in the instance.
    pub fn nulls(&self) -> BTreeSet<NullId> {
        self.iter().flat_map(|a| a.nulls()).collect()
    }

    /// Number of atoms per predicate, useful for join-order heuristics.
    pub fn relation_size(&self, p: Predicate) -> usize {
        self.by_predicate.get(&p).map(Vec::len).unwrap_or(0)
    }
}

impl FromIterator<Atom> for Instance {
    /// Builds an instance, panicking on invalid atoms; use [`Instance::insert`]
    /// for fallible construction.
    fn from_iter<I: IntoIterator<Item = Atom>>(iter: I) -> Self {
        let mut inst = Instance::new();
        for a in iter {
            inst.insert(a).expect("invalid atom while building instance");
        }
        inst
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut atoms: Vec<String> = self.iter().map(|a| a.to_string()).collect();
        atoms.sort();
        write!(f, "Instance{{{}}}", atoms.join(", "))
    }
}

/// A database: an instance containing only ground facts.
#[derive(Clone, Default, Debug)]
pub struct Database {
    instance: Instance,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Inserts a fact. Fails if the atom is not ground or the arity conflicts.
    pub fn insert(&mut self, fact: Atom) -> Result<bool, ModelError> {
        if !fact.is_ground() {
            return Err(ModelError::NonGroundFact(fact.to_string()));
        }
        self.instance.insert(fact)
    }

    /// Convenience constructor from `(predicate, constants)` tuples.
    pub fn from_facts<'a>(
        facts: impl IntoIterator<Item = (&'a str, Vec<&'a str>)>,
    ) -> Result<Database, ModelError> {
        let mut db = Database::new();
        for (p, args) in facts {
            db.insert(Atom::fact(p, &args))?;
        }
        Ok(db)
    }

    /// The underlying instance view of the database.
    pub fn as_instance(&self) -> &Instance {
        &self.instance
    }

    /// Converts the database into an instance (for chasing).
    pub fn into_instance(self) -> Instance {
        self.instance
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.instance.len()
    }

    /// `true` iff the database is empty.
    pub fn is_empty(&self) -> bool {
        self.instance.is_empty()
    }

    /// `true` iff the fact is present.
    pub fn contains(&self, fact: &Atom) -> bool {
        self.instance.contains(fact)
    }

    /// Iterates over all facts.
    pub fn iter(&self) -> impl Iterator<Item = &Atom> {
        self.instance.iter()
    }

    /// All facts with the given predicate.
    pub fn facts_with_predicate(&self, p: Predicate) -> &[Atom] {
        self.instance.atoms_with_predicate(p)
    }

    /// The constants of the active domain `dom(D)`.
    pub fn domain(&self) -> BTreeSet<Symbol> {
        self.instance.constants()
    }
}

impl FromIterator<Atom> for Database {
    fn from_iter<I: IntoIterator<Item = Atom>>(iter: I) -> Self {
        let mut db = Database::new();
        for a in iter {
            db.insert(a).expect("invalid fact while building database");
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Variable;

    #[test]
    fn insert_deduplicates() {
        let mut db = Database::new();
        assert!(db.insert(Atom::fact("edge", &["a", "b"])).unwrap());
        assert!(!db.insert(Atom::fact("edge", &["a", "b"])).unwrap());
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn non_ground_facts_are_rejected() {
        let mut db = Database::new();
        let bad = Atom::new("edge", vec![Term::constant("a"), Term::variable("X")]);
        assert!(matches!(
            db.insert(bad),
            Err(ModelError::NonGroundFact(_))
        ));
    }

    #[test]
    fn arity_conflicts_are_rejected() {
        let mut db = Database::new();
        db.insert(Atom::fact("p", &["a"])).unwrap();
        assert!(matches!(
            db.insert(Atom::fact("p", &["a", "b"])),
            Err(ModelError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn instances_accept_nulls_but_not_variables() {
        let mut inst = Instance::new();
        inst.insert(Atom::new(
            "r",
            vec![Term::constant("a"), Term::Null(NullId(0))],
        ))
        .unwrap();
        assert_eq!(inst.len(), 1);
        assert_eq!(inst.nulls().len(), 1);

        let bad = Atom::new("r", vec![Term::Var(Variable::new("X")), Term::constant("a")]);
        assert!(inst.insert(bad).is_err());
    }

    #[test]
    fn position_index_finds_matching_atoms() {
        let mut db = Database::new();
        db.insert(Atom::fact("edge", &["a", "b"])).unwrap();
        db.insert(Atom::fact("edge", &["a", "c"])).unwrap();
        db.insert(Atom::fact("edge", &["b", "c"])).unwrap();
        let inst = db.as_instance();
        let from_a = inst.atoms_matching(Predicate::new("edge"), 0, Term::constant("a"));
        assert_eq!(from_a.len(), 2);
        let to_c = inst.atoms_matching(Predicate::new("edge"), 1, Term::constant("c"));
        assert_eq!(to_c.len(), 2);
        assert!(inst
            .atoms_matching(Predicate::new("edge"), 0, Term::constant("z"))
            .is_empty());
    }

    #[test]
    fn domain_collects_constants() {
        let db = Database::from_facts([("edge", vec!["a", "b"]), ("node", vec!["c"])]).unwrap();
        let dom = db.domain();
        assert_eq!(dom.len(), 3);
        assert!(dom.contains(&Symbol::new("a")));
        assert!(dom.contains(&Symbol::new("c")));
    }

    #[test]
    fn relation_size_reports_per_predicate_counts() {
        let db = Database::from_facts([
            ("edge", vec!["a", "b"]),
            ("edge", vec!["b", "c"]),
            ("node", vec!["a"]),
        ])
        .unwrap();
        assert_eq!(db.as_instance().relation_size(Predicate::new("edge")), 2);
        assert_eq!(db.as_instance().relation_size(Predicate::new("node")), 1);
        assert_eq!(db.as_instance().relation_size(Predicate::new("zzz")), 0);
    }
}
