//! Databases and instances (Section 2 of the paper), stored **columnar**.
//!
//! # Storage layout
//!
//! An [`Instance`] is a finite set of atoms over constants and labelled
//! nulls. Internally it is a map from predicate to [`Relation`], and each
//! relation is a single flat, dense table of **packed 4-byte terms**
//! ([`PackedTerm`]: 2 tag bits + a 30-bit symbol/null dictionary index):
//!
//! ```text
//! Relation "edge" (arity 2)
//!   terms: [ a, b,   a, c,   b, c ]      row-major Vec<PackedTerm>,
//!   row 0 ──┘        │        └── row 2  row i = terms[i*arity .. (i+1)*arity]
//!                  row 1
//! ```
//!
//! * **Packed storage.** Every stored term is a `u32`, a quarter the width
//!   of the `Term` enum, so a relation's cache footprint shrinks 4× and row
//!   hashing, dedup probes, column-index lookups and the join kernel's slot
//!   comparisons are integer operations on dense u32 data. The public
//!   [`crate::term::Term`] API survives at the edges: insert paths pack
//!   (rejecting terms past the 30-bit dictionary with
//!   [`ModelError::PackOverflow`]), and the `Atom`-returning convenience
//!   methods unpack lazily — both O(1) per term, no interner access.
//!
//! * **Row ids.** Rows are append-only and never removed, so the index of a
//!   row within its relation (a `u32` [`RowId`]) is a stable, compact
//!   identifier for the fact. Consumers that need to remember sets of facts
//!   (e.g. the oblivious chase's fired-trigger set) store row-id tuples
//!   instead of cloned atoms.
//! * **Deduplication** is row-level: an open-addressed, linear-probing table
//!   maps the hash of a row's terms to its row id (one flat slot array, no
//!   per-key bucket allocation; rows with colliding 64-bit hashes simply
//!   occupy nearby slots and are told apart by exact term comparison).
//!   Inserting a duplicate is detected without materialising an `Atom`.
//! * **Key indexes** (single-column *and* composite). A relation can carry a
//!   hash index over any set of 1–3 columns ([`ColSet`]), keyed on the
//!   **fused u64** of the packed terms ([`fuse_key`]): one packed column is
//!   its raw 31-bit encoding, two fuse losslessly into the u64 halves, and a
//!   third folds in by hashing (candidates are always verified against the
//!   full row, so a fold collision costs a wasted candidate, never a wrong
//!   match). Indexes are built **lazily**, on the first probe of a column
//!   set; sets that are never used as a join key cost nothing.
//!
//!   **CSR storage.** A fresh index is one open-addressed slot table
//!   (`key → (offset, len)`, linear probing, power-of-two capacity, no
//!   tombstones — relations are append-only) whose buckets are slices of a
//!   single shared row-id arena, grouped by key and ascending within each
//!   bucket. A probe is one fused-key hash plus typically one slot read —
//!   one cache line — and hands out a borrowed slice; no per-key `Vec`
//!   exists anywhere. Because regrouping the arena on every append would be
//!   quadratic over a fixpoint's rounds, appended rows first land in a small
//!   per-key **overflow map**; once the unmerged tail would dominate (it
//!   reaches the CSR's size), the whole index is rebuilt in three linear
//!   passes, so the total rebuild work stays O(rows) amortised. CSR ids all
//!   precede overflow ids, keeping candidate enumeration globally ascending
//!   — the order the deterministic merge phases rely on.
//!
//!   **Fingerprint filters.** Each built index carries a power-of-two bit
//!   array with one fingerprint bit per key (≈ 1/16 false-positive rate,
//!   from a full-avalanche mix independent of the slot hash — see
//!   [`crate::fasthash::mix_u64`]). Probes consult it first:
//!   a clear bit proves the key absent without touching the table — the
//!   common case in semi-naive delta rounds, where most probe keys miss.
//!   The skip is observable as the kernel's `misses_filtered` counter
//!   ([`crate::homomorphism::JoinStats`]) and never changes any result (a
//!   filtered key has no candidates either way).
//!
//!   Laziness uses interior mutability (an `RwLock` per single column, plus
//!   a lock-guarded list of composite indexes created on first demand);
//!   probes take `&self`, while inserts take `&mut self`. The locks make
//!   the whole instance [`Sync`]: the sharded parallel evaluator
//!   ([`crate::parallel`]) shares `&Instance` across scoped worker threads,
//!   each probing (and, on first use, building) key indexes concurrently.
//!
//!   Lock-order safety: rows only grow under `&mut self`, so during any probe
//!   session the row count is frozen, long-lived read guards are only
//!   acquired on indexes observed *fresh* under that same guard, and index
//!   builders never block-wait for a write lock (they `try_write` and
//!   re-check, see [`Relation::ensure_key_index`]) — therefore no writer can
//!   queue behind a held read guard, and re-entrant reads (the join kernel
//!   probes an index while enumerating another probe of the same index
//!   higher up the search tree) cannot deadlock. The composite-index list
//!   follows the same discipline (its writers also only `try_write`), and
//!   probes additionally clone the per-index `Arc` and drop the list guard
//!   before locking the index itself, so no thread ever sleeps holding the
//!   list lock.
//!
//! The join kernel in [`crate::homomorphism`] works directly on row ids and
//! borrowed term slices; the `Atom`-returning methods here materialise atoms
//! lazily and exist for the convenience of analysis code, provenance and
//! tests.
//!
//! A [`Database`] is an instance whose atoms are all ground (facts).

use crate::atom::{Atom, Predicate};
use crate::error::ModelError;
use crate::fasthash::{hash_u64, mix_u64, FxHashMap, FxHasher};
use crate::symbols::Symbol;
use crate::term::{NullId, PackedTerm, Term};
use std::collections::BTreeSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::mem::size_of;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Stable identifier of a row within its [`Relation`].
pub type RowId = u32;

/// Converts a row count to the id of the next row, reporting a typed
/// capacity error for relations that have exhausted the 32-bit id space
/// instead of silently truncating (4 billion rows of arity 2 are ~64 GiB of
/// terms, so the bound is reachable on big hosts). The top id `RowId::MAX`
/// is reserved — it is the [`crate::homomorphism::PREMATCHED_ROW`] sentinel,
/// and rejecting it keeps the row *count* itself representable as a
/// [`RowId`] (see [`Relation::row_count`]).
fn checked_row_id(len: usize, predicate: Predicate) -> Result<RowId, ModelError> {
    if len >= RowId::MAX as usize {
        return Err(ModelError::CapacityExceeded {
            predicate: predicate.name().to_string(),
            rows: len,
        });
    }
    Ok(len as RowId)
}

/// Hashes one packed row for the dedup table (also the shard key of the
/// parallel evaluator's delta partitioning). Packed rows are dense u32
/// slices, so this is a handful of integer mixes per row.
pub(crate) fn row_hash(row: &[PackedTerm]) -> u64 {
    let mut hasher = FxHasher::default();
    row.hash(&mut hasher);
    hasher.finish()
}

/// Packs a ground-term slice into `out`, reporting the typed error for
/// variables and dictionary overflow. `out` is cleared first.
fn pack_row_into(
    predicate: Predicate,
    terms: &[Term],
    out: &mut Vec<PackedTerm>,
) -> Result<(), ModelError> {
    out.clear();
    out.reserve(terms.len());
    for t in terms {
        match PackedTerm::pack(*t) {
            Some(p) => out.push(p),
            None if t.is_var() => {
                return Err(ModelError::NonGroundFact(
                    Atom {
                        predicate,
                        terms: terms.to_vec(),
                    }
                    .to_string(),
                ))
            }
            None => {
                return Err(ModelError::PackOverflow {
                    term: t.to_string(),
                })
            }
        }
    }
    Ok(())
}

/// Sentinel marking an empty slot of the [`DedupTable`]: `RowId::MAX` is the
/// reserved [`crate::homomorphism::PREMATCHED_ROW`] id that the insert paths
/// reject, so it can never denote a stored row.
const DEDUP_EMPTY: RowId = RowId::MAX;

/// One slot of the open-addressed row-dedup table.
#[derive(Clone, Copy, Debug)]
struct DedupSlot {
    hash: u64,
    row: RowId,
}

/// Row-level dedup as one flat, linear-probing open-addressed slot array:
/// `row hash → row id`, no per-key bucket allocation. Genuine 64-bit hash
/// collisions are handled by the probe loop itself — the colliding rows
/// occupy nearby slots and are told apart by the caller's exact row
/// comparison — so the table replaces the former hashmap-of-bucket layout
/// with at most a few cache lines per lookup.
///
/// The table is plain owned data: lookups take `&self` (the lock-free probe
/// the parallel workers' pre-dedup uses) and inserts `&mut self`, mirroring
/// the relation's own mutability discipline.
#[derive(Clone, Debug, Default)]
struct DedupTable {
    /// Power-of-two slot array; empty slots hold [`DEDUP_EMPTY`] in `row`.
    slots: Vec<DedupSlot>,
    len: usize,
}

impl DedupTable {
    /// Number of stored entries (= stored rows).
    fn len(&self) -> usize {
        self.len
    }

    /// The first row whose stored hash equals `hash` and which `eq` accepts,
    /// probing linearly from the hash's home slot. `hash` is already a
    /// full-width row hash, so its low bits index the table directly (the
    /// same convention the former hashmap layout used).
    #[inline]
    fn find(&self, hash: u64, eq: impl Fn(RowId) -> bool) -> Option<RowId> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = hash as usize & mask;
        loop {
            let slot = self.slots[i];
            if slot.row == DEDUP_EMPTY {
                return None;
            }
            if slot.hash == hash && eq(slot.row) {
                return Some(slot.row);
            }
            i = (i + 1) & mask;
        }
    }

    /// Records a new row (the caller has already established via
    /// [`DedupTable::find`] that it is not present).
    fn insert(&mut self, hash: u64, row: RowId) {
        debug_assert_ne!(row, DEDUP_EMPTY, "the top row id is reserved");
        // Grow at 5/8 load: linear probing (no SIMD group scan) needs the
        // headroom to keep *miss* chains — the common case for the workers'
        // pre-dedup probes — down to a few slots.
        if (self.len + 1) * 8 >= self.slots.len() * 5 {
            self.grow();
        }
        Self::insert_raw(&mut self.slots, hash, row);
        self.len += 1;
    }

    fn insert_raw(slots: &mut [DedupSlot], hash: u64, row: RowId) {
        let mask = slots.len() - 1;
        let mut i = hash as usize & mask;
        while slots[i].row != DEDUP_EMPTY {
            i = (i + 1) & mask;
        }
        slots[i] = DedupSlot { hash, row };
    }

    fn grow(&mut self) {
        let cap = (self.slots.len() * 2).max(16);
        let mut slots = vec![
            DedupSlot {
                hash: 0,
                row: DEDUP_EMPTY,
            };
            cap
        ];
        for slot in self.slots.iter().filter(|s| s.row != DEDUP_EMPTY) {
            Self::insert_raw(&mut slots, slot.hash, slot.row);
        }
        self.slots = slots;
    }

    /// Heap bytes of the slot array.
    fn heap_bytes(&self) -> usize {
        self.slots.len() * size_of::<DedupSlot>()
    }
}

/// A set of 1–3 column positions probed together, stored in ascending
/// position order — the identity of a (composite) key index over a relation
/// and the unit the join planner scores multi-column bound sets in.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ColSet {
    cols: [u16; Self::MAX_COLS],
    len: u8,
}

impl ColSet {
    /// Largest number of columns a key index fuses. Two packed columns fuse
    /// losslessly into a u64; a third folds in by hashing (see [`fuse_key`]).
    pub const MAX_COLS: usize = 3;

    /// The singleton set of one column (constructed directly — this sits on
    /// the per-probe hot path of the single-column wrappers).
    #[inline]
    pub fn single(col: usize) -> ColSet {
        ColSet {
            cols: [
                u16::try_from(col).expect("column position fits u16 (arity < 65536)"),
                0,
                0,
            ],
            len: 1,
        }
    }

    /// Builds a set from distinct column positions (given in any order, at
    /// most [`ColSet::MAX_COLS`] of them, each below 65536 — far beyond any
    /// storable arity, since every row spends 4 bytes per column).
    pub fn new(cols: &[usize]) -> ColSet {
        assert!(
            (1..=Self::MAX_COLS).contains(&cols.len()),
            "a key index covers 1..=3 columns"
        );
        let mut sorted = [0u16; Self::MAX_COLS];
        for (slot, &col) in sorted.iter_mut().zip(cols) {
            *slot = u16::try_from(col).expect("column position fits u16 (arity < 65536)");
        }
        sorted[..cols.len()].sort_unstable();
        assert!(
            sorted[..cols.len()].windows(2).all(|w| w[0] < w[1]),
            "column positions must be distinct"
        );
        ColSet {
            cols: sorted,
            len: cols.len() as u8,
        }
    }

    /// Number of columns in the set (1–3).
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Always `false`: a key index covers at least one column.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The column positions, in ascending order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.cols[..self.len()].iter().map(|&c| c as usize)
    }
}

impl fmt::Display for ColSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols: Vec<String> = self.iter().map(|c| c.to_string()).collect();
        write!(f, "({})", cols.join(","))
    }
}

/// Fuses 1–3 packed terms — one per column of a [`ColSet`], in ascending
/// column order — into the u64 probe key of a key index.
///
/// Stored packed terms only carry the constant/null tags, so their raw
/// encoding fits 31 bits: one column is the raw value itself and two columns
/// fuse **losslessly** into the two u64 halves — equal keys mean equal
/// column values, nothing left to re-check. Three columns exceed 64 bits and
/// are folded with [`hash_u64`]; a fold collision surfaces as an extra
/// candidate row that the kernel's full-row comparison rejects, exactly like
/// a fingerprint false positive (wasted work, never a wrong match).
#[inline]
pub fn fuse_key(vals: &[PackedTerm]) -> u64 {
    match vals {
        [a] => u64::from(a.raw()),
        [a, b] => (u64::from(a.raw()) << 32) | u64::from(b.raw()),
        [a, b, c] => {
            let ab = (u64::from(a.raw()) << 32) | u64::from(b.raw());
            hash_u64(ab) ^ u64::from(c.raw()).rotate_left(31)
        }
        _ => unreachable!("key indexes cover 1..=3 columns"),
    }
}

/// One slot of a key index's open-addressed table: a fused key and its
/// bucket as an `(offset, len)` slice of the shared row-id arena. Empty
/// slots have `len == 0` (every present key owns at least one row).
#[derive(Clone, Copy, Debug)]
struct IndexSlot {
    key: u64,
    offset: u32,
    len: u32,
}

const EMPTY_SLOT: IndexSlot = IndexSlot {
    key: 0,
    offset: 0,
    len: 0,
};

/// Rows required before the first CSR build; below this the overflow map
/// alone serves probes, so tiny relations never pay for a rebuild.
const CSR_BUILD_MIN_ROWS: usize = 16;

/// Fingerprint-filter bits **initially** provisioned per distinct key (one
/// set bit per key, so the false-positive rate starts at ≈ 1/16). The
/// provisioning is adaptive: an index whose *measured* false-positive rate
/// exceeds twice the provisioned target doubles its per-key bits (up to
/// [`FILTER_MAX_BITS_PER_KEY`]) at the next index update — see
/// [`KeyIndex::maybe_grow_filter`].
const FILTER_BITS_PER_KEY: usize = 16;

/// Upper bound of the adaptive per-key filter provisioning. 256 bits/key is
/// a ≈ 1/256 false-positive target at 32 bytes per key — past that the
/// filter would rival the slot table itself and growing further cannot pay.
const FILTER_MAX_BITS_PER_KEY: usize = 256;

/// Misses (filter skips + false positives) that must be observed before an
/// adaptive resize decision is made. Below this the measured rate is noise;
/// each decision consumes the window so a persistent rate re-triggers on
/// fresh evidence only.
const FILTER_RESIZE_MIN_MISSES: u64 = 512;

/// Smallest slot-table capacity that gets a fingerprint filter. A filter's
/// only payoff is sparing the slot probe on a miss; when the table fits
/// comfortably in cache that probe costs the same handful of cycles the
/// filter check does, so small indexes skip the filter entirely and only
/// genuinely large tables — where a miss probe is a likely cache miss —
/// carry one.
const FILTER_MIN_SLOTS: usize = 1 << 12;

/// A lazily-built hash index over a [`ColSet`] of a relation's columns,
/// keyed on the fused u64 of the packed terms (see the module docs for the
/// CSR memory layout and the rebuild policy).
#[derive(Debug)]
struct KeyIndex {
    /// Open-addressed slot table over the CSR arena (power-of-two capacity,
    /// linear probing, no tombstones — relations are append-only).
    slots: Vec<IndexSlot>,
    /// Shared row-id arena: the bucket of a slot `s` is
    /// `arena[s.offset .. s.offset + s.len]`, ascending.
    arena: Vec<RowId>,
    /// Rows `0..csr_rows` are grouped in the CSR arena.
    csr_rows: RowId,
    /// Rows `csr_rows..rows_indexed`, per key, appended since the last
    /// rebuild (ids ascending within each entry, and all of them larger
    /// than every CSR id).
    overflow: FxHashMap<u64, Vec<RowId>>,
    /// Rows indexed so far (CSR + overflow) — the freshness watermark.
    rows_indexed: RowId,
    /// Distinct keys across CSR and overflow. Maintained incrementally, so
    /// the planner's (memoised) distinct-count probes are O(1) once the
    /// index is fresh.
    distinct: usize,
    /// One fingerprint bit per indexed key (power-of-two bit count; empty
    /// until the first CSR build, which disables filtering).
    filter: Vec<u64>,
    /// Current adaptive per-key filter provisioning (starts at
    /// [`FILTER_BITS_PER_KEY`], doubles when the measured false-positive
    /// rate exceeds twice the provisioned target).
    filter_bits_per_key: usize,
    /// Miss probes the filter proved absent without touching the slot table.
    /// Atomic because probes run under the index's **read** lock (possibly
    /// from many worker threads at once); consumed, together with
    /// `filter_false_positives`, by the adaptive resize decision, which runs
    /// only under the write lock at index-update points.
    filter_skips: AtomicU64,
    /// Miss probes the filter let through (the bit was set but the probed
    /// key had no candidates) — the numerator of the measured
    /// false-positive rate.
    filter_false_positives: AtomicU64,
}

impl Default for KeyIndex {
    fn default() -> KeyIndex {
        KeyIndex {
            slots: Vec::new(),
            arena: Vec::new(),
            csr_rows: 0,
            overflow: FxHashMap::default(),
            rows_indexed: 0,
            distinct: 0,
            filter: Vec::new(),
            filter_bits_per_key: FILTER_BITS_PER_KEY,
            filter_skips: AtomicU64::new(0),
            filter_false_positives: AtomicU64::new(0),
        }
    }
}

impl Clone for KeyIndex {
    fn clone(&self) -> KeyIndex {
        KeyIndex {
            slots: self.slots.clone(),
            arena: self.arena.clone(),
            csr_rows: self.csr_rows,
            overflow: self.overflow.clone(),
            rows_indexed: self.rows_indexed,
            distinct: self.distinct,
            filter: self.filter.clone(),
            filter_bits_per_key: self.filter_bits_per_key,
            filter_skips: AtomicU64::new(self.filter_skips.load(Ordering::Relaxed)),
            filter_false_positives: AtomicU64::new(
                self.filter_false_positives.load(Ordering::Relaxed),
            ),
        }
    }
}

impl KeyIndex {
    /// The fused key of `row` over the index's column set.
    fn key_of(terms: &[PackedTerm], arity: usize, cols: ColSet, row: RowId) -> u64 {
        let base = row as usize * arity;
        let mut vals = [PackedTerm::UNMATCHABLE; ColSet::MAX_COLS];
        let mut n = 0;
        for col in cols.iter() {
            vals[n] = terms[base + col];
            n += 1;
        }
        fuse_key(&vals[..n])
    }

    /// The slot index of `key` in an open-addressed table, linear-probing
    /// from its home position; the returned slot is empty (`len == 0`) when
    /// the key is absent.
    fn slot_index(slots: &[IndexSlot], key: u64) -> usize {
        Self::slot_index_hashed(slots, key, hash_u64(key))
    }

    /// [`KeyIndex::slot_index`] with the key's hash already computed (the
    /// probe hot path shares one hash between the filter and the table).
    /// The home slot comes from the hash's **top** bits — the only bits a
    /// single-multiply mix fully avalanches (see [`hash_u64`]).
    #[inline]
    fn slot_index_hashed(slots: &[IndexSlot], key: u64, hash: u64) -> usize {
        let mask = slots.len() - 1;
        let mut i = (hash >> (64 - slots.len().trailing_zeros())) as usize;
        while slots[i].len != 0 && slots[i].key != key {
            i = (i + 1) & mask;
        }
        i
    }

    /// The fingerprint bit of `key`, drawn from a **full-avalanche** mix
    /// ([`mix_u64`]) — independent of the slot hash, and immune to the
    /// progression aliasing a bare multiply would inherit from sequentially
    /// interned symbol ids.
    fn filter_bit(filter_words: usize, key: u64) -> (usize, u64) {
        let bits = filter_words * 64;
        let bit = mix_u64(key) as usize & (bits - 1);
        (bit / 64, 1u64 << (bit % 64))
    }

    /// Brings the index up to date with rows `0..rows`: appended rows land
    /// in the overflow map, and once the unmerged tail reaches the CSR's
    /// size the whole index is rebuilt (geometric threshold, so total
    /// rebuild work stays O(rows) amortised).
    fn ensure(&mut self, terms: &[PackedTerm], arity: usize, cols: ColSet, rows: RowId) {
        if self.rows_indexed == rows {
            return;
        }
        // Index-update points are where the adaptive filter provisioning is
        // re-examined: the probes against the previous index version have
        // all completed (rows only grow under `&mut Instance`, so no probe
        // is in flight), which makes the miss counters a deterministic
        // function of the data — independent of thread count and probe
        // interleaving — and keeps the cross-thread bit-identity of the
        // `misses_filtered` counters intact.
        self.maybe_grow_filter();
        let unmerged = (rows - self.csr_rows) as usize;
        if unmerged >= (self.csr_rows as usize).max(CSR_BUILD_MIN_ROWS) {
            self.rebuild(terms, arity, cols, rows);
        } else {
            self.extend(terms, arity, cols, rows);
        }
    }

    /// Rebuilds the CSR over rows `0..rows` in three linear passes: fuse all
    /// keys, count per key into the slot table (then prefix-sum the bucket
    /// offsets), scatter the row ids. Ascending scatter order keeps every
    /// bucket ascending. The overflow map and the fingerprint filter are
    /// reset to match.
    fn rebuild(&mut self, terms: &[PackedTerm], arity: usize, cols: ColSet, rows: RowId) {
        let n = rows as usize;
        let keys: Vec<u64> = (0..rows)
            .map(|row| Self::key_of(terms, arity, cols, row))
            .collect();
        // Count per key, in a table sized for the worst case (all distinct).
        let mut slots = vec![EMPTY_SLOT; (n * 2).max(8).next_power_of_two()];
        let mut distinct = 0usize;
        for &key in &keys {
            let i = Self::slot_index(&slots, key);
            if slots[i].len == 0 {
                slots[i].key = key;
                distinct += 1;
            }
            slots[i].len += 1;
        }
        // Tighten the table to the actual key count (low-cardinality columns
        // would otherwise pay 2×rows slots forever).
        let tight_cap = (distinct * 2).max(8).next_power_of_two();
        if tight_cap < slots.len() {
            let mut tight = vec![EMPTY_SLOT; tight_cap];
            for slot in slots.iter().filter(|s| s.len != 0) {
                let i = Self::slot_index(&tight, slot.key);
                tight[i] = *slot;
            }
            slots = tight;
        }
        // Prefix-sum the offsets. `len` must stay intact — `slot_index`
        // reads it as the occupancy flag — so the scatter cursor lives in a
        // parallel array instead.
        let mut offset = 0u32;
        for slot in slots.iter_mut().filter(|s| s.len != 0) {
            slot.offset = offset;
            offset += slot.len;
        }
        // Scatter the rows in ascending id order.
        let mut cursor = vec![0u32; slots.len()];
        self.arena.clear();
        self.arena.resize(n, 0);
        for (row, &key) in keys.iter().enumerate() {
            let i = Self::slot_index(&slots, key);
            self.arena[(slots[i].offset + cursor[i]) as usize] = row as RowId;
            cursor[i] += 1;
        }
        // Fingerprints of the (now complete) key set — only once the slot
        // table is big enough that skipping a miss probe pays (see
        // [`FILTER_MIN_SLOTS`]). The filter is provisioned at the current
        // adaptive per-key width, and the miss window restarts with it.
        self.filter.clear();
        if slots.len() >= FILTER_MIN_SLOTS {
            let words = (distinct * self.filter_bits_per_key)
                .max(64)
                .next_power_of_two()
                / 64;
            self.filter.resize(words, 0);
            for slot in slots.iter().filter(|s| s.len != 0) {
                let (word, mask) = Self::filter_bit(words, slot.key);
                self.filter[word] |= mask;
            }
        }
        *self.filter_skips.get_mut() = 0;
        *self.filter_false_positives.get_mut() = 0;
        self.slots = slots;
        self.overflow.clear();
        self.csr_rows = rows;
        self.rows_indexed = rows;
        self.distinct = distinct;
    }

    /// Appends rows `rows_indexed..rows` to the overflow map, keeping the
    /// distinct count and the fingerprint filter in sync.
    fn extend(&mut self, terms: &[PackedTerm], arity: usize, cols: ColSet, rows: RowId) {
        for row in self.rows_indexed..rows {
            let key = Self::key_of(terms, arity, cols, row);
            let slots = &self.slots;
            match self.overflow.entry(key) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    // Only a key new to the overflow can be new overall —
                    // the CSR probe is not worth running otherwise.
                    let in_csr = !slots.is_empty() && slots[Self::slot_index(slots, key)].len != 0;
                    if !in_csr {
                        self.distinct += 1;
                    }
                    slot.insert(vec![row]);
                }
                std::collections::hash_map::Entry::Occupied(mut slot) => slot.get_mut().push(row),
            }
            if !self.filter.is_empty() {
                let (word, mask) = Self::filter_bit(self.filter.len(), key);
                self.filter[word] |= mask;
            }
        }
        self.rows_indexed = rows;
    }

    /// Adaptive filter sizing from the **observed** miss rates: when the
    /// measured false-positive rate of the fingerprint filter — misses that
    /// passed the filter, over all misses — exceeds **twice** the
    /// provisioned target rate of `1 / filter_bits_per_key`, the per-key
    /// provisioning doubles (up to [`FILTER_MAX_BITS_PER_KEY`]) and the
    /// filter alone is rebuilt. Sustained degradation (e.g. a long overflow
    /// tail crowding the bit array, or adversarial key mixes) therefore
    /// self-corrects, while a healthy filter never pays a rebuild.
    ///
    /// Every decision consumes the miss window (the counters reset), so a
    /// resize is only ever triggered by evidence gathered against the
    /// *current* provisioning. Runs under `&mut self` only — see the call
    /// site in [`KeyIndex::ensure`] for why that keeps results and counters
    /// deterministic across thread counts.
    fn maybe_grow_filter(&mut self) {
        if self.filter.is_empty() {
            return;
        }
        let skips = *self.filter_skips.get_mut();
        let false_positives = *self.filter_false_positives.get_mut();
        let misses = skips + false_positives;
        if misses < FILTER_RESIZE_MIN_MISSES {
            return;
        }
        *self.filter_skips.get_mut() = 0;
        *self.filter_false_positives.get_mut() = 0;
        // rate > 2 / bits  ⟺  fp * bits > 2 * misses (integer-exact).
        let degraded = false_positives * self.filter_bits_per_key as u64 > 2 * misses;
        if !degraded || self.filter_bits_per_key >= FILTER_MAX_BITS_PER_KEY {
            return;
        }
        self.filter_bits_per_key *= 2;
        self.rebuild_filter();
    }

    /// Rebuilds the fingerprint filter alone — slot table, arena and
    /// overflow map untouched — at the current per-key provisioning, from
    /// the CSR keys plus the unmerged overflow keys.
    fn rebuild_filter(&mut self) {
        let words = (self.distinct * self.filter_bits_per_key)
            .max(64)
            .next_power_of_two()
            / 64;
        self.filter.clear();
        self.filter.resize(words, 0);
        for slot in self.slots.iter().filter(|s| s.len != 0) {
            let (word, mask) = Self::filter_bit(words, slot.key);
            self.filter[word] |= mask;
        }
        for &key in self.overflow.keys() {
            let (word, mask) = Self::filter_bit(words, key);
            self.filter[word] |= mask;
        }
    }

    /// The candidate rows of `key`: the CSR bucket plus the overflow bucket
    /// (globally ascending). The fingerprint filter is consulted first — a
    /// clear bit proves the key absent without touching the table, reported
    /// via [`Candidates::skipped_by_filter`]. The slot position comes from
    /// the cheap multiplicative [`hash_u64`]; the filter bit (only computed
    /// for large, filtered tables) from the avalanched [`mix_u64`]. The
    /// overflow map is only consulted while unmerged appends exist.
    #[inline]
    fn lookup(&self, key: u64) -> Candidates<'_> {
        if !self.filter.is_empty() {
            let (word, mask) = Self::filter_bit(self.filter.len(), key);
            if self.filter[word] & mask == 0 {
                // A proven miss: evidence that the filter is earning its
                // keep (the denominator of the measured FP rate).
                self.filter_skips.fetch_add(1, Ordering::Relaxed);
                return Candidates {
                    csr: &[],
                    overflow: &[],
                    filtered: true,
                };
            }
        }
        let hash = hash_u64(key);
        let csr = if self.slots.is_empty() {
            &[][..]
        } else {
            let slot = &self.slots[Self::slot_index_hashed(&self.slots, key, hash)];
            if slot.len == 0 {
                &[]
            } else {
                &self.arena[slot.offset as usize..(slot.offset + slot.len) as usize]
            }
        };
        let overflow = if self.overflow.is_empty() {
            &[][..]
        } else {
            self.overflow.get(&key).map(Vec::as_slice).unwrap_or(&[])
        };
        if !self.filter.is_empty() && csr.is_empty() && overflow.is_empty() {
            // The filter passed a key that has no rows: a false positive.
            // Counted on the miss path only, so hits stay untouched.
            self.filter_false_positives.fetch_add(1, Ordering::Relaxed);
        }
        Candidates {
            csr,
            overflow,
            filtered: false,
        }
    }

    /// Heap bytes of the slot table, arena, filter and overflow buffers.
    fn heap_bytes(&self) -> usize {
        self.slots.len() * size_of::<IndexSlot>()
            + self.arena.len() * size_of::<RowId>()
            + self.filter.len() * size_of::<u64>()
            + self
                .overflow
                .values()
                .map(|v| v.len() * size_of::<RowId>() + size_of::<(u64, Vec<RowId>)>())
                .sum::<usize>()
    }
}

/// Borrowed view of one probe's candidate rows: the CSR slice plus the
/// overflow slice of the probed bucket. All CSR ids precede all overflow ids
/// and each part is ascending, so [`Candidates::iter`] enumerates globally
/// ascending row ids — the order the deterministic merge phases rely on.
pub struct Candidates<'a> {
    csr: &'a [RowId],
    overflow: &'a [RowId],
    filtered: bool,
}

impl Candidates<'_> {
    /// Number of candidate rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.csr.len() + self.overflow.len()
    }

    /// `true` iff the probed key has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.csr.is_empty() && self.overflow.is_empty()
    }

    /// The candidate row ids, in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = RowId> + '_ {
        self.csr.iter().chain(self.overflow.iter()).copied()
    }

    /// The CSR part of the candidates (rows merged into the arena). All of
    /// these precede every [`Candidates::appended`] id; the kernel's inner
    /// loops consume the two parts as plain slices so the per-candidate
    /// iteration stays branch-free.
    #[inline]
    pub fn merged(&self) -> &[RowId] {
        self.csr
    }

    /// The overflow part of the candidates (rows appended since the last
    /// CSR rebuild), ascending, all larger than every merged id.
    #[inline]
    pub fn appended(&self) -> &[RowId] {
        self.overflow
    }

    /// `true` iff the fingerprint filter proved the key absent before the
    /// slot table was even probed (the skip the `misses_filtered` counters
    /// report). The candidate list is empty either way, so filtering never
    /// changes a result.
    #[inline]
    pub fn skipped_by_filter(&self) -> bool {
        self.filtered
    }
}

/// One relation of an instance: a flat, dense, append-only table of packed
/// rows.
#[derive(Debug)]
pub struct Relation {
    predicate: Predicate,
    arity: usize,
    /// Row-major packed storage: row `i` is `terms[i*arity .. (i+1)*arity]`.
    terms: Vec<PackedTerm>,
    /// Row-level dedup: open-addressed `row hash → row id` slots.
    dedup: DedupTable,
    /// Per-column lazy key indexes (an `RwLock` each, so probes can build
    /// them on demand behind `&self` — including concurrently from the
    /// parallel evaluator's worker threads).
    columns: Vec<RwLock<KeyIndex>>,
    /// Composite key indexes, created on first demand per column set. The
    /// outer lock only guards the listing; probes clone the per-index `Arc`
    /// and drop the list guard before locking the index itself (see the
    /// module docs for why that keeps re-entrant probes deadlock-free).
    composites: RwLock<Vec<(ColSet, Arc<RwLock<KeyIndex>>)>>,
}

impl Clone for Relation {
    fn clone(&self) -> Relation {
        Relation {
            predicate: self.predicate,
            arity: self.arity,
            terms: self.terms.clone(),
            dedup: self.dedup.clone(),
            columns: self
                .columns
                .iter()
                .map(|c| RwLock::new(c.read().expect("key index lock poisoned").clone()))
                .collect(),
            // Deep-clone the composite indexes so the clone shares no state
            // with the original (matching the per-column behaviour).
            composites: RwLock::new(
                self.composites
                    .read()
                    .expect("composite index list lock poisoned")
                    .iter()
                    .map(|(cols, index)| {
                        (
                            *cols,
                            Arc::new(RwLock::new(
                                index.read().expect("key index lock poisoned").clone(),
                            )),
                        )
                    })
                    .collect(),
            ),
        }
    }
}

impl Relation {
    fn new(predicate: Predicate, arity: usize) -> Relation {
        Relation {
            predicate,
            arity,
            terms: Vec::new(),
            dedup: DedupTable::default(),
            columns: (0..arity).map(|_| RwLock::default()).collect(),
            composites: RwLock::default(),
        }
    }

    /// The relation's predicate.
    pub fn predicate(&self) -> Predicate {
        self.predicate
    }

    /// The arity all rows share.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        // A 0-ary relation holds at most one (empty) row; track via dedup.
        self.terms
            .len()
            .checked_div(self.arity)
            .unwrap_or(self.dedup.len())
    }

    /// `true` iff the relation holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of rows as a [`RowId`] — also the id the next inserted row
    /// would receive, i.e. the relation's current **watermark**. Inserts
    /// enforce the u32 capacity bound (see [`ModelError::CapacityExceeded`]),
    /// so the count of *stored* rows always fits.
    pub fn row_count(&self) -> RowId {
        RowId::try_from(self.len()).expect("insert enforces the u32 row-id capacity bound")
    }

    /// Shard of row `id` under content hashing: the row's dedup hash reduced
    /// modulo `shards`. Used by the parallel evaluator to hash-partition a
    /// delta row range by join key so the partition depends only on the data,
    /// never on the thread count.
    pub fn row_shard(&self, id: RowId, shards: usize) -> usize {
        (row_hash(self.row(id)) % shards.max(1) as u64) as usize
    }

    /// The packed terms of row `id`.
    pub fn row(&self, id: RowId) -> &[PackedTerm] {
        let start = id as usize * self.arity;
        &self.terms[start..start + self.arity]
    }

    /// The terms of row `id`, unpacked into a fresh vector. Convenience for
    /// non-hot paths; the kernel works on [`Relation::row`] directly.
    pub fn row_terms(&self, id: RowId) -> Vec<Term> {
        self.row(id).iter().map(|p| p.unpack()).collect()
    }

    /// Iterates over all rows as packed slices.
    pub fn rows(&self) -> impl Iterator<Item = &[PackedTerm]> {
        // `chunks_exact(0)` panics, so special-case arity 0 (rows are empty).
        let arity = self.arity.max(1);
        self.terms
            .chunks_exact(arity)
            .take(self.len())
            .chain(std::iter::repeat_n(
                &[][..],
                if self.arity == 0 { self.len() } else { 0 },
            ))
    }

    /// Materialises row `id` as an [`Atom`].
    pub fn atom(&self, id: RowId) -> Atom {
        Atom {
            predicate: self.predicate,
            terms: self.row_terms(id),
        }
    }

    /// Finds the row id of an exact packed row, if present.
    pub fn find_packed_row(&self, row: &[PackedTerm]) -> Option<RowId> {
        if row.len() != self.arity {
            return None;
        }
        self.dedup.find(row_hash(row), |id| self.row(id) == row)
    }

    /// Finds the row id of an exact row of terms, if present. Terms that
    /// cannot be packed (variables, dictionary overflow) occur in no
    /// relation, so the answer for them is `None`.
    pub fn find_row(&self, row: &[Term]) -> Option<RowId> {
        if row.len() != self.arity {
            return None;
        }
        let mut packed = Vec::with_capacity(row.len());
        for t in row {
            packed.push(PackedTerm::pack(*t)?);
        }
        self.find_packed_row(&packed)
    }

    /// `true` iff the exact row is present.
    pub fn contains_row(&self, row: &[Term]) -> bool {
        self.find_row(row).is_some()
    }

    /// `true` iff the exact packed row is present. Lock-free probe of the
    /// dedup table — this is what the parallel evaluator's workers use to
    /// pre-dedup their derivation batches against the frozen instance.
    pub fn contains_packed_row(&self, row: &[PackedTerm]) -> bool {
        self.find_packed_row(row).is_some()
    }

    /// Appends a row if it is not already present; returns the row id and
    /// whether it was newly inserted. Fails with
    /// [`ModelError::CapacityExceeded`] once the u32 row-id space is full.
    fn insert_row(&mut self, row: &[PackedTerm]) -> Result<(RowId, bool), ModelError> {
        debug_assert_eq!(row.len(), self.arity);
        let hash = row_hash(row);
        if let Some(id) = self.dedup.find(hash, |id| self.row(id) == row) {
            return Ok((id, false));
        }
        let id = checked_row_id(self.len(), self.predicate)?;
        self.terms.extend_from_slice(row);
        self.dedup.insert(hash, id);
        Ok((id, true))
    }

    /// Brings the key index behind `lock` up to date with the current rows.
    ///
    /// Deadlock-freedom: rows grow only under `&mut self`, so within a probe
    /// session (`&self`) an index goes stale→fresh at most once, and a
    /// long-lived read guard ([`Relation::with_key_matching_rows`] holds one
    /// across its callback, which may recursively probe the same index) is
    /// only ever acquired on an index that was *fresh* under that same
    /// guard. The remaining hazard would be a thread that saw the index
    /// stale, lost the race to another builder, and then **block-waited**
    /// on the write lock of the now-fresh index: on writer-preferring
    /// `RwLock` implementations the queued writer would make a re-entrant
    /// read block behind it — deadlock. Hence builders never block-wait:
    /// they `try_write`, and on contention re-check freshness and yield.
    /// A failed `try_write` means either another builder is finishing (the
    /// re-check will see fresh) or transient check-guards are draining, so
    /// the loop terminates; no writer ever queues behind a held read guard.
    fn ensure_key_index(&self, lock: &RwLock<KeyIndex>, cols: ColSet) {
        let rows = self.row_count();
        loop {
            if lock.read().expect("key index lock poisoned").rows_indexed == rows {
                return;
            }
            match lock.try_write() {
                Ok(mut index) => {
                    index.ensure(&self.terms, self.arity, cols, rows);
                    return;
                }
                Err(std::sync::TryLockError::WouldBlock) => std::thread::yield_now(),
                Err(std::sync::TryLockError::Poisoned(_)) => {
                    panic!("key index lock poisoned")
                }
            }
        }
    }

    /// The composite index of `cols`, created empty on first demand. Only
    /// the (short-lived) listing guard is taken here; the caller locks the
    /// returned index itself. List writers follow the same never-block-wait
    /// discipline as the index builders.
    fn composite_index(&self, cols: ColSet) -> Arc<RwLock<KeyIndex>> {
        loop {
            {
                let entries = self
                    .composites
                    .read()
                    .expect("composite index list lock poisoned");
                if let Some((_, index)) = entries.iter().find(|(c, _)| *c == cols) {
                    return Arc::clone(index);
                }
            }
            match self.composites.try_write() {
                Ok(mut entries) => {
                    if !entries.iter().any(|(c, _)| *c == cols) {
                        entries.push((cols, Arc::default()));
                    }
                }
                Err(std::sync::TryLockError::WouldBlock) => std::thread::yield_now(),
                Err(std::sync::TryLockError::Poisoned(_)) => {
                    panic!("composite index list lock poisoned")
                }
            }
        }
    }

    /// Probe core shared by the single-column and composite entry points:
    /// fast-path read when the index is fresh, build/extend otherwise, then
    /// hand the candidates to `f` under the index's read lock (which `f` may
    /// hold across recursive probes — see [`Relation::ensure_key_index`]).
    #[inline]
    fn with_index_lookup<R>(
        &self,
        lock: &RwLock<KeyIndex>,
        cols: ColSet,
        key: u64,
        f: impl FnOnce(Candidates<'_>) -> R,
    ) -> R {
        let rows = self.row_count();
        {
            // Fast path: one uncontended read lock when the index is fresh.
            let index = lock.read().expect("key index lock poisoned");
            if index.rows_indexed == rows {
                return f(index.lookup(key));
            }
        }
        self.ensure_key_index(lock, cols);
        let index = lock.read().expect("key index lock poisoned");
        f(index.lookup(key))
    }

    /// Calls `f` with the candidate rows whose `col`-th packed term equals
    /// `key` (no allocation; the column's key index is built or extended on
    /// first use). The index's read lock is held for the duration of `f`,
    /// which may recursively probe this or other indexes (see
    /// [`Relation::ensure_key_index`] for why that cannot deadlock).
    #[inline]
    pub fn with_matching_rows<R>(
        &self,
        col: usize,
        key: PackedTerm,
        f: impl FnOnce(Candidates<'_>) -> R,
    ) -> R {
        assert!(col < self.arity, "column out of bounds");
        // The single-column fused key is just the raw packed value.
        self.with_index_lookup(
            &self.columns[col],
            ColSet::single(col),
            u64::from(key.raw()),
            f,
        )
    }

    /// Calls `f` with the candidate rows whose columns at `cols` fuse to
    /// `key` (see [`fuse_key`]; `key` must be fused from the packed terms in
    /// ascending column order). Single-column sets route to the per-column
    /// index slot; larger sets use the lazily-created composite index. This
    /// is the probe entry point of the kernel's composite plan steps.
    #[inline]
    pub fn with_key_matching_rows<R>(
        &self,
        cols: ColSet,
        key: u64,
        f: impl FnOnce(Candidates<'_>) -> R,
    ) -> R {
        let mut iter = cols.iter();
        let first = iter.next().expect("column sets are non-empty");
        if cols.len() == 1 {
            assert!(first < self.arity, "column out of bounds");
            return self.with_index_lookup(&self.columns[first], cols, key, f);
        }
        assert!(
            iter.all(|c| c < self.arity) && first < self.arity,
            "column out of bounds"
        );
        let index = self.composite_index(cols);
        self.with_index_lookup(&index, cols, key, f)
    }

    /// Number of rows whose `col`-th term equals `term` (selectivity probes
    /// outside the kernel; builds the column's key index on demand).
    /// Unpackable terms match no stored row.
    pub fn matching_count(&self, col: usize, term: Term) -> usize {
        match PackedTerm::pack(term) {
            Some(key) => self.matching_count_packed(col, key),
            None => 0,
        }
    }

    /// Number of rows whose `col`-th packed term equals `key` (the join
    /// kernel's selectivity probe).
    pub fn matching_count_packed(&self, col: usize, key: PackedTerm) -> usize {
        self.with_matching_rows(col, key, |ids| ids.len())
    }

    /// Number of rows whose columns at `cols` fuse to `key` (the planner's
    /// exact-count probe for all-rigid composite bound sets).
    pub fn key_matching_count(&self, cols: ColSet, key: u64) -> usize {
        self.with_key_matching_rows(cols, key, |ids| ids.len())
    }

    /// Number of distinct packed keys in `col` (builds the column's key
    /// index on demand). `len / distinct_count` is the average probe
    /// fan-out the join planner uses to estimate build/probe selectivity
    /// before any binding is known. The count is **memoised** in the index
    /// — maintained incrementally as appends are indexed and invalidated by
    /// the append watermark — so repeated planner invocations over a frozen
    /// instance pay one lock acquisition, not a recount.
    pub fn distinct_count(&self, col: usize) -> usize {
        assert!(col < self.arity, "column out of bounds");
        self.key_distinct_count(ColSet::single(col))
    }

    /// Number of distinct fused keys over `cols` (builds the key index on
    /// demand; memoised exactly like [`Relation::distinct_count`]). This is
    /// what the planner scores multi-column bound sets with.
    pub fn key_distinct_count(&self, cols: ColSet) -> usize {
        let mut iter = cols.iter();
        let first = iter.next().expect("column sets are non-empty");
        assert!(
            iter.all(|c| c < self.arity) && first < self.arity,
            "column out of bounds"
        );
        if cols.len() == 1 {
            self.ensure_key_index(&self.columns[first], cols);
            return self.columns[first]
                .read()
                .expect("key index lock poisoned")
                .distinct;
        }
        let index = self.composite_index(cols);
        self.ensure_key_index(&index, cols);
        let distinct = index.read().expect("key index lock poisoned").distinct;
        distinct
    }

    /// Heap bytes currently held by this relation's key indexes (column and
    /// composite), fingerprint filters and dedup table — the per-workload
    /// `index_bytes` the benchmark harness reports.
    pub fn index_bytes(&self) -> usize {
        let mut bytes = self.dedup.heap_bytes();
        for column in &self.columns {
            bytes += column.read().expect("key index lock poisoned").heap_bytes();
        }
        let composites = self
            .composites
            .read()
            .expect("composite index list lock poisoned");
        for (_, index) in composites.iter() {
            bytes += index.read().expect("key index lock poisoned").heap_bytes();
        }
        bytes
    }
}

/// A finite set of atoms over constants and labelled nulls, stored as one
/// columnar [`Relation`] per predicate.
#[derive(Clone, Default)]
pub struct Instance {
    relations: FxHashMap<Predicate, Relation>,
    len: usize,
    /// Reusable pack buffer for the term-level insert path, so repeated
    /// `insert` / `insert_terms` calls (the chase and executor apply phases)
    /// do not allocate per fact.
    pack_scratch: Vec<PackedTerm>,
}

impl Instance {
    /// Creates an empty instance.
    pub fn new() -> Instance {
        Instance::default()
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the instance has no atoms.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The relation of a predicate, if it occurs in the instance.
    pub fn relation(&self, p: Predicate) -> Option<&Relation> {
        self.relations.get(&p)
    }

    /// Inserts an atom; returns `true` if it was not already present.
    /// Returns an error if the atom contains a variable or if its arity
    /// conflicts with earlier atoms over the same predicate.
    pub fn insert(&mut self, atom: Atom) -> Result<bool, ModelError> {
        self.insert_terms(atom.predicate, &atom.terms)
    }

    /// Inserts a fact given as a predicate and a term slice, without
    /// requiring a materialised [`Atom`]. Returns `true` if newly inserted.
    pub fn insert_terms(
        &mut self,
        predicate: Predicate,
        terms: &[Term],
    ) -> Result<bool, ModelError> {
        let mut scratch = std::mem::take(&mut self.pack_scratch);
        let result = pack_row_into(predicate, terms, &mut scratch)
            .and_then(|()| self.insert_packed(predicate, &scratch));
        self.pack_scratch = scratch;
        result
    }

    /// Inserts one already-packed row. Returns `true` if newly inserted.
    pub fn insert_packed(
        &mut self,
        predicate: Predicate,
        row: &[PackedTerm],
    ) -> Result<bool, ModelError> {
        let rel = self
            .relations
            .entry(predicate)
            .or_insert_with(|| Relation::new(predicate, row.len()));
        if rel.arity != row.len() {
            return Err(ModelError::ArityMismatch {
                predicate: predicate.name().to_string(),
                expected: rel.arity,
                found: row.len(),
            });
        }
        let (_, inserted) = rel.insert_row(row)?;
        if inserted {
            self.len += 1;
        }
        Ok(inserted)
    }

    /// Batched insert: adds `rows` (a row-major packed slice holding a
    /// multiple of `arity` terms) to `predicate`'s relation through the
    /// row-level dedup, returning the number of rows that were newly
    /// inserted.
    ///
    /// The relation lookup and arity check are done once for the whole batch
    /// (packed rows are ground by construction), and insertion order follows
    /// slice order, so the parallel evaluator's merge step assigns the same
    /// row ids a sequential run would. `arity` must be positive; 0-ary facts
    /// go through [`Instance::insert_terms`].
    pub fn insert_batch(
        &mut self,
        predicate: Predicate,
        arity: usize,
        rows: &[PackedTerm],
    ) -> Result<usize, ModelError> {
        assert!(arity > 0, "insert_batch requires positive arity");
        assert_eq!(rows.len() % arity, 0, "rows must hold whole rows");
        let rel = self
            .relations
            .entry(predicate)
            .or_insert_with(|| Relation::new(predicate, arity));
        if rel.arity != arity {
            return Err(ModelError::ArityMismatch {
                predicate: predicate.name().to_string(),
                expected: rel.arity,
                found: arity,
            });
        }
        let mut inserted = 0;
        for row in rows.chunks_exact(arity) {
            // Count each row as it lands so `self.len` stays consistent with
            // the relation even if a later row fails (e.g. on capacity).
            if rel.insert_row(row)?.1 {
                inserted += 1;
                self.len += 1;
            }
        }
        Ok(inserted)
    }

    /// A new instance holding deep copies of the relations of exactly the
    /// requested predicates (absent predicates are skipped). Cloned
    /// relations keep their row ids, indexes and fingerprint filters, so a
    /// projection of a served snapshot is immediately probe-ready.
    ///
    /// This is the scratch-instance primitive of the demand-driven query
    /// path: a magic-sets evaluation copies only the extensional relations
    /// its rewritten program reads out of the (immutable, `Arc`-shared)
    /// snapshot and derives into the copy, so concurrent queries never
    /// contend on shared state.
    pub fn project(&self, predicates: impl IntoIterator<Item = Predicate>) -> Instance {
        let mut projected = Instance::new();
        for p in predicates {
            if let Some(rel) = self.relations.get(&p) {
                if projected.relations.contains_key(&p) {
                    continue;
                }
                projected.len += rel.len();
                projected.relations.insert(p, rel.clone());
            }
        }
        projected
    }

    /// `true` iff the atom is present.
    pub fn contains(&self, atom: &Atom) -> bool {
        self.relations
            .get(&atom.predicate)
            .is_some_and(|rel| rel.contains_row(&atom.terms))
    }

    /// All atoms with the given predicate, materialised lazily.
    pub fn atoms_with_predicate(&self, p: Predicate) -> impl Iterator<Item = Atom> + '_ {
        self.relations.get(&p).into_iter().flat_map(|rel| {
            rel.rows().map(move |row| Atom {
                predicate: rel.predicate,
                terms: row.iter().map(|t| t.unpack()).collect(),
            })
        })
    }

    /// Atoms with predicate `p` whose argument at `position` equals `term`.
    ///
    /// Convenience wrapper over the column's key index that materialises the
    /// matching atoms while the borrowed candidate view is live — no
    /// intermediate row-id vector is cloned; the join kernel and other hot
    /// paths use [`Relation::with_matching_rows`] directly and never
    /// materialise atoms at all.
    pub fn atoms_matching(
        &self,
        p: Predicate,
        position: usize,
        term: Term,
    ) -> impl Iterator<Item = Atom> + '_ {
        let rel = self.relations.get(&p).filter(|rel| position < rel.arity());
        let atoms: Vec<Atom> = match (rel, PackedTerm::pack(term)) {
            (Some(rel), Some(key)) => rel.with_matching_rows(position, key, |ids| {
                ids.iter().map(|id| rel.atom(id)).collect()
            }),
            _ => Vec::new(),
        };
        atoms.into_iter()
    }

    /// Iterates over all atoms (materialised lazily).
    pub fn iter(&self) -> impl Iterator<Item = Atom> + '_ {
        self.relations.values().flat_map(|rel| {
            rel.rows().map(move |row| Atom {
                predicate: rel.predicate,
                terms: row.iter().map(|t| t.unpack()).collect(),
            })
        })
    }

    /// The predicates present in the instance.
    pub fn predicates(&self) -> impl Iterator<Item = Predicate> + '_ {
        self.relations.keys().copied()
    }

    /// The relations of the instance.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values()
    }

    /// The arity of a predicate, if it occurs in the instance.
    pub fn arity_of(&self, p: Predicate) -> Option<usize> {
        self.relations.get(&p).map(Relation::arity)
    }

    /// The active domain: all constants and nulls occurring in the instance.
    pub fn active_domain(&self) -> BTreeSet<Term> {
        self.relations
            .values()
            .flat_map(|rel| rel.terms.iter().map(|t| t.unpack()))
            .collect()
    }

    /// All constants occurring in the instance.
    pub fn constants(&self) -> BTreeSet<Symbol> {
        self.relations
            .values()
            .flat_map(|rel| rel.terms.iter().filter_map(|t| t.as_const()))
            .collect()
    }

    /// All labelled nulls occurring in the instance.
    pub fn nulls(&self) -> BTreeSet<NullId> {
        self.relations
            .values()
            .flat_map(|rel| rel.terms.iter().filter_map(|t| t.as_null()))
            .collect()
    }

    /// Number of atoms per predicate, useful for join-order heuristics.
    pub fn relation_size(&self, p: Predicate) -> usize {
        self.relations.get(&p).map(Relation::len).unwrap_or(0)
    }

    /// Heap bytes currently held by all relations' key indexes, fingerprint
    /// filters and dedup tables (see [`Relation::index_bytes`]).
    pub fn index_bytes(&self) -> usize {
        self.relations.values().map(Relation::index_bytes).sum()
    }

    /// A canonical serialisation of the per-relation row layout: for each
    /// predicate (sorted by name) the debug-printed rows **in row-id
    /// order**. Two instances with equal layouts are bit-identical up to the
    /// relation map's iteration order — the property the parallel
    /// evaluator's determinism tests assert between thread counts.
    pub fn row_layout(&self) -> Vec<(String, Vec<String>)> {
        let mut layout: Vec<(String, Vec<String>)> = self
            .relations
            .values()
            .map(|rel| {
                (
                    rel.predicate.name().to_string(),
                    rel.rows().map(|row| format!("{row:?}")).collect(),
                )
            })
            .collect();
        layout.sort();
        layout
    }

    /// [`Instance::row_layout`] with each relation's rows additionally
    /// sorted: equal sorted layouts mean the same per-relation row **sets**,
    /// regardless of row-id order. This is the comparison between
    /// materialisations whose row ids legitimately differ — e.g. an
    /// incrementally maintained instance (ids encode arrival order) against
    /// a from-scratch evaluation of the same facts.
    pub fn sorted_row_layout(&self) -> Vec<(String, Vec<String>)> {
        let mut layout = self.row_layout();
        for (_, rows) in layout.iter_mut() {
            rows.sort();
        }
        layout
    }
}

impl FromIterator<Atom> for Instance {
    /// Builds an instance, panicking on invalid atoms; use [`Instance::insert`]
    /// for fallible construction.
    fn from_iter<I: IntoIterator<Item = Atom>>(iter: I) -> Self {
        let mut inst = Instance::new();
        for a in iter {
            inst.insert(a)
                .expect("invalid atom while building instance");
        }
        inst
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut atoms: Vec<String> = self.iter().map(|a| a.to_string()).collect();
        atoms.sort();
        write!(f, "Instance{{{}}}", atoms.join(", "))
    }
}

/// A database: an instance containing only ground facts.
#[derive(Clone, Default, Debug)]
pub struct Database {
    instance: Instance,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Inserts a fact. Fails if the atom is not ground or the arity conflicts.
    pub fn insert(&mut self, fact: Atom) -> Result<bool, ModelError> {
        if !fact.is_ground() {
            return Err(ModelError::NonGroundFact(fact.to_string()));
        }
        self.instance.insert(fact)
    }

    /// Convenience constructor from `(predicate, constants)` tuples.
    pub fn from_facts<'a>(
        facts: impl IntoIterator<Item = (&'a str, Vec<&'a str>)>,
    ) -> Result<Database, ModelError> {
        let mut db = Database::new();
        for (p, args) in facts {
            db.insert(Atom::fact(p, &args))?;
        }
        Ok(db)
    }

    /// The underlying instance view of the database.
    pub fn as_instance(&self) -> &Instance {
        &self.instance
    }

    /// Converts the database into an instance (for chasing).
    pub fn into_instance(self) -> Instance {
        self.instance
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.instance.len()
    }

    /// `true` iff the database is empty.
    pub fn is_empty(&self) -> bool {
        self.instance.is_empty()
    }

    /// `true` iff the fact is present.
    pub fn contains(&self, fact: &Atom) -> bool {
        self.instance.contains(fact)
    }

    /// Iterates over all facts (materialised lazily).
    pub fn iter(&self) -> impl Iterator<Item = Atom> + '_ {
        self.instance.iter()
    }

    /// All facts with the given predicate (materialised lazily).
    pub fn facts_with_predicate(&self, p: Predicate) -> impl Iterator<Item = Atom> + '_ {
        self.instance.atoms_with_predicate(p)
    }

    /// The constants of the active domain `dom(D)`.
    pub fn domain(&self) -> BTreeSet<Symbol> {
        self.instance.constants()
    }
}

impl FromIterator<Atom> for Database {
    fn from_iter<I: IntoIterator<Item = Atom>>(iter: I) -> Self {
        let mut db = Database::new();
        for a in iter {
            db.insert(a).expect("invalid fact while building database");
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Variable;

    #[test]
    fn insert_deduplicates() {
        let mut db = Database::new();
        assert!(db.insert(Atom::fact("edge", &["a", "b"])).unwrap());
        assert!(!db.insert(Atom::fact("edge", &["a", "b"])).unwrap());
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn non_ground_facts_are_rejected() {
        let mut db = Database::new();
        let bad = Atom::new("edge", vec![Term::constant("a"), Term::variable("X")]);
        assert!(matches!(db.insert(bad), Err(ModelError::NonGroundFact(_))));
    }

    #[test]
    fn arity_conflicts_are_rejected() {
        let mut db = Database::new();
        db.insert(Atom::fact("p", &["a"])).unwrap();
        assert!(matches!(
            db.insert(Atom::fact("p", &["a", "b"])),
            Err(ModelError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn instances_accept_nulls_but_not_variables() {
        let mut inst = Instance::new();
        inst.insert(Atom::new(
            "r",
            vec![Term::constant("a"), Term::Null(NullId(0))],
        ))
        .unwrap();
        assert_eq!(inst.len(), 1);
        assert_eq!(inst.nulls().len(), 1);

        let bad = Atom::new(
            "r",
            vec![Term::Var(Variable::new("X")), Term::constant("a")],
        );
        assert!(inst.insert(bad).is_err());
    }

    #[test]
    fn position_index_finds_matching_atoms() {
        let mut db = Database::new();
        db.insert(Atom::fact("edge", &["a", "b"])).unwrap();
        db.insert(Atom::fact("edge", &["a", "c"])).unwrap();
        db.insert(Atom::fact("edge", &["b", "c"])).unwrap();
        let inst = db.as_instance();
        let from_a: Vec<Atom> = inst
            .atoms_matching(Predicate::new("edge"), 0, Term::constant("a"))
            .collect();
        assert_eq!(from_a.len(), 2);
        let to_c = inst
            .atoms_matching(Predicate::new("edge"), 1, Term::constant("c"))
            .count();
        assert_eq!(to_c, 2);
        assert_eq!(
            inst.atoms_matching(Predicate::new("edge"), 0, Term::constant("z"))
                .count(),
            0
        );
    }

    #[test]
    fn column_indexes_are_extended_after_later_inserts() {
        let mut inst = Instance::new();
        inst.insert(Atom::fact("edge", &["a", "b"])).unwrap();
        // First probe builds the column-0 index.
        assert_eq!(
            inst.relation(Predicate::new("edge"))
                .unwrap()
                .matching_count(0, Term::constant("a")),
            1
        );
        // Later inserts must be visible to subsequent probes.
        inst.insert(Atom::fact("edge", &["a", "c"])).unwrap();
        assert_eq!(
            inst.relation(Predicate::new("edge"))
                .unwrap()
                .matching_count(0, Term::constant("a")),
            2
        );
    }

    #[test]
    fn row_ids_are_stable_and_dense() {
        let mut inst = Instance::new();
        inst.insert(Atom::fact("edge", &["a", "b"])).unwrap();
        inst.insert(Atom::fact("edge", &["b", "c"])).unwrap();
        inst.insert(Atom::fact("edge", &["a", "b"])).unwrap(); // duplicate
        let rel = inst.relation(Predicate::new("edge")).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(
            rel.find_row(&[Term::constant("a"), Term::constant("b")]),
            Some(0)
        );
        assert_eq!(
            rel.find_row(&[Term::constant("b"), Term::constant("c")]),
            Some(1)
        );
        assert_eq!(rel.atom(1), Atom::fact("edge", &["b", "c"]));
    }

    #[test]
    fn checked_row_ids_report_capacity_instead_of_truncating() {
        // 2^32 rows cannot be materialised in a test, so exercise the helper
        // the insert path uses directly.
        let p = Predicate::new("big");
        assert_eq!(checked_row_id(7, p), Ok(7));
        // The top id is reserved (PREMATCHED_ROW sentinel, and the row count
        // itself must stay representable), so the last valid id is MAX - 1.
        assert_eq!(checked_row_id(u32::MAX as usize - 1, p), Ok(u32::MAX - 1));
        let err = checked_row_id(u32::MAX as usize, p).unwrap_err();
        assert!(
            matches!(err, ModelError::CapacityExceeded { rows, .. } if rows == u32::MAX as usize)
        );
        assert!(err.to_string().contains("big"));
    }

    fn pk(t: Term) -> PackedTerm {
        PackedTerm::pack(t).expect("ground term packs")
    }

    #[test]
    fn insert_batch_dedups_and_counts_new_rows() {
        let mut inst = Instance::new();
        inst.insert(Atom::fact("edge", &["a", "b"])).unwrap();
        let p = Predicate::new("edge");
        let rows = vec![
            pk(Term::constant("a")),
            pk(Term::constant("b")), // duplicate of the existing row
            pk(Term::constant("b")),
            pk(Term::constant("c")),
            pk(Term::constant("b")),
            pk(Term::constant("c")), // duplicate within the batch
        ];
        assert_eq!(inst.insert_batch(p, 2, &rows).unwrap(), 1);
        assert_eq!(inst.len(), 2);
        let rel = inst.relation(p).unwrap();
        assert_eq!(
            rel.find_row(&[Term::constant("b"), Term::constant("c")]),
            Some(1)
        );
    }

    #[test]
    fn insert_batch_rejects_arity_conflicts() {
        let mut inst = Instance::new();
        inst.insert(Atom::fact("p", &["a"])).unwrap();
        let bad_arity = inst.insert_batch(
            Predicate::new("p"),
            2,
            &[pk(Term::constant("a")), pk(Term::constant("b"))],
        );
        assert!(matches!(bad_arity, Err(ModelError::ArityMismatch { .. })));
    }

    #[test]
    fn unpackable_terms_are_reported_not_stored() {
        let mut inst = Instance::new();
        // A null id past the 30-bit dictionary cannot be packed.
        let overflowing = Term::Null(NullId(1 << 40));
        let err = inst
            .insert(Atom::new("r", vec![Term::constant("a"), overflowing]))
            .unwrap_err();
        assert!(matches!(err, ModelError::PackOverflow { .. }));
        assert_eq!(inst.len(), 0);
        // Variables still report the groundness error, not overflow.
        let bad = inst
            .insert_terms(Predicate::new("r"), &[Term::variable("X")])
            .unwrap_err();
        assert!(matches!(bad, ModelError::NonGroundFact(_)));
        // Lookups with unpackable terms are simply misses.
        inst.insert(Atom::fact("r", &["a", "b"])).unwrap();
        let rel = inst.relation(Predicate::new("r")).unwrap();
        assert_eq!(rel.find_row(&[Term::constant("a"), overflowing]), None);
        assert_eq!(rel.matching_count(1, overflowing), 0);
    }

    #[test]
    fn distinct_count_reports_column_cardinality() {
        let db = Database::from_facts([
            ("edge", vec!["a", "b"]),
            ("edge", vec!["a", "c"]),
            ("edge", vec!["b", "c"]),
        ])
        .unwrap();
        let rel = db.as_instance().relation(Predicate::new("edge")).unwrap();
        assert_eq!(rel.distinct_count(0), 2); // a, b
        assert_eq!(rel.distinct_count(1), 2); // b, c
    }

    #[test]
    fn instances_are_shareable_across_threads() {
        let mut inst = Instance::new();
        inst.insert(Atom::fact("edge", &["a", "b"])).unwrap();
        inst.insert(Atom::fact("edge", &["a", "c"])).unwrap();
        let shared = &inst;
        let counts: Vec<usize> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        // Concurrent probes build the lazy index under the lock.
                        shared
                            .relation(Predicate::new("edge"))
                            .unwrap()
                            .matching_count(0, Term::constant("a"))
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(counts, vec![2; 4]);
    }

    #[test]
    fn colsets_canonicalise_and_fuse_losslessly() {
        assert_eq!(ColSet::new(&[2, 0]), ColSet::new(&[0, 2]));
        assert_eq!(ColSet::single(1).len(), 1);
        assert_eq!(
            ColSet::new(&[2, 0, 1]).iter().collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // Two-column fusion is injective: distinct pairs → distinct keys,
        // and order matters (fuse(a,b) ≠ fuse(b,a) for a ≠ b).
        let a = pk(Term::constant("fuse_a"));
        let b = pk(Term::constant("fuse_b"));
        assert_ne!(fuse_key(&[a, b]), fuse_key(&[b, a]));
        assert_ne!(fuse_key(&[a, b]), fuse_key(&[a, a]));
        assert_eq!(fuse_key(&[a, b]), fuse_key(&[a, b]));
        assert_eq!(fuse_key(&[a]), u64::from(a.raw()));
    }

    /// Inserts `edge(prefix_i, suffix_{i % spread})` rows.
    fn spread_relation(n: usize, spread: usize) -> Instance {
        let mut inst = Instance::new();
        for i in 0..n {
            inst.insert(Atom::fact(
                "edge",
                &[
                    format!("s{}", i % spread).as_str(),
                    format!("o{i}").as_str(),
                ],
            ))
            .unwrap();
        }
        inst
    }

    #[test]
    fn composite_probes_return_exactly_the_fused_matches() {
        let mut inst = Instance::new();
        for (a, b, c) in [
            ("x", "y", "1"),
            ("x", "y", "2"),
            ("x", "z", "3"),
            ("w", "y", "4"),
        ] {
            inst.insert(Atom::fact("r", &[a, b, c])).unwrap();
        }
        let rel = inst.relation(Predicate::new("r")).unwrap();
        let cols = ColSet::new(&[0, 1]);
        let key = fuse_key(&[pk(Term::constant("x")), pk(Term::constant("y"))]);
        let rows: Vec<RowId> = rel.with_key_matching_rows(cols, key, |c| c.iter().collect());
        assert_eq!(rows, vec![0, 1]);
        assert_eq!(rel.key_matching_count(cols, key), 2);
        assert_eq!(rel.key_distinct_count(cols), 3); // (x,y), (x,z), (w,y)
                                                     // Absent composite keys probe empty.
        let miss = fuse_key(&[pk(Term::constant("w")), pk(Term::constant("z"))]);
        assert_eq!(rel.key_matching_count(cols, miss), 0);
        // A 3-column set is exact on this data too (the fold is verified by
        // callers, but distinct triples here do not collide).
        let cols3 = ColSet::new(&[0, 1, 2]);
        let key3 = fuse_key(&[
            pk(Term::constant("x")),
            pk(Term::constant("y")),
            pk(Term::constant("2")),
        ]);
        let rows3: Vec<RowId> = rel.with_key_matching_rows(cols3, key3, |c| c.iter().collect());
        assert_eq!(rows3, vec![1]);
        assert_eq!(rel.key_distinct_count(cols3), 4);
    }

    #[test]
    fn composite_indexes_see_rows_appended_after_the_first_probe() {
        let mut inst = Instance::new();
        inst.insert(Atom::fact("r", &["a", "b", "1"])).unwrap();
        let cols = ColSet::new(&[0, 1]);
        let key = fuse_key(&[pk(Term::constant("a")), pk(Term::constant("b"))]);
        assert_eq!(
            inst.relation(Predicate::new("r"))
                .unwrap()
                .key_matching_count(cols, key),
            1
        );
        // Appends after the first probe extend the index (overflow path).
        inst.insert(Atom::fact("r", &["a", "b", "2"])).unwrap();
        let rel = inst.relation(Predicate::new("r")).unwrap();
        assert_eq!(rel.key_matching_count(cols, key), 2);
        let rows: Vec<RowId> = rel.with_key_matching_rows(cols, key, |c| c.iter().collect());
        assert_eq!(
            rows,
            vec![0, 1],
            "candidates stay ascending across CSR + overflow"
        );
    }

    #[test]
    fn csr_rebuild_after_appends_preserves_candidates_and_counts() {
        // Build the index early, then append enough rows to cross the
        // geometric rebuild threshold several times; every probe in between
        // must see exactly the rows inserted so far, in ascending order.
        let mut inst = Instance::new();
        let p = Predicate::new("edge");
        let spread = 7usize;
        for i in 0..400 {
            inst.insert(Atom::fact(
                "edge",
                &[
                    format!("s{}", i % spread).as_str(),
                    format!("o{i}").as_str(),
                ],
            ))
            .unwrap();
            if i % 13 == 0 {
                // Probe mid-growth: forces alternating extend/rebuild.
                let rel = inst.relation(p).unwrap();
                for s in 0..spread {
                    let key = pk(Term::constant(&format!("s{s}")));
                    let expected: Vec<RowId> = (0..=i as RowId)
                        .filter(|&r| r as usize % spread == s)
                        .collect();
                    let got: Vec<RowId> = rel.with_matching_rows(0, key, |c| c.iter().collect());
                    assert_eq!(got, expected, "column 0 = s{s} after {i} inserts");
                }
                assert_eq!(rel.distinct_count(0), spread.min(i + 1));
            }
        }
        // The unique column has one key per row.
        assert_eq!(inst.relation(p).unwrap().distinct_count(1), 400);
    }

    #[test]
    fn fingerprint_filters_never_change_results() {
        // Small index: below the size gate, no filter — misses still probe
        // the slot table and correctly find nothing.
        let small = spread_relation(200, 5);
        let rel = small.relation(Predicate::new("edge")).unwrap();
        assert_eq!(rel.distinct_count(0), 5);
        let (len, skipped) = rel.with_matching_rows(0, pk(Term::constant("absent")), |c| {
            (c.len(), c.skipped_by_filter())
        });
        assert_eq!((len, skipped), (0, false), "small indexes carry no filter");

        // Large index (enough distinct keys to cross the size gate): misses
        // are mostly filter-skipped, and never with a result change.
        let inst = spread_relation(5000, 2500);
        let rel = inst.relation(Predicate::new("edge")).unwrap();
        assert_eq!(rel.distinct_count(0), 2500);
        let mut filtered = 0usize;
        for i in 0..500 {
            let key = pk(Term::constant(&format!("absent_{i}")));
            let (len, skipped) =
                rel.with_matching_rows(0, key, |c| (c.len(), c.skipped_by_filter()));
            assert_eq!(len, 0, "absent key absent_{i} must have no candidates");
            filtered += usize::from(skipped);
        }
        assert!(filtered > 350, "only {filtered}/500 misses were filtered");
        // Present keys are never filtered away.
        let hit = rel.with_matching_rows(0, pk(Term::constant("s3")), |c| c.len());
        assert_eq!(hit, 2);
    }

    /// Plants a synthetic miss window in the column-0 filter counters, as if
    /// `skips + false_positives` miss probes had been observed against the
    /// current filter.
    fn plant_filter_window(inst: &mut Instance, skips: u64, false_positives: u64) {
        let rel = inst
            .relations
            .get_mut(&Predicate::new("edge"))
            .expect("edge relation exists");
        let mut index = rel.columns[0].write().unwrap();
        *index.filter_skips.get_mut() = skips;
        *index.filter_false_positives.get_mut() = false_positives;
    }

    fn filter_shape(inst: &Instance) -> (usize, usize) {
        let rel = inst.relation(Predicate::new("edge")).unwrap();
        let index = rel.columns[0].read().unwrap();
        (index.filter.len(), index.filter_bits_per_key)
    }

    #[test]
    fn adaptive_filter_grows_when_the_measured_fp_rate_degrades() {
        // 2500 distinct keys → the slot table crosses the filter size gate.
        let mut inst = spread_relation(5000, 2500);
        assert_eq!(
            inst.relation(Predicate::new("edge"))
                .unwrap()
                .distinct_count(0),
            2500
        );
        let (words_before, bits_before) = filter_shape(&inst);
        assert!(words_before > 0, "large index carries a filter");
        assert_eq!(bits_before, FILTER_BITS_PER_KEY);

        // A degraded window: half of all observed misses passed the filter
        // (measured FP rate 1/2 ≫ the 2/16 trigger threshold).
        plant_filter_window(&mut inst, 600, 600);
        // The next index update re-examines the window and resizes before
        // indexing the appended row.
        inst.insert(Atom::fact("edge", &["s0", "fresh"])).unwrap();
        let rel = inst.relation(Predicate::new("edge")).unwrap();
        assert_eq!(rel.matching_count(0, Term::constant("s0")), 3);
        let (words_after, bits_after) = filter_shape(&inst);
        assert_eq!(bits_after, 2 * FILTER_BITS_PER_KEY, "provisioning doubles");
        assert!(words_after > words_before, "the bit array actually grew");

        // Behaviour is preserved across the resize: present keys are found,
        // absent keys have no candidates and are (mostly) still skipped.
        let rel = inst.relation(Predicate::new("edge")).unwrap();
        assert_eq!(rel.matching_count(0, Term::constant("s7")), 2);
        let mut filtered = 0usize;
        for i in 0..200 {
            let key = pk(Term::constant(&format!("resized_absent_{i}")));
            let (len, skipped) =
                rel.with_matching_rows(0, key, |c| (c.len(), c.skipped_by_filter()));
            assert_eq!(len, 0);
            filtered += usize::from(skipped);
        }
        assert!(
            filtered > 150,
            "only {filtered}/200 misses were filtered after the resize"
        );
    }

    #[test]
    fn adaptive_filter_leaves_healthy_windows_alone() {
        let mut inst = spread_relation(5000, 2500);
        assert_eq!(
            inst.relation(Predicate::new("edge"))
                .unwrap()
                .distinct_count(0),
            2500
        );
        let before = filter_shape(&inst);

        // A healthy window: rate 1/20, under the 2/16 trigger — consumed
        // without a resize.
        plant_filter_window(&mut inst, 1140, 60);
        inst.insert(Atom::fact("edge", &["s0", "healthy"])).unwrap();
        let rel = inst.relation(Predicate::new("edge")).unwrap();
        assert_eq!(rel.matching_count(0, Term::constant("s0")), 3);
        assert_eq!(filter_shape(&inst), before, "healthy rates never resize");
        {
            let index = rel.columns[0].read().unwrap();
            assert_eq!(
                index.filter_skips.load(Ordering::Relaxed)
                    + index.filter_false_positives.load(Ordering::Relaxed),
                0,
                "a decided window is consumed"
            );
        }

        // Too small a window (even at a terrible rate): no decision at all,
        // the evidence keeps accumulating.
        plant_filter_window(&mut inst, 8, 8);
        inst.insert(Atom::fact("edge", &["s0", "tiny_window"]))
            .unwrap();
        let rel = inst.relation(Predicate::new("edge")).unwrap();
        assert_eq!(rel.matching_count(0, Term::constant("s0")), 4);
        assert_eq!(filter_shape(&inst), before);
        {
            let index = rel.columns[0].read().unwrap();
            assert!(
                index.filter_skips.load(Ordering::Relaxed) >= 8,
                "an undecided window is retained"
            );
        }
    }

    #[test]
    fn adaptive_filter_growth_is_capped() {
        let mut inst = spread_relation(5000, 2500);
        assert_eq!(
            inst.relation(Predicate::new("edge"))
                .unwrap()
                .distinct_count(0),
            2500
        );
        {
            let rel = inst.relations.get_mut(&Predicate::new("edge")).unwrap();
            let mut index = rel.columns[0].write().unwrap();
            index.filter_bits_per_key = FILTER_MAX_BITS_PER_KEY;
            index.rebuild_filter();
        }
        let before = filter_shape(&inst);
        plant_filter_window(&mut inst, 0, 1000); // catastrophic rate
        inst.insert(Atom::fact("edge", &["s0", "capped"])).unwrap();
        let rel = inst.relation(Predicate::new("edge")).unwrap();
        assert_eq!(rel.matching_count(0, Term::constant("s0")), 3);
        assert_eq!(
            filter_shape(&inst),
            before,
            "provisioning never grows past the cap"
        );
    }

    #[test]
    fn csr_tables_resolve_home_slot_collisions() {
        // Enough distinct keys that several must share open-addressing home
        // slots (1500 keys in a ≤4096-slot table): every bucket has to
        // resolve through the probe chain, in and after a rebuild. This is
        // the regression guard for treating the slot `len` as both the
        // occupancy flag and a scratch cursor.
        let mut inst = Instance::new();
        let p = Predicate::new("wide");
        for i in 0..1500 {
            inst.insert(Atom::fact(
                "wide",
                &[format!("k{i}").as_str(), format!("g{}", i % 3).as_str()],
            ))
            .unwrap();
        }
        let rel = inst.relation(p).unwrap();
        assert_eq!(rel.distinct_count(0), 1500);
        for i in 0..1500 {
            let key = pk(Term::constant(&format!("k{i}")));
            let got: Vec<RowId> = rel.with_matching_rows(0, key, |c| c.iter().collect());
            assert_eq!(got, vec![i as RowId], "bucket of k{i}");
        }
        // The composite (0, 1) pair is unique per row too.
        let cols = ColSet::new(&[0, 1]);
        assert_eq!(rel.key_distinct_count(cols), 1500);
        for i in (0..1500).step_by(97) {
            let key = fuse_key(&[
                pk(Term::constant(&format!("k{i}"))),
                pk(Term::constant(&format!("g{}", i % 3))),
            ]);
            assert_eq!(rel.key_matching_count(cols, key), 1, "pair of k{i}");
        }
    }

    #[test]
    fn dedup_table_survives_growth_and_collocates_colliding_hashes() {
        let mut inst = Instance::new();
        let p = Predicate::new("n");
        for i in 0..300 {
            assert!(inst
                .insert(Atom::fact("n", &[format!("v{i}").as_str()]))
                .unwrap());
        }
        // Every row findable, every duplicate rejected, ids dense.
        for i in 0..300 {
            let row = [Term::constant(&format!("v{i}"))];
            assert_eq!(inst.relation(p).unwrap().find_row(&row), Some(i as RowId));
            assert!(!inst
                .insert(Atom::fact("n", &[format!("v{i}").as_str()]))
                .unwrap());
        }
        assert_eq!(inst.len(), 300);
    }

    #[test]
    fn index_bytes_reports_live_index_memory() {
        let inst = spread_relation(100, 4);
        let before = inst.index_bytes();
        assert!(before > 0, "the dedup table alone occupies heap");
        let rel = inst.relation(Predicate::new("edge")).unwrap();
        rel.distinct_count(0);
        rel.key_distinct_count(ColSet::new(&[0, 1]));
        assert!(
            inst.index_bytes() > before,
            "built indexes must be accounted"
        );
    }

    #[test]
    fn domain_collects_constants() {
        let db = Database::from_facts([("edge", vec!["a", "b"]), ("node", vec!["c"])]).unwrap();
        let dom = db.domain();
        assert_eq!(dom.len(), 3);
        assert!(dom.contains(&Symbol::new("a")));
        assert!(dom.contains(&Symbol::new("c")));
    }

    #[test]
    fn relation_size_reports_per_predicate_counts() {
        let db = Database::from_facts([
            ("edge", vec!["a", "b"]),
            ("edge", vec!["b", "c"]),
            ("node", vec!["a"]),
        ])
        .unwrap();
        assert_eq!(db.as_instance().relation_size(Predicate::new("edge")), 2);
        assert_eq!(db.as_instance().relation_size(Predicate::new("node")), 1);
        assert_eq!(db.as_instance().relation_size(Predicate::new("zzz")), 0);
    }
}
