//! Databases and instances (Section 2 of the paper), stored **columnar**.
//!
//! # Storage layout
//!
//! An [`Instance`] is a finite set of atoms over constants and labelled
//! nulls. Internally it is a map from predicate to [`Relation`], and each
//! relation is a single flat, dense table of **packed 4-byte terms**
//! ([`PackedTerm`]: 2 tag bits + a 30-bit symbol/null dictionary index):
//!
//! ```text
//! Relation "edge" (arity 2)
//!   terms: [ a, b,   a, c,   b, c ]      row-major Vec<PackedTerm>,
//!   row 0 ──┘        │        └── row 2  row i = terms[i*arity .. (i+1)*arity]
//!                  row 1
//! ```
//!
//! * **Packed storage.** Every stored term is a `u32`, a quarter the width
//!   of the `Term` enum, so a relation's cache footprint shrinks 4× and row
//!   hashing, dedup probes, column-index lookups and the join kernel's slot
//!   comparisons are integer operations on dense u32 data. The public
//!   [`crate::term::Term`] API survives at the edges: insert paths pack
//!   (rejecting terms past the 30-bit dictionary with
//!   [`ModelError::PackOverflow`]), and the `Atom`-returning convenience
//!   methods unpack lazily — both O(1) per term, no interner access.
//!
//! * **Row ids.** Rows are append-only and never removed, so the index of a
//!   row within its relation (a `u32` [`RowId`]) is a stable, compact
//!   identifier for the fact. Consumers that need to remember sets of facts
//!   (e.g. the oblivious chase's fired-trigger set) store row-id tuples
//!   instead of cloned atoms.
//! * **Deduplication** is row-level: a hash of the row's terms keys a bucket
//!   of candidate row ids whose term slices are compared exactly. Inserting a
//!   duplicate is detected without materialising an `Atom`.
//! * **Column indexes.** Each column of a relation can carry a hash index
//!   `term → [row ids]`. Indexes are built **lazily**: the first probe of a
//!   column builds (or extends) its index; columns that are never used as a
//!   join key cost nothing. Because relations are append-only the index is
//!   extended incrementally from the last indexed row. Laziness uses interior
//!   mutability (an `RwLock` per column); probes take `&self`, while inserts
//!   take `&mut self`. The lock makes the whole instance [`Sync`]: the
//!   sharded parallel evaluator ([`crate::parallel`]) shares `&Instance`
//!   across scoped worker threads, each probing (and, on first use, building)
//!   column indexes concurrently.
//!
//!   Lock-order safety: rows only grow under `&mut self`, so during any probe
//!   session the row count is frozen, long-lived read guards are only
//!   acquired on columns observed *fresh* under that same guard, and index
//!   builders never block-wait for the write lock (they `try_write` and
//!   re-check, see [`Relation::ensure_indexed`]) — therefore no writer can
//!   queue behind a held read guard, and re-entrant reads (the join kernel
//!   probes a column while enumerating another probe of the same column
//!   higher up the search tree) cannot deadlock.
//!
//! The join kernel in [`crate::homomorphism`] works directly on row ids and
//! borrowed term slices; the `Atom`-returning methods here materialise atoms
//! lazily and exist for the convenience of analysis code, provenance and
//! tests.
//!
//! A [`Database`] is an instance whose atoms are all ground (facts).

use crate::atom::{Atom, Predicate};
use crate::error::ModelError;
use crate::fasthash::{FxHashMap, FxHasher};
use crate::symbols::Symbol;
use crate::term::{NullId, PackedTerm, Term};
use std::collections::BTreeSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::RwLock;

/// Stable identifier of a row within its [`Relation`].
pub type RowId = u32;

/// Converts a row count to the id of the next row, reporting a typed
/// capacity error for relations that have exhausted the 32-bit id space
/// instead of silently truncating (4 billion rows of arity 2 are ~64 GiB of
/// terms, so the bound is reachable on big hosts). The top id `RowId::MAX`
/// is reserved — it is the [`crate::homomorphism::PREMATCHED_ROW`] sentinel,
/// and rejecting it keeps the row *count* itself representable as a
/// [`RowId`] (see [`Relation::row_count`]).
fn checked_row_id(len: usize, predicate: Predicate) -> Result<RowId, ModelError> {
    if len >= RowId::MAX as usize {
        return Err(ModelError::CapacityExceeded {
            predicate: predicate.name().to_string(),
            rows: len,
        });
    }
    Ok(len as RowId)
}

/// Hashes one packed row for the dedup table (also the shard key of the
/// parallel evaluator's delta partitioning). Packed rows are dense u32
/// slices, so this is a handful of integer mixes per row.
pub(crate) fn row_hash(row: &[PackedTerm]) -> u64 {
    let mut hasher = FxHasher::default();
    row.hash(&mut hasher);
    hasher.finish()
}

/// Packs a ground-term slice into `out`, reporting the typed error for
/// variables and dictionary overflow. `out` is cleared first.
fn pack_row_into(
    predicate: Predicate,
    terms: &[Term],
    out: &mut Vec<PackedTerm>,
) -> Result<(), ModelError> {
    out.clear();
    out.reserve(terms.len());
    for t in terms {
        match PackedTerm::pack(*t) {
            Some(p) => out.push(p),
            None if t.is_var() => {
                return Err(ModelError::NonGroundFact(
                    Atom {
                        predicate,
                        terms: terms.to_vec(),
                    }
                    .to_string(),
                ))
            }
            None => {
                return Err(ModelError::PackOverflow {
                    term: t.to_string(),
                })
            }
        }
    }
    Ok(())
}

/// A dedup bucket: almost every row hash maps to a single row, so the first
/// id is inlined and the spill vector is only allocated on a genuine 64-bit
/// hash collision.
#[derive(Clone, Debug)]
enum Bucket {
    One(RowId),
    Many(Vec<RowId>),
}

impl Bucket {
    fn ids(&self) -> &[RowId] {
        match self {
            Bucket::One(id) => std::slice::from_ref(id),
            Bucket::Many(ids) => ids,
        }
    }

    fn push(&mut self, id: RowId) {
        match self {
            Bucket::One(first) => *self = Bucket::Many(vec![*first, id]),
            Bucket::Many(ids) => ids.push(id),
        }
    }
}

/// A lazily-built hash index over one column of a relation, keyed on the
/// packed u32 term.
#[derive(Clone, Default, Debug)]
struct ColumnIndex {
    map: FxHashMap<PackedTerm, Vec<RowId>>,
    rows_indexed: u32,
}

/// One relation of an instance: a flat, dense, append-only table of packed
/// rows.
#[derive(Debug)]
pub struct Relation {
    predicate: Predicate,
    arity: usize,
    /// Row-major packed storage: row `i` is `terms[i*arity .. (i+1)*arity]`.
    terms: Vec<PackedTerm>,
    /// Row-level dedup: row hash → candidate row ids.
    dedup: FxHashMap<u64, Bucket>,
    /// Per-column lazy indexes (an `RwLock` each, so probes can build them
    /// on demand behind `&self` — including concurrently from the parallel
    /// evaluator's worker threads).
    columns: Vec<RwLock<ColumnIndex>>,
}

impl Clone for Relation {
    fn clone(&self) -> Relation {
        Relation {
            predicate: self.predicate,
            arity: self.arity,
            terms: self.terms.clone(),
            dedup: self.dedup.clone(),
            columns: self
                .columns
                .iter()
                .map(|c| RwLock::new(c.read().expect("column index lock poisoned").clone()))
                .collect(),
        }
    }
}

impl Relation {
    fn new(predicate: Predicate, arity: usize) -> Relation {
        Relation {
            predicate,
            arity,
            terms: Vec::new(),
            dedup: FxHashMap::default(),
            columns: (0..arity).map(|_| RwLock::default()).collect(),
        }
    }

    /// The relation's predicate.
    pub fn predicate(&self) -> Predicate {
        self.predicate
    }

    /// The arity all rows share.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        // A 0-ary relation holds at most one (empty) row; track via dedup.
        self.terms
            .len()
            .checked_div(self.arity)
            .unwrap_or(self.dedup.len())
    }

    /// `true` iff the relation holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of rows as a [`RowId`] — also the id the next inserted row
    /// would receive, i.e. the relation's current **watermark**. Inserts
    /// enforce the u32 capacity bound (see [`ModelError::CapacityExceeded`]),
    /// so the count of *stored* rows always fits.
    pub fn row_count(&self) -> RowId {
        RowId::try_from(self.len()).expect("insert enforces the u32 row-id capacity bound")
    }

    /// Shard of row `id` under content hashing: the row's dedup hash reduced
    /// modulo `shards`. Used by the parallel evaluator to hash-partition a
    /// delta row range by join key so the partition depends only on the data,
    /// never on the thread count.
    pub fn row_shard(&self, id: RowId, shards: usize) -> usize {
        (row_hash(self.row(id)) % shards.max(1) as u64) as usize
    }

    /// The packed terms of row `id`.
    pub fn row(&self, id: RowId) -> &[PackedTerm] {
        let start = id as usize * self.arity;
        &self.terms[start..start + self.arity]
    }

    /// The terms of row `id`, unpacked into a fresh vector. Convenience for
    /// non-hot paths; the kernel works on [`Relation::row`] directly.
    pub fn row_terms(&self, id: RowId) -> Vec<Term> {
        self.row(id).iter().map(|p| p.unpack()).collect()
    }

    /// Iterates over all rows as packed slices.
    pub fn rows(&self) -> impl Iterator<Item = &[PackedTerm]> {
        // `chunks_exact(0)` panics, so special-case arity 0 (rows are empty).
        let arity = self.arity.max(1);
        self.terms
            .chunks_exact(arity)
            .take(self.len())
            .chain(std::iter::repeat_n(
                &[][..],
                if self.arity == 0 { self.len() } else { 0 },
            ))
    }

    /// Materialises row `id` as an [`Atom`].
    pub fn atom(&self, id: RowId) -> Atom {
        Atom {
            predicate: self.predicate,
            terms: self.row_terms(id),
        }
    }

    /// Finds the row id of an exact packed row, if present.
    pub fn find_packed_row(&self, row: &[PackedTerm]) -> Option<RowId> {
        if row.len() != self.arity {
            return None;
        }
        let candidates = self.dedup.get(&row_hash(row))?;
        candidates
            .ids()
            .iter()
            .copied()
            .find(|&id| self.row(id) == row)
    }

    /// Finds the row id of an exact row of terms, if present. Terms that
    /// cannot be packed (variables, dictionary overflow) occur in no
    /// relation, so the answer for them is `None`.
    pub fn find_row(&self, row: &[Term]) -> Option<RowId> {
        if row.len() != self.arity {
            return None;
        }
        let mut packed = Vec::with_capacity(row.len());
        for t in row {
            packed.push(PackedTerm::pack(*t)?);
        }
        self.find_packed_row(&packed)
    }

    /// `true` iff the exact row is present.
    pub fn contains_row(&self, row: &[Term]) -> bool {
        self.find_row(row).is_some()
    }

    /// `true` iff the exact packed row is present. Lock-free probe of the
    /// dedup table — this is what the parallel evaluator's workers use to
    /// pre-dedup their derivation batches against the frozen instance.
    pub fn contains_packed_row(&self, row: &[PackedTerm]) -> bool {
        self.find_packed_row(row).is_some()
    }

    /// Appends a row if it is not already present; returns the row id and
    /// whether it was newly inserted. Fails with
    /// [`ModelError::CapacityExceeded`] once the u32 row-id space is full.
    fn insert_row(&mut self, row: &[PackedTerm]) -> Result<(RowId, bool), ModelError> {
        debug_assert_eq!(row.len(), self.arity);
        let hash = row_hash(row);
        if let Some(candidates) = self.dedup.get(&hash) {
            if let Some(&id) = candidates.ids().iter().find(|&&id| self.row(id) == row) {
                return Ok((id, false));
            }
        }
        let id = checked_row_id(self.len(), self.predicate)?;
        self.terms.extend_from_slice(row);
        match self.dedup.entry(hash) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(Bucket::One(id));
            }
            std::collections::hash_map::Entry::Occupied(mut slot) => slot.get_mut().push(id),
        }
        Ok((id, true))
    }

    /// Brings the lazy index of `col` up to date with the current rows.
    ///
    /// Deadlock-freedom: rows grow only under `&mut self`, so within a probe
    /// session (`&self`) a column goes stale→fresh at most once, and a
    /// long-lived read guard ([`Relation::with_matching_rows`] holds one
    /// across its callback, which may recursively probe the same column) is
    /// only ever acquired on a column that was *fresh* under that same
    /// guard. The remaining hazard would be a thread that saw the column
    /// stale, lost the race to another builder, and then **block-waited**
    /// on the write lock of the now-fresh column: on writer-preferring
    /// `RwLock` implementations the queued writer would make a re-entrant
    /// read block behind it — deadlock. Hence builders never block-wait:
    /// they `try_write`, and on contention re-check freshness and yield.
    /// A failed `try_write` means either another builder is finishing (the
    /// re-check will see fresh) or transient check-guards are draining, so
    /// the loop terminates; no writer ever queues behind a held read guard.
    fn ensure_indexed(&self, col: usize) {
        let rows = self.row_count();
        loop {
            if self.columns[col]
                .read()
                .expect("column index lock poisoned")
                .rows_indexed
                == rows
            {
                return;
            }
            match self.columns[col].try_write() {
                Ok(mut index) => {
                    for id in index.rows_indexed..rows {
                        let key = self.terms[id as usize * self.arity + col];
                        index.map.entry(key).or_default().push(id);
                    }
                    index.rows_indexed = rows;
                    return;
                }
                Err(std::sync::TryLockError::WouldBlock) => std::thread::yield_now(),
                Err(std::sync::TryLockError::Poisoned(_)) => {
                    panic!("column index lock poisoned")
                }
            }
        }
    }

    /// Calls `f` with the row ids whose `col`-th packed term equals `key`,
    /// as a borrowed slice (no allocation; the column index is built or
    /// extended on first use). The column's read lock is held for the
    /// duration of `f`, which may recursively probe this or other columns
    /// (see [`Relation::ensure_indexed`] for why that cannot deadlock).
    pub fn with_matching_rows<R>(
        &self,
        col: usize,
        key: PackedTerm,
        f: impl FnOnce(&[RowId]) -> R,
    ) -> R {
        assert!(col < self.arity, "column out of bounds");
        let rows = self.row_count();
        {
            // Fast path: one uncontended read lock when the index is fresh.
            let index = self.columns[col].read().expect("column index lock poisoned");
            if index.rows_indexed == rows {
                return f(index.map.get(&key).map(Vec::as_slice).unwrap_or(&[]));
            }
        }
        self.ensure_indexed(col);
        let index = self.columns[col].read().expect("column index lock poisoned");
        f(index.map.get(&key).map(Vec::as_slice).unwrap_or(&[]))
    }

    /// Row ids whose `col`-th term equals `term`, copied into a fresh vector.
    /// Convenience for non-hot paths; the join kernel uses
    /// [`Relation::with_matching_rows`], which borrows instead of copying.
    pub fn matching_rows(&self, col: usize, term: Term) -> Vec<RowId> {
        match PackedTerm::pack(term) {
            Some(key) => self.with_matching_rows(col, key, |ids| ids.to_vec()),
            None => Vec::new(),
        }
    }

    /// Number of rows whose `col`-th term equals `term` (selectivity probes
    /// outside the kernel; builds the column index on demand). Unpackable
    /// terms match no stored row.
    pub fn matching_count(&self, col: usize, term: Term) -> usize {
        match PackedTerm::pack(term) {
            Some(key) => self.matching_count_packed(col, key),
            None => 0,
        }
    }

    /// Number of rows whose `col`-th packed term equals `key` (the join
    /// kernel's selectivity probe).
    pub fn matching_count_packed(&self, col: usize, key: PackedTerm) -> usize {
        self.with_matching_rows(col, key, |ids| ids.len())
    }

    /// Number of distinct packed keys in `col` (builds the column index on
    /// demand). `len / distinct_count` is the average probe fan-out the
    /// join planner uses to estimate build/probe selectivity before any
    /// binding is known.
    pub fn distinct_count(&self, col: usize) -> usize {
        assert!(col < self.arity, "column out of bounds");
        self.ensure_indexed(col);
        self.columns[col]
            .read()
            .expect("column index lock poisoned")
            .map
            .len()
    }
}

/// A finite set of atoms over constants and labelled nulls, stored as one
/// columnar [`Relation`] per predicate.
#[derive(Clone, Default)]
pub struct Instance {
    relations: FxHashMap<Predicate, Relation>,
    len: usize,
    /// Reusable pack buffer for the term-level insert path, so repeated
    /// `insert` / `insert_terms` calls (the chase and executor apply phases)
    /// do not allocate per fact.
    pack_scratch: Vec<PackedTerm>,
}

impl Instance {
    /// Creates an empty instance.
    pub fn new() -> Instance {
        Instance::default()
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the instance has no atoms.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The relation of a predicate, if it occurs in the instance.
    pub fn relation(&self, p: Predicate) -> Option<&Relation> {
        self.relations.get(&p)
    }

    /// Inserts an atom; returns `true` if it was not already present.
    /// Returns an error if the atom contains a variable or if its arity
    /// conflicts with earlier atoms over the same predicate.
    pub fn insert(&mut self, atom: Atom) -> Result<bool, ModelError> {
        self.insert_terms(atom.predicate, &atom.terms)
    }

    /// Inserts a fact given as a predicate and a term slice, without
    /// requiring a materialised [`Atom`]. Returns `true` if newly inserted.
    pub fn insert_terms(&mut self, predicate: Predicate, terms: &[Term]) -> Result<bool, ModelError> {
        let mut scratch = std::mem::take(&mut self.pack_scratch);
        let result = pack_row_into(predicate, terms, &mut scratch)
            .and_then(|()| self.insert_packed(predicate, &scratch));
        self.pack_scratch = scratch;
        result
    }

    /// Inserts one already-packed row. Returns `true` if newly inserted.
    pub fn insert_packed(
        &mut self,
        predicate: Predicate,
        row: &[PackedTerm],
    ) -> Result<bool, ModelError> {
        let rel = self
            .relations
            .entry(predicate)
            .or_insert_with(|| Relation::new(predicate, row.len()));
        if rel.arity != row.len() {
            return Err(ModelError::ArityMismatch {
                predicate: predicate.name().to_string(),
                expected: rel.arity,
                found: row.len(),
            });
        }
        let (_, inserted) = rel.insert_row(row)?;
        if inserted {
            self.len += 1;
        }
        Ok(inserted)
    }

    /// Batched insert: adds `rows` (a row-major packed slice holding a
    /// multiple of `arity` terms) to `predicate`'s relation through the
    /// row-level dedup, returning the number of rows that were newly
    /// inserted.
    ///
    /// The relation lookup and arity check are done once for the whole batch
    /// (packed rows are ground by construction), and insertion order follows
    /// slice order, so the parallel evaluator's merge step assigns the same
    /// row ids a sequential run would. `arity` must be positive; 0-ary facts
    /// go through [`Instance::insert_terms`].
    pub fn insert_batch(
        &mut self,
        predicate: Predicate,
        arity: usize,
        rows: &[PackedTerm],
    ) -> Result<usize, ModelError> {
        assert!(arity > 0, "insert_batch requires positive arity");
        assert_eq!(rows.len() % arity, 0, "rows must hold whole rows");
        let rel = self
            .relations
            .entry(predicate)
            .or_insert_with(|| Relation::new(predicate, arity));
        if rel.arity != arity {
            return Err(ModelError::ArityMismatch {
                predicate: predicate.name().to_string(),
                expected: rel.arity,
                found: arity,
            });
        }
        let mut inserted = 0;
        for row in rows.chunks_exact(arity) {
            // Count each row as it lands so `self.len` stays consistent with
            // the relation even if a later row fails (e.g. on capacity).
            if rel.insert_row(row)?.1 {
                inserted += 1;
                self.len += 1;
            }
        }
        Ok(inserted)
    }

    /// `true` iff the atom is present.
    pub fn contains(&self, atom: &Atom) -> bool {
        self.relations
            .get(&atom.predicate)
            .is_some_and(|rel| rel.contains_row(&atom.terms))
    }

    /// All atoms with the given predicate, materialised lazily.
    pub fn atoms_with_predicate(&self, p: Predicate) -> impl Iterator<Item = Atom> + '_ {
        self.relations.get(&p).into_iter().flat_map(|rel| {
            rel.rows().map(move |row| Atom {
                predicate: rel.predicate,
                terms: row.iter().map(|t| t.unpack()).collect(),
            })
        })
    }

    /// Atoms with predicate `p` whose argument at `position` equals `term`.
    ///
    /// Convenience wrapper over the column index that copies the matching
    /// row-id list and materialises atoms one by one; the join kernel and
    /// other hot paths use [`Relation::with_matching_rows`] directly, which
    /// hands out the borrowed row-id slice without allocating.
    pub fn atoms_matching(
        &self,
        p: Predicate,
        position: usize,
        term: Term,
    ) -> impl Iterator<Item = Atom> + '_ {
        let rel = self
            .relations
            .get(&p)
            .filter(|rel| position < rel.arity());
        let ids: Vec<RowId> = rel
            .map(|rel| rel.matching_rows(position, term))
            .unwrap_or_default();
        ids.into_iter()
            .filter_map(move |id| rel.map(|rel| rel.atom(id)))
    }

    /// Iterates over all atoms (materialised lazily).
    pub fn iter(&self) -> impl Iterator<Item = Atom> + '_ {
        self.relations.values().flat_map(|rel| {
            rel.rows().map(move |row| Atom {
                predicate: rel.predicate,
                terms: row.iter().map(|t| t.unpack()).collect(),
            })
        })
    }

    /// The predicates present in the instance.
    pub fn predicates(&self) -> impl Iterator<Item = Predicate> + '_ {
        self.relations.keys().copied()
    }

    /// The relations of the instance.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values()
    }

    /// The arity of a predicate, if it occurs in the instance.
    pub fn arity_of(&self, p: Predicate) -> Option<usize> {
        self.relations.get(&p).map(Relation::arity)
    }

    /// The active domain: all constants and nulls occurring in the instance.
    pub fn active_domain(&self) -> BTreeSet<Term> {
        self.relations
            .values()
            .flat_map(|rel| rel.terms.iter().map(|t| t.unpack()))
            .collect()
    }

    /// All constants occurring in the instance.
    pub fn constants(&self) -> BTreeSet<Symbol> {
        self.relations
            .values()
            .flat_map(|rel| rel.terms.iter().filter_map(|t| t.as_const()))
            .collect()
    }

    /// All labelled nulls occurring in the instance.
    pub fn nulls(&self) -> BTreeSet<NullId> {
        self.relations
            .values()
            .flat_map(|rel| rel.terms.iter().filter_map(|t| t.as_null()))
            .collect()
    }

    /// Number of atoms per predicate, useful for join-order heuristics.
    pub fn relation_size(&self, p: Predicate) -> usize {
        self.relations.get(&p).map(Relation::len).unwrap_or(0)
    }

    /// A canonical serialisation of the per-relation row layout: for each
    /// predicate (sorted by name) the debug-printed rows **in row-id
    /// order**. Two instances with equal layouts are bit-identical up to the
    /// relation map's iteration order — the property the parallel
    /// evaluator's determinism tests assert between thread counts.
    pub fn row_layout(&self) -> Vec<(String, Vec<String>)> {
        let mut layout: Vec<(String, Vec<String>)> = self
            .relations
            .values()
            .map(|rel| {
                (
                    rel.predicate.name().to_string(),
                    rel.rows().map(|row| format!("{row:?}")).collect(),
                )
            })
            .collect();
        layout.sort();
        layout
    }
}

impl FromIterator<Atom> for Instance {
    /// Builds an instance, panicking on invalid atoms; use [`Instance::insert`]
    /// for fallible construction.
    fn from_iter<I: IntoIterator<Item = Atom>>(iter: I) -> Self {
        let mut inst = Instance::new();
        for a in iter {
            inst.insert(a).expect("invalid atom while building instance");
        }
        inst
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut atoms: Vec<String> = self.iter().map(|a| a.to_string()).collect();
        atoms.sort();
        write!(f, "Instance{{{}}}", atoms.join(", "))
    }
}

/// A database: an instance containing only ground facts.
#[derive(Clone, Default, Debug)]
pub struct Database {
    instance: Instance,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Inserts a fact. Fails if the atom is not ground or the arity conflicts.
    pub fn insert(&mut self, fact: Atom) -> Result<bool, ModelError> {
        if !fact.is_ground() {
            return Err(ModelError::NonGroundFact(fact.to_string()));
        }
        self.instance.insert(fact)
    }

    /// Convenience constructor from `(predicate, constants)` tuples.
    pub fn from_facts<'a>(
        facts: impl IntoIterator<Item = (&'a str, Vec<&'a str>)>,
    ) -> Result<Database, ModelError> {
        let mut db = Database::new();
        for (p, args) in facts {
            db.insert(Atom::fact(p, &args))?;
        }
        Ok(db)
    }

    /// The underlying instance view of the database.
    pub fn as_instance(&self) -> &Instance {
        &self.instance
    }

    /// Converts the database into an instance (for chasing).
    pub fn into_instance(self) -> Instance {
        self.instance
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.instance.len()
    }

    /// `true` iff the database is empty.
    pub fn is_empty(&self) -> bool {
        self.instance.is_empty()
    }

    /// `true` iff the fact is present.
    pub fn contains(&self, fact: &Atom) -> bool {
        self.instance.contains(fact)
    }

    /// Iterates over all facts (materialised lazily).
    pub fn iter(&self) -> impl Iterator<Item = Atom> + '_ {
        self.instance.iter()
    }

    /// All facts with the given predicate (materialised lazily).
    pub fn facts_with_predicate(&self, p: Predicate) -> impl Iterator<Item = Atom> + '_ {
        self.instance.atoms_with_predicate(p)
    }

    /// The constants of the active domain `dom(D)`.
    pub fn domain(&self) -> BTreeSet<Symbol> {
        self.instance.constants()
    }
}

impl FromIterator<Atom> for Database {
    fn from_iter<I: IntoIterator<Item = Atom>>(iter: I) -> Self {
        let mut db = Database::new();
        for a in iter {
            db.insert(a).expect("invalid fact while building database");
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Variable;

    #[test]
    fn insert_deduplicates() {
        let mut db = Database::new();
        assert!(db.insert(Atom::fact("edge", &["a", "b"])).unwrap());
        assert!(!db.insert(Atom::fact("edge", &["a", "b"])).unwrap());
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn non_ground_facts_are_rejected() {
        let mut db = Database::new();
        let bad = Atom::new("edge", vec![Term::constant("a"), Term::variable("X")]);
        assert!(matches!(
            db.insert(bad),
            Err(ModelError::NonGroundFact(_))
        ));
    }

    #[test]
    fn arity_conflicts_are_rejected() {
        let mut db = Database::new();
        db.insert(Atom::fact("p", &["a"])).unwrap();
        assert!(matches!(
            db.insert(Atom::fact("p", &["a", "b"])),
            Err(ModelError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn instances_accept_nulls_but_not_variables() {
        let mut inst = Instance::new();
        inst.insert(Atom::new(
            "r",
            vec![Term::constant("a"), Term::Null(NullId(0))],
        ))
        .unwrap();
        assert_eq!(inst.len(), 1);
        assert_eq!(inst.nulls().len(), 1);

        let bad = Atom::new("r", vec![Term::Var(Variable::new("X")), Term::constant("a")]);
        assert!(inst.insert(bad).is_err());
    }

    #[test]
    fn position_index_finds_matching_atoms() {
        let mut db = Database::new();
        db.insert(Atom::fact("edge", &["a", "b"])).unwrap();
        db.insert(Atom::fact("edge", &["a", "c"])).unwrap();
        db.insert(Atom::fact("edge", &["b", "c"])).unwrap();
        let inst = db.as_instance();
        let from_a: Vec<Atom> = inst
            .atoms_matching(Predicate::new("edge"), 0, Term::constant("a"))
            .collect();
        assert_eq!(from_a.len(), 2);
        let to_c = inst
            .atoms_matching(Predicate::new("edge"), 1, Term::constant("c"))
            .count();
        assert_eq!(to_c, 2);
        assert_eq!(
            inst.atoms_matching(Predicate::new("edge"), 0, Term::constant("z"))
                .count(),
            0
        );
    }

    #[test]
    fn column_indexes_are_extended_after_later_inserts() {
        let mut inst = Instance::new();
        inst.insert(Atom::fact("edge", &["a", "b"])).unwrap();
        // First probe builds the column-0 index.
        assert_eq!(
            inst.relation(Predicate::new("edge"))
                .unwrap()
                .matching_count(0, Term::constant("a")),
            1
        );
        // Later inserts must be visible to subsequent probes.
        inst.insert(Atom::fact("edge", &["a", "c"])).unwrap();
        assert_eq!(
            inst.relation(Predicate::new("edge"))
                .unwrap()
                .matching_count(0, Term::constant("a")),
            2
        );
    }

    #[test]
    fn row_ids_are_stable_and_dense() {
        let mut inst = Instance::new();
        inst.insert(Atom::fact("edge", &["a", "b"])).unwrap();
        inst.insert(Atom::fact("edge", &["b", "c"])).unwrap();
        inst.insert(Atom::fact("edge", &["a", "b"])).unwrap(); // duplicate
        let rel = inst.relation(Predicate::new("edge")).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.find_row(&[Term::constant("a"), Term::constant("b")]), Some(0));
        assert_eq!(rel.find_row(&[Term::constant("b"), Term::constant("c")]), Some(1));
        assert_eq!(rel.atom(1), Atom::fact("edge", &["b", "c"]));
    }

    #[test]
    fn checked_row_ids_report_capacity_instead_of_truncating() {
        // 2^32 rows cannot be materialised in a test, so exercise the helper
        // the insert path uses directly.
        let p = Predicate::new("big");
        assert_eq!(checked_row_id(7, p), Ok(7));
        // The top id is reserved (PREMATCHED_ROW sentinel, and the row count
        // itself must stay representable), so the last valid id is MAX - 1.
        assert_eq!(checked_row_id(u32::MAX as usize - 1, p), Ok(u32::MAX - 1));
        let err = checked_row_id(u32::MAX as usize, p).unwrap_err();
        assert!(matches!(err, ModelError::CapacityExceeded { rows, .. } if rows == u32::MAX as usize));
        assert!(err.to_string().contains("big"));
    }

    fn pk(t: Term) -> PackedTerm {
        PackedTerm::pack(t).expect("ground term packs")
    }

    #[test]
    fn insert_batch_dedups_and_counts_new_rows() {
        let mut inst = Instance::new();
        inst.insert(Atom::fact("edge", &["a", "b"])).unwrap();
        let p = Predicate::new("edge");
        let rows = vec![
            pk(Term::constant("a")),
            pk(Term::constant("b")), // duplicate of the existing row
            pk(Term::constant("b")),
            pk(Term::constant("c")),
            pk(Term::constant("b")),
            pk(Term::constant("c")), // duplicate within the batch
        ];
        assert_eq!(inst.insert_batch(p, 2, &rows).unwrap(), 1);
        assert_eq!(inst.len(), 2);
        let rel = inst.relation(p).unwrap();
        assert_eq!(rel.find_row(&[Term::constant("b"), Term::constant("c")]), Some(1));
    }

    #[test]
    fn insert_batch_rejects_arity_conflicts() {
        let mut inst = Instance::new();
        inst.insert(Atom::fact("p", &["a"])).unwrap();
        let bad_arity = inst.insert_batch(
            Predicate::new("p"),
            2,
            &[pk(Term::constant("a")), pk(Term::constant("b"))],
        );
        assert!(matches!(bad_arity, Err(ModelError::ArityMismatch { .. })));
    }

    #[test]
    fn unpackable_terms_are_reported_not_stored() {
        let mut inst = Instance::new();
        // A null id past the 30-bit dictionary cannot be packed.
        let overflowing = Term::Null(NullId(1 << 40));
        let err = inst
            .insert(Atom::new("r", vec![Term::constant("a"), overflowing]))
            .unwrap_err();
        assert!(matches!(err, ModelError::PackOverflow { .. }));
        assert_eq!(inst.len(), 0);
        // Variables still report the groundness error, not overflow.
        let bad = inst
            .insert_terms(Predicate::new("r"), &[Term::variable("X")])
            .unwrap_err();
        assert!(matches!(bad, ModelError::NonGroundFact(_)));
        // Lookups with unpackable terms are simply misses.
        inst.insert(Atom::fact("r", &["a", "b"])).unwrap();
        let rel = inst.relation(Predicate::new("r")).unwrap();
        assert_eq!(rel.find_row(&[Term::constant("a"), overflowing]), None);
        assert_eq!(rel.matching_count(1, overflowing), 0);
    }

    #[test]
    fn distinct_count_reports_column_cardinality() {
        let db = Database::from_facts([
            ("edge", vec!["a", "b"]),
            ("edge", vec!["a", "c"]),
            ("edge", vec!["b", "c"]),
        ])
        .unwrap();
        let rel = db.as_instance().relation(Predicate::new("edge")).unwrap();
        assert_eq!(rel.distinct_count(0), 2); // a, b
        assert_eq!(rel.distinct_count(1), 2); // b, c
    }

    #[test]
    fn instances_are_shareable_across_threads() {
        let mut inst = Instance::new();
        inst.insert(Atom::fact("edge", &["a", "b"])).unwrap();
        inst.insert(Atom::fact("edge", &["a", "c"])).unwrap();
        let shared = &inst;
        let counts: Vec<usize> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        // Concurrent probes build the lazy index under the lock.
                        shared
                            .relation(Predicate::new("edge"))
                            .unwrap()
                            .matching_count(0, Term::constant("a"))
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(counts, vec![2; 4]);
    }

    #[test]
    fn domain_collects_constants() {
        let db = Database::from_facts([("edge", vec!["a", "b"]), ("node", vec!["c"])]).unwrap();
        let dom = db.domain();
        assert_eq!(dom.len(), 3);
        assert!(dom.contains(&Symbol::new("a")));
        assert!(dom.contains(&Symbol::new("c")));
    }

    #[test]
    fn relation_size_reports_per_predicate_counts() {
        let db = Database::from_facts([
            ("edge", vec!["a", "b"]),
            ("edge", vec!["b", "c"]),
            ("node", vec!["a"]),
        ])
        .unwrap();
        assert_eq!(db.as_instance().relation_size(Predicate::new("edge")), 2);
        assert_eq!(db.as_instance().relation_size(Predicate::new("node")), 1);
        assert_eq!(db.as_instance().relation_size(Predicate::new("zzz")), 0);
    }
}
