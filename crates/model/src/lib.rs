//! Logical model underlying the reproduction of *"The Space-Efficient Core of
//! Vadalog"* (Berger, Gottlob, Pieris, Sallinger — PODS 2019).
//!
//! This crate provides the Section 2 preliminaries of the paper as concrete,
//! reusable Rust types:
//!
//! * [`Symbol`] — interned identifiers for constants, variable names and
//!   predicate names.
//! * [`Term`] — constants, variables and labelled nulls.
//! * [`Atom`] / [`Predicate`] — relational atoms over terms.
//! * [`Database`] and [`Instance`] — finite sets of facts (respectively atoms
//!   with nulls), indexed by predicate for efficient matching.
//! * [`Substitution`] and homomorphisms between sets of atoms.
//! * Most-general unifiers ([`unify`]).
//! * [`Tgd`] — tuple-generating dependencies (existential rules).
//! * [`ConjunctiveQuery`] — CQs in the rule-based syntax of the paper.
//! * [`Program`] — a set of TGDs together with schema bookkeeping.
//! * [`parser`] — a small Vadalog-like surface syntax so that programs,
//!   databases and queries can be written as text in examples and tests.
//!
//! Everything in later crates (wardedness analysis, the chase, proof-tree
//! based query answering, the Datalog engine, …) is built on these types.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atom;
pub mod budget;
pub mod database;
pub mod error;
pub mod fasthash;
pub mod homomorphism;
pub mod parallel;
pub mod parser;
pub mod program;
pub mod query;
pub mod snapshot;
pub mod substitution;
pub mod symbols;
pub mod term;
pub mod tgd;
pub mod unify;

pub use atom::{Atom, Predicate};
pub use budget::{BudgetExceeded, CancelCell, KernelBudget, QueryBudget, BUDGET_POLL_INTERVAL};
pub use database::{fuse_key, Candidates, ColSet, Database, Instance, Relation, RowId};
pub use error::ModelError;
pub use homomorphism::{
    exists_homomorphism, find_homomorphism, homomorphisms, Bindings, HomSearch, JoinPlan, JoinSpec,
    JoinStats, Matcher, PlanOptions, RowTemplate, PREMATCHED_ROW,
};
pub use parallel::{DerivationBatch, MergeScratch, DELTA_SHARDS};
pub use program::Program;
pub use query::ConjunctiveQuery;
pub use snapshot::{InstanceSnapshot, SnapshotCell};
pub use substitution::Substitution;
pub use symbols::Symbol;
pub use term::{NullId, PackedTerm, Term, Variable};
pub use tgd::{display_variables, AtomSpan, RulePart, Tgd};
pub use unify::{mgu_atom_with_atom, unify_all_with};
