//! Most-general unifiers for atoms (Section 4.1 of the paper).
//!
//! Terms are flat (no function symbols), so unification is simple: walk the
//! argument lists, bind variables, and require constants/nulls to be equal.
//! The chunk-unifier conditions specific to existential variables live in
//! `vadalog-core`; this module provides the underlying syntactic MGU.

use crate::atom::Atom;
use crate::substitution::Substitution;
use crate::term::Term;

/// Computes a most-general unifier of two atoms, if one exists. The returned
/// substitution is idempotent and the identity on constants.
pub fn mgu_atom_with_atom(a: &Atom, b: &Atom) -> Option<Substitution> {
    if a.predicate != b.predicate || a.arity() != b.arity() {
        return None;
    }
    let mut subst = Substitution::new();
    for (ta, tb) in a.terms.iter().zip(b.terms.iter()) {
        let ta = subst.apply_term(ta);
        let tb = subst.apply_term(tb);
        if ta == tb {
            continue;
        }
        match (ta, tb) {
            (Term::Var(_), _) => extend(&mut subst, ta, tb),
            (_, Term::Var(_)) => extend(&mut subst, tb, ta),
            // Distinct constants or nulls: not unifiable.
            _ => return None,
        }
    }
    Some(subst)
}

/// Unifies every atom of `atoms` with `target` under a single substitution γ,
/// i.e. computes γ such that γ(a) = γ(target) for every `a ∈ atoms`. This is
/// the shape of unifier needed by chunk-based resolution once TGDs are in
/// single-head normal form (the set S₁ of query atoms is unified, as a whole,
/// with the single head atom S₂).
pub fn unify_all_with(atoms: &[Atom], target: &Atom) -> Option<Substitution> {
    let mut subst = Substitution::new();
    for atom in atoms {
        let a = subst.apply_atom(atom);
        let t = subst.apply_atom(target);
        let step = mgu_atom_with_atom(&a, &t)?;
        subst = subst.compose(&step);
    }
    // Make the result idempotent by applying it to its own images once more.
    Some(normalize(subst))
}

fn extend(subst: &mut Substitution, var_term: Term, value: Term) {
    // Rewrite existing bindings that point at `var_term` so the substitution
    // stays fully resolved.
    let mut step = Substitution::new();
    step.bind(var_term, value);
    *subst = subst.compose(&step);
    subst.bind(var_term, value);
}

fn normalize(subst: Substitution) -> Substitution {
    let mut out = Substitution::new();
    for (from, to) in subst.iter() {
        out.bind(*from, subst.apply_term(to));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{NullId, Variable};

    fn var(n: &str) -> Term {
        Term::variable(n)
    }

    fn cst(n: &str) -> Term {
        Term::constant(n)
    }

    #[test]
    fn unifies_variables_with_constants() {
        let a = Atom::new("r", vec![var("X"), cst("b")]);
        let b = Atom::new("r", vec![cst("a"), var("Y")]);
        let mgu = mgu_atom_with_atom(&a, &b).unwrap();
        assert_eq!(mgu.apply_atom(&a), mgu.apply_atom(&b));
        assert_eq!(mgu.get_var(Variable::new("X")), Some(cst("a")));
        assert_eq!(mgu.get_var(Variable::new("Y")), Some(cst("b")));
    }

    #[test]
    fn distinct_constants_do_not_unify() {
        let a = Atom::new("r", vec![cst("a")]);
        let b = Atom::new("r", vec![cst("b")]);
        assert!(mgu_atom_with_atom(&a, &b).is_none());
    }

    #[test]
    fn different_predicates_or_arities_do_not_unify() {
        let a = Atom::new("r", vec![var("X")]);
        let b = Atom::new("s", vec![var("X")]);
        assert!(mgu_atom_with_atom(&a, &b).is_none());
        let c = Atom::new("r", vec![var("X"), var("Y")]);
        assert!(mgu_atom_with_atom(&a, &c).is_none());
    }

    #[test]
    fn variable_to_variable_bindings_propagate() {
        // r(X, X) with r(Y, a): X ↦ Y, then Y ↦ a must give X ↦ a too.
        let a = Atom::new("r", vec![var("X"), var("X")]);
        let b = Atom::new("r", vec![var("Y"), cst("a")]);
        let mgu = mgu_atom_with_atom(&a, &b).unwrap();
        assert_eq!(mgu.apply_atom(&a), mgu.apply_atom(&b));
        assert_eq!(mgu.apply_term(&var("X")), cst("a"));
        assert_eq!(mgu.apply_term(&var("Y")), cst("a"));
    }

    #[test]
    fn repeated_variable_conflicts_are_rejected() {
        // r(X, X) cannot unify with r(a, b).
        let a = Atom::new("r", vec![var("X"), var("X")]);
        let b = Atom::new("r", vec![cst("a"), cst("b")]);
        assert!(mgu_atom_with_atom(&a, &b).is_none());
    }

    #[test]
    fn nulls_behave_like_constants_in_unification() {
        let n = Term::Null(NullId(1));
        let a = Atom::new("r", vec![n, var("X")]);
        let b = Atom::new("r", vec![var("Y"), cst("a")]);
        let mgu = mgu_atom_with_atom(&a, &b).unwrap();
        assert_eq!(mgu.apply_term(&var("Y")), n);

        let c = Atom::new("r", vec![n]);
        let d = Atom::new("r", vec![Term::Null(NullId(2))]);
        assert!(mgu_atom_with_atom(&c, &d).is_none());
    }

    #[test]
    fn unify_all_with_merges_several_query_atoms() {
        // {T(X, Y), T(X, Z)} unified with head atom T(W, W):
        // requires Y = Z = W... actually X↦W? Unifier: X↦W? Let's check:
        // unify T(X,Y) with T(W,W): X↦W, Y↦W. Then T(X,Z)→T(W,Z) with T(W,W): Z↦W.
        let q1 = Atom::new("t", vec![var("X"), var("Y")]);
        let q2 = Atom::new("t", vec![var("X"), var("Z")]);
        let head = Atom::new("t", vec![var("W"), var("W")]);
        let gamma = unify_all_with(&[q1.clone(), q2.clone()], &head).unwrap();
        assert_eq!(gamma.apply_atom(&q1), gamma.apply_atom(&head));
        assert_eq!(gamma.apply_atom(&q2), gamma.apply_atom(&head));
    }

    #[test]
    fn unify_all_with_fails_on_conflicting_constants() {
        let q1 = Atom::new("t", vec![cst("a"), var("Y")]);
        let q2 = Atom::new("t", vec![cst("b"), var("Z")]);
        let head = Atom::new("t", vec![var("W"), var("V")]);
        assert!(unify_all_with(&[q1, q2], &head).is_none());
    }

    #[test]
    fn mgu_is_most_general_for_simple_cases() {
        // Unifying r(X) with r(Y) should not ground anything.
        let a = Atom::new("r", vec![var("X")]);
        let b = Atom::new("r", vec![var("Y")]);
        let mgu = mgu_atom_with_atom(&a, &b).unwrap();
        assert_eq!(mgu.apply_atom(&a), mgu.apply_atom(&b));
        assert!(mgu.len() == 1);
    }
}
