//! Error types shared by the model crate.

use std::fmt;

/// Errors produced while constructing or parsing model objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A predicate was used with two different arities.
    ArityMismatch {
        /// Predicate name.
        predicate: String,
        /// Arity seen first.
        expected: usize,
        /// Conflicting arity.
        found: usize,
    },
    /// A fact (database atom) contained a variable or a null.
    NonGroundFact(String),
    /// A relation reached the row-id capacity bound (2^32 rows). Row ids are
    /// `u32` by design (they are stored in every column index and dedup
    /// bucket); inserting past the bound is reported instead of silently
    /// truncating the id.
    CapacityExceeded {
        /// Predicate of the relation that is full.
        predicate: String,
        /// Number of rows already stored.
        rows: usize,
    },
    /// A ground term could not be dictionary-encoded into the 30-bit packed
    /// payload (more than 2^30 distinct interned symbols, or a null id past
    /// 2^30). The packed fact store stores every term as a 4-byte
    /// [`crate::term::PackedTerm`]; exceeding the dictionary is reported
    /// instead of silently widening or truncating.
    PackOverflow {
        /// Display form of the unpackable term.
        term: String,
    },
    /// A TGD failed a structural validity check.
    InvalidTgd(String),
    /// A conjunctive query failed a structural validity check (e.g. an output
    /// variable that does not occur in the body).
    InvalidQuery(String),
    /// A parse error, with a line/column location and message.
    Parse {
        /// 1-based line of the error.
        line: usize,
        /// 1-based column of the error.
        column: usize,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ArityMismatch {
                predicate,
                expected,
                found,
            } => write!(
                f,
                "predicate `{predicate}` used with arity {found} but previously with arity {expected}"
            ),
            ModelError::NonGroundFact(a) => {
                write!(f, "fact `{a}` must contain only constants")
            }
            ModelError::CapacityExceeded { predicate, rows } => write!(
                f,
                "relation `{predicate}` is full: {rows} rows is the u32 row-id capacity"
            ),
            ModelError::PackOverflow { term } => write!(
                f,
                "term `{term}` exceeds the 30-bit packed-term dictionary (2^30 distinct symbols/nulls)"
            ),
            ModelError::InvalidTgd(msg) => write!(f, "invalid TGD: {msg}"),
            ModelError::InvalidQuery(msg) => write!(f, "invalid conjunctive query: {msg}"),
            ModelError::Parse {
                line,
                column,
                message,
            } => write!(f, "parse error at {line}:{column}: {message}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_useful_messages() {
        let e = ModelError::ArityMismatch {
            predicate: "edge".into(),
            expected: 2,
            found: 3,
        };
        assert!(e.to_string().contains("edge"));
        assert!(e.to_string().contains('2'));
        assert!(e.to_string().contains('3'));

        let p = ModelError::Parse {
            line: 4,
            column: 7,
            message: "unexpected token".into(),
        };
        assert!(p.to_string().contains("4:7"));
    }
}
