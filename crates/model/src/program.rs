//! Programs: finite sets of TGDs with schema bookkeeping.

use crate::atom::Predicate;
use crate::error::ModelError;
use crate::tgd::Tgd;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A finite set of TGDs Σ. Keeps track of the schema `sch(Σ)` (predicates and
/// arities) and distinguishes extensional (EDB) from intensional (IDB)
/// predicates: a predicate is intensional iff it occurs in the head of some
/// TGD.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Program {
    tgds: Vec<Tgd>,
    arities: BTreeMap<Predicate, usize>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Creates a program from TGDs, validating arity consistency.
    pub fn from_tgds(tgds: impl IntoIterator<Item = Tgd>) -> Result<Program, ModelError> {
        let mut p = Program::new();
        for t in tgds {
            p.add(t)?;
        }
        Ok(p)
    }

    /// Adds a TGD, checking that every predicate keeps a consistent arity.
    pub fn add(&mut self, tgd: Tgd) -> Result<(), ModelError> {
        tgd.validate()?;
        for atom in tgd.body.iter().chain(tgd.head.iter()) {
            match self.arities.get(&atom.predicate) {
                Some(&arity) if arity != atom.arity() => {
                    return Err(ModelError::ArityMismatch {
                        predicate: atom.predicate.name().to_string(),
                        expected: arity,
                        found: atom.arity(),
                    });
                }
                Some(_) => {}
                None => {
                    self.arities.insert(atom.predicate, atom.arity());
                }
            }
        }
        self.tgds.push(tgd);
        Ok(())
    }

    /// The TGDs of the program.
    pub fn tgds(&self) -> &[Tgd] {
        &self.tgds
    }

    /// Number of TGDs.
    pub fn len(&self) -> usize {
        self.tgds.len()
    }

    /// `true` iff the program has no TGDs.
    pub fn is_empty(&self) -> bool {
        self.tgds.is_empty()
    }

    /// The schema `sch(Σ)`: every predicate occurring in the program.
    pub fn schema(&self) -> BTreeSet<Predicate> {
        self.arities.keys().copied().collect()
    }

    /// The arity of a predicate of the schema.
    pub fn arity_of(&self, p: Predicate) -> Option<usize> {
        self.arities.get(&p).copied()
    }

    /// The intensional predicates: those occurring in the head of some TGD.
    pub fn intensional_predicates(&self) -> BTreeSet<Predicate> {
        self.tgds.iter().flat_map(|t| t.head_predicates()).collect()
    }

    /// The extensional (database) predicates `edb(Σ)`: schema predicates that
    /// never occur in a head.
    pub fn extensional_predicates(&self) -> BTreeSet<Predicate> {
        let idb = self.intensional_predicates();
        self.schema()
            .into_iter()
            .filter(|p| !idb.contains(p))
            .collect()
    }

    /// `true` iff every TGD is a Datalog rule (full, single head atom).
    pub fn is_datalog(&self) -> bool {
        self.tgds.iter().all(Tgd::is_datalog_rule)
    }

    /// The largest body size among the TGDs (the paper's
    /// `max_{σ∈Σ} |body(σ)|`); 0 for an empty program.
    pub fn max_body_size(&self) -> usize {
        self.tgds.iter().map(|t| t.body.len()).max().unwrap_or(0)
    }

    /// Iterates over the TGDs together with their index, which is used as the
    /// renaming tag during resolution.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Tgd)> {
        self.tgds.iter().enumerate()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.tgds {
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::term::Term;

    fn var(n: &str) -> Term {
        Term::variable(n)
    }

    fn tc_program() -> Program {
        Program::from_tgds([
            Tgd::new(
                vec![Atom::new("edge", vec![var("X"), var("Y")])],
                vec![Atom::new("t", vec![var("X"), var("Y")])],
            )
            .unwrap(),
            Tgd::new(
                vec![
                    Atom::new("edge", vec![var("X"), var("Y")]),
                    Atom::new("t", vec![var("Y"), var("Z")]),
                ],
                vec![Atom::new("t", vec![var("X"), var("Z")])],
            )
            .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn edb_and_idb_are_split_correctly() {
        let p = tc_program();
        let edb = p.extensional_predicates();
        let idb = p.intensional_predicates();
        assert!(edb.contains(&Predicate::new("edge")));
        assert!(idb.contains(&Predicate::new("t")));
        assert!(!idb.contains(&Predicate::new("edge")));
        assert_eq!(p.schema().len(), 2);
    }

    #[test]
    fn arity_conflicts_are_rejected() {
        let mut p = tc_program();
        let bad = Tgd::new(
            vec![Atom::new("edge", vec![var("X")])],
            vec![Atom::new("t", vec![var("X"), var("X")])],
        )
        .unwrap();
        assert!(matches!(p.add(bad), Err(ModelError::ArityMismatch { .. })));
    }

    #[test]
    fn datalog_detection() {
        let p = tc_program();
        assert!(p.is_datalog());

        let mut q = tc_program();
        q.add(
            Tgd::new(
                vec![Atom::new("t", vec![var("X"), var("Y")])],
                vec![Atom::new("r", vec![var("X"), var("Z")])],
            )
            .unwrap(),
        )
        .unwrap();
        assert!(!q.is_datalog());
    }

    #[test]
    fn max_body_size_is_reported() {
        assert_eq!(tc_program().max_body_size(), 2);
        assert_eq!(Program::new().max_body_size(), 0);
    }
}
