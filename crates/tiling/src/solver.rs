//! A bounded brute-force tiling solver.
//!
//! The unbounded tiling problem is undecidable, but for fixed maximum width
//! and height it is a finite search. The solver is used to cross-validate the
//! Section 5 reduction: whenever a tiling of bounded size exists, the Boolean
//! query of the reduction is a certain answer (witnessed by a sufficiently
//! deep chase), and the E5 experiment checks exactly that correspondence.

use crate::system::TilingSystem;

/// A concrete tiling: `rows[i][j]` is the tile at row `i` (top to bottom),
/// column `j` (left to right).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tiling {
    /// The rows of the tiling, each of equal width.
    pub rows: Vec<Vec<String>>,
}

impl Tiling {
    /// Width (number of columns).
    pub fn width(&self) -> usize {
        self.rows.first().map(Vec::len).unwrap_or(0)
    }

    /// Height (number of rows).
    pub fn height(&self) -> usize {
        self.rows.len()
    }

    /// Checks that this tiling is valid for the given system.
    pub fn is_valid_for(&self, system: &TilingSystem) -> bool {
        let (w, h) = (self.width(), self.height());
        if w == 0 || h == 0 {
            return false;
        }
        if self.rows.iter().any(|r| r.len() != w) {
            return false;
        }
        if self.rows[0][0] != system.start || self.rows[h - 1][0] != system.finish {
            return false;
        }
        for row in &self.rows {
            if !system.left.contains(&row[0]) || !system.right.contains(&row[w - 1]) {
                return false;
            }
            for j in 0..w - 1 {
                if !system.allows_horizontal(&row[j], &row[j + 1]) {
                    return false;
                }
            }
        }
        for i in 0..h - 1 {
            for j in 0..w {
                if !system.allows_vertical(&self.rows[i][j], &self.rows[i + 1][j]) {
                    return false;
                }
            }
        }
        true
    }
}

/// Searches for a tiling of width ≤ `max_width` and height ≤ `max_height`.
/// Returns the first tiling found, if any.
pub fn has_tiling_within(
    system: &TilingSystem,
    max_width: usize,
    max_height: usize,
) -> Option<Tiling> {
    for width in 1..=max_width {
        // All rows of this width that respect H and the border conditions.
        let rows = enumerate_rows(system, width);
        if rows.is_empty() {
            continue;
        }
        // First rows must start with the start tile, last rows with finish.
        let starts: Vec<&Vec<String>> = rows.iter().filter(|r| r[0] == system.start).collect();
        if starts.is_empty() {
            continue;
        }
        for first in starts {
            let mut stack = vec![first.clone()];
            if let Some(solution) = extend_downwards(system, &rows, &mut stack, max_height) {
                return Some(solution);
            }
        }
    }
    None
}

fn extend_downwards(
    system: &TilingSystem,
    rows: &[Vec<String>],
    stack: &mut Vec<Vec<String>>,
    max_height: usize,
) -> Option<Tiling> {
    let last = stack.last().expect("stack never empty").clone();
    if last[0] == system.finish && stack.len() >= 2 {
        return Some(Tiling {
            rows: stack.clone(),
        });
    }
    // A single-row tiling is allowed if start == finish, which well-formed
    // systems exclude; still handle it for robustness.
    if last[0] == system.finish && system.start == system.finish {
        return Some(Tiling {
            rows: stack.clone(),
        });
    }
    if stack.len() >= max_height {
        return None;
    }
    for candidate in rows {
        if (0..last.len()).all(|j| system.allows_vertical(&last[j], &candidate[j])) {
            stack.push(candidate.clone());
            if let Some(sol) = extend_downwards(system, rows, stack, max_height) {
                return Some(sol);
            }
            stack.pop();
        }
    }
    None
}

/// Enumerates every row of exactly `width` tiles that starts in `L`, ends in
/// `R` and respects the horizontal constraints.
fn enumerate_rows(system: &TilingSystem, width: usize) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    let mut partial: Vec<String> = Vec::new();
    fn recurse(
        system: &TilingSystem,
        width: usize,
        partial: &mut Vec<String>,
        out: &mut Vec<Vec<String>>,
    ) {
        if partial.len() == width {
            if system.right.contains(partial.last().unwrap()) {
                out.push(partial.clone());
            }
            return;
        }
        for tile in &system.tiles {
            let ok = if partial.is_empty() {
                system.left.contains(tile)
            } else {
                system.allows_horizontal(partial.last().unwrap(), tile)
            };
            if ok {
                partial.push(tile.clone());
                recurse(system, width, partial, out);
                partial.pop();
            }
        }
    }
    recurse(system, width, &mut partial, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solvable_example_has_a_small_tiling() {
        let system = TilingSystem::solvable_example();
        let tiling = has_tiling_within(&system, 4, 4).expect("solvable");
        assert!(tiling.is_valid_for(&system));
        assert_eq!(tiling.rows[0][0], "a");
        assert_eq!(tiling.rows.last().unwrap()[0], "b");
    }

    #[test]
    fn unsolvable_example_has_no_tiling_within_bounds() {
        let system = TilingSystem::unsolvable_example();
        assert!(has_tiling_within(&system, 5, 5).is_none());
    }

    #[test]
    fn validity_checks_catch_broken_tilings() {
        let system = TilingSystem::solvable_example();
        let good = Tiling {
            rows: vec![vec!["a".into(), "r".into()], vec!["b".into(), "r".into()]],
        };
        assert!(good.is_valid_for(&system));
        let bad_borders = Tiling {
            rows: vec![vec!["r".into(), "r".into()], vec!["b".into(), "r".into()]],
        };
        assert!(!bad_borders.is_valid_for(&system));
        let bad_vertical = Tiling {
            rows: vec![vec!["b".into(), "r".into()], vec!["a".into(), "r".into()]],
        };
        assert!(!bad_vertical.is_valid_for(&system));
    }

    #[test]
    fn row_enumeration_respects_constraints() {
        let system = TilingSystem::solvable_example();
        let rows = enumerate_rows(&system, 2);
        // a r and b r are the only valid rows of width 2.
        assert_eq!(rows.len(), 2);
        let rows3 = enumerate_rows(&system, 3);
        // a r r and b r r.
        assert_eq!(rows3.len(), 2);
    }
}
