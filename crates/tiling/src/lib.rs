//! Tiling systems and the Section 5 reduction.
//!
//! Theorem 5.1 of the paper shows that `CQAns(PWL)` — conjunctive query
//! answering under piece-wise linear TGDs *without* the wardedness condition
//! — is undecidable, by a reduction from the unbounded tiling problem. This
//! crate implements:
//!
//! * [`TilingSystem`] — the tuple `(T, L, R, H, V, a, b)` of tiles, border
//!   sets, horizontal/vertical constraints and start/finish tiles;
//! * [`reduction`] — the construction of the database `D_T`, the fixed
//!   piece-wise linear (non-warded) TGD set Σ and the Boolean CQ `q` from
//!   Section 5;
//! * [`solver`] — a bounded brute-force tiling solver used to cross-validate
//!   the reduction on decidable instances (finite width/height bounds).
//!
//! The E5 experiment uses these pieces to demonstrate the boundary that
//! justifies combining wardedness with piece-wise linearity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod reduction;
pub mod solver;
pub mod system;

pub use reduction::{reduction, TilingReduction};
pub use solver::{has_tiling_within, Tiling};
pub use system::TilingSystem;
