//! Tiling systems (Section 5).

use std::collections::BTreeSet;

/// A tiling system `T = (T, L, R, H, V, a, b)`.
///
/// A *tiling* is a function `f : [n] × [m] → T` (n columns of m rows in the
/// paper's convention: `f(1,1) = a` starts the first row, `f(1,m) = b` starts
/// the last row) such that the leftmost column carries only tiles of `L`, the
/// rightmost column only tiles of `R`, and horizontally/vertically adjacent
/// tiles satisfy `H` and `V` respectively.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TilingSystem {
    /// The tiles, identified by name.
    pub tiles: Vec<String>,
    /// Left border tiles `L ⊆ T`.
    pub left: BTreeSet<String>,
    /// Right border tiles `R ⊆ T` (disjoint from `L`).
    pub right: BTreeSet<String>,
    /// Horizontal constraints: `(t, t')` allows `t'` to appear immediately to
    /// the right of `t`.
    pub horizontal: BTreeSet<(String, String)>,
    /// Vertical constraints: `(t, t')` allows `t'` to appear immediately
    /// below `t`.
    pub vertical: BTreeSet<(String, String)>,
    /// The start tile `a` (first tile of the first row).
    pub start: String,
    /// The finish tile `b` (first tile of the last row).
    pub finish: String,
}

impl TilingSystem {
    /// Creates a tiling system, checking basic well-formedness: all referenced
    /// tiles exist and `L ∩ R = ∅`.
    pub fn new(
        tiles: Vec<&str>,
        left: Vec<&str>,
        right: Vec<&str>,
        horizontal: Vec<(&str, &str)>,
        vertical: Vec<(&str, &str)>,
        start: &str,
        finish: &str,
    ) -> Result<TilingSystem, String> {
        let tile_set: BTreeSet<&str> = tiles.iter().copied().collect();
        let check = |t: &str| -> Result<(), String> {
            if tile_set.contains(t) {
                Ok(())
            } else {
                Err(format!("unknown tile `{t}`"))
            }
        };
        for t in left.iter().chain(right.iter()) {
            check(t)?;
        }
        for (x, y) in horizontal.iter().chain(vertical.iter()) {
            check(x)?;
            check(y)?;
        }
        check(start)?;
        check(finish)?;
        let left: BTreeSet<String> = left.into_iter().map(String::from).collect();
        let right: BTreeSet<String> = right.into_iter().map(String::from).collect();
        if !left.is_disjoint(&right) {
            return Err("left and right border tile sets must be disjoint".into());
        }
        Ok(TilingSystem {
            tiles: tiles.into_iter().map(String::from).collect(),
            left,
            right,
            horizontal: horizontal
                .into_iter()
                .map(|(a, b)| (a.to_string(), b.to_string()))
                .collect(),
            vertical: vertical
                .into_iter()
                .map(|(a, b)| (a.to_string(), b.to_string()))
                .collect(),
            start: start.to_string(),
            finish: finish.to_string(),
        })
    }

    /// Number of tiles.
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }

    /// `true` iff the pair is allowed horizontally.
    pub fn allows_horizontal(&self, a: &str, b: &str) -> bool {
        self.horizontal.contains(&(a.to_string(), b.to_string()))
    }

    /// `true` iff the pair is allowed vertically.
    pub fn allows_vertical(&self, a: &str, b: &str) -> bool {
        self.vertical.contains(&(a.to_string(), b.to_string()))
    }

    /// A simple solvable example: a 2×2 corridor where the first row is
    /// `a r` and the second row is `b r` (all constraints permitting).
    pub fn solvable_example() -> TilingSystem {
        TilingSystem::new(
            vec!["a", "b", "r"],
            vec!["a", "b"],
            vec!["r"],
            vec![("a", "r"), ("b", "r"), ("r", "r")],
            vec![("a", "b"), ("r", "r"), ("b", "b"), ("a", "a")],
            "a",
            "b",
        )
        .expect("example is well-formed")
    }

    /// An unsolvable example: the finish tile can never be placed below the
    /// start tile because no vertical constraint chain reaches it.
    pub fn unsolvable_example() -> TilingSystem {
        TilingSystem::new(
            vec!["a", "b", "r"],
            vec!["a", "b"],
            vec!["r"],
            vec![("a", "r"), ("b", "r"), ("r", "r")],
            // `a` can only sit above `a`, so a row starting with `b` can never
            // appear below the first row.
            vec![("a", "a"), ("r", "r")],
            "a",
            "b",
        )
        .expect("example is well-formed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_tile_references() {
        assert!(
            TilingSystem::new(vec!["a"], vec!["a"], vec![], vec![], vec![], "a", "missing")
                .is_err()
        );
        assert!(TilingSystem::new(
            vec!["a", "b"],
            vec!["a"],
            vec!["a"],
            vec![],
            vec![],
            "a",
            "b"
        )
        .is_err());
    }

    #[test]
    fn constraint_lookups() {
        let t = TilingSystem::solvable_example();
        assert!(t.allows_horizontal("a", "r"));
        assert!(!t.allows_horizontal("r", "a"));
        assert!(t.allows_vertical("a", "b"));
        assert_eq!(t.tile_count(), 3);
    }
}
