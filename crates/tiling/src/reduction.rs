//! The Section 5 reduction from the unbounded tiling problem to
//! `CQAns(PWL)`.
//!
//! Given a tiling system `T` the reduction produces a database `D_T` storing
//! the system, a *fixed* set Σ of piece-wise linear TGDs (independent of `T`)
//! that generates all candidate tilings via existential row identifiers, and
//! a Boolean conjunctive query `q` asking whether some candidate tiling ends
//! with a row starting at the finish tile. `T` has a tiling iff
//! `() ∈ cert(q, D_T, Σ)`, and since Σ is *not* warded this establishes
//! Theorem 5.1: piece-wise linearity alone does not make query answering
//! decidable.

use crate::system::TilingSystem;
use vadalog_model::parser::{parse_query, parse_rules};
use vadalog_model::{Atom, ConjunctiveQuery, Database, Program};

/// The output of the reduction: `(D_T, Σ, q)`.
#[derive(Debug, Clone)]
pub struct TilingReduction {
    /// The database `D_T` storing the tiling system.
    pub database: Database,
    /// The fixed, piece-wise linear but non-warded TGD set Σ.
    pub program: Program,
    /// The Boolean query `Q ← CTiling(x, y), Finish(y)`.
    pub query: ConjunctiveQuery,
}

/// The fixed TGD set Σ of Section 5 in the surface syntax of this
/// reproduction. `_` denotes a don't-care variable, exactly as in the paper.
pub const SIGMA: &str = "\
row(Z, Z, X, X) :- tile(X).\n\
row(X, U, Y, W) :- row(_, X, Y, Z), h(Z, W).\n\
comp(X, X2) :- row(X, X, Y, Y), row(X2, X2, Y2, Y2), v(Y, Y2).\n\
comp(Y, Y2) :- row(X, Y, _, Z), row(X2, Y2, _, Z2), comp(X, X2), v(Z, Z2).\n\
ctiling(X, Y) :- row(_, X, Y, Z), start(Y), rightb(Z).\n\
ctiling(Y, Z) :- ctiling(X, _), row(_, Y, Z, W), comp(X, Y), leftb(Z), rightb(W).\n";

/// The Boolean query of the reduction.
pub const QUERY: &str = "? :- ctiling(X, Y), finish(Y).";

/// Builds the reduction `(D_T, Σ, q)` for a tiling system.
pub fn reduction(system: &TilingSystem) -> TilingReduction {
    let program = parse_rules(SIGMA).expect("Σ is well-formed");
    let query = parse_query(QUERY).expect("q is well-formed");

    let mut database = Database::new();
    let mut add = |predicate: &str, args: &[&str]| {
        database
            .insert(Atom::fact(predicate, args))
            .expect("reduction facts are ground");
    };
    for tile in &system.tiles {
        add("tile", &[tile.as_str()]);
    }
    for tile in &system.left {
        add("leftb", &[tile.as_str()]);
    }
    for tile in &system.right {
        add("rightb", &[tile.as_str()]);
    }
    for (a, b) in &system.horizontal {
        add("h", &[a.as_str(), b.as_str()]);
    }
    for (a, b) in &system.vertical {
        add("v", &[a.as_str(), b.as_str()]);
    }
    add("start", &[system.start.as_str()]);
    add("finish", &[system.finish.as_str()]);

    TilingReduction {
        database,
        program,
        query,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::has_tiling_within;
    use vadalog_analysis::classify::{classify_scenario, ScenarioClass};
    use vadalog_analysis::pwl::is_piecewise_linear;
    use vadalog_analysis::wardedness::is_warded;
    use vadalog_chase::{ChaseConfig, ChaseEngine, TerminationPolicy};

    #[test]
    fn sigma_is_piecewise_linear_but_not_warded() {
        let red = reduction(&TilingSystem::solvable_example());
        assert!(is_piecewise_linear(&red.program));
        assert!(!is_warded(&red.program));
        assert_eq!(classify_scenario(&red.program), ScenarioClass::NotWarded);
    }

    #[test]
    fn database_encodes_the_system() {
        let system = TilingSystem::solvable_example();
        let red = reduction(&system);
        assert!(red.database.contains(&Atom::fact("tile", &["a"])));
        assert!(red.database.contains(&Atom::fact("start", &["a"])));
        assert!(red.database.contains(&Atom::fact("finish", &["b"])));
        assert!(red.database.contains(&Atom::fact("h", &["a", "r"])));
        assert!(red.database.contains(&Atom::fact("v", &["a", "b"])));
        assert_eq!(
            red.database.len(),
            system.tiles.len()
                + system.left.len()
                + system.right.len()
                + system.horizontal.len()
                + system.vertical.len()
                + 2
        );
    }

    #[test]
    fn solvable_system_is_witnessed_by_a_bounded_chase() {
        let system = TilingSystem::solvable_example();
        assert!(has_tiling_within(&system, 4, 4).is_some());
        let red = reduction(&system);
        let engine = ChaseEngine::new(
            red.program.clone(),
            ChaseConfig {
                record_provenance: false,
                ..ChaseConfig::restricted(TerminationPolicy::MaxNullDepth(4))
            },
        );
        let result = engine.run(&red.database);
        assert!(result.boolean_answer(&red.query));
    }

    #[test]
    fn unsolvable_system_is_not_witnessed_within_the_same_bound() {
        let system = TilingSystem::unsolvable_example();
        assert!(has_tiling_within(&system, 5, 5).is_none());
        let red = reduction(&system);
        let engine = ChaseEngine::new(
            red.program.clone(),
            ChaseConfig {
                record_provenance: false,
                ..ChaseConfig::restricted(TerminationPolicy::MaxNullDepth(4))
            },
        );
        let result = engine.run(&red.database);
        assert!(!result.boolean_answer(&red.query));
    }
}
