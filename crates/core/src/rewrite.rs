//! Rewriting (WARD ∩ PWL, CQ) queries into piece-wise linear Datalog
//! (the constructive direction of Theorem 6.3 / Lemma 6.4).
//!
//! The paper converts every *linear proof tree* of a query `q` w.r.t. a
//! piece-wise linear warded program `Σ` into piece-wise linear Datalog rules:
//! every node of the tree becomes a fresh predicate `C[p]` standing for the
//! (canonically renamed) CQ labelling that node, with a rule deriving the
//! parent from its children; leaves become rules with database atoms in their
//! bodies. Since the canonical CQ labels are bounded by the node-width
//! polynomial, only finitely many predicates `C[p]` arise and the
//! construction terminates.
//!
//! This module runs the same state exploration as the linear proof search —
//! but *without a database*, so the result is data-independent:
//!
//! * **frozen variables** stand for the output variables of the query and for
//!   variables that later steps must treat as constants (the paper's
//!   specialization); they are represented by reserved constants `"$fN"` so
//!   that the resolution machinery treats them exactly as the IDO condition
//!   demands, and they are canonically renumbered per state so that the state
//!   space stays finite;
//! * a **resolution edge** `p →σ p'` becomes the rule `C[p](f̄_p) ← C[p'](f̄_{p'})`;
//! * a **database-split edge** (the data-independent counterpart of the
//!   match-and-drop step) peels the extensional atoms off a state, freezing
//!   the variables they share with the rest, and becomes the rule
//!   `C[p](f̄_p) ← edb-atoms, C[rest](f̄_rest)`;
//! * every state additionally gets the **terminal rule**
//!   `C[p](f̄_p) ← atoms(p)`, capturing proof branches that finish by matching
//!   the whole remaining CQ against the database.
//!
//! Every produced rule has at most one `C[·]` atom in its body, so the result
//! is intensionally linear — in particular piece-wise linear — Datalog.

use crate::bounds::node_width_bound_ward_pwl;
use crate::resolution::{chunk_resolvents, CqState};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use vadalog_model::{
    Atom, ConjunctiveQuery, ModelError, Predicate, Program, Substitution, Symbol, Term, Tgd,
    Variable,
};

/// Prefix of the reserved constants representing frozen (output) variables.
const FROZEN_PREFIX: &str = "$f";

/// Options for the rewriting.
#[derive(Debug, Clone, Copy)]
pub struct RewriteOptions {
    /// Override of the node-width bound.
    pub node_width: Option<usize>,
    /// Cap on the number of canonical states explored. If the cap is reached
    /// the rewriting fails (returns `None`) rather than produce an incomplete
    /// program.
    pub max_states: usize,
}

impl Default for RewriteOptions {
    fn default() -> Self {
        RewriteOptions {
            node_width: None,
            max_states: 100_000,
        }
    }
}

/// The result of a successful rewriting: a piece-wise linear Datalog program
/// plus the query to evaluate over it.
#[derive(Debug, Clone)]
pub struct RewrittenQuery {
    /// The generated Datalog program. Atoms over the original schema in rule
    /// bodies refer to database facts (the proof-tree leaves).
    pub program: Program,
    /// The query over the generated program whose answers equal the certain
    /// answers of the original query.
    pub query: ConjunctiveQuery,
    /// Number of canonical CQ states (generated predicates).
    pub state_count: usize,
}

/// Rewrites a (single-head, piece-wise linear, warded) program and query into
/// an equivalent piece-wise linear Datalog query. Returns `Ok(None)` when the
/// state cap is exceeded. The query must not contain constants.
pub fn rewrite_to_pwl_datalog(
    program: &Program,
    query: &ConjunctiveQuery,
    options: RewriteOptions,
) -> Result<Option<RewrittenQuery>, ModelError> {
    if query
        .atoms
        .iter()
        .any(|a| a.terms.iter().any(Term::is_const))
    {
        return Err(ModelError::InvalidQuery(
            "the Datalog rewriting requires a constant-free query (constants can be \
             encoded with a fresh unary database predicate)"
                .into(),
        ));
    }
    let bound = options
        .node_width
        .unwrap_or_else(|| node_width_bound_ward_pwl(query, program))
        .max(query.size());
    let edb: BTreeSet<Predicate> = program.extensional_predicates();

    // Freeze the output variables of the query.
    let mut freeze = Substitution::new();
    for (i, v) in query.output.iter().enumerate() {
        freeze.bind_var(*v, frozen_const(i));
    }
    let (initial, initial_map) = canonical_rewrite_state(freeze.apply_atoms(&query.atoms));

    let mut registry = StateRegistry::default();
    let mut rules: Vec<Tgd> = Vec::new();
    let mut queue: VecDeque<CqState> = VecDeque::new();
    registry.predicate_for(&initial);
    queue.push_back(initial.clone());

    while let Some(state) = queue.pop_front() {
        if registry.len() > options.max_states {
            return Ok(None);
        }
        let head = thaw_atom(&head_atom_for(&registry, &state));

        // Terminal rule: the whole remaining CQ matches the database.
        if !state.atoms().is_empty() {
            rules.push(make_rule(head.clone(), thaw_atoms(state.atoms()), None)?);
        }

        // Database-split: peel the extensional atoms off, freezing shared
        // variables, and keep resolving the intensional remainder.
        let (edb_atoms, idb_atoms): (Vec<Atom>, Vec<Atom>) = state
            .atoms()
            .iter()
            .cloned()
            .partition(|a| edb.contains(&a.predicate));
        if !edb_atoms.is_empty() && !idb_atoms.is_empty() {
            let rest_vars: BTreeSet<Variable> =
                idb_atoms.iter().flat_map(|a| a.variables()).collect();
            let shared: Vec<Variable> = edb_atoms
                .iter()
                .flat_map(|a| a.variables())
                .filter(|v| rest_vars.contains(v))
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect();
            let first_frozen = max_frozen_index(state.atoms()).map_or(0, |i| i + 1);
            let mut freeze_shared = Substitution::new();
            for (offset, v) in shared.iter().enumerate() {
                freeze_shared.bind_var(*v, frozen_const(first_frozen + offset));
            }
            let (child, child_map) = canonical_rewrite_state(freeze_shared.apply_atoms(&idb_atoms));
            let known = registry.contains(&child);
            registry.predicate_for(&child);
            if !known {
                queue.push_back(child.clone());
            }
            let body_edb = thaw_atoms(&freeze_shared.apply_atoms(&edb_atoms));
            let body_child = child_body_atom(&registry, &child, &child_map);
            rules.push(make_rule(head.clone(), body_edb, Some(body_child))?);
        }

        // Resolution edges.
        for resolvent in chunk_resolvents(&state, program) {
            if resolvent.state.size() > bound {
                continue;
            }
            let (child, child_map) = canonical_rewrite_state(resolvent.state.atoms().to_vec());
            let known = registry.contains(&child);
            registry.predicate_for(&child);
            if !known {
                queue.push_back(child.clone());
            }
            let body_child = child_body_atom(&registry, &child, &child_map);
            rules.push(make_rule(head.clone(), Vec::new(), Some(body_child))?);
        }
    }

    let mut out = Program::new();
    for rule in rules {
        out.add(rule)?;
    }

    // The final query: C[q0](…) with the output variables placed at the
    // positions their frozen constants occupy in the initial state.
    let goal_pred_name = registry
        .name_of_state(&initial)
        .expect("initial state registered");
    let order = frozen_order(&initial);
    let inverse: BTreeMap<Symbol, Symbol> = initial_map.iter().map(|(k, v)| (*v, *k)).collect();
    let out_vars: Vec<Variable> = (0..query.output.len())
        .map(|i| Variable::new(&format!("OUT{i}")))
        .collect();
    let goal_terms: Vec<Term> = order
        .iter()
        .map(|canonical| {
            let original = inverse.get(canonical).copied().unwrap_or(*canonical);
            let idx = frozen_index(original).unwrap_or(usize::MAX);
            out_vars
                .get(idx)
                .map(|v| Term::Var(*v))
                .unwrap_or_else(|| Term::variable(&format!("EXTRA{idx}")))
        })
        .collect();
    let final_query = ConjunctiveQuery::new_unchecked(
        out_vars,
        vec![Atom::new(goal_pred_name.as_str(), goal_terms)],
    );

    Ok(Some(RewrittenQuery {
        program: out,
        query: final_query,
        state_count: registry.len(),
    }))
}

/// Registry assigning a fresh predicate name to every canonical state.
#[derive(Default)]
struct StateRegistry {
    names: HashMap<CqState, String>,
}

impl StateRegistry {
    fn contains(&self, state: &CqState) -> bool {
        self.names.contains_key(state)
    }

    fn predicate_for(&mut self, state: &CqState) -> Predicate {
        let next = self.names.len();
        let name = self
            .names
            .entry(state.clone())
            .or_insert_with(|| format!("cq_{next}"))
            .clone();
        Predicate::new(&name)
    }

    fn name_of_state(&self, state: &CqState) -> Option<String> {
        self.names.get(state).cloned()
    }

    fn len(&self) -> usize {
        self.names.len()
    }
}

/// Canonicalises a state for the rewriting: variables are renamed by
/// [`CqState::new`] and frozen constants are renumbered in order of first
/// occurrence. Returns the canonical state together with the mapping from the
/// incoming frozen names to the canonical ones.
fn canonical_rewrite_state(atoms: Vec<Atom>) -> (CqState, BTreeMap<Symbol, Symbol>) {
    let sorted = CqState::new(atoms);
    let mut map: BTreeMap<Symbol, Symbol> = BTreeMap::new();
    let mut counter = 0usize;
    for atom in sorted.atoms() {
        for t in &atom.terms {
            if let Some(c) = t.as_const() {
                if frozen_index(c).is_some() && !map.contains_key(&c) {
                    map.insert(c, Symbol::new(&format!("{FROZEN_PREFIX}{counter}")));
                    counter += 1;
                }
            }
        }
    }
    let renamed: Vec<Atom> = sorted
        .atoms()
        .iter()
        .map(|a| Atom {
            predicate: a.predicate,
            terms: a
                .terms
                .iter()
                .map(|t| match t.as_const().and_then(|c| map.get(&c)) {
                    Some(new) => Term::Const(*new),
                    None => *t,
                })
                .collect(),
        })
        .collect();
    (CqState::new(renamed), map)
}

/// The body atom referring to a child state, with the child's canonical frozen
/// constants translated back to the parent's `F<n>` variables via `map`
/// (which maps parent-side frozen names to the child's canonical ones).
fn child_body_atom(
    registry: &StateRegistry,
    child: &CqState,
    map: &BTreeMap<Symbol, Symbol>,
) -> Atom {
    let inverse: BTreeMap<Symbol, Symbol> = map.iter().map(|(k, v)| (*v, *k)).collect();
    let name = registry
        .name_of_state(child)
        .expect("child state registered before emitting a rule");
    let terms = frozen_order(child)
        .into_iter()
        .map(|canonical| {
            let parent_side = inverse.get(&canonical).copied().unwrap_or(canonical);
            Term::variable(&format!(
                "F{}",
                frozen_index(parent_side).unwrap_or(usize::MAX)
            ))
        })
        .collect();
    Atom::new(name.as_str(), terms)
}

fn frozen_const(index: usize) -> Term {
    Term::constant(&format!("{FROZEN_PREFIX}{index}"))
}

fn frozen_index(sym: Symbol) -> Option<usize> {
    sym.as_str()
        .strip_prefix(FROZEN_PREFIX)
        .and_then(|s| s.parse().ok())
}

fn is_frozen(term: &Term) -> bool {
    matches!(term, Term::Const(c) if frozen_index(*c).is_some())
}

fn max_frozen_index(atoms: &[Atom]) -> Option<usize> {
    atoms
        .iter()
        .flat_map(|a| a.terms.iter())
        .filter_map(|t| t.as_const().and_then(frozen_index))
        .max()
}

/// The frozen constants of a state, sorted by index — this fixes the argument
/// order of the state's predicate.
fn frozen_order(state: &CqState) -> Vec<Symbol> {
    let mut set: BTreeSet<Symbol> = BTreeSet::new();
    for atom in state.atoms() {
        for t in &atom.terms {
            if is_frozen(t) {
                set.insert(t.as_const().unwrap());
            }
        }
    }
    let mut v: Vec<Symbol> = set.into_iter().collect();
    v.sort_by_key(|s| frozen_index(*s).unwrap_or(usize::MAX));
    v
}

/// The head atom `C[p](f̄_p)` of a state, with frozen constants as arguments
/// (callers thaw them into variables when emitting rules).
fn head_atom_for(registry: &StateRegistry, state: &CqState) -> Atom {
    let name = registry
        .name_of_state(state)
        .expect("state must be registered before a head atom is built");
    Atom::new(
        name.as_str(),
        frozen_order(state).into_iter().map(Term::Const).collect(),
    )
}

/// Replaces every frozen constant `$fN` by the variable `FN` (so that the
/// emitted rules are legal, constant-free TGDs).
fn thaw_term(t: &Term) -> Term {
    match t {
        Term::Const(c) => match frozen_index(*c) {
            Some(i) => Term::variable(&format!("F{i}")),
            None => *t,
        },
        other => *other,
    }
}

fn thaw_atom(a: &Atom) -> Atom {
    Atom {
        predicate: a.predicate,
        terms: a.terms.iter().map(thaw_term).collect(),
    }
}

fn thaw_atoms(atoms: &[Atom]) -> Vec<Atom> {
    atoms.iter().map(thaw_atom).collect()
}

/// Builds the Datalog rule `head ← edb_body (+ recursive_atom)`.
fn make_rule(
    head: Atom,
    edb_body: Vec<Atom>,
    recursive_atom: Option<Atom>,
) -> Result<Tgd, ModelError> {
    let mut body = edb_body;
    if let Some(r) = recursive_atom {
        body.push(r);
    }
    Tgd::new(body, vec![head])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use vadalog_analysis::normalize::normalize_single_head;
    use vadalog_analysis::pwl::is_intensionally_linear;
    use vadalog_datalog::DatalogEngine;
    use vadalog_model::parser::{parse, parse_query, parse_rules};

    fn rewrite(rules: &str, query: &str) -> RewrittenQuery {
        let program = normalize_single_head(&parse_rules(rules).unwrap())
            .unwrap()
            .program;
        let q = parse_query(query).unwrap();
        rewrite_to_pwl_datalog(&program, &q, RewriteOptions::default())
            .unwrap()
            .expect("state cap not hit")
    }

    #[test]
    fn transitive_closure_rewriting_matches_direct_evaluation() {
        let rules = "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).";
        let rewritten = rewrite(rules, "?(A, B) :- t(A, B).");
        assert!(is_intensionally_linear(&rewritten.program));
        let db = parse("edge(a, b). edge(b, c). edge(c, d).")
            .unwrap()
            .database;
        let direct = DatalogEngine::new(parse_rules(rules).unwrap())
            .unwrap()
            .answers(&db, &parse_query("?(A, B) :- t(A, B).").unwrap());
        let via_rewriting = DatalogEngine::new(rewritten.program.clone())
            .unwrap()
            .answers(&db, &rewritten.query);
        assert_eq!(direct, via_rewriting);
        assert_eq!(via_rewriting.len(), 6);
    }

    #[test]
    fn existential_programs_rewrite_to_datalog() {
        // P(x) → ∃z R(x,z); R(x,y) → P(y); query: is there an R-successor of
        // an R-successor of A? Every constant with a P fact qualifies.
        let rules = "r(X, Z) :- p(X).\n p(Y) :- r(X, Y).";
        let rewritten = rewrite(rules, "?(A) :- r(A, Y), r(Y, W).");
        assert!(rewritten.program.is_datalog());
        assert!(is_intensionally_linear(&rewritten.program));
        let db = parse("p(a). p(b).").unwrap().database;
        let answers = DatalogEngine::new(rewritten.program.clone())
            .unwrap()
            .answers(&db, &rewritten.query);
        let expected: BTreeSet<Vec<Symbol>> = [vec![Symbol::new("a")], vec![Symbol::new("b")]]
            .into_iter()
            .collect();
        assert_eq!(answers, expected);
    }

    #[test]
    fn boolean_queries_rewrite_to_zero_ary_goal() {
        let rules = "r(X, Z) :- p(X).";
        let rewritten = rewrite(rules, "? :- r(X, Z).");
        let db = parse("p(a).").unwrap().database;
        let result = DatalogEngine::new(rewritten.program.clone())
            .unwrap()
            .evaluate(&db);
        assert!(result.holds(&rewritten.query));
        let empty_db = parse("q(a).").unwrap().database;
        let empty = DatalogEngine::new(rewritten.program.clone())
            .unwrap()
            .evaluate(&empty_db);
        assert!(!empty.holds(&rewritten.query));
    }

    #[test]
    fn rewriting_is_database_independent() {
        let rules = "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).";
        let rewritten = rewrite(rules, "?(A, B) :- t(A, B).");
        for tgd in rewritten.program.tgds() {
            for atom in tgd.body.iter().chain(tgd.head.iter()) {
                assert!(atom.terms.iter().all(|t| t.is_var()));
            }
        }
        assert!(rewritten.state_count >= 2);
    }

    #[test]
    fn subclass_closure_rewriting_agrees_with_direct_evaluation() {
        // The Datalog core of Example 3.3 (the subclass-closure part): the
        // rewriting must agree with direct semi-naive evaluation.
        let rules = "subclassStar(X, Y) :- subclass(X, Y).\n\
             subclassStar(X, Z) :- subclassStar(X, Y), subclass(Y, Z).";
        let rewritten = rewrite(rules, "?(A, B) :- subclassStar(A, B).");
        assert!(is_intensionally_linear(&rewritten.program));
        let db =
            parse("subclass(student, person). subclass(person, agent). subclass(agent, thing).")
                .unwrap()
                .database;
        let direct = DatalogEngine::new(parse_rules(rules).unwrap())
            .unwrap()
            .answers(&db, &parse_query("?(A, B) :- subclassStar(A, B).").unwrap());
        let via_rewriting = DatalogEngine::new(rewritten.program.clone())
            .unwrap()
            .answers(&db, &rewritten.query);
        assert_eq!(direct, via_rewriting);
        assert_eq!(direct.len(), 6);
    }

    #[test]
    fn queries_with_constants_are_rejected() {
        let rules = "t(X, Y) :- edge(X, Y).";
        let program = parse_rules(rules).unwrap();
        let q = parse_query("?(B) :- t(a, B).").unwrap();
        assert!(matches!(
            rewrite_to_pwl_datalog(&program, &q, RewriteOptions::default()),
            Err(ModelError::InvalidQuery(_))
        ));
    }
}
