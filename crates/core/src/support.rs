//! Position-support pruning for the proof searches.
//!
//! [`PositionSupport`] over-approximates, for every predicate position
//! `(P, i)`, the set of **constants** that can ever appear there in
//! `chase(D, Σ)`:
//!
//! * database facts contribute their constants directly;
//! * a rule head position fed by a frontier variable `x` contributes the
//!   *intersection* of the supports of `x`'s body occurrences (the rule only
//!   fires when all of them match the same value);
//! * a head position fed by an existential variable is unconstrained (⊤) —
//!   it holds labelled nulls, which never equal a constant, but anything
//!   flowing *through* it later must be treated as unconstrained.
//!
//! The least fixpoint of these rules is finite (supports only grow and are
//! bounded by the active domain) and cheap to compute. It yields a sound
//! dead-branch test for proof-search states: a state atom with a constant
//! outside the support of its position can never be mapped into the chase,
//! so the whole state is unprovable. This generalises the extensional
//! dead-atom prune to **intensional** atoms — e.g. with transitive closure
//! over a chain, a goal `t(d, V)` where `d` is the chain's last node is
//! pruned immediately, instead of spawning an unbounded resolution subtree.

use std::collections::{BTreeSet, HashMap};
use vadalog_model::{Database, Predicate, Program, Symbol, Term};

/// One position's support: the constants that may occur there.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Support {
    /// Unconstrained (reachable from an existential position).
    Top,
    /// At most these constants (possibly none).
    Constants(BTreeSet<Symbol>),
}

impl Support {
    fn contains(&self, c: Symbol) -> bool {
        match self {
            Support::Top => true,
            Support::Constants(s) => s.contains(&c),
        }
    }

    /// Extends `self` with `other`; returns `true` if `self` grew.
    fn union_with(&mut self, other: &Support) -> bool {
        match (&mut *self, other) {
            (Support::Top, _) => false,
            (slot, Support::Top) => {
                *slot = Support::Top;
                true
            }
            (Support::Constants(a), Support::Constants(b)) => {
                let before = a.len();
                a.extend(b.iter().copied());
                a.len() != before
            }
        }
    }
}

/// The computed per-position constant supports.
#[derive(Debug, Clone)]
pub struct PositionSupport {
    map: HashMap<(Predicate, usize), Support>,
}

impl PositionSupport {
    /// Computes the least fixpoint for a program over a database.
    pub fn compute(program: &Program, database: &Database) -> PositionSupport {
        let mut map: HashMap<(Predicate, usize), Support> = HashMap::new();

        // Base: database facts.
        for rel in database.as_instance().relations() {
            for row in rel.rows() {
                for (i, term) in row.iter().enumerate() {
                    if let Some(c) = term.as_const() {
                        match map
                            .entry((rel.predicate(), i))
                            .or_insert_with(|| Support::Constants(BTreeSet::new()))
                        {
                            Support::Top => {}
                            Support::Constants(s) => {
                                s.insert(c);
                            }
                        }
                    }
                }
            }
        }

        // Fixpoint over the rules.
        loop {
            let mut changed = false;
            for (_, tgd) in program.iter() {
                let frontier = tgd.frontier();
                for head in &tgd.head {
                    for (i, term) in head.terms.iter().enumerate() {
                        let Term::Var(v) = term else { continue };
                        let contribution = if frontier.contains(v) {
                            // Intersection over the variable's body occurrences.
                            let mut acc: Option<Support> = None;
                            for body_atom in &tgd.body {
                                for (j, bt) in body_atom.terms.iter().enumerate() {
                                    if bt.as_var() != Some(*v) {
                                        continue;
                                    }
                                    let occ = map
                                        .get(&(body_atom.predicate, j))
                                        .cloned()
                                        .unwrap_or_else(|| Support::Constants(BTreeSet::new()));
                                    acc = Some(match acc {
                                        None => occ,
                                        Some(Support::Top) => occ,
                                        Some(prev) => match (prev, occ) {
                                            (p, Support::Top) => p,
                                            (Support::Constants(a), Support::Constants(b)) => {
                                                Support::Constants(
                                                    a.intersection(&b).copied().collect(),
                                                )
                                            }
                                            (Support::Top, o) => o,
                                        },
                                    });
                                }
                            }
                            acc.unwrap_or(Support::Top)
                        } else {
                            // Existential variable: unconstrained.
                            Support::Top
                        };
                        let slot = map
                            .entry((head.predicate, i))
                            .or_insert_with(|| Support::Constants(BTreeSet::new()));
                        changed |= slot.union_with(&contribution);
                    }
                }
            }
            if !changed {
                return PositionSupport { map };
            }
        }
    }

    /// `true` iff constant `c` may appear at position `i` of predicate `p`
    /// in the chase (over-approximation: `true` may be spurious, `false` is
    /// definitive).
    pub fn supports(&self, p: Predicate, i: usize, c: Symbol) -> bool {
        self.map
            .get(&(p, i))
            .map(|s| s.contains(c))
            .unwrap_or(false)
    }

    /// `true` iff the atom's constants are all within support — a necessary
    /// condition for the atom to map into the chase. Variables and nulls are
    /// ignored (they are unconstrained here).
    pub fn atom_satisfiable(&self, atom: &vadalog_model::Atom) -> bool {
        atom.terms.iter().enumerate().all(|(i, t)| match t {
            Term::Const(c) => self.supports(atom.predicate, i, *c),
            _ => true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_model::parser::{parse, parse_rules};
    use vadalog_model::Atom;

    fn support(rules: &str, facts: &str) -> PositionSupport {
        let program = parse_rules(rules).unwrap();
        let db = parse(facts).unwrap().database;
        PositionSupport::compute(&program, &db)
    }

    #[test]
    fn transitive_closure_supports_follow_the_chain() {
        let s = support(
            "t(X, Y) :- edge(X, Y).\n t(X, Z) :- t(X, Y), t(Y, Z).",
            "edge(a, b). edge(b, c). edge(c, d).",
        );
        let t = Predicate::new("t");
        // First components of t-facts are first components of edges.
        assert!(s.supports(t, 0, Symbol::new("a")));
        assert!(s.supports(t, 0, Symbol::new("c")));
        assert!(!s.supports(t, 0, Symbol::new("d"))); // chain end: no outgoing edge
        assert!(s.supports(t, 1, Symbol::new("d")));
        assert!(!s.supports(t, 1, Symbol::new("a"))); // chain start: no incoming edge
        assert!(!s.atom_satisfiable(&Atom::fact("t", &["d", "a"])));
        assert!(s.atom_satisfiable(&Atom::fact("t", &["a", "d"])));
    }

    #[test]
    fn existential_positions_are_unconstrained() {
        let s = support("r(X, Z) :- p(X).\n p(Y) :- r(X, Y).", "p(a).");
        let r = Predicate::new("r");
        let p = Predicate::new("p");
        assert!(s.supports(r, 0, Symbol::new("a")));
        // Position fed by an existential: anything goes (⊤).
        assert!(s.supports(r, 1, Symbol::new("zzz")));
        // p's support flows back from r's existential position: also ⊤.
        assert!(s.supports(p, 0, Symbol::new("zzz")));
    }

    #[test]
    fn unknown_predicates_have_empty_support() {
        let s = support("t(X, Y) :- edge(X, Y).", "edge(a, b).");
        assert!(!s.supports(Predicate::new("nope"), 0, Symbol::new("a")));
        // Atoms over unknown predicates with constants are unsatisfiable.
        assert!(!s.atom_satisfiable(&Atom::fact("nope", &["a"])));
    }

    #[test]
    fn repeated_variables_intersect_supports() {
        // The head variable occurs at two body positions; only values in both
        // supports survive.
        let s = support("both(X) :- p(X), q(X).", "p(a). p(b). q(b). q(c).");
        let both = Predicate::new("both");
        assert!(s.supports(both, 0, Symbol::new("b")));
        assert!(!s.supports(both, 0, Symbol::new("a")));
        assert!(!s.supports(both, 0, Symbol::new("c")));
    }
}
