//! The space-bounded decision procedure for `CQAns(WARD ∩ PWL)`
//! (Section 4.3).
//!
//! The paper's algorithm is non-deterministic: starting from the Boolean CQ
//! `q(c̄)` it repeatedly guesses a resolution, decomposition or specialization
//! step, keeping a single CQ of size at most `f_{WARD∩PWL}(q, Σ)`, and accepts
//! when the current CQ is contained in the database. Determinising it is a
//! reachability question over the (finite, polynomial in data complexity)
//! space of canonical CQ states, which is exactly what this module does:
//!
//! * **resolution** uses the chunk-based resolvents of [`crate::resolution`];
//! * **specialization + decomposition** are combined into a single
//!   *match-and-drop* step — pick one atom, pick a homomorphism of that atom
//!   into the database, drop the atom and propagate the grounding to the rest
//!   of the state (see DESIGN.md for why this is sound and complete);
//! * **acceptance** holds when the whole remaining state maps
//!   homomorphically into the database.
//!
//! The search memoises canonical states, so it terminates even when the
//! underlying proof trees could be unboundedly deep.
//!
//! # Extensional selection rule
//!
//! Match-and-drop is restricted by a *selection rule*: while the state
//! contains an atom over an **extensional** predicate, exactly one such atom
//! (the most constrained one) is selected, and the only successors explored
//! are its database matches. This is complete, by the classic independence-
//! of-the-selection-rule argument specialised to this calculus: an
//! extensional atom can never be resolved away (extensional predicates do
//! not occur in rule heads), so every accepting branch eventually drops it,
//! and that drop commutes with every other step. Resolution steps commute
//! because the chunk unifier of an instance state is an instance of the
//! original chunk unifier — in particular the "existential variables unify
//! only with non-shared variables" side-condition is insensitive to the
//! reordering: a variable shared with the still-present extensional atom is
//! shared either way, and after the drop it is a constant, which is equally
//! forbidden. Without the selection rule the search explores every
//! *interleaving* of extensional drops, an exponential redundancy that the
//! canonical-state memo cannot collapse (the intermediate states genuinely
//! differ); with it, negative decisions exhaust the reachable space quickly
//! instead of enumerating drop permutations.

use crate::bounds::node_width_bound_ward_pwl;
use crate::metrics::SpaceMeter;
use crate::resolution::{chunk_resolvents, CqState};
use crate::support::PositionSupport;
use std::collections::{BTreeSet, HashSet, VecDeque};
use std::ops::ControlFlow;
use vadalog_model::{
    exists_homomorphism, ConjunctiveQuery, Database, JoinSpec, Matcher, Predicate, Program,
    Substitution,
};

/// A state is dead if it contains an atom that can never be mapped into the
/// chase: an atom over an *extensional* predicate with no homomorphism into
/// the database on its own (extensional atoms can never be resolved away —
/// their predicates never occur in rule heads), or any atom carrying a
/// constant outside the [`PositionSupport`] of its position. Pruning such
/// states is sound and keeps negative decisions cheap.
fn has_dead_atom(
    state: &CqState,
    edb: &BTreeSet<Predicate>,
    database: &Database,
    support: &PositionSupport,
) -> bool {
    state.atoms().iter().any(|atom| {
        !support.atom_satisfiable(atom)
            || (edb.contains(&atom.predicate)
                && !exists_homomorphism(
                    std::slice::from_ref(atom),
                    database.as_instance(),
                    &Substitution::new(),
                ))
    })
}

/// Options controlling the proof search.
#[derive(Debug, Clone, Copy)]
pub struct SearchOptions {
    /// Override for the node-width bound; `None` uses `f_{WARD∩PWL}(q, Σ)`.
    pub node_width: Option<usize>,
    /// Hard cap on explored states, to keep combined-complexity experiments
    /// bounded. When the cap is hit the outcome is [`SearchOutcome::Inconclusive`].
    pub max_states: usize,
    /// Explore states breadth-first (`true`, default) or depth-first.
    pub breadth_first: bool,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            node_width: None,
            max_states: 2_000_000,
            breadth_first: true,
        }
    }
}

/// Statistics of a proof search run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchStats {
    /// Number of distinct canonical states visited.
    pub states_visited: usize,
    /// Number of resolution successors generated.
    pub resolution_steps: usize,
    /// Number of match-and-drop successors generated.
    pub drop_steps: usize,
    /// The largest state (in atoms) ever held — the observed node-width.
    pub max_state_size: usize,
    /// The node-width bound that was enforced.
    pub node_width_bound: usize,
    /// Peak working set in atoms: the size of the single state the
    /// non-deterministic algorithm would hold, i.e. the observed node width.
    /// (The deterministic simulation additionally memoises visited states;
    /// that book-keeping is reported separately via `states_visited`.)
    pub peak_live_atoms: usize,
}

/// The outcome of a proof search.
#[derive(Debug, Clone)]
pub enum SearchOutcome {
    /// A linear proof tree was found: the tuple is a certain answer.
    Accepted {
        /// Search statistics.
        stats: SearchStats,
        /// Depth (number of operations) of the accepting branch.
        depth: usize,
    },
    /// The full (bounded) state space was explored without acceptance: the
    /// tuple is not a certain answer (within the node-width bound, which is
    /// sufficient for piece-wise linear warded programs).
    Rejected {
        /// Search statistics.
        stats: SearchStats,
    },
    /// The state cap was hit before the search could conclude.
    Inconclusive {
        /// Search statistics.
        stats: SearchStats,
    },
}

impl SearchOutcome {
    /// `true` iff the search accepted.
    pub fn is_accepted(&self) -> bool {
        matches!(self, SearchOutcome::Accepted { .. })
    }

    /// The statistics of the run.
    pub fn stats(&self) -> &SearchStats {
        match self {
            SearchOutcome::Accepted { stats, .. }
            | SearchOutcome::Rejected { stats }
            | SearchOutcome::Inconclusive { stats } => stats,
        }
    }
}

/// Runs the linear proof search for a Boolean query (output variables already
/// instantiated — use [`ConjunctiveQuery::instantiate`]) against a single-head
/// program and a database.
///
/// When no explicit node-width override is given the search **iteratively
/// deepens the width**: a proof found within a smaller node-width is sound
/// (the bound only restricts which resolvents may be kept), so positive
/// instances are decided at the width their proof actually needs — usually
/// far below the worst-case `f_{WARD∩PWL}(q, Σ)` — while only a rejection at
/// the full bound is treated as definitive.
pub fn linear_proof_search(
    program: &Program,
    database: &Database,
    boolean_query: &ConjunctiveQuery,
    options: SearchOptions,
) -> SearchOutcome {
    let full_bound = options
        .node_width
        .unwrap_or_else(|| node_width_bound_ward_pwl(boolean_query, program))
        .max(boolean_query.size());
    // Width-independent machinery, shared by every deepening iteration.
    let edb = program.extensional_predicates();
    let support = PositionSupport::compute(program, database);
    if options.node_width.is_some() {
        return bounded_search(
            program,
            database,
            boolean_query,
            options,
            full_bound,
            &edb,
            &support,
        );
    }
    let mut width = boolean_query.size().max(2).min(full_bound);
    loop {
        let outcome = bounded_search(
            program,
            database,
            boolean_query,
            options,
            width,
            &edb,
            &support,
        );
        match outcome {
            SearchOutcome::Rejected { .. } if width < full_bound => {
                width = (width * 2).min(full_bound);
            }
            _ => return outcome,
        }
    }
}

/// One run of the memoised BFS/DFS at a fixed node-width bound.
fn bounded_search(
    program: &Program,
    database: &Database,
    boolean_query: &ConjunctiveQuery,
    options: SearchOptions,
    bound: usize,
    edb: &BTreeSet<Predicate>,
    support: &PositionSupport,
) -> SearchOutcome {
    let mut stats = SearchStats {
        node_width_bound: bound,
        ..SearchStats::default()
    };
    let mut meter = SpaceMeter::new();
    let instance = database.as_instance();

    let initial = CqState::new(boolean_query.atoms.clone());
    let mut visited: HashSet<CqState> = HashSet::new();
    let mut frontier: VecDeque<(CqState, usize)> = VecDeque::new();
    visited.insert(initial.clone());
    if !has_dead_atom(&initial, edb, database, support) {
        frontier.push_back((initial, 0));
    }

    while let Some((state, depth)) = if options.breadth_first {
        frontier.pop_front()
    } else {
        frontier.pop_back()
    } {
        stats.states_visited += 1;
        stats.max_state_size = stats.max_state_size.max(state.size());
        meter.set_live(state.size());

        // Acceptance: the whole remaining state embeds into the database.
        if exists_homomorphism(state.atoms(), instance, &Substitution::new()) {
            stats.peak_live_atoms = meter.peak();
            return SearchOutcome::Accepted { stats, depth };
        }
        if stats.states_visited >= options.max_states {
            stats.peak_live_atoms = meter.peak();
            return SearchOutcome::Inconclusive { stats };
        }

        // Selection rule (see module docs): while an extensional atom is
        // present, its database matches are the only successors explored.
        if let Some(index) = select_extensional_atom(&state, edb, instance) {
            drop_successors(
                &state,
                index,
                instance,
                database,
                edb,
                support,
                &mut stats,
                &mut visited,
                &mut frontier,
                depth,
            );
            continue;
        }

        // Resolution successors.
        for resolvent in chunk_resolvents(&state, program) {
            if resolvent.state.size() > bound {
                continue;
            }
            stats.resolution_steps += 1;
            if has_dead_atom(&resolvent.state, edb, database, support) {
                continue;
            }
            if visited.insert(resolvent.state.clone()) {
                frontier.push_back((resolvent.state, depth + 1));
            }
        }

        // Match-and-drop successors for the remaining (intensional) atoms:
        // ground one atom against the database and remove it, propagating the
        // grounding. The kernel streams each match straight into successor
        // construction — no substitution vector is materialised.
        for index in 0..state.atoms().len() {
            drop_successors(
                &state,
                index,
                instance,
                database,
                edb,
                support,
                &mut stats,
                &mut visited,
                &mut frontier,
                depth,
            );
        }
    }

    stats.peak_live_atoms = meter.peak();
    SearchOutcome::Rejected { stats }
}

/// Picks the extensional atom with the fewest estimated database matches, if
/// the state contains any extensional atom (the selection rule's choice).
fn select_extensional_atom(
    state: &CqState,
    edb: &BTreeSet<Predicate>,
    instance: &vadalog_model::Instance,
) -> Option<usize> {
    state
        .atoms()
        .iter()
        .enumerate()
        .filter(|(_, atom)| edb.contains(&atom.predicate))
        .min_by_key(|(_, atom)| match instance.relation(atom.predicate) {
            None => 0,
            Some(rel) => atom
                .terms
                .iter()
                .enumerate()
                .filter(|(_, t)| !t.is_var())
                .map(|(pos, t)| rel.matching_count(pos, *t))
                .min()
                .unwrap_or_else(|| rel.len()),
        })
        .map(|(index, _)| index)
}

/// Pushes every match-and-drop successor of `state.atoms()[index]` that
/// survives dead-branch pruning and the visited memo.
#[allow(clippy::too_many_arguments)]
fn drop_successors(
    state: &CqState,
    index: usize,
    instance: &vadalog_model::Instance,
    database: &Database,
    edb: &BTreeSet<Predicate>,
    support: &PositionSupport,
    stats: &mut SearchStats,
    visited: &mut HashSet<CqState>,
    frontier: &mut VecDeque<(CqState, usize)>,
    depth: usize,
) {
    let atom = &state.atoms()[index];
    let spec = JoinSpec::compile(std::slice::from_ref(atom));
    let mut matcher = Matcher::new(&spec);
    matcher.for_each(instance, |bindings| {
        stats.drop_steps += 1;
        let successor = state.drop_atom(index, &bindings.to_substitution());
        if !has_dead_atom(&successor, edb, database, support) && visited.insert(successor.clone()) {
            frontier.push_back((successor, depth + 1));
        }
        ControlFlow::Continue(())
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_analysis::normalize::normalize_single_head;
    use vadalog_model::parser::{parse, parse_query, parse_rules};
    use vadalog_model::Symbol;

    fn decide(rules: &str, facts: &str, query: &str, tuple: &[&str]) -> SearchOutcome {
        let program = normalize_single_head(&parse_rules(rules).unwrap())
            .unwrap()
            .program;
        let database = parse(facts).unwrap().database;
        let q = parse_query(query).unwrap();
        let symbols: Vec<Symbol> = tuple.iter().map(|s| Symbol::new(s)).collect();
        let boolean = q.instantiate(&symbols).expect("arity matches");
        linear_proof_search(&program, &database, &boolean, SearchOptions::default())
    }

    #[test]
    fn reachability_accepts_reachable_pairs() {
        let rules = "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).";
        let facts = "edge(a, b). edge(b, c). edge(c, d).";
        let query = "?(X, Y) :- t(X, Y).";
        assert!(decide(rules, facts, query, &["a", "d"]).is_accepted());
        assert!(decide(rules, facts, query, &["b", "d"]).is_accepted());
        assert!(decide(rules, facts, query, &["a", "b"]).is_accepted());
    }

    #[test]
    fn reachability_rejects_unreachable_pairs() {
        let rules = "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).";
        let facts = "edge(a, b). edge(b, c). edge(c, d).";
        let query = "?(X, Y) :- t(X, Y).";
        assert!(!decide(rules, facts, query, &["d", "a"]).is_accepted());
        assert!(!decide(rules, facts, query, &["a", "a"]).is_accepted());
    }

    #[test]
    fn existential_heads_witness_boolean_queries() {
        // P(x) → ∃z R(x,z); query ∃x∃z R(x,z) holds, but asking for a concrete
        // second component fails (it is a null).
        let rules = "r(X, Z) :- p(X).";
        let facts = "p(a).";
        assert!(decide(rules, facts, "? :- r(X, Z).", &[]).is_accepted());
        assert!(!decide(rules, facts, "?(Z) :- r(X, Z).", &["a"]).is_accepted());
    }

    #[test]
    fn nulls_propagate_through_warded_recursion() {
        // The paper's introductory warded pair of TGDs: P(x) → ∃z R(x,z) and
        // R(x,y) → P(y). Every element reachable through R is again a P, so
        // ∃y R(y, w) for some null w derived from the null of a: the Boolean
        // query "is there an R-edge out of an R-successor of a" must hold.
        let rules = "r(X, Z) :- p(X).\n p(Y) :- r(X, Y).";
        let facts = "p(a).";
        assert!(decide(rules, facts, "? :- r(a, Y), r(Y, W).", &[]).is_accepted());
        // But no constant is R-reachable from a.
        assert!(!decide(rules, facts, "?(Y) :- r(a, Y).", &["a"]).is_accepted());
    }

    #[test]
    fn owl_example_certain_answers() {
        let rules = "subclassStar(X, Y) :- subclass(X, Y).\n\
             subclassStar(X, Z) :- subclassStar(X, Y), subclass(Y, Z).\n\
             type(X, Z) :- type(X, Y), subclassStar(Y, Z).\n\
             triple(X, Z, W) :- type(X, Y), restriction(Y, Z).\n\
             triple(Z, W, X) :- triple(X, Y, Z), inverse(Y, W).\n\
             type(X, W) :- triple(X, Y, Z), restriction(W, Y).";
        let facts = "subclass(student, person). subclass(person, agent).\n\
             type(alice, student). type(alice, enrolled).\n\
             restriction(enrolled, hasCourse). inverse(hasCourse, courseOf).";
        let query = "?(X, C) :- type(X, C).";
        assert!(decide(rules, facts, query, &["alice", "agent"]).is_accepted());
        assert!(decide(rules, facts, query, &["alice", "person"]).is_accepted());
        assert!(!decide(rules, facts, query, &["alice", "hasCourse"]).is_accepted());
        // The existential triple exists for alice.
        assert!(decide(rules, facts, "? :- triple(alice, hasCourse, C).", &[]).is_accepted());
    }

    #[test]
    fn observed_node_width_stays_within_the_bound() {
        let rules = "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).";
        let facts = "edge(a, b). edge(b, c). edge(c, d). edge(d, e).";
        let outcome = decide(rules, facts, "?(X, Y) :- t(X, Y).", &["a", "e"]);
        let stats = outcome.stats();
        assert!(stats.max_state_size <= stats.node_width_bound);
        assert!(outcome.is_accepted());
    }

    #[test]
    fn unsatisfiable_queries_reject_quickly() {
        let rules = "t(X, Y) :- edge(X, Y).";
        let facts = "edge(a, b).";
        let outcome = decide(rules, facts, "? :- t(X, X).", &[]);
        assert!(!outcome.is_accepted());
        assert!(outcome.stats().states_visited < 100);
    }

    #[test]
    fn state_cap_yields_inconclusive() {
        let rules = "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).";
        let facts = "edge(a, b). edge(b, a).";
        let program = normalize_single_head(&parse_rules(rules).unwrap())
            .unwrap()
            .program;
        let database = parse(facts).unwrap().database;
        // t(a, a) is derivable on the cycle but not immediately acceptable
        // (the database holds no t-facts), so the cap of one state trips
        // before the search can conclude. (An unsupported constant would be
        // pruned before any state is ever visited — see `crate::support`.)
        let q = parse_query("?(X, Y) :- t(X, Y).").unwrap();
        let boolean = q
            .instantiate(&[Symbol::new("a"), Symbol::new("a")])
            .unwrap();
        let outcome = linear_proof_search(
            &program,
            &database,
            &boolean,
            SearchOptions {
                max_states: 1,
                ..SearchOptions::default()
            },
        );
        assert!(matches!(outcome, SearchOutcome::Inconclusive { .. }));
    }
}
