//! The high-level certain-answer engine.
//!
//! [`CertainAnswerEngine`] packages the full pipeline of the paper: a program
//! is normalised to single-head form, analysed for wardedness and piece-wise
//! linearity, and queries are then answered with the most appropriate
//! procedure:
//!
//! * `WARD ∩ PWL` → the space-bounded **linear proof search** of Section 4.3
//!   (the paper's headline NLogSpace algorithm);
//! * `WARD` (non-PWL) → the **alternating** bounded-node-width search;
//! * answer *enumeration* (rather than the decision problem) uses the
//!   Theorem 6.3 **Datalog rewriting** when it applies, and otherwise falls
//!   back to a terminating **chase** (which is complete whenever its
//!   termination policy is not the binding constraint).
//!
//! The engine never answers queries for non-warded programs — that is the
//! point of Theorem 5.1 — unless the caller explicitly opts into the
//! best-effort chase fallback.

use crate::alternating::{alternating_certain_answer, AlternatingOptions};
use crate::rewrite::{rewrite_to_pwl_datalog, RewriteOptions};
use crate::search::{linear_proof_search, SearchOptions, SearchOutcome};
use std::collections::BTreeSet;
use vadalog_analysis::normalize::normalize_single_head;
use vadalog_analysis::pwl::is_piecewise_linear;
use vadalog_analysis::wardedness::is_warded;
use vadalog_chase::{ChaseConfig, ChaseEngine, TerminationPolicy};
use vadalog_datalog::DatalogEngine;
use vadalog_model::{ConjunctiveQuery, Database, ModelError, Program, Symbol};

/// Which decision procedure the engine selected for a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Linear proof search (program is warded and piece-wise linear).
    LinearProofSearch,
    /// Alternating bounded-node-width search (warded, not piece-wise linear).
    Alternating,
    /// Best-effort chase (program is not warded; only used when
    /// [`EngineOptions::allow_unwarded`] is set).
    BestEffortChase,
}

/// Options for the certain-answer engine.
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Options for the linear proof search.
    pub search: SearchOptions,
    /// Options for the alternating search.
    pub alternating: AlternatingOptions,
    /// Options for the Datalog rewriting used by answer enumeration.
    pub rewrite: RewriteOptions,
    /// Termination policy of the chase fallback used by answer enumeration.
    pub chase_policy: TerminationPolicy,
    /// Accept non-warded programs and answer them best-effort with a bounded
    /// chase (unsound in general — Theorem 5.1 — but useful for experiments).
    pub allow_unwarded: bool,
    /// Worker threads for answer enumeration (the rewriting's semi-naive
    /// evaluation, the chase fallback's trigger detection, and the final CQ
    /// answering all run through the sharded kernels; 1 = sequential, 0 =
    /// all available parallelism). Answers are thread-count independent.
    pub threads: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            search: SearchOptions::default(),
            alternating: AlternatingOptions::default(),
            rewrite: RewriteOptions::default(),
            chase_policy: TerminationPolicy::MaxNullDepth(6),
            allow_unwarded: false,
            threads: 1,
        }
    }
}

/// The high-level engine: one program, many queries.
#[derive(Debug, Clone)]
pub struct CertainAnswerEngine {
    original: Program,
    normalized: Program,
    strategy: Strategy,
    options: EngineOptions,
    warded: bool,
    piecewise_linear: bool,
}

impl CertainAnswerEngine {
    /// Builds an engine for a program, choosing the strategy from the
    /// program's syntactic class. Fails for non-warded programs unless
    /// [`EngineOptions::allow_unwarded`] is set.
    pub fn new(
        program: Program,
        options: EngineOptions,
    ) -> Result<CertainAnswerEngine, ModelError> {
        let warded = is_warded(&program);
        let piecewise_linear = is_piecewise_linear(&program);
        let strategy = if warded && piecewise_linear {
            Strategy::LinearProofSearch
        } else if warded {
            Strategy::Alternating
        } else if options.allow_unwarded {
            Strategy::BestEffortChase
        } else {
            return Err(ModelError::InvalidTgd(
                "the program is not warded: certain-answer computation is undecidable in \
                 general (Theorem 5.1); set EngineOptions::allow_unwarded for a best-effort chase"
                    .into(),
            ));
        };
        let normalized = normalize_single_head(&program)?.program;
        Ok(CertainAnswerEngine {
            original: program,
            normalized,
            strategy,
            options,
            warded,
            piecewise_linear,
        })
    }

    /// Builds an engine with default options.
    pub fn with_defaults(program: Program) -> Result<CertainAnswerEngine, ModelError> {
        CertainAnswerEngine::new(program, EngineOptions::default())
    }

    /// The strategy the engine selected.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// `true` iff the program is warded.
    pub fn is_warded(&self) -> bool {
        self.warded
    }

    /// `true` iff the program is piece-wise linear.
    pub fn is_piecewise_linear(&self) -> bool {
        self.piecewise_linear
    }

    /// The single-head normalisation of the program actually used by the
    /// decision procedures.
    pub fn normalized_program(&self) -> &Program {
        &self.normalized
    }

    /// The original program.
    pub fn program(&self) -> &Program {
        &self.original
    }

    /// Decides whether `tuple` is a certain answer to `query` over `database`
    /// (the decision problem `CQAns` of the paper).
    pub fn is_certain_answer(
        &self,
        database: &Database,
        query: &ConjunctiveQuery,
        tuple: &[Symbol],
    ) -> Result<bool, ModelError> {
        let boolean = query.instantiate(tuple).ok_or_else(|| {
            ModelError::InvalidQuery(format!(
                "tuple arity {} does not match query arity {}",
                tuple.len(),
                query.output.len()
            ))
        })?;
        Ok(self.boolean_certain(database, &boolean))
    }

    /// Decides a Boolean query (certainly true over every model?).
    pub fn boolean_certain(&self, database: &Database, boolean_query: &ConjunctiveQuery) -> bool {
        match self.strategy {
            Strategy::LinearProofSearch => {
                let outcome = linear_proof_search(
                    &self.normalized,
                    database,
                    boolean_query,
                    self.options.search,
                );
                matches!(outcome, SearchOutcome::Accepted { .. })
            }
            Strategy::Alternating => {
                alternating_certain_answer(
                    &self.normalized,
                    database,
                    boolean_query,
                    self.options.alternating,
                )
                .accepted
            }
            Strategy::BestEffortChase => {
                let chase = ChaseEngine::new(
                    self.normalized.clone(),
                    ChaseConfig::restricted(self.options.chase_policy),
                );
                chase.run(database).boolean_answer(boolean_query)
            }
        }
    }

    /// Enumerates the certain answers to `query` over `database`.
    ///
    /// For piece-wise linear warded programs and constant-free queries the
    /// Theorem 6.3 rewriting is used (data-independent, then evaluated with
    /// semi-naive Datalog); otherwise the engine falls back to evaluating the
    /// query over a chased instance under the configured termination policy.
    pub fn all_answers(
        &self,
        database: &Database,
        query: &ConjunctiveQuery,
    ) -> Result<BTreeSet<Vec<Symbol>>, ModelError> {
        if self.strategy == Strategy::LinearProofSearch {
            if let Ok(Some(rewritten)) =
                rewrite_to_pwl_datalog(&self.normalized, query, self.options.rewrite)
            {
                let engine =
                    DatalogEngine::new(rewritten.program)?.with_threads(self.options.threads);
                return Ok(engine.answers(database, &rewritten.query));
            }
        }
        // Fallback: chase and evaluate. Complete whenever the chase finishes
        // (or the termination policy is generous enough for the query).
        let chase = ChaseEngine::new(
            self.normalized.clone(),
            ChaseConfig {
                record_provenance: false,
                threads: self.options.threads,
                ..ChaseConfig::restricted(self.options.chase_policy)
            },
        );
        Ok(chase.certain_answers(database, query))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_model::parser::{parse, parse_query, parse_rules};

    fn engine(rules: &str) -> CertainAnswerEngine {
        CertainAnswerEngine::with_defaults(parse_rules(rules).unwrap()).unwrap()
    }

    fn db(facts: &str) -> Database {
        parse(facts).unwrap().database
    }

    #[test]
    fn strategy_selection_follows_the_program_class() {
        assert_eq!(
            engine("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).").strategy(),
            Strategy::LinearProofSearch
        );
        assert_eq!(
            engine("t(X, Y) :- edge(X, Y).\n t(X, Z) :- t(X, Y), t(Y, Z).").strategy(),
            Strategy::Alternating
        );
        // Non-warded programs are rejected by default…
        let unwarded = parse_rules("r(X, Z) :- p(X).\n t(Y, X) :- r(X, Y), r(W, Y).").unwrap();
        assert!(CertainAnswerEngine::with_defaults(unwarded.clone()).is_err());
        // …but accepted with the explicit opt-in.
        let opts = EngineOptions {
            allow_unwarded: true,
            ..EngineOptions::default()
        };
        assert_eq!(
            CertainAnswerEngine::new(unwarded, opts).unwrap().strategy(),
            Strategy::BestEffortChase
        );
    }

    #[test]
    fn decision_and_enumeration_agree_on_reachability() {
        let e = engine("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).");
        let database = db("edge(a, b). edge(b, c). edge(c, d).");
        let query = parse_query("?(X, Y) :- t(X, Y).").unwrap();
        let answers = e.all_answers(&database, &query).unwrap();
        assert_eq!(answers.len(), 6);
        for answer in &answers {
            assert!(e.is_certain_answer(&database, &query, answer).unwrap());
        }
        assert!(!e
            .is_certain_answer(&database, &query, &[Symbol::new("d"), Symbol::new("a")])
            .unwrap());
    }

    #[test]
    fn existential_program_answers() {
        let e = engine("r(X, Z) :- p(X).\n p(Y) :- r(X, Y).");
        let database = db("p(a). p(b).");
        // Which constants have an R-successor with its own R-successor?
        let query = parse_query("?(A) :- r(A, Y), r(Y, W).").unwrap();
        let answers = e.all_answers(&database, &query).unwrap();
        assert_eq!(answers.len(), 2);
        assert!(e
            .is_certain_answer(&database, &query, &[Symbol::new("a")])
            .unwrap());
    }

    #[test]
    fn alternating_strategy_handles_non_pwl_programs() {
        let e = engine("t(X, Y) :- edge(X, Y).\n t(X, Z) :- t(X, Y), t(Y, Z).");
        let database = db("edge(a, b). edge(b, c).");
        let query = parse_query("?(X, Y) :- t(X, Y).").unwrap();
        assert!(e
            .is_certain_answer(&database, &query, &[Symbol::new("a"), Symbol::new("c")])
            .unwrap());
        let answers = e.all_answers(&database, &query).unwrap();
        assert_eq!(answers.len(), 3);
    }

    #[test]
    fn tuple_arity_mismatch_is_reported() {
        let e = engine("t(X, Y) :- edge(X, Y).");
        let database = db("edge(a, b).");
        let query = parse_query("?(X, Y) :- t(X, Y).").unwrap();
        assert!(e
            .is_certain_answer(&database, &query, &[Symbol::new("a")])
            .is_err());
    }
}
