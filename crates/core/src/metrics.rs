//! Space instrumentation for the reproduction experiments.
//!
//! The paper's headline result is about *space*: query answering under
//! piece-wise linear warded TGDs only ever needs to remember a single
//! conjunctive query of polynomially bounded size, whereas chase-style
//! evaluation materialises an instance that grows with the database. The
//! [`SpaceMeter`] tracks the working set of an algorithm in "atoms held live"
//! so that the two strategies can be compared with the same unit.

/// A simple peak-working-set meter measured in atoms (or tuples).
#[derive(Debug, Clone, Copy, Default)]
pub struct SpaceMeter {
    current: usize,
    peak: usize,
    total_allocated: usize,
}

impl SpaceMeter {
    /// Creates a meter with zero usage.
    pub fn new() -> SpaceMeter {
        SpaceMeter::default()
    }

    /// Records that `n` atoms are now additionally live.
    pub fn acquire(&mut self, n: usize) {
        self.current += n;
        self.total_allocated += n;
        if self.current > self.peak {
            self.peak = self.current;
        }
    }

    /// Records that `n` atoms were released.
    pub fn release(&mut self, n: usize) {
        self.current = self.current.saturating_sub(n);
    }

    /// Sets the live count to exactly `n` (used when a whole frontier is
    /// replaced by its successor, as in the level-by-level proof search).
    pub fn set_live(&mut self, n: usize) {
        self.current = n;
        self.total_allocated += n;
        if n > self.peak {
            self.peak = n;
        }
    }

    /// The peak number of simultaneously live atoms.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// The currently live atoms.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Total atoms ever accounted (a throughput-style counter).
    pub fn total_allocated(&self) -> usize {
        self.total_allocated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_maximum_live_set() {
        let mut m = SpaceMeter::new();
        m.acquire(5);
        m.acquire(3);
        m.release(6);
        m.acquire(2);
        assert_eq!(m.current(), 4);
        assert_eq!(m.peak(), 8);
        assert_eq!(m.total_allocated(), 10);
    }

    #[test]
    fn set_live_replaces_the_frontier() {
        let mut m = SpaceMeter::new();
        m.set_live(4);
        m.set_live(2);
        m.set_live(7);
        assert_eq!(m.peak(), 7);
        assert_eq!(m.current(), 7);
    }

    #[test]
    fn release_saturates_at_zero() {
        let mut m = SpaceMeter::new();
        m.acquire(1);
        m.release(10);
        assert_eq!(m.current(), 0);
    }
}
