//! The space-efficient core of Vadalog: proof-tree based query answering for
//! (piece-wise linear) warded sets of TGDs.
//!
//! This crate implements the paper's primary contribution (Sections 4 and 6):
//!
//! * **chunk-based resolution** — most general chunk unifiers (MGCUs) and
//!   σ-resolvents ([`resolution`]);
//! * the **node-width bounds** `f_{WARD∩PWL}` and `f_{WARD}` of
//!   Theorems 4.8/4.9 ([`bounds`]);
//! * the **space-bounded decision procedure** for
//!   `CQAns(WARD ∩ PWL)` — a deterministic, memoised simulation of the
//!   non-deterministic algorithm of Section 4.3 that explores linear proof
//!   trees level by level ([`search`]);
//! * the **alternating-style procedure** for `CQAns(WARD)` that explores
//!   branching proof trees of bounded node-width ([`alternating`]);
//! * the **rewriting into piece-wise linear Datalog** behind the
//!   expressiveness result of Theorem 6.3 ([`rewrite`]);
//! * a high-level [`answer::CertainAnswerEngine`] that normalises a program,
//!   analyses it, picks the appropriate procedure and exposes both the
//!   decision problem (`is c̄ a certain answer?`) and answer enumeration;
//! * [`metrics::SpaceMeter`] — the peak-working-set instrumentation used by
//!   the space-efficiency experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alternating;
pub mod answer;
pub mod bounds;
pub mod metrics;
pub mod resolution;
pub mod rewrite;
pub mod search;
pub mod support;

pub use alternating::{alternating_certain_answer, AlternatingOptions, AlternatingOutcome};
pub use answer::{CertainAnswerEngine, EngineOptions, Strategy};
pub use bounds::{node_width_bound_ward, node_width_bound_ward_pwl};
pub use metrics::SpaceMeter;
pub use resolution::{chunk_resolvents, mgcus, CqState, Resolvent};
pub use rewrite::{rewrite_to_pwl_datalog, RewriteOptions, RewrittenQuery};
pub use search::{linear_proof_search, SearchOptions, SearchOutcome, SearchStats};
pub use support::PositionSupport;
