//! Chunk-based resolution (Definition 4.3) and canonical CQ states.
//!
//! The decision procedures of Section 4.3 manipulate Boolean conjunctive
//! queries whose output variables have already been instantiated with
//! constants. A [`CqState`] is such a query in *canonical form*: variables
//! are renamed `V0, V1, …` in order of first occurrence and atoms are sorted,
//! so that two states that differ only in variable names (which resolution
//! produces all the time) are recognised as equal and the search space stays
//! finite.
//!
//! [`mgcus`] enumerates the most general chunk unifiers of a state with a
//! (single-head) TGD, enforcing the two conditions of the paper: existential
//! variables of the TGD must not unify with constants, and they may only
//! unify with query variables that occur exclusively inside the resolved
//! chunk (non-shared variables). [`chunk_resolvents`] applies them to produce
//! σ-resolvents.

use std::collections::{BTreeMap, BTreeSet};
use vadalog_model::{unify_all_with, Atom, Program, Substitution, Term, Tgd, Variable};

/// A Boolean conjunctive query in canonical form.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CqState {
    atoms: Vec<Atom>,
}

impl CqState {
    /// Creates a state from atoms, canonicalising variable names and atom
    /// order.
    pub fn new(atoms: Vec<Atom>) -> CqState {
        CqState {
            atoms: canonicalize(atoms),
        }
    }

    /// The atoms of the state.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Number of atoms (the node-width contribution of this state).
    pub fn size(&self) -> usize {
        self.atoms.len()
    }

    /// `true` iff the state has no atoms left (a fully resolved proof branch).
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The distinct variables of the state.
    pub fn variables(&self) -> BTreeSet<Variable> {
        self.atoms.iter().flat_map(|a| a.variables()).collect()
    }

    /// Removes the atom at `index` and applies `subst` to the remainder,
    /// returning the canonicalised successor state. This is the
    /// "match-and-drop" step: the dropped atom has been matched against the
    /// database and the grounding it induced is propagated to the rest.
    pub fn drop_atom(&self, index: usize, subst: &Substitution) -> CqState {
        let remaining: Vec<Atom> = self
            .atoms
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != index)
            .map(|(_, a)| subst.apply_atom(a))
            .collect();
        CqState::new(remaining)
    }
}

impl std::fmt::Display for CqState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "⊤");
        }
        let parts: Vec<String> = self.atoms.iter().map(|a| a.to_string()).collect();
        write!(f, "{}", parts.join(", "))
    }
}

/// Canonicalises a list of atoms: variables are renamed in order of first
/// occurrence after a name-independent sort, and the atoms are then sorted.
fn canonicalize(mut atoms: Vec<Atom>) -> Vec<Atom> {
    // Sort by a key that ignores variable identity but keeps the pattern of
    // repeated variables within each atom.
    atoms.sort_by_key(shape_key);
    // Rename variables in order of first occurrence.
    let mut mapping: BTreeMap<Variable, Variable> = BTreeMap::new();
    let mut counter = 0usize;
    let mut renamed: Vec<Atom> = atoms
        .iter()
        .map(|a| {
            let terms = a
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => {
                        let fresh = *mapping.entry(*v).or_insert_with(|| {
                            let name = format!("V{counter}");
                            counter += 1;
                            Variable::new(&name)
                        });
                        Term::Var(fresh)
                    }
                    other => *other,
                })
                .collect();
            Atom {
                predicate: a.predicate,
                terms,
            }
        })
        .collect();
    renamed.sort();
    renamed.dedup();
    renamed
}

/// A name-independent sort key: predicate, arity, and for each argument a tag
/// for constants (with the constant), nulls, or the index of the first
/// occurrence of the variable within the atom.
fn shape_key(atom: &Atom) -> (String, usize, Vec<(u8, String)>) {
    let mut first_seen: BTreeMap<Variable, usize> = BTreeMap::new();
    let args = atom
        .terms
        .iter()
        .map(|t| match t {
            Term::Const(c) => (0u8, c.as_str().to_string()),
            Term::Null(n) => (1u8, n.0.to_string()),
            Term::Var(v) => {
                let next = first_seen.len();
                let idx = *first_seen.entry(*v).or_insert(next);
                (2u8, idx.to_string())
            }
        })
        .collect();
    (atom.predicate.name().to_string(), atom.arity(), args)
}

/// A most general chunk unifier of a state with a TGD: the chunk `S₁` (indexes
/// into the state's atoms) and the unifier γ.
#[derive(Debug, Clone)]
pub struct Mgcu {
    /// Indexes of the state atoms forming the chunk S₁.
    pub chunk: Vec<usize>,
    /// The unifier γ.
    pub unifier: Substitution,
}

/// A σ-resolvent of a state together with the TGD that produced it.
#[derive(Debug, Clone)]
pub struct Resolvent {
    /// The resolvent state (canonicalised).
    pub state: CqState,
    /// Index of the TGD used.
    pub tgd_index: usize,
    /// Size of the chunk that was resolved.
    pub chunk_size: usize,
}

/// Enumerates the most general chunk unifiers of `state` with the single-head
/// TGD `tgd`. The TGD must already have variables disjoint from the state
/// (use [`Tgd::rename_apart`]).
pub fn mgcus(state: &CqState, tgd: &Tgd) -> Vec<Mgcu> {
    assert_eq!(
        tgd.head.len(),
        1,
        "chunk-based resolution requires single-head TGDs (normalise first)"
    );
    let head = &tgd.head[0];
    let existentials = tgd.existential_variables();

    // Candidate atoms: same predicate and arity as the head.
    let candidates: Vec<usize> = state
        .atoms()
        .iter()
        .enumerate()
        .filter(|(_, a)| a.predicate == head.predicate && a.arity() == head.arity())
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        return Vec::new();
    }

    let mut out = Vec::new();
    // Enumerate non-empty subsets of the candidates. Chunks larger than one
    // atom are only useful when atoms actually share existential-variable
    // images, which keeps the practical subset sizes tiny; the candidate list
    // is already bounded by the node width.
    let n = candidates.len();
    for mask in 1u64..(1u64 << n.min(16)) {
        let chunk: Vec<usize> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| candidates[i])
            .collect();
        let chunk_atoms: Vec<Atom> = chunk.iter().map(|&i| state.atoms()[i].clone()).collect();
        let gamma = match unify_all_with(&chunk_atoms, head) {
            Some(g) => g,
            None => continue,
        };
        if chunk_conditions_hold(state, &chunk, &gamma, &existentials) {
            out.push(Mgcu {
                chunk,
                unifier: gamma,
            });
        }
    }
    out
}

/// Checks the two MGCU side conditions for the existential variables of the
/// TGD.
fn chunk_conditions_hold(
    state: &CqState,
    chunk: &[usize],
    gamma: &Substitution,
    existentials: &BTreeSet<Variable>,
) -> bool {
    let chunk_set: BTreeSet<usize> = chunk.iter().copied().collect();
    // Variables of the state occurring outside the chunk are "shared".
    let outside_vars: BTreeSet<Variable> = state
        .atoms()
        .iter()
        .enumerate()
        .filter(|(i, _)| !chunk_set.contains(i))
        .flat_map(|(_, a)| a.variables())
        .collect();
    let chunk_vars: BTreeSet<Variable> = chunk
        .iter()
        .flat_map(|&i| state.atoms()[i].variables())
        .collect();

    for x in existentials {
        let image = gamma.apply_term(&Term::Var(*x));
        // Condition (1): γ(x) is not a constant.
        if image.is_const() || image.is_null() {
            return false;
        }
        // Condition (2): every state variable with the same image must occur
        // in the chunk and be non-shared.
        for y in state.variables() {
            if gamma.apply_term(&Term::Var(y)) == image
                && (!chunk_vars.contains(&y) || outside_vars.contains(&y))
            {
                return false;
            }
        }
    }
    true
}

/// Computes all σ-resolvents of a state with respect to every TGD of the
/// (single-head) program.
pub fn chunk_resolvents(state: &CqState, program: &Program) -> Vec<Resolvent> {
    let mut out = Vec::new();
    for (tgd_index, tgd) in program.iter() {
        // Rename the TGD apart from the canonical state variables (which are
        // all named `V<n>`): the suffix guarantees disjointness.
        let renamed = tgd.rename_apart(&format!("r{tgd_index}"));
        for mgcu in mgcus(state, &renamed) {
            let chunk_set: BTreeSet<usize> = mgcu.chunk.iter().copied().collect();
            let mut atoms: Vec<Atom> = state
                .atoms()
                .iter()
                .enumerate()
                .filter(|(i, _)| !chunk_set.contains(i))
                .map(|(_, a)| mgcu.unifier.apply_atom(a))
                .collect();
            atoms.extend(mgcu.unifier.apply_atoms(&renamed.body));
            out.push(Resolvent {
                state: CqState::new(atoms),
                tgd_index,
                chunk_size: mgcu.chunk.len(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_model::parser::{parse_query, parse_rules};

    fn state_of(query: &str) -> CqState {
        let q = parse_query(query).unwrap();
        CqState::new(q.atoms)
    }

    #[test]
    fn canonical_form_identifies_renamed_states() {
        let a = state_of("? :- edge(X, Y), t(Y, Z).");
        let b = state_of("? :- t(B, C), edge(A, B).");
        assert_eq!(a, b);
        let c = state_of("? :- edge(X, X), t(X, Z).");
        assert_ne!(a, c);
    }

    #[test]
    fn canonical_form_deduplicates_atoms() {
        let s = state_of("? :- edge(X, Y), edge(X, Y).");
        assert_eq!(s.size(), 1);
    }

    #[test]
    fn simple_resolution_against_a_datalog_rule() {
        // Query t(a, V); rule t(X, Z) :- edge(X, Y), t(Y, Z).
        let program = parse_rules("t(X, Z) :- edge(X, Y), t(Y, Z).").unwrap();
        let state = state_of("? :- t(a, V).");
        let resolvents = chunk_resolvents(&state, &program);
        assert_eq!(resolvents.len(), 1);
        let r = &resolvents[0];
        assert_eq!(r.state.size(), 2);
        // The constant a must survive into the edge atom.
        assert!(r
            .state
            .atoms()
            .iter()
            .any(|a| a.predicate.name() == "edge" && a.terms[0] == Term::constant("a")));
    }

    #[test]
    fn existential_variables_must_not_unify_with_constants() {
        // Rule p(X) → ∃Z r(X, Z): the resolvent of r(a, b) is blocked because
        // Z would have to become the constant b.
        let program = parse_rules("r(X, Z) :- p(X).").unwrap();
        let state = state_of("? :- r(a, b).");
        assert!(chunk_resolvents(&state, &program).is_empty());
    }

    #[test]
    fn existential_variables_must_not_unify_with_shared_variables() {
        // The paper's own example: Q(x) ← R(x, y), S(y) cannot resolve R(x, y)
        // with P(x') → ∃y' R(x', y') because y is shared with S(y).
        let program = parse_rules("r(X, Y) :- p(X).").unwrap();
        let state = state_of("? :- r(X, Y), s(Y).");
        let resolvents = chunk_resolvents(&state, &program);
        assert!(resolvents.is_empty());
    }

    #[test]
    fn non_shared_variables_can_absorb_existentials() {
        // Q(x) ← R(x, y) resolves fine: y is not shared.
        let program = parse_rules("r(X, Y) :- p(X).").unwrap();
        let state = state_of("? :- r(X, Y).");
        let resolvents = chunk_resolvents(&state, &program);
        assert_eq!(resolvents.len(), 1);
        assert_eq!(resolvents[0].state.size(), 1);
        assert_eq!(resolvents[0].state.atoms()[0].predicate.name(), "p");
    }

    #[test]
    fn chunks_with_two_atoms_resolve_as_a_whole() {
        // The paper's example: R(x,y), S(y) resolved against
        // P(x') → ∃y' (R(x',y'), S(y')) — after single-head normalisation this
        // becomes a two-step resolution through the auxiliary predicate, so we
        // test the chunk mechanics directly on a single-head rule with a
        // repeated existential position: query r(X, Y), r(Z, Y) against
        // p(W) → ∃V r(W, V): both query atoms must be resolved together.
        let program = parse_rules("r(W, V) :- p(W).").unwrap();
        let state = state_of("? :- r(X, Y), r(Z, Y).");
        let resolvents = chunk_resolvents(&state, &program);
        // The only admissible MGCU takes both atoms (the shared Y forbids
        // resolving either atom alone), unifying X with Z.
        assert_eq!(resolvents.len(), 1);
        assert_eq!(resolvents[0].chunk_size, 2);
        assert_eq!(resolvents[0].state.size(), 1);
        assert_eq!(resolvents[0].state.atoms()[0].predicate.name(), "p");
    }

    #[test]
    fn drop_atom_applies_the_grounding_to_the_remainder() {
        let state = state_of("? :- edge(X, Y), t(Y, Z).");
        // Ground the edge atom as edge(a, b) and drop it.
        let mut subst = Substitution::new();
        // Canonical names are V0, V1, … — find the variables of the edge atom.
        let edge = state
            .atoms()
            .iter()
            .find(|a| a.predicate.name() == "edge")
            .unwrap()
            .clone();
        let index = state.atoms().iter().position(|a| *a == edge).unwrap();
        subst.bind_var(edge.terms[0].as_var().unwrap(), Term::constant("a"));
        subst.bind_var(edge.terms[1].as_var().unwrap(), Term::constant("b"));
        let next = state.drop_atom(index, &subst);
        assert_eq!(next.size(), 1);
        let t = &next.atoms()[0];
        assert_eq!(t.predicate.name(), "t");
        assert_eq!(t.terms[0], Term::constant("b"));
    }

    #[test]
    fn resolvent_count_respects_multiple_rules() {
        let program =
            parse_rules("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).").unwrap();
        let state = state_of("? :- t(a, V).");
        let resolvents = chunk_resolvents(&state, &program);
        assert_eq!(resolvents.len(), 2);
    }
}
