//! The alternating-style decision procedure for `CQAns(WARD)`
//! (re-establishing Proposition 3.2 via Theorem 4.9).
//!
//! For arbitrary warded programs proof trees need not be linear: a
//! decomposition step may split the current CQ into several subqueries that
//! are processed independently (universal branching). The procedure below
//! mirrors the paper's alternating algorithm: existential choices (which
//! resolution or match-and-drop step to take) are explored by backtracking,
//! and universal choices (the components of a decomposition) must all
//! succeed. The node-width of every state is bounded by `f_{WARD}(q, Σ)`.
//!
//! Proven states are memoised globally; states on the current call path are
//! treated as failing to keep the recursion well-founded (a proof that needs
//! itself is no proof).

use crate::bounds::node_width_bound_ward;
use crate::resolution::{chunk_resolvents, CqState};
use crate::support::PositionSupport;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::ops::ControlFlow;
use vadalog_model::{
    exists_homomorphism, Atom, ConjunctiveQuery, Database, JoinSpec, Matcher, Predicate, Program,
    Substitution, Variable,
};

/// Dead-branch pruning shared with the linear search: an extensional atom
/// with no database match can never be discharged (extensional predicates
/// never occur in rule heads), and an atom whose constants fall outside the
/// [`PositionSupport`] of their positions can never map into the chase — in
/// either case the whole state is unprovable.
fn has_dead_atom(
    state: &CqState,
    edb: &BTreeSet<Predicate>,
    database: &Database,
    support: &PositionSupport,
) -> bool {
    state.atoms().iter().any(|atom| {
        !support.atom_satisfiable(atom)
            || (edb.contains(&atom.predicate)
                && !exists_homomorphism(
                    std::slice::from_ref(atom),
                    database.as_instance(),
                    &Substitution::new(),
                ))
    })
}

/// Options for the alternating search.
#[derive(Debug, Clone, Copy)]
pub struct AlternatingOptions {
    /// Override for the node-width bound; `None` uses `f_{WARD}(q, Σ)`.
    pub node_width: Option<usize>,
    /// Cap on the total number of recursive expansions.
    pub max_expansions: usize,
}

impl Default for AlternatingOptions {
    fn default() -> Self {
        AlternatingOptions {
            node_width: None,
            max_expansions: 500_000,
        }
    }
}

/// The outcome of the alternating search.
#[derive(Debug, Clone, Copy)]
pub struct AlternatingOutcome {
    /// `true` iff the tuple was shown to be a certain answer.
    pub accepted: bool,
    /// `true` iff the expansion cap was hit (the negative answer is then
    /// inconclusive).
    pub budget_exhausted: bool,
    /// Number of state expansions performed.
    pub expansions: usize,
    /// Largest state encountered.
    pub max_state_size: usize,
}

struct Searcher<'a> {
    program: &'a Program,
    database: &'a Database,
    edb: BTreeSet<Predicate>,
    support: PositionSupport,
    bound: usize,
    proven: HashSet<CqState>,
    /// States that were fully explored (no path-cut involved) and failed.
    disproven: HashSet<CqState>,
    expansions: usize,
    max_expansions: usize,
    max_state_size: usize,
    budget_exhausted: bool,
    /// Number of times the path check cut a branch; used to decide whether a
    /// failure is definitive and may be cached in `disproven`.
    path_cuts: usize,
}

/// Decides whether the (already instantiated, Boolean) query is a certain
/// answer under an arbitrary warded program.
pub fn alternating_certain_answer(
    program: &Program,
    database: &Database,
    boolean_query: &ConjunctiveQuery,
    options: AlternatingOptions,
) -> AlternatingOutcome {
    let bound = options
        .node_width
        .unwrap_or_else(|| node_width_bound_ward(boolean_query, program))
        .max(boolean_query.size());
    let mut searcher = Searcher {
        program,
        database,
        edb: program.extensional_predicates(),
        support: PositionSupport::compute(program, database),
        bound,
        proven: HashSet::new(),
        disproven: HashSet::new(),
        expansions: 0,
        max_expansions: options.max_expansions,
        max_state_size: 0,
        budget_exhausted: false,
        path_cuts: 0,
    };
    let initial = CqState::new(boolean_query.atoms.clone());
    let mut path = HashSet::new();
    let accepted = searcher.provable(&initial, &mut path);
    AlternatingOutcome {
        accepted,
        budget_exhausted: searcher.budget_exhausted,
        expansions: searcher.expansions,
        max_state_size: searcher.max_state_size,
    }
}

impl<'a> Searcher<'a> {
    fn provable(&mut self, state: &CqState, path: &mut HashSet<CqState>) -> bool {
        if self.proven.contains(state) {
            return true;
        }
        if self.disproven.contains(state) {
            return false;
        }
        if path.contains(state) {
            // A proof may not depend on itself.
            self.path_cuts += 1;
            return false;
        }
        if self.expansions >= self.max_expansions {
            self.budget_exhausted = true;
            return false;
        }
        if has_dead_atom(state, &self.edb, self.database, &self.support) {
            self.disproven.insert(state.clone());
            return false;
        }
        self.expansions += 1;
        self.max_state_size = self.max_state_size.max(state.size());

        // Acceptance: the state embeds into the database.
        if exists_homomorphism(
            state.atoms(),
            self.database.as_instance(),
            &Substitution::new(),
        ) {
            self.proven.insert(state.clone());
            return true;
        }

        path.insert(state.clone());
        let cuts_before = self.path_cuts;
        let result = self.expand(state, path);
        path.remove(state);
        if result {
            self.proven.insert(state.clone());
        } else if self.path_cuts == cuts_before && !self.budget_exhausted {
            // The failure did not rely on cutting a cycle through the current
            // path, so it is definitive and can be cached.
            self.disproven.insert(state.clone());
        }
        result
    }

    fn expand(&mut self, state: &CqState, path: &mut HashSet<CqState>) -> bool {
        // Universal branching: if the state splits into variable-disjoint
        // components, each component must be provable on its own. This is the
        // decomposition step of Definition 4.6 (constants may be shared, only
        // variables tie atoms together).
        let components = variable_components(state.atoms());
        if components.len() > 1 {
            return components
                .into_iter()
                .all(|component| self.provable(&CqState::new(component), path));
        }

        // Selection rule (see `crate::search` module docs): while the state
        // contains an extensional atom, its database matches are the only
        // successors that need to be explored — extensional atoms can never
        // be resolved away and their drops commute with every other step.
        // This avoids branching over the exponentially many interleavings of
        // extensional drops.
        if let Some(index) = self.select_extensional_atom(state) {
            return self.drop_provable(state, index, path);
        }

        // Existential branching: resolution steps.
        for resolvent in chunk_resolvents(state, self.program) {
            if resolvent.state.size() > self.bound {
                continue;
            }
            if self.provable(&resolvent.state, path) {
                return true;
            }
        }

        // Existential branching: match-and-drop steps over the remaining
        // (intensional) atoms, streamed from the kernel.
        for index in 0..state.atoms().len() {
            if self.drop_provable(state, index, path) {
                return true;
            }
        }
        false
    }

    /// The extensional atom with the fewest estimated database matches, if any.
    fn select_extensional_atom(&self, state: &CqState) -> Option<usize> {
        let instance = self.database.as_instance();
        state
            .atoms()
            .iter()
            .enumerate()
            .filter(|(_, atom)| self.edb.contains(&atom.predicate))
            .min_by_key(|(_, atom)| match instance.relation(atom.predicate) {
                None => 0,
                Some(rel) => atom
                    .terms
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| !t.is_var())
                    .map(|(pos, t)| rel.matching_count(pos, *t))
                    .min()
                    .unwrap_or_else(|| rel.len()),
            })
            .map(|(index, _)| index)
    }

    /// `true` iff some match-and-drop of `state.atoms()[index]` leads to a
    /// provable successor (Break short-circuits on the first proof).
    fn drop_provable(
        &mut self,
        state: &CqState,
        index: usize,
        path: &mut HashSet<CqState>,
    ) -> bool {
        let database = self.database;
        let atom = &state.atoms()[index];
        let spec = JoinSpec::compile(std::slice::from_ref(atom));
        let mut matcher = Matcher::new(&spec);
        let mut proved = false;
        matcher.for_each(database.as_instance(), |bindings| {
            let successor = state.drop_atom(index, &bindings.to_substitution());
            if self.provable(&successor, path) {
                proved = true;
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        proved
    }
}

/// Splits a set of atoms into connected components under the
/// "shares a variable" relation.
fn variable_components(atoms: &[Atom]) -> Vec<Vec<Atom>> {
    let n = atoms.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    let mut by_var: BTreeMap<Variable, Vec<usize>> = BTreeMap::new();
    for (i, atom) in atoms.iter().enumerate() {
        for v in atom.variables() {
            by_var.entry(v).or_default().push(i);
        }
    }
    for indexes in by_var.values() {
        for w in indexes.windows(2) {
            let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
            if a != b {
                parent[a] = b;
            }
        }
    }
    let mut groups: BTreeMap<usize, Vec<Atom>> = BTreeMap::new();
    for (i, atom) in atoms.iter().enumerate() {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(atom.clone());
    }
    let components: Vec<Vec<Atom>> = groups.into_values().collect();
    if components.is_empty() {
        vec![Vec::new()]
    } else {
        components
    }
}

/// Variables shared between at least two atoms (exposed for tests).
#[allow(dead_code)]
fn shared_variables(atoms: &[Atom]) -> BTreeSet<Variable> {
    let mut counts: BTreeMap<Variable, usize> = BTreeMap::new();
    for atom in atoms {
        for v in atom.variables() {
            *counts.entry(v).or_default() += 1;
        }
    }
    counts
        .into_iter()
        .filter(|(_, c)| *c > 1)
        .map(|(v, _)| v)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_analysis::normalize::normalize_single_head;
    use vadalog_model::parser::{parse, parse_query, parse_rules};
    use vadalog_model::Symbol;

    fn decide(rules: &str, facts: &str, query: &str, tuple: &[&str]) -> AlternatingOutcome {
        let program = normalize_single_head(&parse_rules(rules).unwrap())
            .unwrap()
            .program;
        let database = parse(facts).unwrap().database;
        let q = parse_query(query).unwrap();
        let symbols: Vec<Symbol> = tuple.iter().map(|s| Symbol::new(s)).collect();
        let boolean = q.instantiate(&symbols).expect("arity matches");
        alternating_certain_answer(&program, &database, &boolean, AlternatingOptions::default())
    }

    #[test]
    fn handles_non_pwl_recursion() {
        // Non-linear transitive closure is warded but not PWL: the alternating
        // procedure must still answer correctly.
        let rules = "t(X, Y) :- edge(X, Y).\n t(X, Z) :- t(X, Y), t(Y, Z).";
        let facts = "edge(a, b). edge(b, c). edge(c, d).";
        let query = "?(X, Y) :- t(X, Y).";
        assert!(decide(rules, facts, query, &["a", "d"]).accepted);
        assert!(!decide(rules, facts, query, &["d", "a"]).accepted);
    }

    #[test]
    fn decomposition_splits_disconnected_queries() {
        let rules = "t(X, Y) :- edge(X, Y).\n t(X, Z) :- t(X, Y), t(Y, Z).";
        let facts = "edge(a, b). edge(b, c). edge(x, y).";
        // Two independent reachability questions in one Boolean query.
        let outcome = decide(rules, facts, "? :- t(a, c), t(x, y).", &[]);
        assert!(outcome.accepted);
        let negative = decide(rules, facts, "? :- t(a, c), t(y, x).", &[]);
        assert!(!negative.accepted);
    }

    #[test]
    fn existentials_are_supported() {
        let rules = "r(X, Z) :- p(X).\n p(Y) :- r(X, Y).";
        let facts = "p(a).";
        assert!(decide(rules, facts, "? :- r(a, Y), r(Y, W).", &[]).accepted);
        assert!(!decide(rules, facts, "?(Y) :- r(a, Y).", &["a"]).accepted);
    }

    #[test]
    fn same_generation_style_program() {
        // A classic warded-but-not-PWL program evaluated on a small tree.
        let rules = "sg(X, Y) :- flat(X, Y).\n sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).";
        let facts = "up(a, p). up(b, p). flat(p, p). down(p, a). down(p, b).";
        let query = "?(X, Y) :- sg(X, Y).";
        assert!(decide(rules, facts, query, &["a", "b"]).accepted);
        assert!(decide(rules, facts, query, &["a", "a"]).accepted);
        assert!(!decide(rules, facts, query, &["p", "a"]).accepted);
    }

    #[test]
    fn variable_components_group_by_shared_variables() {
        let atoms = vec![
            Atom::new(
                "r",
                vec![
                    vadalog_model::Term::variable("X"),
                    vadalog_model::Term::variable("Y"),
                ],
            ),
            Atom::new("s", vec![vadalog_model::Term::variable("Y")]),
            Atom::new("t", vec![vadalog_model::Term::variable("Z")]),
            Atom::new("u", vec![vadalog_model::Term::constant("c")]),
        ];
        let components = variable_components(&atoms);
        assert_eq!(components.len(), 3);
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = components.iter().map(|c| c.len()).collect();
            s.sort();
            s
        };
        assert_eq!(sizes, vec![1, 1, 2]);
    }
}
