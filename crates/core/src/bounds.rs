//! The node-width bounds of Theorems 4.8 and 4.9.
//!
//! * `f_{WARD∩PWL}(q, Σ) = (|q| + 1) · max_P ℓΣ(P) · max_σ |body(σ)|`
//! * `f_{WARD}(q, Σ)      = 2 · max(|q|, max_σ |body(σ)|)`
//!
//! These polynomials bound the size of the conjunctive queries that the
//! space-bounded algorithms ever need to hold in memory, which is the formal
//! source of the NLogSpace / PSpace upper bounds.

use vadalog_analysis::levels::PredicateLevels;
use vadalog_analysis::predicate_graph::PredicateGraph;
use vadalog_model::{ConjunctiveQuery, Program};

/// Computes `f_{WARD∩PWL}(q, Σ)`.
pub fn node_width_bound_ward_pwl(query: &ConjunctiveQuery, program: &Program) -> usize {
    let graph = PredicateGraph::new(program);
    let levels = PredicateLevels::compute(program, &graph);
    let max_body = program.max_body_size().max(1);
    (query.size() + 1) * levels.max_level() * max_body
}

/// Computes `f_{WARD}(q, Σ)`.
pub fn node_width_bound_ward(query: &ConjunctiveQuery, program: &Program) -> usize {
    2 * query.size().max(program.max_body_size()).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_model::parser::{parse_query, parse_rules};

    #[test]
    fn pwl_bound_grows_with_query_levels_and_body_size() {
        let program =
            parse_rules("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).").unwrap();
        let q = parse_query("?(X, Y) :- t(X, Y).").unwrap();
        // |q| = 1, max level = 2 (edge=1, t=2), max body = 2.
        assert_eq!(node_width_bound_ward_pwl(&q, &program), (1 + 1) * 2 * 2);
        let q2 = parse_query("?(X, Z) :- t(X, Y), t(Y, Z).").unwrap();
        assert_eq!(node_width_bound_ward_pwl(&q2, &program), (2 + 1) * 2 * 2);
    }

    #[test]
    fn ward_bound_is_twice_the_larger_of_query_and_body() {
        let program =
            parse_rules("t(X, Y) :- edge(X, Y).\n t(X, Z) :- e(X, Y), e2(Y, W), t(W, Z).").unwrap();
        let q = parse_query("?(X, Y) :- t(X, Y).").unwrap();
        assert_eq!(node_width_bound_ward(&q, &program), 2 * 3);
        let q_big = parse_query("? :- t(A, B), t(B, C), t(C, D), t(D, E).").unwrap();
        assert_eq!(node_width_bound_ward(&q_big, &program), 2 * 4);
    }

    #[test]
    fn bounds_are_positive_even_for_degenerate_inputs() {
        let program = Program::new();
        let q = parse_query("? :- edge(X, Y).").unwrap();
        assert!(node_width_bound_ward_pwl(&q, &program) >= 1);
        assert!(node_width_bound_ward(&q, &program) >= 2);
    }
}
