//! Property tests for the diagnostics engine.
//!
//! 1. Analyzer verdicts are **invariant under predicate renaming**: applying
//!    an injective rename to every predicate yields the same multiset of
//!    findings with the predicates mapped through the rename.
//! 2. Verdicts are **invariant under rule reordering** modulo the reported
//!    TGD indexes: shuffling the rules permutes `tgd=` fields but never
//!    changes what is found.
//! 3. Every stable code `VLG001`–`VLG014` has at least one positive and one
//!    negative fixture, so a code can neither silently stop firing nor
//!    start firing on clean input.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use vadalog_analysis::diagnostics::{
    analyze, analyze_source, analyze_with, AnalyzerOptions, DiagnosticCode, DiagnosticReport,
    Severity,
};
use vadalog_model::parser::{parse_query, parse_rules};
use vadalog_model::{Atom, Predicate, Program, Tgd};

/// Programs exercising most passes: clean, unwarded, existentially
/// recursive, duplicated, disconnected, misordered, underivable, non-PWL.
const CORPUS: &[&str] = &[
    "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).",
    "r(X, Z) :- p(X).\n t(Y, Y2) :- r(X, Y), r(X2, Y2).",
    "r(X, Z) :- p(X).\n p(Y) :- r(X, Y).",
    "t(X, Y) :- e(X, Y).\n t(A, B) :- e(A, B).\n t(X, Z) :- e(X, Y), t(Y, Z).",
    "out(X, Y) :- a(X), b(Y).\n out2(X, Y) :- a(X), c(Y), d(X, Y).",
    "p(X) :- p(X).\n q(X) :- e(X).",
    "sg(X, Y) :- flat(X, Y).\n sg(X, Y) :- up(X, X1), sg(X1, Y1), sg(Y1, Y).",
    "subclassStar(X, Y) :- subclass(X, Y).\n\
     subclassStar(X, Z) :- subclassStar(X, Y), subclass(Y, Z).\n\
     type(X, Z) :- type(X, Y), subclassStar(Y, Z).\n\
     triple(X, Z, W) :- type(X, Y), restriction(Y, Z).\n\
     triple(Z, W, X) :- triple(X, Y, Z), inverse(Y, W).\n\
     type(X, W) :- triple(X, Y, Z), restriction(W, Y).",
];

/// The index-free shape of a finding: code, severity, variable name, and
/// predicate name (mapped through `rename` when given). TGD and atom spans
/// are deliberately excluded — they are exactly what reordering permutes.
fn shape(
    report: &DiagnosticReport,
    rename: &BTreeMap<Predicate, Predicate>,
) -> Vec<(DiagnosticCode, Severity, Option<String>, Option<String>)> {
    let mut shapes: Vec<_> = report
        .diagnostics
        .iter()
        .map(|d| {
            (
                d.code,
                d.severity,
                d.variable.map(|v| v.name().to_string()),
                d.predicate
                    .map(|p| rename.get(&p).copied().unwrap_or(p).name().to_string()),
            )
        })
        .collect();
    shapes.sort();
    shapes
}

fn rename_program(program: &Program, rename: &BTreeMap<Predicate, Predicate>) -> Program {
    let map_atom = |atom: &Atom| {
        Atom::new(
            rename
                .get(&atom.predicate)
                .copied()
                .unwrap_or(atom.predicate),
            atom.terms.clone(),
        )
    };
    Program::from_tgds(program.tgds().iter().map(|tgd| {
        Tgd::new_unchecked(
            tgd.body.iter().map(map_atom).collect(),
            tgd.head.iter().map(map_atom).collect(),
        )
    }))
    .expect("renaming preserves validity")
}

#[test]
fn verdicts_are_invariant_under_predicate_renaming() {
    for (case, source) in CORPUS.iter().enumerate() {
        let program = parse_rules(source).unwrap();
        let mut rng = StdRng::seed_from_u64(0xC0FFEE + case as u64);
        // An injective, deterministic rename with fresh obfuscated names.
        let rename: BTreeMap<Predicate, Predicate> = program
            .schema()
            .into_iter()
            .map(|p| {
                let tag: u32 = rng.gen_range(0..1_000_000u32);
                (p, Predicate::new(&format!("ren_{tag}_{}", p.name())))
            })
            .collect();
        let renamed = rename_program(&program, &rename);

        let base = analyze(&program);
        let after = analyze(&renamed);
        assert_eq!(
            shape(&base, &rename),
            shape(&after, &BTreeMap::new()),
            "case {case}: renaming changed the verdict shape"
        );
        assert_eq!(base.admissible(), after.admissible(), "case {case}");
        for severity in [Severity::Info, Severity::Warning, Severity::Error] {
            assert_eq!(base.count(severity), after.count(severity), "case {case}");
        }
    }
}

#[test]
fn verdicts_are_invariant_under_rule_reordering() {
    for (case, source) in CORPUS.iter().enumerate() {
        let program = parse_rules(source).unwrap();
        let base = analyze(&program);
        let mut rng = StdRng::seed_from_u64(0xBADCAB + case as u64);
        for round in 0..4 {
            // A seeded Fisher–Yates shuffle of the rule order.
            let mut tgds: Vec<Tgd> = program.tgds().to_vec();
            for i in (1..tgds.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                tgds.swap(i, j);
            }
            let shuffled = Program::from_tgds(tgds).unwrap();
            let after = analyze(&shuffled);
            assert_eq!(
                shape(&base, &BTreeMap::new()),
                shape(&after, &BTreeMap::new()),
                "case {case} round {round}: reordering changed the verdict shape"
            );
            assert_eq!(
                base.admissible(),
                after.admissible(),
                "case {case} round {round}"
            );
        }
    }
}

/// A fixture: source text plus the options to analyze it under.
struct Fixture {
    source: &'static str,
    options: fn() -> AnalyzerOptions,
}

fn default_options() -> AnalyzerOptions {
    AnalyzerOptions::default()
}

fn datalog_options() -> AnalyzerOptions {
    AnalyzerOptions {
        require_datalog: true,
        ..AnalyzerOptions::default()
    }
}

fn serving_options() -> AnalyzerOptions {
    AnalyzerOptions {
        require_datalog: true,
        known_edb: BTreeSet::from([Predicate::new("edge")]),
        known_arities: BTreeMap::from([(Predicate::new("edge"), 2)]),
        ..AnalyzerOptions::default()
    }
}

fn bound_query_options() -> AnalyzerOptions {
    AnalyzerOptions {
        query: Some(parse_query("?(Y) :- t(a, Y).").unwrap()),
        ..AnalyzerOptions::default()
    }
}

fn free_query_options() -> AnalyzerOptions {
    AnalyzerOptions {
        query: Some(parse_query("?(X, Y) :- t(X, Y).").unwrap()),
        ..AnalyzerOptions::default()
    }
}

const TC: &str = "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).";

/// One positive (code fires) and one negative (code stays silent) fixture
/// per stable code.
fn fixtures(code: DiagnosticCode) -> (Fixture, Fixture) {
    use DiagnosticCode::*;
    let f = |source, options| Fixture { source, options };
    match code {
        InvalidProgram => (
            f("t(X :- edge(X).", default_options),
            f(TC, default_options),
        ),
        NonDatalogRule => (
            f("r(X, Z) :- p(X).", datalog_options),
            f("r(X, Z) :- p(X).", default_options),
        ),
        SingletonVariable => (
            f("out(X) :- pair(X, Y).", default_options),
            f("out(X) :- pair(X, _).", default_options),
        ),
        WardViolation => (
            f(
                "r(X, Z) :- p(X).\n t(Y, Y2) :- r(X, Y), r(X2, Y2).",
                default_options,
            ),
            f("r(X, Z) :- p(X).\n p(Y) :- r(X, Y).", default_options),
        ),
        NonPiecewiseLinear => (
            f(
                "sg(X, Y) :- flat(X, Y).\n sg(X, Y) :- up(X, X1), sg(X1, Y1), sg(Y1, Y).",
                default_options,
            ),
            f(TC, default_options),
        ),
        ExistentialRecursion => (
            f("r(X, Z) :- p(X).\n p(Y) :- r(X, Y).", default_options),
            f("r(X, Z) :- p(X).", default_options),
        ),
        DuplicateRule => (
            f("t(X, Y) :- e(X, Y).\n t(A, B) :- e(A, B).", default_options),
            f(TC, default_options),
        ),
        UnreadPredicate => (
            f("q(X) :- e(X).", default_options),
            f("p(X) :- e(X).\n p(X) :- p(X).", default_options),
        ),
        UnderivablePredicate => (
            f("p(X) :- p(X).", default_options),
            f("p(X) :- e(X).", default_options),
        ),
        EdbCollision => (
            f("edge(Y, X) :- edge(X, Y).", serving_options),
            f("edge(Y, X) :- edge(X, Y).", default_options),
        ),
        CrossProduct => (
            f("out(X, Y) :- a(X), b(Y).", default_options),
            f("out(X, Y) :- a(X), b(X, Y).", default_options),
        ),
        PlannerFallback => (
            f("out(X, Y) :- a(X), c(Y), b(X, Y).", default_options),
            f("out(X, Y) :- a(X), b(X, Y), c(Y).", default_options),
        ),
        DemandRestricted => (f(TC, bound_query_options), f(TC, free_query_options)),
        UnrestrictedDemand => (f(TC, free_query_options), f(TC, bound_query_options)),
    }
}

#[test]
fn every_code_has_a_positive_and_a_negative_fixture() {
    for code in DiagnosticCode::ALL {
        let (positive, negative) = fixtures(code);
        let (_, fired) = analyze_source(positive.source, &(positive.options)());
        assert!(
            !fired.with_code(code).is_empty(),
            "{code}: positive fixture `{}` did not fire",
            positive.source
        );
        let (program, silent) = analyze_source(negative.source, &(negative.options)());
        assert!(
            program.is_some(),
            "{code}: negative fixture `{}` must parse",
            negative.source
        );
        assert!(
            silent.with_code(code).is_empty(),
            "{code}: negative fixture `{}` fired anyway: {:?}",
            negative.source,
            silent.with_code(code)
        );
    }
}

#[test]
fn fixture_severities_match_the_code_table() {
    // Pin the documented severities so the table in the crate docs cannot
    // drift from the implementation.
    let expect = [
        (DiagnosticCode::InvalidProgram, Severity::Error),
        (DiagnosticCode::NonDatalogRule, Severity::Error),
        (DiagnosticCode::SingletonVariable, Severity::Info),
        (DiagnosticCode::WardViolation, Severity::Error),
        (DiagnosticCode::NonPiecewiseLinear, Severity::Warning),
        (DiagnosticCode::DuplicateRule, Severity::Warning),
        (DiagnosticCode::UnreadPredicate, Severity::Info),
        (DiagnosticCode::UnderivablePredicate, Severity::Warning),
        (DiagnosticCode::EdbCollision, Severity::Error),
        (DiagnosticCode::CrossProduct, Severity::Warning),
        (DiagnosticCode::PlannerFallback, Severity::Info),
        (DiagnosticCode::DemandRestricted, Severity::Info),
        (DiagnosticCode::UnrestrictedDemand, Severity::Warning),
    ];
    for (code, severity) in expect {
        let (positive, _) = fixtures(code);
        let (_, report) = analyze_source(positive.source, &(positive.options)());
        for d in report.with_code(code) {
            assert_eq!(d.severity, severity, "{code}");
        }
    }
    // VLG006 is severity-split: info when the rule is warded, warning when
    // not.
    let (_, warded) = analyze_source(
        "r(X, Z) :- p(X).\n p(Y) :- r(X, Y).",
        &AnalyzerOptions::default(),
    );
    assert!(warded
        .with_code(DiagnosticCode::ExistentialRecursion)
        .iter()
        .all(|d| d.severity == Severity::Info));
    let (_, unwarded) = analyze_source(
        "r(X, Z) :- p(X).\n r(Y, W) :- r(X, Y), r(X2, Y).",
        &AnalyzerOptions::default(),
    );
    assert!(unwarded
        .with_code(DiagnosticCode::ExistentialRecursion)
        .iter()
        .all(|d| d.severity == Severity::Warning));
}

#[test]
fn analyze_with_matches_analyze_source_on_parsed_programs() {
    for source in CORPUS {
        let program = parse_rules(source).unwrap();
        let direct = analyze_with(&program, &AnalyzerOptions::default());
        let (reparsed, via_source) = analyze_source(source, &AnalyzerOptions::default());
        assert!(reparsed.is_some());
        assert_eq!(direct.diagnostics, via_source.diagnostics);
    }
}
