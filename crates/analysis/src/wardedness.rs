//! The wardedness check of Definition 3.1.
//!
//! A set Σ of TGDs is *warded* if for every TGD either there are no dangerous
//! variables in its body, or there is a body atom (a **ward**) that contains
//! all dangerous variables and shares only harmless variables with the rest
//! of the body.

use crate::affected::{AffectedPositions, VariableClass};
use std::collections::BTreeSet;
use vadalog_model::{display_variables, Program, Tgd, Variable};

/// Why one body atom failed to qualify as a ward: it either misses some
/// dangerous variables, or shares non-harmless variables with the rest of
/// the body. Structured so diagnostics can name the exact failure.
#[derive(Debug, Clone)]
pub struct WardCandidate {
    /// Index of the candidate atom in the TGD body.
    pub atom_index: usize,
    /// Dangerous variables the atom does not contain (empty when the atom
    /// contains them all but fails on sharing).
    pub missing: Vec<Variable>,
    /// Non-harmless variables the atom shares with the rest of the body
    /// (empty when it already fails on `missing`).
    pub blocking: Vec<Variable>,
}

/// The result of checking a single TGD for wardedness.
#[derive(Debug, Clone)]
pub struct TgdWardedness {
    /// Index of the TGD in the program.
    pub tgd_index: usize,
    /// The dangerous variables of the TGD body.
    pub dangerous: Vec<Variable>,
    /// Index (into the TGD body) of a ward, when one exists. `None` either
    /// when no ward is needed (no dangerous variables) or when no atom
    /// qualifies (a wardedness violation).
    pub ward: Option<usize>,
    /// `true` iff the TGD satisfies the wardedness condition.
    pub warded: bool,
    /// Human-readable explanation for violations.
    pub violation: Option<String>,
    /// For violations: per-body-atom reasons the candidacy failed, in atom
    /// order. Empty for warded TGDs.
    pub failed_candidates: Vec<WardCandidate>,
}

/// The result of checking a whole program for wardedness.
#[derive(Debug, Clone)]
pub struct WardednessReport {
    /// Per-TGD results, in program order.
    pub per_tgd: Vec<TgdWardedness>,
}

impl WardednessReport {
    /// `true` iff every TGD is warded.
    pub fn is_warded(&self) -> bool {
        self.per_tgd.iter().all(|t| t.warded)
    }

    /// The indexes of TGDs violating wardedness.
    pub fn violating_tgds(&self) -> Vec<usize> {
        self.per_tgd
            .iter()
            .filter(|t| !t.warded)
            .map(|t| t.tgd_index)
            .collect()
    }
}

/// Checks wardedness of a program and reports wards / violations per TGD.
pub fn check_wardedness(program: &Program) -> WardednessReport {
    let affected = AffectedPositions::compute(program);
    let per_tgd = program
        .iter()
        .map(|(i, tgd)| check_tgd(i, tgd, &affected))
        .collect();
    WardednessReport { per_tgd }
}

/// Convenience wrapper: `true` iff the program is warded.
pub fn is_warded(program: &Program) -> bool {
    check_wardedness(program).is_warded()
}

fn check_tgd(index: usize, tgd: &Tgd, affected: &AffectedPositions) -> TgdWardedness {
    let classification = affected.classify_variables(tgd);
    let dangerous: BTreeSet<Variable> = classification.dangerous().into_iter().collect();

    if dangerous.is_empty() {
        return TgdWardedness {
            tgd_index: index,
            dangerous: Vec::new(),
            ward: None,
            warded: true,
            violation: None,
            failed_candidates: Vec::new(),
        };
    }

    // A candidate ward must contain all dangerous variables and share only
    // harmless variables with the rest of the body. Record *why* every
    // failing atom failed, so diagnostics can name the candidates.
    let mut failed_candidates = Vec::new();
    let mut ward = None;
    for (ai, atom) in tgd.body.iter().enumerate() {
        let atom_vars: BTreeSet<Variable> = atom.variables().into_iter().collect();
        let missing: Vec<Variable> = dangerous
            .iter()
            .filter(|d| !atom_vars.contains(d))
            .copied()
            .collect();
        if !missing.is_empty() {
            failed_candidates.push(WardCandidate {
                atom_index: ai,
                missing,
                blocking: Vec::new(),
            });
            continue;
        }
        let rest_vars: BTreeSet<Variable> = tgd
            .body
            .iter()
            .enumerate()
            .filter(|(bi, _)| *bi != ai)
            .flat_map(|(_, b)| b.variables())
            .collect();
        let blocking: Vec<Variable> = atom_vars
            .intersection(&rest_vars)
            .filter(|v| classification.class_of(**v) != Some(VariableClass::Harmless))
            .copied()
            .collect();
        if blocking.is_empty() {
            ward = Some(ai);
            break;
        }
        failed_candidates.push(WardCandidate {
            atom_index: ai,
            missing: Vec::new(),
            blocking,
        });
    }

    let warded = ward.is_some();
    let violation = if warded {
        None
    } else {
        // Render variable names through the interner — never debug
        // formatting.
        let reasons: Vec<String> = failed_candidates
            .iter()
            .map(|c| {
                let atom = &tgd.body[c.atom_index];
                if !c.missing.is_empty() {
                    format!("{atom} misses {}", display_variables(&c.missing))
                } else {
                    format!(
                        "{atom} shares the non-harmless {} with the rest of the body",
                        display_variables(&c.blocking)
                    )
                }
            })
            .collect();
        Some(format!(
            "no body atom wards the dangerous variables {}: {}",
            display_variables(&dangerous),
            reasons.join("; ")
        ))
    };
    if warded {
        failed_candidates.clear();
    }
    TgdWardedness {
        tgd_index: index,
        dangerous: dangerous.into_iter().collect(),
        ward,
        warded,
        violation,
        failed_candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_model::parser::parse_rules;

    #[test]
    fn datalog_programs_are_trivially_warded() {
        let program =
            parse_rules("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).").unwrap();
        let report = check_wardedness(&program);
        assert!(report.is_warded());
        assert!(report.per_tgd.iter().all(|t| t.dangerous.is_empty()));
    }

    #[test]
    fn simple_dangerous_variable_with_ward_is_warded() {
        // P(x) → ∃z R(x,z) ; R(x,y) → P(y): the single body atom of the second
        // TGD is a ward for the dangerous y.
        let program = parse_rules("r(X, Z) :- p(X).\n p(Y) :- r(X, Y).").unwrap();
        let report = check_wardedness(&program);
        assert!(report.is_warded());
        let second = &report.per_tgd[1];
        assert_eq!(second.dangerous, vec![Variable::new("Y")]);
        assert_eq!(second.ward, Some(0));
    }

    #[test]
    fn example_3_3_is_warded_with_the_underlined_wards() {
        let program = parse_rules(
            "subclassStar(X, Y) :- subclass(X, Y).\n\
             subclassStar(X, Z) :- subclassStar(X, Y), subclass(Y, Z).\n\
             type(X, Z) :- type(X, Y), subclassStar(Y, Z).\n\
             triple(X, Z, W) :- type(X, Y), restriction(Y, Z).\n\
             triple(Z, W, X) :- triple(X, Y, Z), inverse(Y, W).\n\
             type(X, W) :- triple(X, Y, Z), restriction(W, Y).",
        )
        .unwrap();
        let report = check_wardedness(&program);
        assert!(report.is_warded());
        // Rules 3–6 have dangerous variables and the first body atom (the
        // Type/Triple atom, underlined in the paper) is the ward.
        for idx in [2usize, 3, 4, 5] {
            let t = &report.per_tgd[idx];
            assert!(
                !t.dangerous.is_empty(),
                "rule {idx} should have dangerous vars"
            );
            assert_eq!(
                t.ward,
                Some(0),
                "rule {idx} should be warded by its first atom"
            );
        }
        // Rules 1–2 involve only harmless variables.
        assert!(report.per_tgd[0].dangerous.is_empty());
        assert!(report.per_tgd[1].dangerous.is_empty());
    }

    #[test]
    fn joins_on_dangerous_variables_violate_wardedness() {
        // P(x) → ∃z R(x,z) ; R(x,y), S(y, w) → P(y):
        // y is dangerous only if all its occurrences are affected. S is EDB so
        // S[1] is non-affected, making y harmless — construct a real violation
        // instead with two affected atoms:
        // P(x) → ∃z R(x,z) ; R(x,y), R(y,w) → P(y): y occurs at R[2] (affected)
        // and R[1] (non-affected) → harmless. Need y at affected positions only:
        // R(x,y), R(w,y) → T(y, x): y at R[2] twice → dangerous; x also
        // dangerous? x at R[1] non-affected → harmless. Ward must contain y —
        // both atoms do; but the candidate ward shares x or w? R(x,y) shares y
        // (dangerous) with R(w,y)? No: shared variables are y only, which is
        // dangerous → violation.
        let program = parse_rules("r(X, Z) :- p(X).\n t(Y, X) :- r(X, Y), r(W, Y).").unwrap();
        let report = check_wardedness(&program);
        assert!(!report.is_warded());
        assert_eq!(report.violating_tgds(), vec![1]);
        assert!(report.per_tgd[1].violation.is_some());
    }

    #[test]
    fn dangerous_variables_spread_over_two_atoms_violate_wardedness() {
        // Two dangerous variables that never co-occur in a single atom.
        // P(x) → ∃z R(x,z) ; R(x,y), R(x2,y2) → T(y, y2):
        // y and y2 are each dangerous; no single atom contains both.
        let program = parse_rules("r(X, Z) :- p(X).\n t(Y, Y2) :- r(X, Y), r(X2, Y2).").unwrap();
        let report = check_wardedness(&program);
        assert!(!report.is_warded());
        let bad = &report.per_tgd[1];
        assert_eq!(bad.dangerous.len(), 2);
        assert!(bad.ward.is_none());
    }

    #[test]
    fn violations_carry_structured_candidates_with_source_names() {
        let program = parse_rules("r(X, Z) :- p(X).\n t(Y, Y2) :- r(X, Y), r(X2, Y2).").unwrap();
        let report = check_wardedness(&program);
        let bad = &report.per_tgd[1];
        assert_eq!(bad.failed_candidates.len(), 2, "both atoms fail as wards");
        // r(X, Y) misses Y2; r(X2, Y2) misses Y.
        assert_eq!(bad.failed_candidates[0].missing, vec![Variable::new("Y2")]);
        assert_eq!(bad.failed_candidates[1].missing, vec![Variable::new("Y")]);
        let violation = bad.violation.as_deref().unwrap();
        assert!(
            violation.contains("Y, Y2"),
            "interned names, no debug: {violation}"
        );
        assert!(!violation.contains("Variable("), "{violation}");
        assert!(
            !violation.contains('['),
            "no debug-formatted list: {violation}"
        );
    }

    #[test]
    fn sharing_violations_name_the_blocking_variables() {
        let program = parse_rules("r(X, Z) :- p(X).\n t(Y, X) :- r(X, Y), r(W, Y).").unwrap();
        let report = check_wardedness(&program);
        let bad = &report.per_tgd[1];
        assert!(!bad.warded);
        assert!(
            bad.failed_candidates.iter().any(|c| !c.blocking.is_empty()),
            "{:?}",
            bad.failed_candidates
        );
        let violation = bad.violation.as_deref().unwrap();
        assert!(violation.contains("non-harmless"), "{violation}");
    }

    #[test]
    fn harmless_sharing_with_the_ward_is_allowed() {
        // The ward may share harmless variables with the rest of the body:
        // R(x,y), S(x) → T(y): x is harmless (S[1] non-affected), y dangerous.
        let program = parse_rules("r(X, Z) :- p(X).\n t(Y) :- r(X, Y), s(X).").unwrap();
        let report = check_wardedness(&program);
        assert!(report.is_warded());
        assert_eq!(report.per_tgd[1].ward, Some(0));
    }
}
