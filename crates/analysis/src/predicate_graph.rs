//! The predicate graph `pg(Σ)` and mutual recursion (Section 4).
//!
//! The predicate graph has the schema predicates as nodes and an edge `P → R`
//! whenever some TGD has `P` in its body and `R` in its head. Two predicates
//! are *mutually recursive* iff they lie on a common cycle, i.e. they belong
//! to the same strongly connected component **and** that component actually
//! contains a cycle (a single node with no self-loop is not recursive).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use vadalog_model::{Predicate, Program};

/// The predicate graph of a program, together with its strongly connected
/// components.
#[derive(Debug, Clone)]
pub struct PredicateGraph {
    nodes: Vec<Predicate>,
    edges: BTreeSet<(Predicate, Predicate)>,
    successors: BTreeMap<Predicate, Vec<Predicate>>,
    /// SCC id of each predicate (0-based, in reverse topological order of
    /// discovery by Tarjan's algorithm).
    scc_of: HashMap<Predicate, usize>,
    /// Members of each SCC.
    scc_members: Vec<Vec<Predicate>>,
    /// Whether the SCC contains a cycle (more than one node, or a self-loop).
    scc_cyclic: Vec<bool>,
}

impl PredicateGraph {
    /// Builds the predicate graph of a program.
    pub fn new(program: &Program) -> PredicateGraph {
        let nodes: Vec<Predicate> = program.schema().into_iter().collect();
        let mut edges = BTreeSet::new();
        for (_, tgd) in program.iter() {
            for b in tgd.body_predicates() {
                for h in tgd.head_predicates() {
                    edges.insert((b, h));
                }
            }
        }
        let mut successors: BTreeMap<Predicate, Vec<Predicate>> = BTreeMap::new();
        for &(from, to) in &edges {
            successors.entry(from).or_default().push(to);
        }
        let mut graph = PredicateGraph {
            nodes,
            edges,
            successors,
            scc_of: HashMap::new(),
            scc_members: Vec::new(),
            scc_cyclic: Vec::new(),
        };
        graph.compute_sccs();
        graph
    }

    fn compute_sccs(&mut self) {
        // Iterative Tarjan's algorithm.
        #[derive(Clone)]
        struct NodeState {
            index: Option<usize>,
            lowlink: usize,
            on_stack: bool,
        }
        let mut states: HashMap<Predicate, NodeState> = self
            .nodes
            .iter()
            .map(|&p| {
                (
                    p,
                    NodeState {
                        index: None,
                        lowlink: 0,
                        on_stack: false,
                    },
                )
            })
            .collect();
        let mut index = 0usize;
        let mut stack: Vec<Predicate> = Vec::new();

        enum Frame {
            Enter(Predicate),
            Continue(Predicate, usize),
        }

        let nodes = self.nodes.clone();
        for start in nodes {
            if states[&start].index.is_some() {
                continue;
            }
            let mut work = vec![Frame::Enter(start)];
            while let Some(frame) = work.pop() {
                match frame {
                    Frame::Enter(v) => {
                        let st = states.get_mut(&v).unwrap();
                        if st.index.is_some() {
                            continue;
                        }
                        st.index = Some(index);
                        st.lowlink = index;
                        st.on_stack = true;
                        index += 1;
                        stack.push(v);
                        work.push(Frame::Continue(v, 0));
                    }
                    Frame::Continue(v, child_idx) => {
                        let succs = self.successors.get(&v).cloned().unwrap_or_default();
                        if child_idx < succs.len() {
                            let w = succs[child_idx];
                            work.push(Frame::Continue(v, child_idx + 1));
                            if states[&w].index.is_none() {
                                work.push(Frame::Enter(w));
                            } else if states[&w].on_stack {
                                let w_index = states[&w].index.unwrap();
                                let st = states.get_mut(&v).unwrap();
                                st.lowlink = st.lowlink.min(w_index);
                            }
                        } else {
                            // Post-processing: fold children lowlinks that were
                            // computed after v was pushed.
                            let succs_low: Vec<usize> = succs
                                .iter()
                                .filter(|w| states[w].on_stack || self.scc_of.contains_key(w))
                                .filter_map(|w| {
                                    if states[w].on_stack {
                                        Some(states[w].lowlink)
                                    } else {
                                        None
                                    }
                                })
                                .collect();
                            {
                                let mut low = states[&v].lowlink;
                                for l in succs_low {
                                    low = low.min(l);
                                }
                                states.get_mut(&v).unwrap().lowlink = low;
                            }
                            if states[&v].lowlink == states[&v].index.unwrap() {
                                // v is the root of an SCC.
                                let scc_id = self.scc_members.len();
                                let mut members = Vec::new();
                                loop {
                                    let w = stack.pop().expect("tarjan stack underflow");
                                    states.get_mut(&w).unwrap().on_stack = false;
                                    self.scc_of.insert(w, scc_id);
                                    members.push(w);
                                    if w == v {
                                        break;
                                    }
                                }
                                let cyclic = members.len() > 1
                                    || members.iter().any(|&m| self.edges.contains(&(m, m)));
                                self.scc_members.push(members);
                                self.scc_cyclic.push(cyclic);
                            }
                        }
                    }
                }
            }
        }
    }

    /// The predicates (nodes) of the graph.
    pub fn predicates(&self) -> &[Predicate] {
        &self.nodes
    }

    /// The edges of the graph.
    pub fn edges(&self) -> impl Iterator<Item = (Predicate, Predicate)> + '_ {
        self.edges.iter().copied()
    }

    /// `true` iff the graph contains the edge `from → to`.
    pub fn has_edge(&self, from: Predicate, to: Predicate) -> bool {
        self.edges.contains(&(from, to))
    }

    /// The SCC identifier of a predicate (predicates not in the schema return
    /// `None`).
    pub fn scc_id(&self, p: Predicate) -> Option<usize> {
        self.scc_of.get(&p).copied()
    }

    /// Number of strongly connected components.
    pub fn scc_count(&self) -> usize {
        self.scc_members.len()
    }

    /// The members of an SCC.
    pub fn scc_members(&self, id: usize) -> &[Predicate] {
        &self.scc_members[id]
    }

    /// Two predicates are mutually recursive iff they lie on a common cycle of
    /// the predicate graph.
    pub fn mutually_recursive(&self, p: Predicate, r: Predicate) -> bool {
        match (self.scc_of.get(&p), self.scc_of.get(&r)) {
            (Some(&a), Some(&b)) => a == b && self.scc_cyclic[a],
            _ => false,
        }
    }

    /// `true` iff `p` is recursive (lies on some cycle).
    pub fn is_recursive(&self, p: Predicate) -> bool {
        self.mutually_recursive(p, p)
    }

    /// The set `rec(P)` of predicates mutually recursive with `p` (including
    /// `p` itself when it is recursive).
    pub fn rec(&self, p: Predicate) -> BTreeSet<Predicate> {
        match self.scc_of.get(&p) {
            Some(&id) if self.scc_cyclic[id] => self.scc_members[id].iter().copied().collect(),
            _ => BTreeSet::new(),
        }
    }

    /// The SCC identifiers in topological order (every edge goes from an
    /// earlier to a later component in the returned order). Tarjan emits SCCs
    /// in reverse topological order, so we reverse the id sequence.
    pub fn sccs_topological(&self) -> Vec<usize> {
        (0..self.scc_members.len()).rev().collect()
    }

    /// A shortest directed path `from → … → to` along the rule edges, found
    /// by BFS over successors. `Some([from])` when `from == to`; `None` when
    /// `to` is unreachable.
    pub fn path(&self, from: Predicate, to: Predicate) -> Option<Vec<Predicate>> {
        if from == to {
            return Some(vec![from]);
        }
        let mut parent: BTreeMap<Predicate, Predicate> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<Predicate> = [from].into();
        while let Some(p) = queue.pop_front() {
            for &next in self.successors.get(&p).map(Vec::as_slice).unwrap_or(&[]) {
                if next == from || parent.contains_key(&next) {
                    continue;
                }
                parent.insert(next, p);
                if next == to {
                    let mut rev = vec![to];
                    let mut cur = to;
                    while let Some(&prev) = parent.get(&cur) {
                        rev.push(prev);
                        cur = prev;
                    }
                    rev.reverse();
                    return Some(rev);
                }
                queue.push_back(next);
            }
        }
        None
    }

    /// The actual cycle two mutually recursive predicates lie on:
    /// `a → … → b → … → a`, as a closed path starting and ending at `a`.
    /// `None` when the two are not mutually recursive. This is what
    /// diagnostics print when reporting recursion through a rule — the
    /// concrete cycle, not just the SCC id.
    pub fn cycle_between(&self, a: Predicate, b: Predicate) -> Option<Vec<Predicate>> {
        if !self.mutually_recursive(a, b) {
            return None;
        }
        if a == b {
            // A self-loop, or a round trip through the SCC.
            if self.edges.contains(&(a, a)) {
                return Some(vec![a, a]);
            }
            let back = self
                .successors
                .get(&a)?
                .iter()
                .find(|&&next| self.mutually_recursive(next, a))?;
            let mut cycle = vec![a];
            cycle.extend(self.path(*back, a)?);
            return Some(cycle);
        }
        let mut cycle = self.path(a, b)?;
        let closing = self.path(b, a)?;
        cycle.extend(closing.into_iter().skip(1));
        Some(cycle)
    }

    /// The forward closure of `seeds` under the rule edges body → head:
    /// every predicate whose relation can change when new facts over the
    /// seed predicates arrive (the seeds themselves included, whether or not
    /// they occur in the schema).
    ///
    /// This is the pruning set of incremental evaluation: a stratum none of
    /// whose predicates lie in the closure of an ingested batch's touched
    /// predicates is **provably** unaffected by the batch and can be skipped
    /// without reading any data.
    pub fn reachable_from(
        &self,
        seeds: impl IntoIterator<Item = Predicate>,
    ) -> BTreeSet<Predicate> {
        let mut closure: BTreeSet<Predicate> = seeds.into_iter().collect();
        let mut work: Vec<Predicate> = closure.iter().copied().collect();
        while let Some(p) = work.pop() {
            if let Some(succs) = self.successors.get(&p) {
                for &next in succs {
                    if closure.insert(next) {
                        work.push(next);
                    }
                }
            }
        }
        closure
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_model::parser::parse_rules;

    fn pred(n: &str) -> Predicate {
        Predicate::new(n)
    }

    #[test]
    fn transitive_closure_graph_is_recursive_in_t_only() {
        let program =
            parse_rules("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).").unwrap();
        let g = PredicateGraph::new(&program);
        assert!(g.is_recursive(pred("t")));
        assert!(!g.is_recursive(pred("edge")));
        assert!(!g.mutually_recursive(pred("edge"), pred("t")));
        assert!(g.has_edge(pred("edge"), pred("t")));
        assert_eq!(g.rec(pred("t")).len(), 1);
        assert!(g.rec(pred("edge")).is_empty());
    }

    #[test]
    fn mutual_recursion_via_two_predicates() {
        let program = parse_rules("p(X) :- q(X).\n q(X) :- p(X).").unwrap();
        let g = PredicateGraph::new(&program);
        assert!(g.mutually_recursive(pred("p"), pred("q")));
        assert!(g.mutually_recursive(pred("q"), pred("p")));
        assert!(g.is_recursive(pred("p")));
        assert_eq!(g.rec(pred("p")).len(), 2);
    }

    #[test]
    fn non_recursive_chain_has_singleton_acyclic_sccs() {
        let program = parse_rules("b(X) :- a(X).\n c(X) :- b(X).").unwrap();
        let g = PredicateGraph::new(&program);
        assert_eq!(g.scc_count(), 3);
        assert!(!g.is_recursive(pred("a")));
        assert!(!g.is_recursive(pred("b")));
        assert!(!g.is_recursive(pred("c")));
    }

    #[test]
    fn example_3_3_recursion_structure() {
        let program = parse_rules(
            "subclassStar(X, Y) :- subclass(X, Y).\n\
             subclassStar(X, Z) :- subclassStar(X, Y), subclass(Y, Z).\n\
             type(X, Z) :- type(X, Y), subclassStar(Y, Z).\n\
             triple(X, Z, W) :- type(X, Y), restriction(Y, Z).\n\
             triple(Z, W, X) :- triple(X, Y, Z), inverse(Y, W).\n\
             type(X, W) :- triple(X, Y, Z), restriction(W, Y).",
        )
        .unwrap();
        let g = PredicateGraph::new(&program);
        // subclassStar is self-recursive but not mutually recursive with type.
        assert!(g.is_recursive(pred("subclassStar")));
        assert!(!g.mutually_recursive(pred("subclassStar"), pred("type")));
        // type and triple feed each other (rules 4 and 6).
        assert!(g.mutually_recursive(pred("type"), pred("triple")));
        assert!(g.is_recursive(pred("type")));
        // EDB predicates are not recursive.
        assert!(!g.is_recursive(pred("subclass")));
        assert!(!g.is_recursive(pred("restriction")));
    }

    #[test]
    fn topological_order_respects_edges() {
        let program = parse_rules("b(X) :- a(X).\n c(X) :- b(X).\n c(X) :- c(X).").unwrap();
        let g = PredicateGraph::new(&program);
        let order = g.sccs_topological();
        // Position of each SCC in the order.
        let pos: HashMap<usize, usize> = order.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        for (from, to) in g.edges() {
            let (sf, st) = (g.scc_id(from).unwrap(), g.scc_id(to).unwrap());
            if sf != st {
                assert!(pos[&sf] < pos[&st], "edge {from}->{to} violates topo order");
            }
        }
    }

    #[test]
    fn reachable_from_follows_rule_edges_forward() {
        let program = parse_rules(
            "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).\n\
             reach_pair(X, Y) :- t(X, Y), red(Y).\n\
             s(X, Y) :- link(X, Y).\n s(X, Z) :- link(X, Y), s(Y, Z).",
        )
        .unwrap();
        let g = PredicateGraph::new(&program);
        // edge feeds t, which feeds reach_pair — but never the link/s chain.
        let from_edge = g.reachable_from([pred("edge")]);
        assert!(from_edge.contains(&pred("edge")));
        assert!(from_edge.contains(&pred("t")));
        assert!(from_edge.contains(&pred("reach_pair")));
        assert!(!from_edge.contains(&pred("link")));
        assert!(!from_edge.contains(&pred("s")));
        // red only feeds the final join.
        let from_red = g.reachable_from([pred("red")]);
        assert_eq!(from_red.len(), 2);
        assert!(from_red.contains(&pred("red")) && from_red.contains(&pred("reach_pair")));
        // Seeds outside the schema stay in the closure (a batch may touch a
        // predicate no rule reads — nothing is reachable from it).
        let foreign = g.reachable_from([pred("zzz")]);
        assert_eq!(foreign.len(), 1);
        assert!(foreign.contains(&pred("zzz")));
    }

    #[test]
    fn self_loop_makes_a_singleton_scc_cyclic() {
        let program = parse_rules("p(X) :- p(X).\n q(X) :- p(X).").unwrap();
        let g = PredicateGraph::new(&program);
        assert!(g.is_recursive(pred("p")));
        assert!(!g.is_recursive(pred("q")));
    }
}
