//! Program analysis for (piece-wise linear) warded sets of TGDs.
//!
//! This crate implements the syntactic machinery of Sections 3 and 4 of
//! *"The Space-Efficient Core of Vadalog"*:
//!
//! * the **predicate graph** `pg(Σ)`, mutual recursion and strongly connected
//!   components ([`predicate_graph`]);
//! * **predicate levels** ℓΣ used by the node-width bound of Theorem 4.8
//!   ([`levels`]);
//! * **affected positions** and the harmless / harmful / dangerous variable
//!   classification ([`affected`]);
//! * the **wardedness** check of Definition 3.1 ([`wardedness`]);
//! * **piece-wise linearity** (Definition 4.1), intensional linearity and
//!   plain linear Datalog ([`pwl`]);
//! * **single-head normalisation** used throughout Section 4.2
//!   ([`normalize`]);
//! * the **linearisation** rewriting of Section 1.2 that eliminates
//!   unnecessary non-linear recursion ([`linearize`]);
//! * **stratification** of a program by its recursive components
//!   ([`stratify`]);
//! * a **scenario classifier** combining all of the above, used to reproduce
//!   the introduction's 55 % / 15 % / 30 % statistic ([`classify`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affected;
pub mod classify;
pub mod levels;
pub mod linearize;
pub mod normalize;
pub mod predicate_graph;
pub mod pwl;
pub mod stratify;
pub mod wardedness;

pub use affected::{AffectedPositions, VariableClass, VariableClassification};
pub use classify::{classify_scenario, ScenarioClass};
pub use levels::PredicateLevels;
pub use linearize::{linearize, LinearizationOutcome};
pub use normalize::{normalize_single_head, NormalizedProgram};
pub use predicate_graph::PredicateGraph;
pub use pwl::{is_intensionally_linear, is_linear_datalog, is_piecewise_linear, PwlReport};
pub use stratify::{stratify, Stratification};
pub use wardedness::{is_warded, WardednessReport};
