//! Program analysis for (piece-wise linear) warded sets of TGDs.
//!
//! This crate implements the syntactic machinery of Sections 3 and 4 of
//! *"The Space-Efficient Core of Vadalog"*:
//!
//! * the **predicate graph** `pg(Σ)`, mutual recursion and strongly connected
//!   components ([`predicate_graph`]);
//! * **predicate levels** ℓΣ used by the node-width bound of Theorem 4.8
//!   ([`levels`]);
//! * **affected positions** and the harmless / harmful / dangerous variable
//!   classification ([`affected`]);
//! * the **wardedness** check of Definition 3.1 ([`wardedness`]);
//! * **piece-wise linearity** (Definition 4.1), intensional linearity and
//!   plain linear Datalog ([`pwl`]);
//! * **single-head normalisation** used throughout Section 4.2
//!   ([`normalize`]);
//! * the **linearisation** rewriting of Section 1.2 that eliminates
//!   unnecessary non-linear recursion ([`linearize`]);
//! * **stratification** of a program by its recursive components
//!   ([`stratify`]);
//! * a **scenario classifier** combining all of the above, used to reproduce
//!   the introduction's 55 % / 15 % / 30 % statistic ([`classify`]);
//! * the **diagnostics engine** ([`diagnostics`], [`safety`]): a multi-pass
//!   pipeline turning all of the above into structured, stable-coded
//!   findings, consumed by the service's `VALIDATE` admission gate and the
//!   `lint` example;
//! * **adornment analysis** ([`adornment`]): bound/free SIP propagation from
//!   a query binding pattern — the groundwork the magic-sets rewrite
//!   consumes;
//! * the **magic-sets rewrite** ([`magic`]): demand-driven specialisation of
//!   a program for one query binding pattern — magic guards, supplementary
//!   SIP splits and ground seed facts, emitted as an ordinary positive
//!   Datalog program the stratified evaluator runs unchanged. The demand
//!   engine in the Datalog crate caches one rewrite per binding-pattern
//!   signature ([`magic::demand_signature`]).
//!
//! # Diagnostic pass pipeline
//!
//! [`analyze`](diagnostics::analyze) runs, in order: safety/range
//! restriction, predicate-signature inference, wardedness, existential
//! recursion, piece-wise linearity, plan-level dry runs, and (when a query
//! is supplied) adornment. Every finding carries one of the stable codes
//! below; codes never change meaning across releases. The magic-sets
//! rewrite ([`magic::magic_rewrite`]) is not a diagnostics pass — it is the
//! adornment report's consumer, invoked per query by the demand engine and
//! by the lint CLI (which prints the rewritten program when the linted file
//! carries a query).
//!
//! # Error-code table
//!
//! | Code | Severity | Meaning |
//! |--------|----------------|---------|
//! | VLG001 | error          | program does not parse, arity conflict, or structurally invalid TGD |
//! | VLG002 | error¹         | null-generating (existential-head) rule under a Datalog-only target |
//! | VLG003 | info           | named variable occurs exactly once in its rule (typo?) |
//! | VLG004 | error          | dangerous variable with no ward (Definition 3.1) |
//! | VLG005 | warning        | more than one recursive body atom (not piece-wise linear) |
//! | VLG006 | info/warning²  | existential recursion: null-generating rule on a predicate-graph cycle |
//! | VLG007 | warning        | rule alpha-equivalent to an earlier rule |
//! | VLG008 | info           | derived predicate never read by a rule body |
//! | VLG009 | warning        | no derivation of the predicate bottoms out in the EDB |
//! | VLG010 | error¹/warning | head predicate collides with a known extensional relation |
//! | VLG011 | warning        | body joins variable-disjoint groups: unavoidable cross product |
//! | VLG012 | info           | planner finds no bound probe position in textual order |
//! | VLG013 | info           | predicate is demand-restricted under the query adornment |
//! | VLG014 | warning        | predicate reached with an all-free adornment |
//!
//! ¹ error only under [`AnalyzerOptions::require_datalog`]
//! (`diagnostics::AnalyzerOptions`), warning/tolerated otherwise.
//! ² info when the rule is warded (termination guaranteed), warning when
//! unwarded.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adornment;
pub mod affected;
pub mod classify;
pub mod diagnostics;
pub mod levels;
pub mod linearize;
pub mod magic;
pub mod normalize;
pub mod predicate_graph;
pub mod pwl;
pub mod safety;
pub mod stratify;
pub mod wardedness;

pub use adornment::{adorn, adorn_query, AdornedPredicate, AdornmentReport, BindingPattern};
pub use affected::{AffectedPositions, VariableClass, VariableClassification};
pub use classify::{classify_scenario, classify_with_diagnostics, ScenarioClass};
pub use diagnostics::{
    analyze, analyze_source, analyze_with, AnalyzerOptions, Diagnostic, DiagnosticCode,
    DiagnosticReport, PredicateRole, PredicateSignature, Severity,
};
pub use levels::PredicateLevels;
pub use linearize::{linearize, LinearizationOutcome};
pub use magic::{demand_signature, magic_rewrite, MagicFallback, MagicRewrite};
pub use normalize::{normalize_single_head, NormalizedProgram};
pub use predicate_graph::PredicateGraph;
pub use pwl::{is_intensionally_linear, is_linear_datalog, is_piecewise_linear, PwlReport};
pub use safety::check_safety;
pub use stratify::{stratify, Stratification};
pub use wardedness::{check_wardedness, is_warded, WardCandidate, WardednessReport};
