//! Affected positions and the harmless / harmful / dangerous variable
//! classification of Section 3.
//!
//! A position `R[i]` is *affected* if a null value can reach it during the
//! chase. The inductive definition of the paper is a least fixpoint:
//!
//! 1. positions hosting an existentially quantified variable are affected;
//! 2. if a frontier variable occurs in the body **only** at affected
//!    positions and it occurs in the head at position π, then π is affected.
//!
//! Body variables are then classified per TGD: *harmless* if at least one
//! occurrence is at a non-affected position, *harmful* otherwise, and
//! *dangerous* if harmful and in the frontier.

use std::collections::{BTreeMap, BTreeSet};
use vadalog_model::{Predicate, Program, Term, Tgd, Variable};

/// A position `R[i]` of the schema (0-based index internally; the paper's
/// `R[i]` is 1-based).
pub type Position = (Predicate, usize);

/// The set of affected positions of a program's schema.
#[derive(Debug, Clone)]
pub struct AffectedPositions {
    affected: BTreeSet<Position>,
    all_positions: BTreeSet<Position>,
}

impl AffectedPositions {
    /// Computes the affected positions of `program` by the least fixpoint of
    /// the two inference rules above.
    pub fn compute(program: &Program) -> AffectedPositions {
        let mut all_positions = BTreeSet::new();
        for p in program.schema() {
            let arity = program.arity_of(p).unwrap_or(0);
            for i in 0..arity {
                all_positions.insert((p, i));
            }
        }

        let mut affected: BTreeSet<Position> = BTreeSet::new();
        // Rule 1: positions of existential variables.
        for (_, tgd) in program.iter() {
            let ex = tgd.existential_variables();
            for head_atom in &tgd.head {
                for (i, t) in head_atom.terms.iter().enumerate() {
                    if let Term::Var(v) = t {
                        if ex.contains(v) {
                            affected.insert((head_atom.predicate, i));
                        }
                    }
                }
            }
        }
        // Rule 2: propagate through frontier variables, to fixpoint.
        loop {
            let mut changed = false;
            for (_, tgd) in program.iter() {
                let frontier = tgd.frontier();
                for v in &frontier {
                    let occurrences = body_positions_of(tgd, *v);
                    if occurrences.is_empty() {
                        continue;
                    }
                    let only_affected = occurrences.iter().all(|pos| affected.contains(pos));
                    if !only_affected {
                        continue;
                    }
                    for head_atom in &tgd.head {
                        for (i, t) in head_atom.terms.iter().enumerate() {
                            if t.as_var() == Some(*v) && affected.insert((head_atom.predicate, i)) {
                                changed = true;
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        AffectedPositions {
            affected,
            all_positions,
        }
    }

    /// `true` iff the position is affected.
    pub fn is_affected(&self, position: Position) -> bool {
        self.affected.contains(&position)
    }

    /// The affected positions.
    pub fn affected(&self) -> &BTreeSet<Position> {
        &self.affected
    }

    /// The non-affected positions (the paper's `nonaff(Σ)`).
    pub fn non_affected(&self) -> BTreeSet<Position> {
        self.all_positions
            .difference(&self.affected)
            .copied()
            .collect()
    }

    /// Classifies every body variable of the given TGD.
    pub fn classify_variables(&self, tgd: &Tgd) -> VariableClassification {
        let frontier = tgd.frontier();
        let mut classes = BTreeMap::new();
        for v in tgd.body_variables() {
            let occurrences = body_positions_of(tgd, v);
            let harmless = occurrences.iter().any(|pos| !self.is_affected(*pos));
            let class = if harmless {
                VariableClass::Harmless
            } else if frontier.contains(&v) {
                VariableClass::Dangerous
            } else {
                VariableClass::Harmful
            };
            classes.insert(v, class);
        }
        VariableClassification { classes }
    }
}

fn body_positions_of(tgd: &Tgd, v: Variable) -> Vec<Position> {
    let mut out = Vec::new();
    for atom in &tgd.body {
        for (i, t) in atom.terms.iter().enumerate() {
            if t.as_var() == Some(v) {
                out.push((atom.predicate, i));
            }
        }
    }
    out
}

/// The classification of a body variable with respect to the affected
/// positions of the program (Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariableClass {
    /// At least one body occurrence is at a non-affected position: the
    /// variable can only ever be bound to constants.
    Harmless,
    /// All body occurrences are at affected positions, but the variable is
    /// not propagated to the head.
    Harmful,
    /// Harmful and in the frontier: a null may be propagated to the head.
    Dangerous,
}

/// The per-TGD classification of all body variables.
#[derive(Debug, Clone)]
pub struct VariableClassification {
    classes: BTreeMap<Variable, VariableClass>,
}

impl VariableClassification {
    /// The class of a body variable (`None` if it does not occur in the body).
    pub fn class_of(&self, v: Variable) -> Option<VariableClass> {
        self.classes.get(&v).copied()
    }

    /// The dangerous variables of the TGD.
    pub fn dangerous(&self) -> Vec<Variable> {
        self.filter(VariableClass::Dangerous)
    }

    /// The harmful (but not dangerous) variables of the TGD.
    pub fn harmful(&self) -> Vec<Variable> {
        self.filter(VariableClass::Harmful)
    }

    /// The harmless variables of the TGD.
    pub fn harmless(&self) -> Vec<Variable> {
        self.filter(VariableClass::Harmless)
    }

    fn filter(&self, class: VariableClass) -> Vec<Variable> {
        self.classes
            .iter()
            .filter(|(_, &c)| c == class)
            .map(|(v, _)| *v)
            .collect()
    }

    /// Iterates over all classified variables.
    pub fn iter(&self) -> impl Iterator<Item = (Variable, VariableClass)> + '_ {
        self.classes.iter().map(|(v, c)| (*v, *c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_model::parser::parse_rules;
    use vadalog_model::Predicate;

    #[test]
    fn existential_positions_are_affected() {
        // P(x) → ∃z R(x, z): R[2] is affected, R[1] is not, P[1] is not.
        let program = parse_rules("r(X, Z) :- p(X).").unwrap();
        let aff = AffectedPositions::compute(&program);
        assert!(aff.is_affected((Predicate::new("r"), 1)));
        assert!(!aff.is_affected((Predicate::new("r"), 0)));
        assert!(!aff.is_affected((Predicate::new("p"), 0)));
    }

    #[test]
    fn propagation_through_frontier_variables() {
        // P(x) → ∃z R(x, z) ;  R(x, y) → P2(y):
        // R[2] affected by rule 1; y occurs only at R[2] so P2[1] is affected.
        let program = parse_rules("r(X, Z) :- p(X).\n p2(Y) :- r(X, Y).").unwrap();
        let aff = AffectedPositions::compute(&program);
        assert!(aff.is_affected((Predicate::new("p2"), 0)));
    }

    #[test]
    fn no_propagation_when_variable_also_occurs_at_safe_position() {
        // R(x, y), S(y) → P2(y): y also occurs at the non-affected S[1], so
        // P2[1] stays non-affected.
        let program = parse_rules("r(X, Z) :- p(X).\n p2(Y) :- r(X, Y), s(Y).").unwrap();
        let aff = AffectedPositions::compute(&program);
        assert!(!aff.is_affected((Predicate::new("p2"), 0)));
    }

    #[test]
    fn dangerous_variable_in_the_papers_introductory_example() {
        // P(x) → ∃z R(x,z) ; R(x,y) → P(y): y is dangerous in the second TGD.
        let program = parse_rules("r(X, Z) :- p(X).\n p(Y) :- r(X, Y).").unwrap();
        let aff = AffectedPositions::compute(&program);
        let tgd = &program.tgds()[1];
        let classes = aff.classify_variables(tgd);
        assert_eq!(
            classes.class_of(Variable::new("Y")),
            Some(VariableClass::Dangerous)
        );
        // R[1] is also affected (the null at P[1] flows back through the first
        // TGD), so x is harmful — but it is not dangerous because it does not
        // reach the head.
        assert!(aff.is_affected((Predicate::new("r"), 0)));
        assert_eq!(
            classes.class_of(Variable::new("X")),
            Some(VariableClass::Harmful)
        );
    }

    #[test]
    fn harmful_but_not_dangerous_variables() {
        // P(x) → ∃z R(x,z) ; R(x,y) → Q(x): y is harmful (only affected
        // positions) but not dangerous (not in the frontier).
        let program = parse_rules("r(X, Z) :- p(X).\n q(X) :- r(X, Y).").unwrap();
        let aff = AffectedPositions::compute(&program);
        let tgd = &program.tgds()[1];
        let classes = aff.classify_variables(tgd);
        assert_eq!(
            classes.class_of(Variable::new("Y")),
            Some(VariableClass::Harmful)
        );
        assert_eq!(classes.dangerous().len(), 0);
        assert_eq!(classes.harmful().len(), 1);
    }

    #[test]
    fn datalog_programs_have_no_affected_positions() {
        let program =
            parse_rules("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).").unwrap();
        let aff = AffectedPositions::compute(&program);
        assert!(aff.affected().is_empty());
        let tgd = &program.tgds()[1];
        let classes = aff.classify_variables(tgd);
        assert!(classes.dangerous().is_empty());
        assert!(classes.harmful().is_empty());
        assert_eq!(classes.harmless().len(), 3);
    }

    #[test]
    fn example_3_3_affected_positions_match_the_paper() {
        let program = parse_rules(
            "subclassStar(X, Y) :- subclass(X, Y).\n\
             subclassStar(X, Z) :- subclassStar(X, Y), subclass(Y, Z).\n\
             type(X, Z) :- type(X, Y), subclassStar(Y, Z).\n\
             triple(X, Z, W) :- type(X, Y), restriction(Y, Z).\n\
             triple(Z, W, X) :- triple(X, Y, Z), inverse(Y, W).\n\
             type(X, W) :- triple(X, Y, Z), restriction(W, Y).",
        )
        .unwrap();
        let aff = AffectedPositions::compute(&program);
        // The existential W of rule 4 sits at Triple[3]; via rule 5 the value
        // flows to Triple[1] (the body variable Z of rule 5 occurs only at the
        // affected Triple[3] and is placed first in the head), and via rule 6
        // it flows to Type[1]. The paper notes that exactly the frontier
        // variables at Type[1], Triple[1] and Triple[3] are dangerous.
        // (Positions are 0-based here, 1-based in the paper.)
        assert!(aff.is_affected((Predicate::new("triple"), 2)));
        assert!(aff.is_affected((Predicate::new("triple"), 0)));
        assert!(aff.is_affected((Predicate::new("type"), 0)));
        // Triple[2] only ever receives values of inverse/restriction
        // properties, which are harmless — it stays non-affected.
        assert!(!aff.is_affected((Predicate::new("triple"), 1)));
        // Purely extensional predicates are never affected, and neither is
        // subclassStar.
        assert!(!aff.is_affected((Predicate::new("subclass"), 0)));
        assert!(!aff.is_affected((Predicate::new("restriction"), 0)));
        assert!(!aff.is_affected((Predicate::new("subclassStar"), 0)));
        assert!(!aff.is_affected((Predicate::new("subclassStar"), 1)));
        // type[2] is only ever filled from subclassStar / restriction values.
        assert!(!aff.is_affected((Predicate::new("type"), 1)));
    }
}
