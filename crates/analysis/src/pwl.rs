//! Piece-wise linearity (Definition 4.1), intensional linearity and linear
//! Datalog.
//!
//! * A set Σ is **piece-wise linear** (PWL) iff every TGD has at most one body
//!   atom whose predicate is mutually recursive with a predicate of the head.
//! * Σ is **intensionally linear** (IL) iff every TGD has at most one body
//!   atom with an intensional predicate.
//! * A Datalog program is **linear** iff it is IL and consists of Datalog
//!   rules.

use crate::predicate_graph::PredicateGraph;
use vadalog_model::{Program, Tgd};

/// Per-TGD piece-wise linearity information.
#[derive(Debug, Clone)]
pub struct TgdPwl {
    /// Index of the TGD in the program.
    pub tgd_index: usize,
    /// Indexes of body atoms whose predicate is mutually recursive with a
    /// head predicate.
    pub recursive_body_atoms: Vec<usize>,
    /// `true` iff at most one such atom exists.
    pub piecewise_linear: bool,
}

/// The report of a piece-wise linearity check.
#[derive(Debug, Clone)]
pub struct PwlReport {
    /// Per-TGD results.
    pub per_tgd: Vec<TgdPwl>,
}

impl PwlReport {
    /// `true` iff the whole program is piece-wise linear.
    pub fn is_piecewise_linear(&self) -> bool {
        self.per_tgd.iter().all(|t| t.piecewise_linear)
    }

    /// TGD indexes violating piece-wise linearity.
    pub fn violating_tgds(&self) -> Vec<usize> {
        self.per_tgd
            .iter()
            .filter(|t| !t.piecewise_linear)
            .map(|t| t.tgd_index)
            .collect()
    }

    /// The per-TGD results violating piece-wise linearity, in program order.
    pub fn violations(&self) -> impl Iterator<Item = &TgdPwl> {
        self.per_tgd.iter().filter(|t| !t.piecewise_linear)
    }

    /// For a piece-wise linear TGD, the index of *the* recursive body atom, if
    /// any. Used by the engine's join-ordering optimisation (Section 7).
    pub fn recursive_atom_of(&self, tgd_index: usize) -> Option<usize> {
        self.per_tgd
            .iter()
            .find(|t| t.tgd_index == tgd_index)
            .and_then(|t| t.recursive_body_atoms.first().copied())
    }
}

/// Checks piece-wise linearity of a program against its predicate graph.
pub fn check_pwl(program: &Program, graph: &PredicateGraph) -> PwlReport {
    let per_tgd = program
        .iter()
        .map(|(i, tgd)| {
            let recursive_body_atoms = recursive_body_atoms(tgd, graph);
            TgdPwl {
                tgd_index: i,
                piecewise_linear: recursive_body_atoms.len() <= 1,
                recursive_body_atoms,
            }
        })
        .collect();
    PwlReport { per_tgd }
}

/// The indexes of body atoms of `tgd` whose predicate is mutually recursive
/// with some head predicate.
pub fn recursive_body_atoms(tgd: &Tgd, graph: &PredicateGraph) -> Vec<usize> {
    tgd.body
        .iter()
        .enumerate()
        .filter(|(_, atom)| {
            tgd.head_predicates()
                .iter()
                .any(|h| graph.mutually_recursive(atom.predicate, *h))
        })
        .map(|(i, _)| i)
        .collect()
}

/// `true` iff the program is piece-wise linear (Definition 4.1).
pub fn is_piecewise_linear(program: &Program) -> bool {
    let graph = PredicateGraph::new(program);
    check_pwl(program, &graph).is_piecewise_linear()
}

/// `true` iff the program is intensionally linear: every TGD has at most one
/// body atom with an intensional predicate (the paper's class IL).
pub fn is_intensionally_linear(program: &Program) -> bool {
    let idb = program.intensional_predicates();
    program.tgds().iter().all(|tgd| {
        tgd.body
            .iter()
            .filter(|a| idb.contains(&a.predicate))
            .count()
            <= 1
    })
}

/// `true` iff the program is a linear Datalog program: Datalog rules with at
/// most one intensional body atom.
pub fn is_linear_datalog(program: &Program) -> bool {
    program.is_datalog() && is_intensionally_linear(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_model::parser::parse_rules;

    #[test]
    fn linear_transitive_closure_is_pwl_il_and_linear() {
        let p = parse_rules("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).").unwrap();
        assert!(is_piecewise_linear(&p));
        assert!(is_intensionally_linear(&p));
        assert!(is_linear_datalog(&p));
    }

    #[test]
    fn nonlinear_transitive_closure_is_not_pwl() {
        let p = parse_rules("t(X, Y) :- edge(X, Y).\n t(X, Z) :- t(X, Y), t(Y, Z).").unwrap();
        assert!(!is_piecewise_linear(&p));
        assert!(!is_intensionally_linear(&p));
        let graph = PredicateGraph::new(&p);
        let report = check_pwl(&p, &graph);
        assert_eq!(report.violating_tgds(), vec![1]);
        assert_eq!(report.per_tgd[1].recursive_body_atoms, vec![0, 1]);
    }

    #[test]
    fn example_3_3_is_pwl_but_not_intensionally_linear() {
        // Rule 3 joins two intensional predicates (type and subclassStar) but
        // only type is mutually recursive with the head — the distinction the
        // paper uses to motivate piece-wise linearity over plain linearity.
        let p = parse_rules(
            "subclassStar(X, Y) :- subclass(X, Y).\n\
             subclassStar(X, Z) :- subclassStar(X, Y), subclass(Y, Z).\n\
             type(X, Z) :- type(X, Y), subclassStar(Y, Z).\n\
             triple(X, Z, W) :- type(X, Y), restriction(Y, Z).\n\
             triple(Z, W, X) :- triple(X, Y, Z), inverse(Y, W).\n\
             type(X, W) :- triple(X, Y, Z), restriction(W, Y).",
        )
        .unwrap();
        assert!(is_piecewise_linear(&p));
        assert!(!is_intensionally_linear(&p));
        assert!(!is_linear_datalog(&p)); // existentials + not IL
        let graph = PredicateGraph::new(&p);
        let report = check_pwl(&p, &graph);
        // In rule 3 the recursive body atom is the first one (type).
        assert_eq!(report.recursive_atom_of(2), Some(0));
        // In rule 1 there is no recursive body atom.
        assert_eq!(report.recursive_atom_of(0), None);
    }

    #[test]
    fn mutual_recursion_across_predicates_counts_for_pwl() {
        // p and q are mutually recursive; a rule joining both is not PWL.
        let p = parse_rules("p(X) :- e(X).\n p(X) :- q(X).\n q(X) :- p(X).\n r(X) :- p(X), q(X).")
            .unwrap();
        // The last rule's head r is not recursive with p or q, so the rule is
        // fine; the program stays PWL.
        assert!(is_piecewise_linear(&p));

        let bad = parse_rules("p(X) :- e(X).\n p(X) :- q(X).\n q(X) :- p(X), q(X).").unwrap();
        assert!(!is_piecewise_linear(&bad));
    }

    #[test]
    fn non_recursive_programs_are_trivially_pwl_and_il() {
        let p = parse_rules("s(X) :- a(X), b(X), c(X).").unwrap();
        assert!(is_piecewise_linear(&p));
        assert!(is_intensionally_linear(&p));
    }

    #[test]
    fn the_section5_tiling_program_shape_is_pwl() {
        // The Section 5 reduction joins two Row atoms in the Comp rules, but
        // Row is not mutually recursive with Comp, so the program is PWL.
        let p = parse_rules(
            "row(Z, Z, X, X) :- tile(X).\n\
             row(X, U, Y, W) :- row(_, X, Y, Z), h(Z, W).\n\
             comp(X, X2) :- row(X, X, Y, Y), row(X2, X2, Y2, Y2), v(Y, Y2).\n\
             comp(Y, Y2) :- row(X, Y, _, Z), row(X2, Y2, _, Z2), comp(X, X2), v(Z, Z2).\n\
             ctiling(X, Y) :- row(_, X, Y, Z), start(Y), rightb(Z).\n\
             ctiling(Y, Z) :- ctiling(X, _), row(_, Y, Z, W), comp(X, Y), leftb(Z), rightb(W).",
        )
        .unwrap();
        assert!(is_piecewise_linear(&p));
        assert!(!is_intensionally_linear(&p));
    }
}
