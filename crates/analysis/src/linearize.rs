//! Elimination of unnecessary non-linear recursion (Section 1.2).
//!
//! The paper observes that ≈15 % of the analysed scenarios are not directly
//! piece-wise linear but become so after a standard rewriting that removes
//! unnecessary non-linear recursion. The canonical example is transitive
//! closure:
//!
//! ```text
//! E(x,y) → T(x,y)        T(x,y) ∧ T(y,z) → T(x,z)
//! ```
//!
//! which is equivalent to the linear
//!
//! ```text
//! E(x,y) → T(x,y)        E(x,y) ∧ T(y,z) → T(x,z)
//! ```
//!
//! This module implements that rewriting for transitive-closure-shaped rules:
//! a rule whose body consists of exactly two atoms over the (binary) head
//! predicate `P`, chained as `P(X,Y), P(Y,Z) → P(X,Z)`, where `P` also has at
//! least one non-recursive base rule. The first recursive atom is unfolded
//! with each base rule's body. The rewriting preserves certain answers
//! because the fixpoint of the chained rule is reached by composing base
//! facts on the left, exactly as in the classic left-/right-linear
//! equivalence for transitive closure.

use crate::predicate_graph::PredicateGraph;
use vadalog_model::{Program, Substitution, Term, Tgd};

/// The outcome of attempting to linearise a program.
#[derive(Debug, Clone)]
pub struct LinearizationOutcome {
    /// The (possibly rewritten) program.
    pub program: Program,
    /// Indexes (in the *original* program) of the rules that were rewritten.
    pub linearized_rules: Vec<usize>,
}

impl LinearizationOutcome {
    /// `true` iff at least one rule was rewritten.
    pub fn changed(&self) -> bool {
        !self.linearized_rules.is_empty()
    }
}

/// Attempts to remove unnecessary non-linear recursion from `program`.
/// Rules that do not match the supported transitive-closure shape are left
/// untouched.
pub fn linearize(program: &Program) -> LinearizationOutcome {
    let graph = PredicateGraph::new(program);
    let mut out = Program::new();
    let mut linearized = Vec::new();

    for (index, tgd) in program.iter() {
        match try_linearize_rule(program, &graph, tgd) {
            Some(replacements) => {
                for r in replacements {
                    out.add(r).expect("linearised rule must be valid");
                }
                linearized.push(index);
            }
            None => out.add(tgd.clone()).expect("original rule is valid"),
        }
    }

    LinearizationOutcome {
        program: out,
        linearized_rules: linearized,
    }
}

/// Tries to rewrite a single TC-shaped rule; returns the replacement rules on
/// success.
fn try_linearize_rule(program: &Program, graph: &PredicateGraph, tgd: &Tgd) -> Option<Vec<Tgd>> {
    // Shape: single head atom P(X, Z) over a binary predicate.
    if tgd.head.len() != 1 {
        return None;
    }
    let head = &tgd.head[0];
    if head.arity() != 2 {
        return None;
    }
    let p = head.predicate;
    // Body: exactly two atoms, both over P, chained P(X,Y), P(Y,Z).
    if tgd.body.len() != 2 {
        return None;
    }
    if tgd.body.iter().any(|a| a.predicate != p || a.arity() != 2) {
        return None;
    }
    if !graph.is_recursive(p) {
        return None;
    }
    let (first, second) = (&tgd.body[0], &tgd.body[1]);
    let (x, y1) = (first.terms[0], first.terms[1]);
    let (y2, z) = (second.terms[0], second.terms[1]);
    if y1 != y2 || head.terms[0] != x || head.terms[1] != z {
        return None;
    }
    let (x, y, z) = (x.as_var()?, y1.as_var()?, z.as_var()?);
    if x == y || y == z || x == z {
        return None;
    }

    // Base rules: non-recursive rules with head P whose body predicates are
    // not mutually recursive with P.
    let base_rules: Vec<&Tgd> = program
        .tgds()
        .iter()
        .filter(|r| {
            r.head.len() == 1
                && r.head[0].predicate == p
                && r.body
                    .iter()
                    .all(|a| !graph.mutually_recursive(a.predicate, p))
                && r.is_full()
        })
        .collect();
    if base_rules.is_empty() {
        return None;
    }

    // For every base rule  β(…) → P(u, v)  produce  β[u↦X, v↦Y], P(Y, Z) → P(X, Z).
    let mut replacements = Vec::new();
    for (i, base) in base_rules.iter().enumerate() {
        let renamed = base.rename_apart(&format!("lin{i}"));
        let base_head = &renamed.head[0];
        let (u, v) = (base_head.terms[0].as_var()?, base_head.terms[1].as_var()?);
        let mut subst = Substitution::new();
        subst.bind_var(u, Term::Var(x));
        subst.bind_var(v, Term::Var(y));
        let mut new_body = subst.apply_atoms(&renamed.body);
        new_body.push(second.clone());
        replacements.push(Tgd::new(new_body, vec![head.clone()]).ok()?);
    }
    Some(replacements)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pwl::is_piecewise_linear;
    use vadalog_model::parser::parse_rules;

    #[test]
    fn nonlinear_transitive_closure_is_linearized() {
        let p = parse_rules("t(X, Y) :- edge(X, Y).\n t(X, Z) :- t(X, Y), t(Y, Z).").unwrap();
        assert!(!is_piecewise_linear(&p));
        let out = linearize(&p);
        assert!(out.changed());
        assert_eq!(out.linearized_rules, vec![1]);
        assert!(is_piecewise_linear(&out.program));
        // The rewritten rule joins the base predicate with t.
        let rewritten = out
            .program
            .tgds()
            .iter()
            .find(|t| t.body.len() == 2 && t.body[0].predicate.name() == "edge")
            .expect("rewritten rule present");
        assert_eq!(rewritten.head[0].predicate.name(), "t");
    }

    #[test]
    fn multiple_base_rules_produce_multiple_linear_rules() {
        let p = parse_rules(
            "t(X, Y) :- edge(X, Y).\n t(X, Y) :- road(X, Y).\n t(X, Z) :- t(X, Y), t(Y, Z).",
        )
        .unwrap();
        let out = linearize(&p);
        assert!(out.changed());
        // 2 base rules stay + 2 linearised variants of the recursive rule.
        assert_eq!(out.program.len(), 4);
        assert!(is_piecewise_linear(&out.program));
    }

    #[test]
    fn already_linear_rules_are_untouched() {
        let p = parse_rules("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).").unwrap();
        let out = linearize(&p);
        assert!(!out.changed());
        assert_eq!(out.program.len(), 2);
    }

    #[test]
    fn rules_without_a_base_rule_are_not_rewritten() {
        let p = parse_rules("t(X, Z) :- t(X, Y), t(Y, Z).").unwrap();
        let out = linearize(&p);
        assert!(!out.changed());
    }

    #[test]
    fn non_tc_shapes_are_left_alone() {
        // Same-generation style recursion does not match the TC pattern.
        let p = parse_rules(
            "sg(X, Y) :- flat(X, Y).\n sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).",
        )
        .unwrap();
        let out = linearize(&p);
        assert!(!out.changed());
    }

    #[test]
    fn linearization_preserves_answers_on_a_chain() {
        // Certain answers of the non-linear and linearised programs coincide
        // (checked here by a small hand evaluation through the datalog engine
        // in the integration tests; at unit level we check rule structure).
        let p = parse_rules("t(X, Y) :- edge(X, Y).\n t(X, Z) :- t(X, Y), t(Y, Z).").unwrap();
        let out = linearize(&p);
        for tgd in out.program.tgds() {
            assert!(tgd.is_datalog_rule());
        }
    }
}
