//! Safety / range-restriction checks (pass 1 of the diagnostics pipeline).
//!
//! The formalism's rules are range-restricted by construction — every
//! frontier variable occurs in the body — so the classical Datalog safety
//! violation cannot arise from a parsed [`Program`]. What remains, and what
//! this pass reports:
//!
//! * structural invalidity surviving a hand-built program
//!   ([`crate::diagnostics::DiagnosticCode::InvalidProgram`]);
//! * **null-generating rules** (head-only, existentially quantified
//!   variables) when the target engine evaluates plain Datalog only
//!   ([`crate::diagnostics::DiagnosticCode::NonDatalogRule`]) — the live
//!   service's incremental engine is such a target;
//! * **singleton variables**: a named variable occurring exactly once in
//!   its rule, the classic typo shape
//!   ([`crate::diagnostics::DiagnosticCode::SingletonVariable`]). Prefix a
//!   deliberately-unused variable with `_` to silence the finding.

use crate::diagnostics::{AnalyzerOptions, Diagnostic, DiagnosticCode, Severity};
use std::collections::BTreeMap;
use vadalog_model::{display_variables, AtomSpan, Program, Variable};

/// Runs the safety pass, appending findings for every TGD.
pub fn check_safety(program: &Program, options: &AnalyzerOptions) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    for (i, tgd) in program.iter() {
        // Structural re-validation: parsed programs always pass, but
        // `Program` can also be built from `Tgd::new_unchecked`.
        if let Err(error) = tgd.validate() {
            diagnostics.push(Diagnostic {
                code: DiagnosticCode::InvalidProgram,
                severity: Severity::Error,
                tgd: Some(i),
                atom: None,
                variable: None,
                predicate: None,
                message: error.to_string(),
            });
        }

        // Null-generating rules under a Datalog-only target.
        let existential = tgd.existential_variables();
        if !existential.is_empty() && options.require_datalog {
            let first = *existential.iter().next().expect("non-empty");
            let span = tgd
                .head
                .iter()
                .position(|a| a.variables().contains(&first))
                .map(AtomSpan::head);
            let mut d = Diagnostic {
                code: DiagnosticCode::NonDatalogRule,
                severity: Severity::Error,
                tgd: Some(i),
                atom: span,
                variable: Some(first),
                predicate: None,
                message: format!(
                    "head variables {} are existentially quantified (null-generating \
                     rule); the target engine evaluates plain Datalog only",
                    display_variables(&existential)
                ),
            };
            if span.is_none() {
                d.atom = Some(AtomSpan::head(0));
            }
            diagnostics.push(d);
        }

        // Singleton variables.
        let mut occurrences: BTreeMap<Variable, usize> = BTreeMap::new();
        let mut first_span: BTreeMap<Variable, AtomSpan> = BTreeMap::new();
        for (ai, atom) in tgd.body.iter().enumerate() {
            for v in atom.variables() {
                *occurrences.entry(v).or_insert(0) += 1;
                first_span.entry(v).or_insert_with(|| AtomSpan::body(ai));
            }
        }
        for (ai, atom) in tgd.head.iter().enumerate() {
            for v in atom.variables() {
                *occurrences.entry(v).or_insert(0) += 1;
                first_span.entry(v).or_insert_with(|| AtomSpan::head(ai));
            }
        }
        for (v, count) in occurrences {
            // Existential variables are deliberately head-only; a single
            // occurrence is their normal shape, not a typo.
            if count == 1 && !v.name().starts_with('_') && !existential.contains(&v) {
                diagnostics.push(Diagnostic {
                    code: DiagnosticCode::SingletonVariable,
                    severity: Severity::Info,
                    tgd: Some(i),
                    atom: first_span.get(&v).copied(),
                    variable: Some(v),
                    predicate: None,
                    message: format!(
                        "variable {} occurs exactly once in the rule (typo?); prefix \
                         it with `_` if the single occurrence is deliberate",
                        v.name()
                    ),
                });
            }
        }
    }
    diagnostics
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_model::parser::parse_rules;

    #[test]
    fn singletons_are_flagged_but_underscores_are_not() {
        let program = parse_rules("out(X) :- pair(X, Y).\n out2(X) :- pair(X, _).").unwrap();
        let findings = check_safety(&program, &AnalyzerOptions::default());
        let singles: Vec<_> = findings
            .iter()
            .filter(|d| d.code == DiagnosticCode::SingletonVariable)
            .collect();
        assert_eq!(singles.len(), 1);
        assert_eq!(singles[0].variable.unwrap().name(), "Y");
        assert_eq!(singles[0].tgd, Some(0));
        assert_eq!(singles[0].atom, Some(AtomSpan::body(0)));
    }

    #[test]
    fn existentials_error_only_under_datalog_target() {
        let program = parse_rules("r(X, Z) :- p(X).").unwrap();
        let tolerant = check_safety(&program, &AnalyzerOptions::default());
        assert!(tolerant
            .iter()
            .all(|d| d.code != DiagnosticCode::NonDatalogRule));

        let strict = AnalyzerOptions {
            require_datalog: true,
            ..AnalyzerOptions::default()
        };
        let findings = check_safety(&program, &strict);
        let existential: Vec<_> = findings
            .iter()
            .filter(|d| d.code == DiagnosticCode::NonDatalogRule)
            .collect();
        assert_eq!(existential.len(), 1);
        assert_eq!(existential[0].severity, Severity::Error);
        assert_eq!(existential[0].variable.unwrap().name(), "Z");
        assert!(existential[0].message.contains('Z'));
    }

    #[test]
    fn existential_singletons_are_not_typos() {
        // Z occurs once but is existentially quantified — its normal shape.
        let program = parse_rules("r(X, Z) :- p(X).").unwrap();
        let findings = check_safety(&program, &AnalyzerOptions::default());
        assert!(
            findings
                .iter()
                .all(|d| d.code != DiagnosticCode::SingletonVariable),
            "{findings:?}"
        );
    }
}
