//! Scenario classification used to reproduce the introduction's statistics.
//!
//! Section 1.2 of the paper reports that, over the analysed benchmarks and
//! industrial scenarios, roughly 55 % of the TGD sets are directly piece-wise
//! linear, another 15 % become piece-wise linear after eliminating
//! unnecessary non-linear recursion, and the remaining ones are genuinely
//! non-PWL. This module provides the classifier that the E2 experiment runs
//! over generated scenario suites.

use crate::linearize::linearize;
use crate::pwl::is_piecewise_linear;
use crate::wardedness::is_warded;
use std::fmt;
use vadalog_model::Program;

/// The class of a scenario with respect to wardedness and piece-wise
/// linearity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScenarioClass {
    /// The program is not warded (outside the Vadalog core).
    NotWarded,
    /// Warded and directly piece-wise linear.
    WardedPwl,
    /// Warded, not piece-wise linear as written, but piece-wise linear after
    /// the linearisation rewriting.
    WardedLinearizable,
    /// Warded with genuinely non-piece-wise-linear recursion.
    WardedNonPwl,
}

impl fmt::Display for ScenarioClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScenarioClass::NotWarded => "not warded",
            ScenarioClass::WardedPwl => "warded ∩ pwl",
            ScenarioClass::WardedLinearizable => "warded, pwl after linearisation",
            ScenarioClass::WardedNonPwl => "warded, not pwl",
        };
        f.write_str(s)
    }
}

/// Classifies a program and also runs the full diagnostics pipeline, so
/// scenario sweeps (the E2 experiment, the lint CLI's `--scenarios` mode)
/// get the class and the structured findings from one call.
pub fn classify_with_diagnostics(
    program: &Program,
) -> (ScenarioClass, crate::diagnostics::DiagnosticReport) {
    (
        classify_scenario(program),
        crate::diagnostics::analyze(program),
    )
}

/// Classifies a program.
pub fn classify_scenario(program: &Program) -> ScenarioClass {
    if !is_warded(program) {
        return ScenarioClass::NotWarded;
    }
    if is_piecewise_linear(program) {
        return ScenarioClass::WardedPwl;
    }
    let linearized = linearize(program);
    if linearized.changed() && is_piecewise_linear(&linearized.program) {
        ScenarioClass::WardedLinearizable
    } else {
        ScenarioClass::WardedNonPwl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_model::parser::parse_rules;

    #[test]
    fn linear_tc_is_warded_pwl() {
        let p = parse_rules("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).").unwrap();
        assert_eq!(classify_scenario(&p), ScenarioClass::WardedPwl);
    }

    #[test]
    fn nonlinear_tc_is_linearizable() {
        let p = parse_rules("t(X, Y) :- edge(X, Y).\n t(X, Z) :- t(X, Y), t(Y, Z).").unwrap();
        assert_eq!(classify_scenario(&p), ScenarioClass::WardedLinearizable);
    }

    #[test]
    fn same_generation_is_warded_but_not_pwl() {
        let p =
            parse_rules("sg(X, Y) :- flat(X, Y).\n sg(X, Y) :- up(X, X1), sg(X1, Y1), sg(Y1, Y).")
                .unwrap();
        assert_eq!(classify_scenario(&p), ScenarioClass::WardedNonPwl);
    }

    #[test]
    fn dangerous_join_is_not_warded() {
        let p = parse_rules("r(X, Z) :- p(X).\n t(Y, X) :- r(X, Y), r(W, Y).").unwrap();
        assert_eq!(classify_scenario(&p), ScenarioClass::NotWarded);
    }

    #[test]
    fn owl_example_is_warded_pwl() {
        let p = parse_rules(
            "subclassStar(X, Y) :- subclass(X, Y).\n\
             subclassStar(X, Z) :- subclassStar(X, Y), subclass(Y, Z).\n\
             type(X, Z) :- type(X, Y), subclassStar(Y, Z).\n\
             triple(X, Z, W) :- type(X, Y), restriction(Y, Z).\n\
             triple(Z, W, X) :- triple(X, Y, Z), inverse(Y, W).\n\
             type(X, W) :- triple(X, Y, Z), restriction(W, Y).",
        )
        .unwrap();
        assert_eq!(classify_scenario(&p), ScenarioClass::WardedPwl);
    }
}
