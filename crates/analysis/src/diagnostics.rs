//! The multi-pass program diagnostics engine: structured, stable-coded
//! findings over a [`Program`].
//!
//! [`analyze`] (or [`analyze_with`] / [`analyze_source`]) runs a fixed
//! pipeline of static passes and returns a [`DiagnosticReport`]: a list of
//! [`Diagnostic`]s — each with a stable [`DiagnosticCode`] (`VLG0xx`), a
//! [`Severity`], the offending TGD index, an optional body/head atom span
//! ([`vadalog_model::AtomSpan`]) and variable, and a human-readable
//! explanation — plus the inferred [`PredicateSignature`]s and, when a query
//! binding pattern is supplied, the [`AdornmentReport`] the magic-sets
//! rewrite consumes.
//!
//! The pipeline, in order:
//!
//! 1. **safety** ([`crate::safety`]): structural re-validation, existential
//!    (null-generating) heads under a Datalog-only target, singleton
//!    variables.
//! 2. **signatures**: arity/role inference per predicate, duplicate rules,
//!    derived-but-never-read predicates, underivable predicates (no
//!    derivation bottoms out in the EDB), head predicates colliding with
//!    known extensional relations, arity conflicts against a known schema.
//! 3. **wardedness** ([`crate::wardedness`]): one diagnostic per dangerous
//!    variable of every unwarded TGD, naming the candidate wards that failed
//!    and why.
//! 4. **recursion/stratification** ([`crate::stratify`],
//!    [`crate::predicate_graph`]): the formalism is negation-free, so every
//!    program stratifies; the analogue of a negative cycle is **existential
//!    recursion** — a null-generating rule whose head lies on a predicate-
//!    graph cycle — reported with the actual cycle path.
//! 5. **piece-wise linearity** ([`crate::pwl`]): TGDs with more than one
//!    recursive body atom.
//! 6. **plan** ([`vadalog_model::JoinSpec`] dry-runs): bodies whose join
//!    graph is disconnected (unavoidable cross products) and bodies where
//!    the static planner finds no bound probe position in textual order and
//!    falls back to streaming.
//! 7. **adornment** ([`crate::adornment`]): bound/free SIP propagation from
//!    the query's binding pattern, reporting demand-restricted predicates.
//!
//! The error-code table lives in the [crate docs](crate).

use crate::adornment::{adorn_query, AdornmentReport};
use crate::predicate_graph::PredicateGraph;
use crate::pwl::check_pwl;
use crate::safety::check_safety;
use crate::stratify::{stratify, Stratification};
use crate::wardedness::check_wardedness;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use vadalog_model::parser::parse_rules;
use vadalog_model::{
    display_variables, AtomSpan, ConjunctiveQuery, Instance, JoinSpec, Predicate, Program, Variable,
};

/// Diagnostic severity, ordered `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: a property worth knowing, never a defect.
    Info,
    /// Suspicious but admissible; logged and counted by the service.
    Warning,
    /// A defect: fail-closed admission rejects the program.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

impl std::str::FromStr for Severity {
    type Err = String;

    fn from_str(s: &str) -> Result<Severity, String> {
        match s {
            "info" => Ok(Severity::Info),
            "warning" => Ok(Severity::Warning),
            "error" => Ok(Severity::Error),
            other => Err(format!("unknown severity `{other}`")),
        }
    }
}

/// Stable diagnostic codes. The numeric code (`VLG0xx`) never changes
/// meaning across releases; new checks get new codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagnosticCode {
    /// `VLG001` — the program text does not parse, a predicate is used with
    /// conflicting arities, or a TGD is structurally invalid.
    InvalidProgram,
    /// `VLG002` — a null-generating (existential-head) rule under a
    /// Datalog-only target engine.
    NonDatalogRule,
    /// `VLG003` — a named variable occurring exactly once in its rule
    /// (potential typo; prefix with `_` to silence).
    SingletonVariable,
    /// `VLG004` — a dangerous variable with no ward (Definition 3.1).
    WardViolation,
    /// `VLG005` — a TGD with more than one recursive body atom (not
    /// piece-wise linear, Definition 4.1).
    NonPiecewiseLinear,
    /// `VLG006` — a null-generating rule whose head lies on a predicate-
    /// graph cycle (existential recursion; the negation-free analogue of a
    /// negative cycle).
    ExistentialRecursion,
    /// `VLG007` — a rule alpha-equivalent to an earlier rule.
    DuplicateRule,
    /// `VLG008` — a derived predicate no rule body reads (often the
    /// intended output, hence Info).
    UnreadPredicate,
    /// `VLG009` — a predicate with no derivation bottoming out in the EDB
    /// (every rule for it depends on itself, or an unknown body predicate
    /// under a known schema).
    UnderivablePredicate,
    /// `VLG010` — a head predicate colliding with a known extensional
    /// relation (an error under a Datalog-only/service target: rules would
    /// write into an ingest-owned relation).
    EdbCollision,
    /// `VLG011` — a body whose join graph is disconnected: an unavoidable
    /// cross product.
    CrossProduct,
    /// `VLG012` — the static planner finds no bound probe position for some
    /// atom in textual order and falls back to adaptive streaming.
    PlannerFallback,
    /// `VLG013` — a predicate every reachable adornment of which has at
    /// least one bound position: demand-restricted (magic sets can prune it).
    DemandRestricted,
    /// `VLG014` — a predicate reached with an all-free adornment: demand
    /// propagation cannot restrict it.
    UnrestrictedDemand,
}

impl DiagnosticCode {
    /// Every code, in numeric order.
    pub const ALL: [DiagnosticCode; 14] = [
        DiagnosticCode::InvalidProgram,
        DiagnosticCode::NonDatalogRule,
        DiagnosticCode::SingletonVariable,
        DiagnosticCode::WardViolation,
        DiagnosticCode::NonPiecewiseLinear,
        DiagnosticCode::ExistentialRecursion,
        DiagnosticCode::DuplicateRule,
        DiagnosticCode::UnreadPredicate,
        DiagnosticCode::UnderivablePredicate,
        DiagnosticCode::EdbCollision,
        DiagnosticCode::CrossProduct,
        DiagnosticCode::PlannerFallback,
        DiagnosticCode::DemandRestricted,
        DiagnosticCode::UnrestrictedDemand,
    ];

    /// The stable wire code, e.g. `"VLG004"`.
    pub const fn code(self) -> &'static str {
        match self {
            DiagnosticCode::InvalidProgram => "VLG001",
            DiagnosticCode::NonDatalogRule => "VLG002",
            DiagnosticCode::SingletonVariable => "VLG003",
            DiagnosticCode::WardViolation => "VLG004",
            DiagnosticCode::NonPiecewiseLinear => "VLG005",
            DiagnosticCode::ExistentialRecursion => "VLG006",
            DiagnosticCode::DuplicateRule => "VLG007",
            DiagnosticCode::UnreadPredicate => "VLG008",
            DiagnosticCode::UnderivablePredicate => "VLG009",
            DiagnosticCode::EdbCollision => "VLG010",
            DiagnosticCode::CrossProduct => "VLG011",
            DiagnosticCode::PlannerFallback => "VLG012",
            DiagnosticCode::DemandRestricted => "VLG013",
            DiagnosticCode::UnrestrictedDemand => "VLG014",
        }
    }

    /// Parses a wire code back into the enum.
    pub fn parse(code: &str) -> Option<DiagnosticCode> {
        DiagnosticCode::ALL.into_iter().find(|c| c.code() == code)
    }
}

impl fmt::Display for DiagnosticCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One structured finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: DiagnosticCode,
    /// The severity the analyzer assigned under its options.
    pub severity: Severity,
    /// Index of the offending TGD in the program, when rule-scoped.
    pub tgd: Option<usize>,
    /// The offending body/head atom, when atom-scoped.
    pub atom: Option<AtomSpan>,
    /// The offending variable, when variable-scoped.
    pub variable: Option<Variable>,
    /// The predicate the finding is about, when predicate-scoped.
    pub predicate: Option<Predicate>,
    /// Human-readable explanation (one line; variable and predicate names
    /// render through the symbol interner, never debug formatting).
    pub message: String,
}

impl Diagnostic {
    fn new(code: DiagnosticCode, severity: Severity, message: String) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            tgd: None,
            atom: None,
            variable: None,
            predicate: None,
            message,
        }
    }

    fn at_tgd(mut self, tgd: usize) -> Diagnostic {
        self.tgd = Some(tgd);
        self
    }

    fn at_atom(mut self, span: AtomSpan) -> Diagnostic {
        self.atom = Some(span);
        self
    }

    fn on_variable(mut self, v: Variable) -> Diagnostic {
        self.variable = Some(v);
        self
    }

    fn on_predicate(mut self, p: Predicate) -> Diagnostic {
        self.predicate = Some(p);
        self
    }
}

impl fmt::Display for Diagnostic {
    /// One line: `VLG004 error tgd=1 atom=body[0] var=Y pred=t :: message`.
    /// Optional spans are omitted; the service's protocol module parses this
    /// form back field-for-field.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code, self.severity)?;
        if let Some(tgd) = self.tgd {
            write!(f, " tgd={tgd}")?;
        }
        if let Some(atom) = self.atom {
            write!(f, " atom={atom}")?;
        }
        if let Some(v) = self.variable {
            write!(f, " var={}", v.name())?;
        }
        if let Some(p) = self.predicate {
            write!(f, " pred={}", p.name())?;
        }
        write!(f, " :: {}", self.message)
    }
}

/// A predicate's role in the program, as inferred by the signature pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredicateRole {
    /// Never occurs in a head: fed by the database.
    Extensional,
    /// Occurs in some head: derived by rules.
    Intensional,
}

/// The inferred signature of one schema predicate.
#[derive(Debug, Clone)]
pub struct PredicateSignature {
    /// The predicate.
    pub predicate: Predicate,
    /// Its (consistent) arity.
    pub arity: usize,
    /// Extensional or intensional.
    pub role: PredicateRole,
    /// Indexes of the rules deriving it (empty for EDB predicates).
    pub defining_rules: Vec<usize>,
    /// Indexes of the rules reading it in their body.
    pub reading_rules: Vec<usize>,
    /// Whether some derivation of it bottoms out in the EDB.
    pub derivable: bool,
}

/// Options steering severities and context-dependent passes.
#[derive(Debug, Clone, Default)]
pub struct AnalyzerOptions {
    /// The target engine evaluates plain Datalog only: null-generating
    /// rules ([`DiagnosticCode::NonDatalogRule`]) and EDB collisions
    /// ([`DiagnosticCode::EdbCollision`]) become errors instead of being
    /// tolerated/warned.
    pub require_datalog: bool,
    /// Relations known to be extensional in the deployment context (e.g.
    /// the live service's ingest-fed relations). Candidate heads colliding
    /// with these raise [`DiagnosticCode::EdbCollision`], and — when
    /// non-empty — underivability is judged against exactly this EDB.
    pub known_edb: BTreeSet<Predicate>,
    /// Known arities (e.g. the serving schema): predicates used with a
    /// different arity raise [`DiagnosticCode::InvalidProgram`].
    pub known_arities: BTreeMap<Predicate, usize>,
    /// A query whose binding pattern seeds the adornment pass.
    pub query: Option<ConjunctiveQuery>,
}

/// The analyzer's output: diagnostics plus the structures other passes and
/// future rewrites (magic sets) consume.
#[derive(Debug, Clone, Default)]
pub struct DiagnosticReport {
    /// All findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
    /// Inferred per-predicate signatures, sorted by predicate.
    pub signatures: Vec<PredicateSignature>,
    /// The adornment analysis, when a query was supplied.
    pub adornment: Option<AdornmentReport>,
}

impl DiagnosticReport {
    /// `true` iff any finding has Error severity.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Number of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// The findings carrying a given code.
    pub fn with_code(&self, code: DiagnosticCode) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// `true` iff a fail-closed admission gate would accept the program.
    pub fn admissible(&self) -> bool {
        !self.has_errors()
    }
}

/// Runs the full pipeline with default options.
pub fn analyze(program: &Program) -> DiagnosticReport {
    analyze_with(program, &AnalyzerOptions::default())
}

/// Parses `source` as rules and analyzes the result; a parse or load error
/// becomes a single [`DiagnosticCode::InvalidProgram`] finding, so callers
/// (the `VALIDATE` verb, the lint CLI) always get a report.
pub fn analyze_source(
    source: &str,
    options: &AnalyzerOptions,
) -> (Option<Program>, DiagnosticReport) {
    match parse_rules(source) {
        Ok(program) => {
            let report = analyze_with(&program, options);
            (Some(program), report)
        }
        Err(error) => {
            let report = DiagnosticReport {
                diagnostics: vec![Diagnostic::new(
                    DiagnosticCode::InvalidProgram,
                    Severity::Error,
                    error.to_string(),
                )],
                signatures: Vec::new(),
                adornment: None,
            };
            (None, report)
        }
    }
}

/// Runs the full pipeline under explicit options.
pub fn analyze_with(program: &Program, options: &AnalyzerOptions) -> DiagnosticReport {
    let mut diagnostics = Vec::new();

    // Shared context, computed once.
    let graph = PredicateGraph::new(program);
    let stratification = stratify(program);

    // Pass 1: safety / range restriction.
    diagnostics.extend(check_safety(program, options));

    // Pass 2: predicate signatures.
    let signatures = signature_pass(program, options, &mut diagnostics);

    // Pass 3: wardedness.
    wardedness_pass(program, &mut diagnostics);

    // Pass 4: recursion / stratification.
    recursion_pass(program, &graph, &stratification, &mut diagnostics);

    // Pass 5: piece-wise linearity.
    pwl_pass(program, &graph, &mut diagnostics);

    // Pass 6: plan-level dry runs.
    plan_pass(program, &mut diagnostics);

    // Pass 7: adornment.
    let adornment = options.query.as_ref().map(|query| {
        let report = adorn_query(program, query);
        adornment_pass(&report, &mut diagnostics);
        report
    });

    DiagnosticReport {
        diagnostics,
        signatures,
        adornment,
    }
}

/// Alpha-equivalence key of a rule: predicates plus variables numbered by
/// first occurrence (body before head, atom order preserved). Two rules
/// with the same key are the same rule up to variable names.
type RuleKey = Vec<(Predicate, Vec<usize>)>;

fn rule_key(tgd: &vadalog_model::Tgd) -> RuleKey {
    let mut numbering: BTreeMap<Variable, usize> = BTreeMap::new();
    let mut key = Vec::with_capacity(tgd.body.len() + tgd.head.len());
    for atom in tgd.body.iter().chain(tgd.head.iter()) {
        let mut args = Vec::with_capacity(atom.terms.len());
        for term in &atom.terms {
            // TGDs are constant-free (`Tgd::validate`), so every term is a
            // variable.
            if let vadalog_model::Term::Var(v) = term {
                let next = numbering.len();
                args.push(*numbering.entry(*v).or_insert(next));
            }
        }
        key.push((atom.predicate, args));
    }
    key
}

fn signature_pass(
    program: &Program,
    options: &AnalyzerOptions,
    diagnostics: &mut Vec<Diagnostic>,
) -> Vec<PredicateSignature> {
    let idb = program.intensional_predicates();

    // Known-schema arity conflicts.
    for p in program.schema() {
        if let (Some(&known), Some(actual)) = (options.known_arities.get(&p), program.arity_of(p)) {
            if known != actual {
                diagnostics.push(
                    Diagnostic::new(
                        DiagnosticCode::InvalidProgram,
                        Severity::Error,
                        format!(
                            "predicate {} is used with arity {actual} but the serving schema \
                             declares arity {known}",
                            p.name()
                        ),
                    )
                    .on_predicate(p),
                );
            }
        }
    }

    // Duplicate rules (alpha-equivalent, same atom order).
    let mut seen: BTreeMap<RuleKey, usize> = BTreeMap::new();
    for (i, tgd) in program.iter() {
        match seen.get(&rule_key(tgd)) {
            Some(&first) => diagnostics.push(
                Diagnostic::new(
                    DiagnosticCode::DuplicateRule,
                    Severity::Warning,
                    format!("rule {i} `{tgd}` duplicates rule {first} up to variable renaming"),
                )
                .at_tgd(i),
            ),
            None => {
                seen.insert(rule_key(tgd), i);
            }
        }
    }

    // Derivability fixpoint. With a known EDB the base is exactly that set;
    // otherwise every predicate that never occurs in a head is presumed
    // extensional.
    let strict = !options.known_edb.is_empty();
    let mut derivable: BTreeSet<Predicate> = if strict {
        options.known_edb.clone()
    } else {
        program.extensional_predicates()
    };
    loop {
        let before = derivable.len();
        for (_, tgd) in program.iter() {
            if tgd.body_predicates().iter().all(|b| derivable.contains(b)) {
                derivable.extend(tgd.head_predicates());
            }
        }
        if derivable.len() == before {
            break;
        }
    }

    let mut signatures = Vec::new();
    for p in program.schema() {
        let defining_rules: Vec<usize> = program
            .iter()
            .filter(|(_, t)| t.head_predicates().contains(&p))
            .map(|(i, _)| i)
            .collect();
        let reading_rules: Vec<usize> = program
            .iter()
            .filter(|(_, t)| t.body_predicates().contains(&p))
            .map(|(i, _)| i)
            .collect();
        let is_idb = idb.contains(&p);
        let is_derivable = derivable.contains(&p);

        if is_idb && reading_rules.is_empty() {
            diagnostics.push(
                Diagnostic::new(
                    DiagnosticCode::UnreadPredicate,
                    Severity::Info,
                    format!(
                        "derived predicate {} is never read by a rule body (the intended \
                         output, or dead rules)",
                        p.name()
                    ),
                )
                .on_predicate(p),
            );
        }
        if !is_derivable {
            let message = if is_idb {
                format!(
                    "predicate {} is underivable: every rule for it depends (transitively) \
                     on itself — no derivation bottoms out in the EDB",
                    p.name()
                )
            } else {
                format!(
                    "body predicate {} is neither extensional in the known schema nor \
                     derived by any rule — atoms over it can never match",
                    p.name()
                )
            };
            diagnostics.push(
                Diagnostic::new(
                    DiagnosticCode::UnderivablePredicate,
                    Severity::Warning,
                    message,
                )
                .on_predicate(p)
                .at_tgd(
                    defining_rules
                        .first()
                        .or(reading_rules.first())
                        .copied()
                        .unwrap_or(0),
                ),
            );
        }
        if is_idb && options.known_edb.contains(&p) {
            let severity = if options.require_datalog {
                Severity::Error
            } else {
                Severity::Warning
            };
            diagnostics.push(
                Diagnostic::new(
                    DiagnosticCode::EdbCollision,
                    severity,
                    format!(
                        "head predicate {} collides with an extensional relation of the \
                         deployment: rules would write into an ingest-owned relation",
                        p.name()
                    ),
                )
                .on_predicate(p)
                .at_tgd(defining_rules.first().copied().unwrap_or(0)),
            );
        }

        signatures.push(PredicateSignature {
            predicate: p,
            arity: program.arity_of(p).unwrap_or(0),
            role: if is_idb {
                PredicateRole::Intensional
            } else {
                PredicateRole::Extensional
            },
            defining_rules,
            reading_rules,
            derivable: is_derivable,
        });
    }
    signatures
}

fn wardedness_pass(program: &Program, diagnostics: &mut Vec<Diagnostic>) {
    let report = check_wardedness(program);
    for tgd_report in &report.per_tgd {
        if tgd_report.warded {
            continue;
        }
        let tgd = &program.tgds()[tgd_report.tgd_index];
        let candidates = tgd_report
            .failed_candidates
            .iter()
            .map(|c| {
                let atom = &tgd.body[c.atom_index];
                if !c.missing.is_empty() {
                    format!("{atom} misses {}", display_variables(&c.missing))
                } else {
                    format!(
                        "{atom} shares non-harmless {} with the rest of the body",
                        display_variables(&c.blocking)
                    )
                }
            })
            .collect::<Vec<_>>()
            .join("; ");
        for &dangerous in &tgd_report.dangerous {
            diagnostics.push(
                Diagnostic::new(
                    DiagnosticCode::WardViolation,
                    Severity::Error,
                    format!(
                        "dangerous variable {} has no ward: every candidate fails \
                         ({candidates})",
                        dangerous.name()
                    ),
                )
                .at_tgd(tgd_report.tgd_index)
                .on_variable(dangerous),
            );
        }
    }
}

fn recursion_pass(
    program: &Program,
    graph: &PredicateGraph,
    stratification: &Stratification,
    diagnostics: &mut Vec<Diagnostic>,
) {
    let wardedness = check_wardedness(program);
    for (i, tgd) in program.iter() {
        if tgd.is_full() {
            continue;
        }
        for (hi, head) in tgd.head.iter().enumerate() {
            let h = head.predicate;
            let Some(feedback) = tgd
                .body_predicates()
                .into_iter()
                .find(|&b| graph.mutually_recursive(b, h))
            else {
                continue;
            };
            let cycle = graph
                .cycle_between(h, feedback)
                .map(|path| {
                    path.iter()
                        .map(|p| p.name())
                        .collect::<Vec<_>>()
                        .join(" -> ")
                })
                .unwrap_or_else(|| h.name().to_string());
            let warded = wardedness.per_tgd[i].warded;
            let (severity, verdict) = if warded {
                (Severity::Info, "termination is guaranteed by wardedness")
            } else {
                (
                    Severity::Warning,
                    "the chase may not terminate (the rule is also unwarded)",
                )
            };
            let stratum = stratification
                .stratum_of(h)
                .map(|s| format!("stratum {s}"))
                .unwrap_or_else(|| "no stratum".to_string());
            diagnostics.push(
                Diagnostic::new(
                    DiagnosticCode::ExistentialRecursion,
                    severity,
                    format!(
                        "null-generating rule feeds its own input through the cycle \
                         {cycle} ({stratum}); {verdict}",
                    ),
                )
                .at_tgd(i)
                .at_atom(AtomSpan::head(hi))
                .on_predicate(h),
            );
        }
    }
}

fn pwl_pass(program: &Program, graph: &PredicateGraph, diagnostics: &mut Vec<Diagnostic>) {
    let report = check_pwl(program, graph);
    for tgd_report in report.violations() {
        let tgd = &program.tgds()[tgd_report.tgd_index];
        let atoms = tgd_report
            .recursive_body_atoms
            .iter()
            .map(|&ai| tgd.body[ai].to_string())
            .collect::<Vec<_>>()
            .join(", ");
        diagnostics.push(
            Diagnostic::new(
                DiagnosticCode::NonPiecewiseLinear,
                Severity::Warning,
                format!(
                    "{} body atoms are mutually recursive with the head ({atoms}): the \
                     rule is not piece-wise linear, so the space bound of Theorem 4.8 \
                     does not apply",
                    tgd_report.recursive_body_atoms.len()
                ),
            )
            .at_tgd(tgd_report.tgd_index)
            .at_atom(AtomSpan::body(tgd_report.recursive_body_atoms[0])),
        );
    }
}

fn plan_pass(program: &Program, diagnostics: &mut Vec<Diagnostic>) {
    // A schema-shaped empty instance: every relation present with its
    // correct arity, so the planner's missing-relation placeholder (an
    // estimate-zero scan) cannot masquerade as a real plan choice.
    let mut dry = Instance::new();
    for p in program.schema() {
        if let Some(arity) = program.arity_of(p).filter(|&a| a > 0) {
            let _ = dry.insert_batch(p, arity, &[]);
        }
    }

    for (i, tgd) in program.iter() {
        if tgd.body.len() < 2 || tgd.body.iter().any(|a| a.arity() == 0) {
            continue;
        }

        // Structural check: connected components of the atom/shared-variable
        // graph. More than one component means an unavoidable cross product.
        let vars: Vec<BTreeSet<Variable>> = tgd
            .body
            .iter()
            .map(|a| a.variables().into_iter().collect())
            .collect();
        let mut component: Vec<usize> = (0..tgd.body.len()).collect();
        loop {
            let mut changed = false;
            for a in 0..tgd.body.len() {
                for b in a + 1..tgd.body.len() {
                    if component[a] != component[b] && !vars[a].is_disjoint(&vars[b]) {
                        let merged = component[a].min(component[b]);
                        let from = component[a].max(component[b]);
                        for c in component.iter_mut() {
                            if *c == from {
                                *c = merged;
                            }
                        }
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let roots: BTreeSet<usize> = component.iter().copied().collect();
        if roots.len() > 1 {
            let groups = roots
                .iter()
                .map(|&r| {
                    let members: Vec<String> = component
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c == r)
                        .map(|(ai, _)| tgd.body[ai].to_string())
                        .collect();
                    format!("{{{}}}", members.join(", "))
                })
                .collect::<Vec<_>>()
                .join(" x ");
            diagnostics.push(
                Diagnostic::new(
                    DiagnosticCode::CrossProduct,
                    Severity::Warning,
                    format!(
                        "the body joins {} variable-disjoint groups ({groups}): an \
                         unavoidable cross product",
                        roots.len()
                    ),
                )
                .at_tgd(i)
                .at_atom(AtomSpan::body(0)),
            );
            continue;
        }

        // Plan-level check: with every relation empty the planner's
        // estimates all tie, so plan order degenerates to textual order —
        // `prefers_streaming` then means some atom has no bound probe
        // position when reached in textual order.
        let spec = JoinSpec::compile(&tgd.body);
        if spec.plan(&dry, &[]).prefers_streaming() {
            diagnostics.push(
                Diagnostic::new(
                    DiagnosticCode::PlannerFallback,
                    Severity::Info,
                    "the static planner finds no bound probe position for some atom in \
                     textual order and falls back to adaptive streaming; consider \
                     reordering body atoms so each shares a variable with an earlier one"
                        .to_string(),
                )
                .at_tgd(i)
                .at_atom(AtomSpan::body(0)),
            );
        }
    }
}

fn adornment_pass(report: &AdornmentReport, diagnostics: &mut Vec<Diagnostic>) {
    for p in &report.demand_restricted {
        let patterns: Vec<String> = report
            .adorned
            .iter()
            .filter(|a| a.predicate == *p)
            .map(|a| a.pattern.to_string())
            .collect();
        diagnostics.push(
            Diagnostic::new(
                DiagnosticCode::DemandRestricted,
                Severity::Info,
                format!(
                    "predicate {} is demand-restricted under the query (adornments: {}); \
                     a magic-sets rewrite can prune its materialisation",
                    p.name(),
                    patterns.join(", ")
                ),
            )
            .on_predicate(*p),
        );
    }
    for p in &report.unrestricted {
        diagnostics.push(
            Diagnostic::new(
                DiagnosticCode::UnrestrictedDemand,
                Severity::Warning,
                format!(
                    "predicate {} is reached with an all-free adornment: demand \
                     propagation cannot restrict it and the full relation will be \
                     materialised",
                    p.name()
                ),
            )
            .on_predicate(*p),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze_text(text: &str) -> DiagnosticReport {
        let (_, report) = analyze_source(text, &AnalyzerOptions::default());
        report
    }

    fn codes(report: &DiagnosticReport) -> BTreeSet<DiagnosticCode> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_tc_program_has_no_errors() {
        let report = analyze_text("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).");
        assert!(report.admissible(), "{:?}", report.diagnostics);
        assert_eq!(report.count(Severity::Error), 0);
        // t is derived but never read outside its own recursion? It *is*
        // read (second rule body), so no UnreadPredicate either.
        assert!(!codes(&report).contains(&DiagnosticCode::UnreadPredicate));
    }

    #[test]
    fn parse_errors_become_vlg001() {
        let (program, report) = analyze_source("t(X :- edge(X).", &AnalyzerOptions::default());
        assert!(program.is_none());
        assert!(report.has_errors());
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].code, DiagnosticCode::InvalidProgram);
    }

    #[test]
    fn ward_violations_name_variables_and_candidates() {
        let report = analyze_text("r(X, Z) :- p(X).\n t(Y, Y2) :- r(X, Y), r(X2, Y2).");
        let wards = report.with_code(DiagnosticCode::WardViolation);
        assert_eq!(wards.len(), 2, "one diagnostic per dangerous variable");
        let vars: BTreeSet<&str> = wards.iter().map(|d| d.variable.unwrap().name()).collect();
        assert_eq!(vars, BTreeSet::from(["Y", "Y2"]));
        for d in &wards {
            assert_eq!(d.severity, Severity::Error);
            assert_eq!(d.tgd, Some(1));
            assert!(d.message.contains("misses"), "{}", d.message);
            assert!(
                !d.message.contains("Variable("),
                "no debug formatting: {}",
                d.message
            );
        }
    }

    #[test]
    fn existential_recursion_reports_the_cycle() {
        let report = analyze_text("r(X, Z) :- p(X).\n p(Y) :- r(X, Y).");
        let recs = report.with_code(DiagnosticCode::ExistentialRecursion);
        assert_eq!(recs.len(), 1);
        let d = recs[0];
        assert_eq!(d.severity, Severity::Info, "warded: informational");
        assert_eq!(d.tgd, Some(0));
        assert!(
            d.message.contains("r -> p -> r") || d.message.contains("r -> p"),
            "{}",
            d.message
        );
    }

    #[test]
    fn duplicate_rules_are_reported_up_to_renaming() {
        let report = analyze_text(
            "t(X, Y) :- edge(X, Y).\n t(A, B) :- edge(A, B).\n t(X, Z) :- edge(X, Y), t(Y, Z).",
        );
        let dups = report.with_code(DiagnosticCode::DuplicateRule);
        assert_eq!(dups.len(), 1);
        assert_eq!(dups[0].tgd, Some(1));
    }

    #[test]
    fn cross_products_and_planner_fallbacks_are_distinguished() {
        // Disconnected body: cross product.
        let xp = analyze_text("out(X, Y) :- a(X), b(Y).");
        assert_eq!(xp.with_code(DiagnosticCode::CrossProduct).len(), 1);
        assert!(xp.with_code(DiagnosticCode::PlannerFallback).is_empty());

        // Connected body, but textual order visits c(Y) before anything
        // binds Y: planner falls back to streaming.
        let fb = analyze_text("out(X, Y) :- a(X), c(Y), b(X, Y).");
        assert!(fb.with_code(DiagnosticCode::CrossProduct).is_empty());
        assert_eq!(fb.with_code(DiagnosticCode::PlannerFallback).len(), 1);

        // Well-ordered connected body: neither.
        let ok = analyze_text("out(X, Y) :- a(X), b(X, Y), c(Y).");
        assert!(ok.with_code(DiagnosticCode::CrossProduct).is_empty());
        assert!(ok.with_code(DiagnosticCode::PlannerFallback).is_empty());
    }

    #[test]
    fn underivable_and_unread_predicates_are_flagged() {
        let report = analyze_text("p(X) :- p(X).\n q(X) :- e(X).");
        let under = report.with_code(DiagnosticCode::UnderivablePredicate);
        assert_eq!(under.len(), 1);
        assert_eq!(under[0].predicate.unwrap().name(), "p");
        // q is derived but never read.
        let unread: BTreeSet<&str> = report
            .with_code(DiagnosticCode::UnreadPredicate)
            .iter()
            .map(|d| d.predicate.unwrap().name())
            .collect();
        assert!(unread.contains("q"));
    }

    #[test]
    fn service_options_reject_existentials_and_edb_collisions() {
        let options = AnalyzerOptions {
            require_datalog: true,
            known_edb: BTreeSet::from([Predicate::new("edge")]),
            known_arities: BTreeMap::from([(Predicate::new("edge"), 2)]),
            ..AnalyzerOptions::default()
        };
        // Existential head: error under a Datalog-only target.
        let (_, report) = analyze_source("r(X, Z) :- edge(X, Y).", &options);
        assert!(report.has_errors());
        assert_eq!(report.with_code(DiagnosticCode::NonDatalogRule).len(), 1);

        // Head writing into the serving EDB: error.
        let (_, report) = analyze_source("edge(Y, X) :- edge(X, Y).", &options);
        assert!(report.has_errors());
        assert_eq!(report.with_code(DiagnosticCode::EdbCollision).len(), 1);

        // Arity conflict with the serving schema: error.
        let (_, report) = analyze_source("t(X) :- edge(X).", &options);
        assert!(report.has_errors());
        assert!(!report.with_code(DiagnosticCode::InvalidProgram).is_empty());

        // A clean candidate is admissible.
        let (_, report) = analyze_source("t(X, Y) :- edge(X, Y).", &options);
        assert!(report.admissible(), "{:?}", report.diagnostics);
    }

    #[test]
    fn signatures_report_roles_and_rule_sets() {
        let report = analyze_text("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).");
        let t = report
            .signatures
            .iter()
            .find(|s| s.predicate.name() == "t")
            .unwrap();
        assert!(matches!(t.role, PredicateRole::Intensional));
        assert_eq!(t.defining_rules, vec![0, 1]);
        assert_eq!(t.reading_rules, vec![1]);
        assert!(t.derivable);
        let edge = report
            .signatures
            .iter()
            .find(|s| s.predicate.name() == "edge")
            .unwrap();
        assert!(matches!(edge.role, PredicateRole::Extensional));
        assert_eq!(edge.arity, 2);
    }

    #[test]
    fn diagnostics_render_with_spans_and_interned_names() {
        let report = analyze_text("r(X, Z) :- p(X).\n t(Y, Y2) :- r(X, Y), r(X2, Y2).");
        let rendered = report.with_code(DiagnosticCode::WardViolation)[0].to_string();
        assert!(rendered.starts_with("VLG004 error tgd=1"), "{rendered}");
        assert!(rendered.contains(" :: "), "{rendered}");
        assert!(rendered.contains("var=Y"), "{rendered}");
    }
}
