//! Predicate levels ℓΣ (Section 4.2).
//!
//! The level of a predicate `P` is defined by the unique function satisfying
//! `ℓΣ(P) = max{ ℓΣ(R) | (R, P) ∈ pg(Σ), R ∉ rec(P) } + 1` — i.e. mutually
//! recursive predicates share a level, and a predicate sits one level above
//! the highest non-recursive predicate feeding into it. Levels bound the
//! node-width polynomial `f_{WARD∩PWL}` of Theorem 4.8.

use crate::predicate_graph::PredicateGraph;
use std::collections::BTreeMap;
use vadalog_model::{Predicate, Program};

/// The level assignment ℓΣ for every predicate of the schema.
#[derive(Debug, Clone)]
pub struct PredicateLevels {
    levels: BTreeMap<Predicate, usize>,
}

impl PredicateLevels {
    /// Computes predicate levels from the predicate graph.
    pub fn compute(program: &Program, graph: &PredicateGraph) -> PredicateLevels {
        // All predicates of the same cyclic SCC share a level; process SCCs in
        // topological order so that all feeding components are already done.
        let mut scc_level: BTreeMap<usize, usize> = BTreeMap::new();
        let order = graph.sccs_topological();

        // Incoming edges per SCC from *different* SCCs.
        let mut incoming: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (from, to) in graph.edges() {
            let (sf, st) = (
                graph.scc_id(from).expect("edge endpoint in graph"),
                graph.scc_id(to).expect("edge endpoint in graph"),
            );
            if sf != st {
                incoming.entry(st).or_default().push(sf);
            }
        }

        for scc in order {
            let feeding_max = incoming
                .get(&scc)
                .map(|preds| {
                    preds
                        .iter()
                        .map(|p| scc_level.get(p).copied().unwrap_or(0))
                        .max()
                        .unwrap_or(0)
                })
                .unwrap_or(0);
            scc_level.insert(scc, feeding_max + 1);
        }

        let mut levels = BTreeMap::new();
        for &p in graph.predicates() {
            let scc = graph.scc_id(p).expect("predicate in graph");
            levels.insert(p, *scc_level.get(&scc).unwrap_or(&1));
        }
        // Predicates that appear in the program schema but not in the graph
        // cannot exist (the graph is built from the schema), but guard anyway.
        for p in program.schema() {
            levels.entry(p).or_insert(1);
        }
        PredicateLevels { levels }
    }

    /// The level of a predicate (1 for unknown predicates, matching the level
    /// of an extensional predicate with no incoming edges).
    pub fn level_of(&self, p: Predicate) -> usize {
        self.levels.get(&p).copied().unwrap_or(1)
    }

    /// The maximum level over the schema (the paper's
    /// `max_{P ∈ sch(Σ)} ℓΣ(P)`); 1 for an empty program.
    pub fn max_level(&self) -> usize {
        self.levels.values().copied().max().unwrap_or(1)
    }

    /// Iterates over all `(predicate, level)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Predicate, usize)> + '_ {
        self.levels.iter().map(|(p, l)| (*p, *l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_model::parser::parse_rules;

    fn levels_of(src: &str) -> PredicateLevels {
        let program = parse_rules(src).unwrap();
        let graph = PredicateGraph::new(&program);
        PredicateLevels::compute(&program, &graph)
    }

    fn pred(n: &str) -> Predicate {
        Predicate::new(n)
    }

    #[test]
    fn transitive_closure_levels() {
        let levels = levels_of("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).");
        assert_eq!(levels.level_of(pred("edge")), 1);
        assert_eq!(levels.level_of(pred("t")), 2);
        assert_eq!(levels.max_level(), 2);
    }

    #[test]
    fn mutually_recursive_predicates_share_a_level() {
        let levels = levels_of("p(X) :- e(X).\n p(X) :- q(X).\n q(X) :- p(X).");
        assert_eq!(levels.level_of(pred("p")), levels.level_of(pred("q")));
        assert_eq!(levels.level_of(pred("p")), 2);
    }

    #[test]
    fn levels_grow_along_non_recursive_chains() {
        let levels = levels_of("b(X) :- a(X).\n c(X) :- b(X).\n d(X) :- c(X).");
        assert_eq!(levels.level_of(pred("a")), 1);
        assert_eq!(levels.level_of(pred("b")), 2);
        assert_eq!(levels.level_of(pred("c")), 3);
        assert_eq!(levels.level_of(pred("d")), 4);
        assert_eq!(levels.max_level(), 4);
    }

    #[test]
    fn example_3_3_levels_follow_the_dependency_strata() {
        let levels = levels_of(
            "subclassStar(X, Y) :- subclass(X, Y).\n\
             subclassStar(X, Z) :- subclassStar(X, Y), subclass(Y, Z).\n\
             type(X, Z) :- type(X, Y), subclassStar(Y, Z).\n\
             triple(X, Z, W) :- type(X, Y), restriction(Y, Z).\n\
             triple(Z, W, X) :- triple(X, Y, Z), inverse(Y, W).\n\
             type(X, W) :- triple(X, Y, Z), restriction(W, Y).",
        );
        // EDB predicates are level 1, subclassStar level 2, and the mutually
        // recursive {type, triple} component sits above subclassStar.
        assert_eq!(levels.level_of(pred("subclass")), 1);
        assert_eq!(levels.level_of(pred("subclassStar")), 2);
        assert_eq!(
            levels.level_of(pred("type")),
            levels.level_of(pred("triple"))
        );
        assert_eq!(levels.level_of(pred("type")), 3);
        assert_eq!(levels.max_level(), 3);
    }

    #[test]
    fn recursion_does_not_inflate_levels() {
        // A self-recursive predicate over an EDB stays at level 2 regardless
        // of how many recursive rules it has.
        let levels = levels_of(
            "p(X, Y) :- e(X, Y).\n p(X, Y) :- p(X, Z), e(Z, Y).\n p(X, Y) :- e(X, Z), p(Z, Y).",
        );
        assert_eq!(levels.level_of(pred("p")), 2);
    }
}
