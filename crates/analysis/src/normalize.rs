//! Single-head normal form (Section 4.2).
//!
//! The proof-tree machinery of the paper assumes TGDs with a single head
//! atom. A TGD `φ(x̄,ȳ) → ∃z̄ (h₁ ∧ … ∧ hₖ)` with `k > 1` is replaced by
//!
//! ```text
//! φ(x̄,ȳ)          → ∃z̄ auxσ(x̄', z̄)      (x̄' = head variables that are not existential)
//! auxσ(x̄', z̄)     → hᵢ                    for every i ∈ [k]
//! ```
//!
//! where `auxσ` is a fresh predicate holding every variable of the original
//! head. Certain answers over the original schema are preserved (see
//! Calì, Gottlob, Pieris 2012, cited as [11] in the paper).

use vadalog_model::{Atom, ModelError, Predicate, Program, Term, Tgd, Variable};

/// The outcome of normalising a program to single-head TGDs.
#[derive(Debug, Clone)]
pub struct NormalizedProgram {
    /// The rewritten program (every TGD has exactly one head atom).
    pub program: Program,
    /// The auxiliary predicates that were introduced.
    pub auxiliary_predicates: Vec<Predicate>,
}

impl NormalizedProgram {
    /// `true` iff a predicate was introduced by the normalisation.
    pub fn is_auxiliary(&self, p: Predicate) -> bool {
        self.auxiliary_predicates.contains(&p)
    }
}

/// Rewrites `program` into single-head normal form. Programs that are already
/// single-headed are returned unchanged (modulo cloning).
pub fn normalize_single_head(program: &Program) -> Result<NormalizedProgram, ModelError> {
    let mut out = Program::new();
    let mut auxiliary = Vec::new();
    for (index, tgd) in program.iter() {
        if tgd.head.len() == 1 {
            out.add(tgd.clone())?;
            continue;
        }
        // Fresh predicate capturing all head variables (frontier + existential).
        let head_vars: Vec<Variable> = tgd.head_variables();
        let aux_name = format!("aux_head_{index}");
        let aux_pred = Predicate::new(&aux_name);
        auxiliary.push(aux_pred);
        let aux_atom = Atom::new(
            aux_name.as_str(),
            head_vars.iter().map(|v| Term::Var(*v)).collect(),
        );
        out.add(Tgd::new(tgd.body.clone(), vec![aux_atom.clone()])?)?;
        for head_atom in &tgd.head {
            out.add(Tgd::new(vec![aux_atom.clone()], vec![head_atom.clone()])?)?;
        }
    }
    Ok(NormalizedProgram {
        program: out,
        auxiliary_predicates: auxiliary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pwl::is_piecewise_linear;
    use crate::wardedness::is_warded;
    use vadalog_model::parser::parse_rules;

    #[test]
    fn single_head_programs_are_unchanged() {
        let p = parse_rules("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).").unwrap();
        let n = normalize_single_head(&p).unwrap();
        assert_eq!(n.program.len(), 2);
        assert!(n.auxiliary_predicates.is_empty());
    }

    #[test]
    fn multi_head_rules_are_split_through_an_auxiliary_predicate() {
        let p = parse_rules("r(X, Z), s(Z, W) :- p(X).").unwrap();
        let n = normalize_single_head(&p).unwrap();
        // One body→aux rule plus one aux→head rule per original head atom.
        assert_eq!(n.program.len(), 3);
        assert_eq!(n.auxiliary_predicates.len(), 1);
        assert!(n.program.tgds().iter().all(|t| t.head.len() == 1));
        // The auxiliary rule keeps the existential variables existential.
        let first = &n.program.tgds()[0];
        assert_eq!(first.existential_variables().len(), 2); // Z and W
                                                            // The projection rules are full.
        assert!(n.program.tgds()[1].is_full());
        assert!(n.program.tgds()[2].is_full());
    }

    #[test]
    fn normalisation_preserves_wardedness_and_pwl_on_typical_programs() {
        let p = parse_rules("r(X, Z), marked(X) :- p(X).\n p(Y) :- r(X, Y).").unwrap();
        let n = normalize_single_head(&p).unwrap();
        assert!(n.program.tgds().iter().all(|t| t.head.len() == 1));
        assert!(is_warded(&n.program));
        assert!(is_piecewise_linear(&n.program));
    }

    #[test]
    fn shared_frontier_variables_survive_the_split() {
        // Both head atoms mention X; the aux predicate must carry it so that
        // the two projections stay connected.
        let p = parse_rules("a(X, Z), b(X) :- e(X).").unwrap();
        let n = normalize_single_head(&p).unwrap();
        let aux = n.auxiliary_predicates[0];
        let aux_rule = &n.program.tgds()[0];
        assert_eq!(aux_rule.head[0].predicate, aux);
        assert_eq!(aux_rule.head[0].arity(), 2); // X and Z
    }
}
