//! Magic-sets rewrite: demand-driven specialisation of a program for one
//! query binding pattern (pass 8 of the pipeline, consuming the adornment
//! pass's [`AdornmentReport`]).
//!
//! Given a query with at least one bound intensional atom, the rewrite
//! produces an **ordinary Datalog program** the existing stratification /
//! semi-naive / composite-index machinery evaluates unchanged:
//!
//! - one *adorned* copy `p__π` of every reached intensional predicate
//!   `p^π`, defined by the original rules with intensional body atoms
//!   renamed to their own adorned copies;
//! - one *magic* predicate `m__p__π` of arity `π.bound_count()` per
//!   adorned predicate with a bound position, holding the demanded
//!   bindings; every adorned rule whose head pattern has a bound position
//!   is guarded by its magic atom, so it only derives demanded tuples;
//! - a chain of *supplementary* predicates `sup__<rule>__<π>__<i>` per
//!   rule, one per SIP-ordered body split, carrying exactly the bindings
//!   still needed (head variables plus variables of later atoms) from the
//!   prefix `a_1 … a_i` to the rest of the rule — each intensional body
//!   atom's magic rule reads the supplementary atom *before* it, so
//!   demand propagates left to right along the SIP order;
//! - per query, one ground *seed* fact `m__p__π(c̄)` per bound intensional
//!   query atom (the constants at the bound positions). Seeds are **data**,
//!   not rules — TGDs in this codebase are constant-free by construction,
//!   so the query constants enter through the instance, which is also what
//!   makes the per-binding-pattern program cache sound: only the seed facts
//!   change between queries with the same pattern.
//!
//! The rewrite refuses (and the caller falls back to full evaluation) when
//! the program is not plain Datalog, the query has no intensional atom,
//! every intensional query atom is all-free (demand cannot prune
//! anything), or a generated predicate name collides with the schema. The
//! output is positive Datalog, so [`crate::stratify::stratify`] always
//! succeeds on it — recursion through magic predicates stratifies into the
//! same kind of mutually recursive strata the evaluator already handles.

use crate::adornment::{adorn_query, AdornedPredicate, AdornmentReport, BindingPattern};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use vadalog_model::{Atom, ConjunctiveQuery, Predicate, Program, Term, Tgd, Variable};

/// Why a magic-sets rewrite was refused. Callers fall back to full
/// evaluation; the variant is surfaced in diagnostics and STATS-adjacent
/// logging, so each carries enough detail to be actionable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MagicFallback {
    /// The program has non-Datalog TGDs (existentials / multi-atom heads).
    NotDatalog,
    /// No query atom mentions an intensional predicate: the query reads
    /// the database directly and there is nothing to demand.
    NoIntensionalAtom,
    /// Every intensional query atom has the all-free pattern; the rewrite
    /// would demand every tuple anyway.
    AllFree,
    /// A generated predicate name already exists in the schema.
    NameCollision(String),
    /// A supplementary predicate would carry no variables at all.
    EmptySupplementary {
        /// The rule whose SIP split degenerated.
        tgd_index: usize,
    },
    /// The rewritten rule set failed program construction (defensive; the
    /// generated rules are constant-free and arity-consistent by design).
    Construction(String),
}

impl fmt::Display for MagicFallback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MagicFallback::NotDatalog => write!(f, "program is not plain Datalog"),
            MagicFallback::NoIntensionalAtom => {
                write!(f, "query has no intensional atom to demand")
            }
            MagicFallback::AllFree => write!(f, "every intensional query atom is all-free"),
            MagicFallback::NameCollision(name) => {
                write!(f, "generated predicate `{name}` collides with the schema")
            }
            MagicFallback::EmptySupplementary { tgd_index } => {
                write!(
                    f,
                    "rule {tgd_index} yields an empty supplementary predicate"
                )
            }
            MagicFallback::Construction(err) => write!(f, "rewritten program rejected: {err}"),
        }
    }
}

/// The product of a magic-sets rewrite: a demand-specialised program plus
/// the per-query seed facts and renamed query.
///
/// The program, renames and adornment depend only on the query's **binding
/// pattern signature** (which intensional predicates are queried, with
/// which bound/free shape) — [`MagicRewrite::specialise`] re-derives the
/// seed facts and renamed query for any later query with the same
/// signature, which is what the per-pattern specialised-program cache in
/// the Datalog crate relies on.
#[derive(Debug, Clone)]
pub struct MagicRewrite {
    /// The rewritten (magic + supplementary + adorned) rules.
    pub program: Program,
    /// Ground magic seed facts for the concrete query constants. Inserted
    /// as data, never as rules.
    pub seeds: Vec<Atom>,
    /// The query with intensional atoms renamed to their adorned copies.
    pub query: ConjunctiveQuery,
    /// Adorned predicate → its name in the rewritten program.
    pub renames: BTreeMap<AdornedPredicate, Predicate>,
    /// Adorned predicate → its magic predicate (only patterns with at
    /// least one bound position have one).
    pub magic_predicates: BTreeMap<AdornedPredicate, Predicate>,
    /// The adornment fixpoint the rewrite was generated from.
    pub adornment: AdornmentReport,
    /// The intensional predicates of the *original* program (used to
    /// re-specialise later queries).
    idb: BTreeSet<Predicate>,
}

impl MagicRewrite {
    /// Recomputes the seed facts and renamed query for a query with the
    /// same binding-pattern signature as the one this rewrite was built
    /// for. Only the constants differ between such queries, so the cached
    /// program, strata and join plans stay valid; this is the cache-hit
    /// path. Errors if the signature does not match (the caller should
    /// fall back to full evaluation).
    pub fn specialise(
        &self,
        query: &ConjunctiveQuery,
    ) -> Result<(Vec<Atom>, ConjunctiveQuery), String> {
        let mut seeds = Vec::new();
        let mut atoms = Vec::with_capacity(query.atoms.len());
        for atom in &query.atoms {
            if !self.idb.contains(&atom.predicate) {
                atoms.push(atom.clone());
                continue;
            }
            let adorned = AdornedPredicate {
                predicate: atom.predicate,
                pattern: BindingPattern::from_query_atom(atom),
            };
            let renamed = self.renames.get(&adorned).ok_or_else(|| {
                format!("query atom `{atom}` has no adorned copy `{adorned}` in this rewrite")
            })?;
            if let Some(&magic) = self.magic_predicates.get(&adorned) {
                let bound: Vec<Term> = atom
                    .terms
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| adorned.pattern.is_bound(*i))
                    .map(|(_, t)| *t)
                    .collect();
                seeds.push(Atom::new(magic, bound));
            }
            atoms.push(Atom::new(*renamed, atom.terms.clone()));
        }
        Ok((
            seeds,
            ConjunctiveQuery::new_unchecked(query.output.clone(), atoms),
        ))
    }

    /// Every predicate name the rewrite invented (adorned copies, magic
    /// predicates, supplementaries). A served snapshot must not already
    /// contain relations under these names — the demand engine checks.
    pub fn generated_predicates(&self) -> BTreeSet<Predicate> {
        let mut generated: BTreeSet<Predicate> = self.renames.values().copied().collect();
        generated.extend(self.magic_predicates.values().copied());
        generated.extend(
            self.program
                .schema()
                .into_iter()
                .filter(|p| p.name().starts_with("sup__")),
        );
        generated
    }

    /// Human-readable rendering of the whole rewrite — seed facts, rules,
    /// renamed query — for the lint CLI and debugging.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for seed in &self.seeds {
            out.push_str(&format!("{seed}. % seed\n"));
        }
        out.push_str(&self.program.to_string());
        out.push_str(&format!("% query: {}\n", self.query));
        out
    }
}

fn adorned_name(p: Predicate, pattern: &BindingPattern) -> String {
    format!("{}__{}", p.name(), pattern)
}

fn magic_name(p: Predicate, pattern: &BindingPattern) -> String {
    format!("m__{}__{}", p.name(), pattern)
}

fn sup_name(tgd_index: usize, pattern: &BindingPattern, split: usize) -> String {
    format!("sup__{tgd_index}__{pattern}__{split}")
}

/// Checks a generated name against the original schema and interns it.
fn fresh(name: String, schema: &BTreeSet<Predicate>) -> Result<Predicate, MagicFallback> {
    let p = Predicate::new(&name);
    if schema.contains(&p) {
        return Err(MagicFallback::NameCollision(name));
    }
    Ok(p)
}

/// The binding-pattern signature of a query against a program: the sorted
/// (predicate, pattern) pairs of its intensional atoms. Two queries with
/// equal signatures share one specialised program — this is the cache key
/// of the demand engine. Empty iff the query has no intensional atom.
pub fn demand_signature(
    program: &Program,
    query: &ConjunctiveQuery,
) -> Vec<(Predicate, BindingPattern)> {
    let idb = program.intensional_predicates();
    let mut signature: Vec<(Predicate, BindingPattern)> = query
        .atoms
        .iter()
        .filter(|a| idb.contains(&a.predicate))
        .map(|a| (a.predicate, BindingPattern::from_query_atom(a)))
        .collect();
    signature.sort();
    signature.dedup();
    signature
}

/// Rewrites `program` for demand-driven evaluation of `query`.
///
/// See the module docs for the construction. On success the returned
/// program is positive Datalog over the original extensional predicates
/// plus the generated adorned / magic / supplementary predicates; seed
/// facts plus the extensional data are a complete input for evaluating the
/// renamed query with answers identical to full evaluation.
pub fn magic_rewrite(
    program: &Program,
    query: &ConjunctiveQuery,
) -> Result<MagicRewrite, MagicFallback> {
    if !program.is_datalog() {
        return Err(MagicFallback::NotDatalog);
    }
    let idb = program.intensional_predicates();
    if !query.atoms.iter().any(|a| idb.contains(&a.predicate)) {
        return Err(MagicFallback::NoIntensionalAtom);
    }
    let adornment = adorn_query(program, query);
    if adornment.seeds.iter().all(|s| s.pattern.is_all_free()) {
        return Err(MagicFallback::AllFree);
    }
    let schema = program.schema();

    // Name every adorned copy and every magic predicate up front.
    let mut renames = BTreeMap::new();
    let mut magic_predicates = BTreeMap::new();
    for adorned in &adornment.adorned {
        renames.insert(
            adorned.clone(),
            fresh(adorned_name(adorned.predicate, &adorned.pattern), &schema)?,
        );
        if !adorned.pattern.is_all_free() {
            magic_predicates.insert(
                adorned.clone(),
                fresh(magic_name(adorned.predicate, &adorned.pattern), &schema)?,
            );
        }
    }

    let mut rewritten = Program::new();
    let mut add = |body: Vec<Atom>, head: Atom| -> Result<(), MagicFallback> {
        let tgd =
            Tgd::new(body, vec![head]).map_err(|e| MagicFallback::Construction(e.to_string()))?;
        rewritten
            .add(tgd)
            .map_err(|e| MagicFallback::Construction(e.to_string()))
    };

    for ra in &adornment.rules {
        let tgd = &program.tgds()[ra.tgd_index];
        let head_atom = &tgd.head[0];
        let head_pattern = &ra.head.pattern;
        let adorned_head = Atom::new(renames[&ra.head], head_atom.terms.clone());

        // Demand guard: the rule only fires for demanded head bindings.
        let guard = magic_predicates.get(&ra.head).map(|&magic| {
            let bound: Vec<Term> = head_atom
                .terms
                .iter()
                .enumerate()
                .filter(|(i, _)| head_pattern.is_bound(*i))
                .map(|(_, t)| *t)
                .collect();
            Atom::new(magic, bound)
        });

        // Walk the SIP order, threading the binding prefix through a chain
        // of supplementary atoms.
        let mut chain: Option<Atom> = guard;
        let splits = ra.body.len();
        for (step, aa) in ra.body.iter().enumerate() {
            let original = &tgd.body[aa.atom_index];
            let atom = if aa.intensional {
                let key = AdornedPredicate {
                    predicate: aa.predicate,
                    pattern: aa.pattern.clone(),
                };
                Atom::new(renames[&key], original.terms.clone())
            } else {
                original.clone()
            };

            // A demanded intensional atom gets a magic rule: its bound
            // arguments are exactly the bindings the prefix carries.
            if aa.intensional && !aa.pattern.is_all_free() {
                let key = AdornedPredicate {
                    predicate: aa.predicate,
                    pattern: aa.pattern.clone(),
                };
                let bound: Vec<Term> = original
                    .terms
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| aa.pattern.is_bound(*i))
                    .map(|(_, t)| *t)
                    .collect();
                // A bound position means a bound variable, and rules are
                // constant-free, so some earlier binder (guard or prefix
                // atom) exists and the chain is non-empty here.
                let prefix = chain
                    .clone()
                    .expect("bound atom pattern implies an earlier binder in the SIP order");
                add(vec![prefix], Atom::new(magic_predicates[&key], bound))?;
            }

            if step + 1 == splits {
                let mut body = Vec::new();
                if let Some(prefix) = chain.take() {
                    body.push(prefix);
                }
                body.push(atom);
                add(body, adorned_head.clone())?;
            } else {
                // Supplementary split: keep the variables the rest of the
                // rule (or the head) still needs.
                let available: Vec<Variable> = {
                    let mut seen = BTreeSet::new();
                    chain
                        .iter()
                        .flat_map(|a| a.variables())
                        .chain(atom.variables())
                        .filter(|v| seen.insert(*v))
                        .collect()
                };
                let mut needed: BTreeSet<Variable> = head_atom.variables().into_iter().collect();
                for later in &ra.body[step + 1..] {
                    needed.extend(tgd.body[later.atom_index].variables());
                }
                let mut keep: Vec<Variable> = available
                    .iter()
                    .filter(|v| needed.contains(v))
                    .copied()
                    .collect();
                if keep.is_empty() {
                    // Degenerate (cross-product) split: carry everything
                    // rather than invent a 0-ary predicate.
                    keep = available;
                }
                if keep.is_empty() {
                    return Err(MagicFallback::EmptySupplementary {
                        tgd_index: ra.tgd_index,
                    });
                }
                let sup = fresh(sup_name(ra.tgd_index, head_pattern, step + 1), &schema)?;
                let sup_atom = Atom::new(sup, keep.into_iter().map(Term::Var).collect());
                let mut body = Vec::new();
                if let Some(prefix) = chain.take() {
                    body.push(prefix);
                }
                body.push(atom);
                add(body, sup_atom.clone())?;
                chain = Some(sup_atom);
            }
        }
    }

    let mut rewrite = MagicRewrite {
        program: rewritten,
        seeds: Vec::new(),
        query: query.clone(),
        renames,
        magic_predicates,
        adornment,
        idb,
    };
    let (seeds, renamed) = rewrite
        .specialise(query)
        .map_err(MagicFallback::Construction)?;
    rewrite.seeds = seeds;
    rewrite.query = renamed;
    Ok(rewrite)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stratify::stratify;
    use vadalog_model::parser::{parse_query, parse_rules};

    const TC: &str = "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).";

    #[test]
    fn bound_tc_query_generates_magic_and_supplementary_rules() {
        let program = parse_rules(TC).unwrap();
        let query = parse_query("?(Y) :- t(a, Y).").unwrap();
        let rewrite = magic_rewrite(&program, &query).unwrap();

        // One seed fact carrying the constant.
        assert_eq!(rewrite.seeds.len(), 1);
        assert_eq!(rewrite.seeds[0].to_string(), "m__t__bf(a)");
        // The renamed query reads the adorned copy.
        assert_eq!(rewrite.query.atoms[0].predicate.name(), "t__bf");

        let rendered = rewrite.render();
        // Base rule guarded by the magic atom.
        assert!(
            rendered.contains("t__bf(X, Y) :- m__t__bf(X), edge(X, Y)"),
            "{rendered}"
        );
        // The recursive rule splits at the supplementary and feeds demand
        // back into the magic predicate.
        assert!(rendered.contains("sup__1__bf__1"), "{rendered}");
        assert!(
            rendered.contains("m__t__bf(Y) :- sup__1__bf__1"),
            "{rendered}"
        );

        // The rewrite is ordinary positive Datalog: it stratifies, and the
        // magic/adorned/supplementary predicates land in strata.
        assert!(rewrite.program.is_datalog());
        let strat = stratify(&rewrite.program);
        assert!(!strat.is_empty());
        assert!(strat.stratum_of(Predicate::new("t__bf")).is_some());
        assert!(strat.stratum_of(Predicate::new("m__t__bf")).is_some());
    }

    #[test]
    fn all_free_query_falls_back() {
        let program = parse_rules(TC).unwrap();
        let query = parse_query("?(X, Y) :- t(X, Y).").unwrap();
        assert!(matches!(
            magic_rewrite(&program, &query),
            Err(MagicFallback::AllFree)
        ));
    }

    #[test]
    fn edb_only_query_falls_back() {
        let program = parse_rules(TC).unwrap();
        let query = parse_query("?(Y) :- edge(a, Y).").unwrap();
        assert!(matches!(
            magic_rewrite(&program, &query),
            Err(MagicFallback::NoIntensionalAtom)
        ));
    }

    #[test]
    fn schema_collisions_fall_back() {
        let program = parse_rules(
            "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).\n\
             keep(X) :- t__bf(X, X).",
        )
        .unwrap();
        let query = parse_query("?(Y) :- t(a, Y).").unwrap();
        assert!(matches!(
            magic_rewrite(&program, &query),
            Err(MagicFallback::NameCollision(name)) if name == "t__bf"
        ));
    }

    #[test]
    fn specialise_rebinds_constants_without_rebuilding() {
        let program = parse_rules(TC).unwrap();
        let rewrite = magic_rewrite(&program, &parse_query("?(Y) :- t(a, Y).").unwrap()).unwrap();
        let (seeds, renamed) = rewrite
            .specialise(&parse_query("?(Y) :- t(q17, Y).").unwrap())
            .unwrap();
        assert_eq!(seeds.len(), 1);
        assert_eq!(seeds[0].to_string(), "m__t__bf(q17)");
        assert_eq!(renamed.atoms[0].predicate.name(), "t__bf");
        // A different pattern is a different cache entry, not a respecialise.
        assert!(rewrite
            .specialise(&parse_query("? :- t(a, b).").unwrap())
            .is_err());
    }

    #[test]
    fn demand_signature_is_constant_insensitive() {
        let program = parse_rules(TC).unwrap();
        let a = demand_signature(&program, &parse_query("?(Y) :- t(a, Y).").unwrap());
        let b = demand_signature(&program, &parse_query("?(Y) :- t(zz, Y).").unwrap());
        let c = demand_signature(&program, &parse_query("? :- t(a, b).").unwrap());
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].1.to_string(), "bf");
        let edb = demand_signature(&program, &parse_query("?(Y) :- edge(a, Y).").unwrap());
        assert!(edb.is_empty());
    }

    #[test]
    fn point_query_binds_both_positions() {
        let program = parse_rules(TC).unwrap();
        let query = parse_query("? :- t(a, b).").unwrap();
        let rewrite = magic_rewrite(&program, &query).unwrap();
        assert_eq!(rewrite.seeds[0].to_string(), "m__t__bb(a, b)");
        assert!(rewrite.render().contains("t__bb"), "{}", rewrite.render());
    }
}
