//! Stratification of a program by its recursive components.
//!
//! The engine of Section 7 materialises intermediate results at the
//! boundaries of the strata induced by piece-wise linearity; the Datalog
//! engine evaluates stratum by stratum with semi-naive iteration. A stratum
//! is a strongly connected component of the predicate graph together with the
//! rules whose head belongs to it, and strata are ordered topologically.

use crate::predicate_graph::PredicateGraph;
use std::collections::BTreeSet;
use vadalog_model::{Predicate, Program};

/// A single stratum: a set of head predicates evaluated together, plus the
/// indexes of the rules defining them.
#[derive(Debug, Clone)]
pub struct Stratum {
    /// The (mutually recursive) predicates defined in this stratum.
    pub predicates: BTreeSet<Predicate>,
    /// Indexes (into the program) of the TGDs whose head predicate belongs to
    /// this stratum.
    pub rules: Vec<usize>,
    /// `true` iff the stratum is recursive (its predicates lie on a cycle).
    pub recursive: bool,
}

/// A stratification: strata in bottom-up evaluation order.
#[derive(Debug, Clone)]
pub struct Stratification {
    /// The strata, bottom-up.
    pub strata: Vec<Stratum>,
}

impl Stratification {
    /// Number of strata (only counting strata that define at least one rule).
    pub fn len(&self) -> usize {
        self.strata.len()
    }

    /// `true` iff there are no strata with rules.
    pub fn is_empty(&self) -> bool {
        self.strata.is_empty()
    }

    /// The stratum index defining a predicate, if any.
    pub fn stratum_of(&self, p: Predicate) -> Option<usize> {
        self.strata.iter().position(|s| s.predicates.contains(&p))
    }

    /// A one-line human-readable summary, e.g. `"3 strata (1 recursive)"`.
    /// Used by the lint CLI to describe the evaluation pipeline shape.
    pub fn summary(&self) -> String {
        let recursive = self.strata.iter().filter(|s| s.recursive).count();
        format!(
            "{} {} ({recursive} recursive)",
            self.strata.len(),
            if self.strata.len() == 1 {
                "stratum"
            } else {
                "strata"
            },
        )
    }

    /// Per-stratum affectedness under a fact batch touching exactly the
    /// predicates of `touched`: stratum `i` is affected iff one of its
    /// predicates lies in the predicate graph's forward closure of the
    /// touched set ([`PredicateGraph::reachable_from`]).
    ///
    /// Unaffected strata are **provably** unchanged by the batch — no chain
    /// of rule applications can carry a new fact into them — so incremental
    /// evaluation skips them without sampling a single watermark.
    pub fn affected_strata(
        &self,
        graph: &PredicateGraph,
        touched: &BTreeSet<Predicate>,
    ) -> Vec<bool> {
        let closure = graph.reachable_from(touched.iter().copied());
        self.strata
            .iter()
            .map(|s| s.predicates.iter().any(|p| closure.contains(p)))
            .collect()
    }
}

/// Computes the stratification of a program.
pub fn stratify(program: &Program) -> Stratification {
    let graph = PredicateGraph::new(program);
    let order = graph.sccs_topological();
    let mut strata = Vec::new();
    for scc in order {
        let members: BTreeSet<Predicate> = graph.scc_members(scc).iter().copied().collect();
        let rules: Vec<usize> = program
            .iter()
            .filter(|(_, tgd)| tgd.head_predicates().iter().any(|h| members.contains(h)))
            .map(|(i, _)| i)
            .collect();
        if rules.is_empty() {
            // Purely extensional component: nothing to evaluate.
            continue;
        }
        let recursive = members.iter().any(|&p| graph.is_recursive(p));
        strata.push(Stratum {
            predicates: members,
            rules,
            recursive,
        });
    }
    Stratification { strata }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_model::parser::parse_rules;

    #[test]
    fn transitive_closure_has_a_single_recursive_stratum() {
        let p = parse_rules("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).").unwrap();
        let s = stratify(&p);
        assert_eq!(s.len(), 1);
        assert!(s.strata[0].recursive);
        assert_eq!(s.strata[0].rules, vec![0, 1]);
    }

    #[test]
    fn strata_are_ordered_bottom_up() {
        let p =
            parse_rules("b(X) :- a(X).\n c(X) :- b(X).\n c(X) :- c(X).\n d(X) :- c(X).").unwrap();
        let s = stratify(&p);
        let b = s.stratum_of(Predicate::new("b")).unwrap();
        let c = s.stratum_of(Predicate::new("c")).unwrap();
        let d = s.stratum_of(Predicate::new("d")).unwrap();
        assert!(b < c && c < d);
        assert!(!s.strata[b].recursive);
        assert!(s.strata[c].recursive);
    }

    #[test]
    fn example_3_3_strata() {
        let p = parse_rules(
            "subclassStar(X, Y) :- subclass(X, Y).\n\
             subclassStar(X, Z) :- subclassStar(X, Y), subclass(Y, Z).\n\
             type(X, Z) :- type(X, Y), subclassStar(Y, Z).\n\
             triple(X, Z, W) :- type(X, Y), restriction(Y, Z).\n\
             triple(Z, W, X) :- triple(X, Y, Z), inverse(Y, W).\n\
             type(X, W) :- triple(X, Y, Z), restriction(W, Y).",
        )
        .unwrap();
        let s = stratify(&p);
        assert_eq!(s.len(), 2);
        let sub = s.stratum_of(Predicate::new("subclassStar")).unwrap();
        let ty = s.stratum_of(Predicate::new("type")).unwrap();
        let tr = s.stratum_of(Predicate::new("triple")).unwrap();
        assert_eq!(ty, tr);
        assert!(sub < ty);
        // EDB predicates belong to no stratum.
        assert!(s.stratum_of(Predicate::new("subclass")).is_none());
    }

    #[test]
    fn affected_strata_follow_the_predicate_graph_closure() {
        let p = parse_rules(
            "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).\n\
             reach_pair(X, Y) :- t(X, Y), red(Y).\n\
             s(X, Y) :- link(X, Y).\n s(X, Z) :- link(X, Y), s(Y, Z).",
        )
        .unwrap();
        let s = stratify(&p);
        let graph = PredicateGraph::new(&p);
        let t = s.stratum_of(Predicate::new("t")).unwrap();
        let rp = s.stratum_of(Predicate::new("reach_pair")).unwrap();
        let sc = s.stratum_of(Predicate::new("s")).unwrap();

        // edge deltas reach t and reach_pair but never the link closure.
        let edge_touch: BTreeSet<Predicate> = [Predicate::new("edge")].into_iter().collect();
        let affected = s.affected_strata(&graph, &edge_touch);
        assert!(affected[t] && affected[rp] && !affected[sc]);

        // red deltas only reach the final join stratum.
        let red_touch: BTreeSet<Predicate> = [Predicate::new("red")].into_iter().collect();
        let affected = s.affected_strata(&graph, &red_touch);
        assert!(!affected[t] && affected[rp] && !affected[sc]);

        // A directly touched IDB predicate affects its own stratum.
        let t_touch: BTreeSet<Predicate> = [Predicate::new("t")].into_iter().collect();
        let affected = s.affected_strata(&graph, &t_touch);
        assert!(affected[t] && affected[rp] && !affected[sc]);

        // An empty batch affects nothing.
        let affected = s.affected_strata(&graph, &BTreeSet::new());
        assert!(affected.iter().all(|&a| !a));
    }

    #[test]
    fn empty_program_has_no_strata() {
        let p = Program::new();
        let s = stratify(&p);
        assert!(s.is_empty());
    }
}
