//! Adornment analysis: bound/free binding-pattern propagation (pass 7 of
//! the diagnostics pipeline, and the input of the future magic-sets
//! rewrite).
//!
//! Given a query, each intensional query atom seeds an *adornment* — a
//! [`BindingPattern`] marking which argument positions arrive bound (the
//! query's constants). Patterns propagate through the rules SIP-style
//! (sideways information passing): for every rule deriving an adorned
//! predicate, the head's bound positions bind their variables, body atoms
//! are visited in a deterministic SIP order (atoms that already have a
//! bound variable first, extensional before intensional, textual order as
//! the tie-break), every visited atom binds its variables for the atoms
//! after it, and each *intensional* body atom emits a new (predicate,
//! pattern) pair to process.
//!
//! The fixpoint is an [`AdornmentReport`]: all reached adorned predicates,
//! the per-rule adornments with their SIP orders, and the split into
//! **demand-restricted** predicates (every reached adornment has a bound
//! position — magic sets can prune their materialisation) and
//! **unrestricted** ones (reached with an all-free pattern — demand cannot
//! help). This is exactly the structure a magic-sets/SIP rewrite consumes;
//! see ROADMAP's demand-driven evaluation rung.

use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use vadalog_model::{Atom, ConjunctiveQuery, Predicate, Program, Term, Variable};

/// Which argument positions of a predicate arrive bound. Renders in the
/// classic `bf` notation: `b` for bound, `f` for free, one letter per
/// position.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BindingPattern {
    bound: Vec<bool>,
}

impl BindingPattern {
    /// A pattern from explicit per-position boundness.
    pub fn new(bound: Vec<bool>) -> BindingPattern {
        BindingPattern { bound }
    }

    /// The all-free pattern of a given arity.
    pub fn all_free(arity: usize) -> BindingPattern {
        BindingPattern {
            bound: vec![false; arity],
        }
    }

    /// The pattern a query atom induces: constants are bound, variables
    /// free.
    pub fn from_query_atom(atom: &Atom) -> BindingPattern {
        BindingPattern {
            bound: atom
                .terms
                .iter()
                .map(|t| !matches!(t, Term::Var(_)))
                .collect(),
        }
    }

    /// Parses `"bf"`-style notation. The error names both the offending
    /// character and its 1-based position — the string reaches users over
    /// the wire (`MODE=` / `VALIDATE`), so "something was wrong somewhere"
    /// is not an acceptable diagnostic.
    pub fn parse(s: &str) -> Result<BindingPattern, String> {
        s.chars()
            .enumerate()
            .map(|(i, c)| match c {
                'b' => Ok(true),
                'f' => Ok(false),
                other => Err(format!(
                    "bad adornment letter `{other}` at position {} of `{s}` (expected b/f)",
                    i + 1
                )),
            })
            .collect::<Result<Vec<bool>, String>>()
            .map(BindingPattern::new)
    }

    /// Number of positions.
    pub fn arity(&self) -> usize {
        self.bound.len()
    }

    /// `true` iff position `i` is bound.
    pub fn is_bound(&self, i: usize) -> bool {
        self.bound.get(i).copied().unwrap_or(false)
    }

    /// Number of bound positions.
    pub fn bound_count(&self) -> usize {
        self.bound.iter().filter(|&&b| b).count()
    }

    /// `true` iff no position is bound.
    pub fn is_all_free(&self) -> bool {
        self.bound_count() == 0
    }
}

impl fmt::Display for BindingPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.bound {
            f.write_str(if b { "b" } else { "f" })?;
        }
        Ok(())
    }
}

/// A predicate together with one reached binding pattern.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AdornedPredicate {
    /// The predicate.
    pub predicate: Predicate,
    /// The pattern it is demanded with.
    pub pattern: BindingPattern,
}

impl fmt::Display for AdornedPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}^{}", self.predicate.name(), self.pattern)
    }
}

/// The adornment of one body atom within a rule's SIP traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomAdornment {
    /// Index of the atom in the rule body (textual position).
    pub atom_index: usize,
    /// The atom's predicate.
    pub predicate: Predicate,
    /// Boundness of each argument when the SIP order reaches the atom.
    pub pattern: BindingPattern,
    /// `true` iff the predicate is intensional (emits demand).
    pub intensional: bool,
}

/// One rule processed under one head adornment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleAdornment {
    /// Index of the rule in the program.
    pub tgd_index: usize,
    /// The head predicate and the pattern this pass was made for.
    pub head: AdornedPredicate,
    /// Per-body-atom adornments, in SIP visit order.
    pub body: Vec<AtomAdornment>,
}

/// The adornment fixpoint over a program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdornmentReport {
    /// The seed adornments (from the query's intensional atoms).
    pub seeds: Vec<AdornedPredicate>,
    /// Every (intensional predicate, pattern) pair reached.
    pub adorned: BTreeSet<AdornedPredicate>,
    /// Per-rule, per-head-adornment traversals.
    pub rules: Vec<RuleAdornment>,
    /// Intensional predicates whose every reached adornment has at least
    /// one bound position: a magic-sets rewrite can prune them.
    pub demand_restricted: BTreeSet<Predicate>,
    /// Intensional predicates reached with an all-free adornment: demand
    /// propagation cannot restrict them.
    pub unrestricted: BTreeSet<Predicate>,
}

impl AdornmentReport {
    /// The reached patterns of one predicate.
    pub fn patterns_of(&self, p: Predicate) -> Vec<&BindingPattern> {
        self.adorned
            .iter()
            .filter(|a| a.predicate == p)
            .map(|a| &a.pattern)
            .collect()
    }
}

/// Adorns a program from a query: every intensional query atom seeds the
/// pattern its constants induce.
pub fn adorn_query(program: &Program, query: &ConjunctiveQuery) -> AdornmentReport {
    let idb = program.intensional_predicates();
    let seeds: Vec<AdornedPredicate> = query
        .atoms
        .iter()
        .filter(|a| idb.contains(&a.predicate))
        .map(|a| AdornedPredicate {
            predicate: a.predicate,
            pattern: BindingPattern::from_query_atom(a),
        })
        .collect();
    adorn(program, &seeds)
}

/// Adorns a program from explicit seed adornments.
pub fn adorn(program: &Program, seeds: &[AdornedPredicate]) -> AdornmentReport {
    let idb = program.intensional_predicates();
    let mut report = AdornmentReport {
        seeds: seeds.to_vec(),
        ..AdornmentReport::default()
    };
    let mut queue: VecDeque<AdornedPredicate> = VecDeque::new();
    for seed in seeds {
        if report.adorned.insert(seed.clone()) {
            queue.push_back(seed.clone());
        }
    }

    while let Some(demand) = queue.pop_front() {
        for (i, tgd) in program.iter() {
            for head in &tgd.head {
                if head.predicate != demand.predicate {
                    continue;
                }
                // Head variables at bound positions arrive bound.
                let mut bound: BTreeSet<Variable> = BTreeSet::new();
                for (pos, term) in head.terms.iter().enumerate() {
                    if demand.pattern.is_bound(pos) {
                        if let Term::Var(v) = term {
                            bound.insert(*v);
                        }
                    }
                }

                // SIP traversal of the body.
                let mut remaining: Vec<usize> = (0..tgd.body.len()).collect();
                let mut body = Vec::with_capacity(tgd.body.len());
                while !remaining.is_empty() {
                    // Deterministic choice: a bound atom before an unbound
                    // one, extensional before intensional, textual order as
                    // the tie-break.
                    let next_pos = remaining
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &ai)| {
                            let atom = &tgd.body[ai];
                            let has_bound = atom.variables().iter().any(|v| bound.contains(v));
                            let intensional = idb.contains(&atom.predicate);
                            (!has_bound, intensional, ai)
                        })
                        .map(|(pos, _)| pos)
                        .expect("remaining is non-empty");
                    let ai = remaining.remove(next_pos);
                    let atom = &tgd.body[ai];
                    let pattern = BindingPattern::new(
                        atom.terms
                            .iter()
                            .map(|t| match t {
                                Term::Var(v) => bound.contains(v),
                                // Rules are constant-free, but stay total.
                                _ => true,
                            })
                            .collect(),
                    );
                    let intensional = idb.contains(&atom.predicate);
                    if intensional {
                        let adorned = AdornedPredicate {
                            predicate: atom.predicate,
                            pattern: pattern.clone(),
                        };
                        if report.adorned.insert(adorned.clone()) {
                            queue.push_back(adorned);
                        }
                    }
                    body.push(AtomAdornment {
                        atom_index: ai,
                        predicate: atom.predicate,
                        pattern,
                        intensional,
                    });
                    bound.extend(atom.variables());
                }
                report.rules.push(RuleAdornment {
                    tgd_index: i,
                    head: demand.clone(),
                    body,
                });
            }
        }
    }

    for p in &idb {
        let patterns = report.patterns_of(*p);
        if patterns.is_empty() {
            continue; // never demanded
        }
        if patterns.iter().any(|pat| pat.is_all_free()) {
            report.unrestricted.insert(*p);
        } else {
            report.demand_restricted.insert(*p);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_model::parser::{parse_query, parse_rules};

    const TC: &str = "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).";

    #[test]
    fn bound_source_query_demand_restricts_tc() {
        let program = parse_rules(TC).unwrap();
        let query = parse_query("?(Y) :- t(a, Y).").unwrap();
        let report = adorn_query(&program, &query);
        assert_eq!(report.seeds.len(), 1);
        assert_eq!(report.seeds[0].pattern.to_string(), "bf");
        let t = Predicate::new("t");
        assert!(report.demand_restricted.contains(&t), "{report:?}");
        assert!(!report.unrestricted.contains(&t));
        // The recursive rule propagates the bound first argument: t^bf
        // reaches itself as t^bf (edge binds Y before t(Y, Z) is visited).
        let patterns: Vec<String> = report
            .patterns_of(t)
            .iter()
            .map(|p| p.to_string())
            .collect();
        assert_eq!(patterns, vec!["bf"]);
    }

    #[test]
    fn all_free_query_cannot_restrict() {
        let program = parse_rules(TC).unwrap();
        let query = parse_query("?(X, Y) :- t(X, Y).").unwrap();
        let report = adorn_query(&program, &query);
        let t = Predicate::new("t");
        assert!(report.unrestricted.contains(&t));
        assert!(!report.demand_restricted.contains(&t));
    }

    #[test]
    fn sip_order_visits_bound_extensional_atoms_first() {
        let program = parse_rules(TC).unwrap();
        let query = parse_query("?(Y) :- t(a, Y).").unwrap();
        let report = adorn_query(&program, &query);
        // In the recursive rule the SIP order is edge(X, Y) then t(Y, Z):
        // edge has the bound X and is extensional.
        let recursive = report
            .rules
            .iter()
            .find(|r| r.tgd_index == 1)
            .expect("recursive rule adorned");
        assert_eq!(recursive.body[0].predicate.name(), "edge");
        assert_eq!(recursive.body[0].pattern.to_string(), "bf");
        assert_eq!(recursive.body[1].predicate.name(), "t");
        assert_eq!(recursive.body[1].pattern.to_string(), "bf");
    }

    #[test]
    fn point_queries_bind_both_positions() {
        let program = parse_rules(TC).unwrap();
        let query = parse_query("? :- t(a, b).").unwrap();
        let report = adorn_query(&program, &query);
        let t = Predicate::new("t");
        let patterns: BTreeSet<String> = report
            .patterns_of(t)
            .iter()
            .map(|p| p.to_string())
            .collect();
        // The seed is bb; the recursive rule keeps both positions bound
        // (the head binds X and Z, edge then binds Y), so bb is stable.
        assert!(patterns.contains("bb"), "{patterns:?}");
        assert!(report.demand_restricted.contains(&t));
    }

    #[test]
    fn non_query_predicates_are_not_adorned() {
        let program = parse_rules("t(X, Y) :- edge(X, Y).\n s(X, Y) :- link(X, Y).").unwrap();
        let query = parse_query("?(Y) :- t(a, Y).").unwrap();
        let report = adorn_query(&program, &query);
        assert!(report.patterns_of(Predicate::new("s")).is_empty());
        assert!(!report.demand_restricted.contains(&Predicate::new("s")));
        assert!(!report.unrestricted.contains(&Predicate::new("s")));
    }

    #[test]
    fn patterns_parse_and_render() {
        let p = BindingPattern::parse("bfb").unwrap();
        assert_eq!(p.arity(), 3);
        assert!(p.is_bound(0) && !p.is_bound(1) && p.is_bound(2));
        assert_eq!(p.bound_count(), 2);
        assert_eq!(p.to_string(), "bfb");
        assert!(BindingPattern::parse("bx").is_err());
        assert!(BindingPattern::all_free(2).is_all_free());
    }

    #[test]
    fn parse_error_names_character_and_position() {
        let err = BindingPattern::parse("bfx").unwrap_err();
        assert!(err.contains("`x`"), "error must echo the character: {err}");
        assert!(
            err.contains("position 3"),
            "error must echo the position: {err}"
        );
        // The first offender wins when several letters are bad.
        let err = BindingPattern::parse("zb?").unwrap_err();
        assert!(err.contains("`z`") && err.contains("position 1"), "{err}");
    }
}
