//! E4 — Theorem 6.3: cost of the rewriting into piece-wise linear Datalog and
//! of evaluating the rewritten program.

use criterion::{criterion_group, criterion_main, Criterion};
use vadalog_bench::{program, LINEAR_TC};
use vadalog_benchgen::graphs::chain_graph;
use vadalog_core::{rewrite_to_pwl_datalog, RewriteOptions};
use vadalog_datalog::DatalogEngine;
use vadalog_model::parser::parse_query;

fn e4(c: &mut Criterion) {
    let tc = program(LINEAR_TC);
    let query = parse_query("?(A, B) :- t(A, B).").unwrap();
    let mut group = c.benchmark_group("e4_rewriting");
    group.sample_size(10);

    group.bench_function("rewrite_linear_tc", |b| {
        b.iter(|| {
            let rewritten = rewrite_to_pwl_datalog(&tc, &query, RewriteOptions::default())
                .unwrap()
                .unwrap();
            assert!(!rewritten.program.is_empty());
        })
    });

    let rewritten = rewrite_to_pwl_datalog(&tc, &query, RewriteOptions::default())
        .unwrap()
        .unwrap();
    let db = chain_graph(60);
    group.bench_function("evaluate_rewritten_program", |b| {
        let engine = DatalogEngine::new(rewritten.program.clone()).unwrap();
        b.iter(|| {
            let answers = engine.answers(&db, &rewritten.query);
            assert!(!answers.is_empty());
        })
    });
    group.bench_function("evaluate_original_program", |b| {
        let engine = DatalogEngine::new(tc.clone()).unwrap();
        b.iter(|| {
            let answers = engine.answers(&db, &query);
            assert!(!answers.is_empty());
        })
    });
    group.finish();
}

criterion_group!(benches, e4);
criterion_main!(benches);
