//! E8 — the linearisation rewriting of Section 1.2: non-linear vs linearised
//! transitive closure under semi-naive evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vadalog_analysis::linearize::linearize;
use vadalog_bench::{program, NONLINEAR_TC};
use vadalog_benchgen::graphs::random_graph;
use vadalog_datalog::DatalogEngine;

fn e8(c: &mut Criterion) {
    let nonlinear = program(NONLINEAR_TC);
    let linearized = linearize(&nonlinear).program;
    let mut group = c.benchmark_group("e8_linearisation");
    group.sample_size(10);

    for &edges in &[100usize, 200] {
        let db = random_graph(edges / 4, edges, 3);
        group.bench_with_input(BenchmarkId::new("nonlinear_tc", edges), &edges, |b, _| {
            let engine = DatalogEngine::new(nonlinear.clone()).unwrap();
            b.iter(|| engine.evaluate(&db).stats.derived_atoms)
        });
        group.bench_with_input(BenchmarkId::new("linearised_tc", edges), &edges, |b, _| {
            let engine = DatalogEngine::new(linearized.clone()).unwrap();
            b.iter(|| engine.evaluate(&db).stats.derived_atoms)
        });
    }
    group.finish();
}

criterion_group!(benches, e8);
criterion_main!(benches);
