//! E3 — combined complexity: search work as the program's level structure
//! grows, on a fixed small database.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vadalog_bench::layered_program;
use vadalog_benchgen::graphs::chain_graph;
use vadalog_core::{linear_proof_search, SearchOptions};
use vadalog_model::parser::parse_query;
use vadalog_model::Symbol;

fn e3(c: &mut Criterion) {
    let db = chain_graph(6);
    let mut group = c.benchmark_group("e3_combined_complexity");
    group.sample_size(10);

    for &levels in &[1usize, 2, 3, 4] {
        let prog = layered_program(levels);
        let query = parse_query(&format!("?(X, Y) :- p{levels}(X, Y).")).unwrap();
        let boolean = query
            .instantiate(&[Symbol::new("n0"), Symbol::new("n6")])
            .unwrap();
        group.bench_with_input(BenchmarkId::new("proof_search", levels), &levels, |b, _| {
            b.iter(|| {
                let outcome = linear_proof_search(&prog, &db, &boolean, SearchOptions::default());
                assert!(outcome.is_accepted());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, e3);
criterion_main!(benches);
