//! E6 — Section 7 ablations: PWL-aware join ordering and strata
//! materialisation in the Vadalog-style engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vadalog_benchgen::data_exchange::data_exchange_scenario;
use vadalog_benchgen::owl::{owl_database, owl_program};
use vadalog_engine::{EngineConfig, JoinOrdering, Reasoner};

fn e6(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_section7_ablation");
    group.sample_size(10);

    let owl_db = owl_database(25, 5, 80, 7);
    let owl_prog = owl_program();
    let dex = data_exchange_scenario(3, 60, 20, 11);

    let configs: Vec<(&str, EngineConfig)> = vec![
        ("pwl_order_strata", EngineConfig::default()),
        (
            "as_written_order",
            EngineConfig {
                join_ordering: JoinOrdering::AsWritten,
                ..EngineConfig::default()
            },
        ),
        (
            "global_fixpoint",
            EngineConfig {
                materialize_strata: false,
                ..EngineConfig::default()
            },
        ),
    ];

    for (label, config) in &configs {
        group.bench_with_input(BenchmarkId::new("owl", label), label, |b, _| {
            let reasoner = Reasoner::new(&owl_prog, *config);
            b.iter(|| {
                let result = reasoner.run(&owl_db);
                assert!(result.stats.derived_atoms > 0);
            })
        });
        group.bench_with_input(BenchmarkId::new("data_exchange", label), label, |b, _| {
            let reasoner = Reasoner::new(&dex.program, *config);
            b.iter(|| {
                let result = reasoner.run(&dex.database);
                assert!(result.stats.derived_atoms > 0);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, e6);
criterion_main!(benches);
