//! Joins — the zero-allocation join kernel versus the seed algorithm.
//!
//! Two workloads exercise the storage + join layer in isolation:
//!
//! * **transitive-closure materialisation** over a 200-node random graph
//!   (semi-naive Datalog; the kernel streams derivations, the baseline
//!   clones rule bodies and `BTreeMap` substitutions per candidate);
//! * **join-heavy CQ evaluation** (a 3-hop path query) over the
//!   materialised closure.
//!
//! The acceptance bar for the columnar-store/kernel rewrite is a ≥ 3×
//! speedup on the transitive-closure workload; `harness joins` measures the
//! same workloads and records the ratio in `BENCH_joins.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::ops::ControlFlow;
use vadalog_bench::{program, seed_reference, LINEAR_TC};
use vadalog_benchgen::graphs::random_graph;
use vadalog_datalog::DatalogEngine;
use vadalog_model::homomorphism::reference::homomorphisms_reference;
use vadalog_model::{Atom, HomSearch, JoinSpec, Matcher, Substitution, Term};

fn path3_pattern() -> Vec<Atom> {
    let v = Term::variable;
    vec![
        Atom::new("t", vec![v("X"), v("Y")]),
        Atom::new("t", vec![v("Y"), v("Z")]),
        Atom::new("t", vec![v("Z"), v("W")]),
    ]
}

fn joins(c: &mut Criterion) {
    let tc = program(LINEAR_TC);
    // 200 nodes, sparse enough that the seed baseline finishes in reasonable
    // time, dense enough that the closure is join-heavy.
    let db = random_graph(200, 400, 42);

    let mut group = c.benchmark_group("joins_tc_materialization_200");
    group.sample_size(10);
    let engine = DatalogEngine::new(tc.clone()).unwrap();
    group.bench_function("kernel_semi_naive", |b| {
        b.iter(|| {
            let result = engine.evaluate(&db);
            assert!(result.stats.derived_atoms > 0);
            result.stats.derived_atoms
        })
    });
    group.sample_size(3);
    group.bench_function("seed_reference_semi_naive", |b| {
        b.iter(|| {
            let (_, stats) = seed_reference::evaluate(&tc, &db);
            assert!(stats.derived_atoms > 0);
            stats.derived_atoms
        })
    });
    group.finish();

    // CQ evaluation over a materialised closure — of a sparser graph than
    // the TC workload: the baseline materialises every answer substitution,
    // and a 3-hop pattern over a dense closure has too many answers for it
    // to finish in sensible time.
    let closure = engine.evaluate(&random_graph(200, 260, 42)).instance;
    let pattern = path3_pattern();
    let mut group = c.benchmark_group("joins_cq_path3");
    group.sample_size(10);
    group.bench_function("kernel", |b| {
        let spec = JoinSpec::compile(&pattern);
        b.iter(|| {
            let mut matcher = Matcher::new(&spec);
            let mut count = 0u64;
            matcher.for_each(&closure, |_| {
                count += 1;
                ControlFlow::Continue(())
            });
            count
        })
    });
    group.sample_size(3);
    group.bench_function("seed_reference", |b| {
        b.iter(|| {
            homomorphisms_reference(&pattern, &closure, &Substitution::new(), HomSearch::all())
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, joins);
criterion_main!(benches);
