//! E1 — data complexity: linear proof search (space-efficient decision) vs
//! bottom-up materialisation on reachability workloads of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vadalog_bench::{program, LINEAR_TC};
use vadalog_benchgen::graphs::chain_graph;
use vadalog_core::{linear_proof_search, SearchOptions};
use vadalog_datalog::DatalogEngine;
use vadalog_model::parser::parse_query;
use vadalog_model::Symbol;

fn e1(c: &mut Criterion) {
    let tc = program(LINEAR_TC);
    let query = parse_query("?(X, Y) :- t(X, Y).").unwrap();
    let mut group = c.benchmark_group("e1_space_reachability");
    group.sample_size(10);

    for &n in &[50usize, 100, 200] {
        let db = chain_graph(n);
        let boolean = query
            .instantiate(&[Symbol::new("n0"), Symbol::new(&format!("n{n}"))])
            .unwrap();

        group.bench_with_input(
            BenchmarkId::new("linear_proof_search_decision", n),
            &n,
            |b, _| {
                b.iter(|| {
                    let outcome = linear_proof_search(&tc, &db, &boolean, SearchOptions::default());
                    assert!(outcome.is_accepted());
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("semi_naive_materialisation", n),
            &n,
            |b, _| {
                let engine = DatalogEngine::new(tc.clone()).unwrap();
                b.iter(|| {
                    let result = engine.evaluate(&db);
                    assert!(result.stats.derived_atoms > 0);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, e1);
criterion_main!(benches);
