//! The experiment harness: regenerates every table recorded in
//! EXPERIMENTS.md.
//!
//! Usage:
//!
//! ```text
//! cargo run -p vadalog-bench --release --bin harness            # all experiments
//! cargo run -p vadalog-bench --release --bin harness -- e1 e5   # a selection
//! cargo run -p vadalog-bench --release --bin harness -- --quick # smaller sizes
//! ```
//!
//! The `joins` experiment additionally writes `BENCH_joins.json` (wall-times
//! and peak atom counts of the join-kernel workloads against the retained
//! seed baseline, plus the composite-index observability counters:
//! `composite_probes` — planned probe steps answered by a multi-column
//! fused-key index, `probe_misses_filtered` — index probes skipped by the
//! fingerprint filters, and per-workload `index_bytes`) into the current
//! directory, the `parallel` experiment writes `BENCH_parallel.json`
//! (wall-times of the sharded evaluator at 1/2/4/8 worker threads, plus the
//! host's available parallelism), and the `incremental` experiment writes
//! `BENCH_incremental.json` (delta-ingest wall-clock of the live
//! incremental engine vs a full from-scratch re-evaluation of the union,
//! with the affected-strata skip and bit-identity asserted first), the
//! `magic` experiment writes `BENCH_magic.json` (bound and point
//! reachability queries through the demand-driven magic-sets path vs full
//! materialisation, answers asserted bit-identical first), and the
//! `overload` experiment writes `BENCH_overload.json` (served/shed/rejected
//! throughput of the reactor transport under a connection storm plus the
//! health connection's latency percentiles, every answer served under load
//! asserted bit-identical to the unloaded reference first), and the `trace`
//! experiment writes `BENCH_trace.json` (wall-clock of the linear TC
//! fixpoint with `vadalog_obs` tracing disabled vs enabled, bit-identity
//! asserted first and the enabled overhead asserted under 10%).

use std::collections::BTreeMap;
use std::time::Instant;
use vadalog_analysis::classify::{classify_scenario, ScenarioClass};
use vadalog_analysis::linearize::linearize;
use vadalog_analysis::pwl::{is_intensionally_linear, is_piecewise_linear};
use vadalog_analysis::wardedness::is_warded;
use vadalog_bench::{layered_program, program, Table, LINEAR_TC, NONLINEAR_TC};
use vadalog_benchgen::data_exchange::data_exchange_scenario;
use vadalog_benchgen::graphs::{chain_graph, random_graph};
use vadalog_benchgen::iwarded::{iwarded_scenario, ScenarioMix};
use vadalog_benchgen::owl::{owl_database, owl_program};
use vadalog_chase::{ChaseConfig, ChaseEngine, TerminationPolicy};
use vadalog_core::{
    linear_proof_search, rewrite_to_pwl_datalog, CertainAnswerEngine, RewriteOptions, SearchOptions,
};
use vadalog_datalog::DatalogEngine;
use vadalog_engine::{EngineConfig, JoinOrdering, Reasoner};
use vadalog_model::parser::{parse_query, parse_rules};
use vadalog_model::{Database, Symbol};
use vadalog_tiling::{has_tiling_within, reduction, TilingSystem};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();
    let run = |name: &str| selected.is_empty() || selected.iter().any(|s| s == name);

    println!("== The Space-Efficient Core of Vadalog — experiment harness ==\n");
    if run("e1") {
        e1_space(quick);
    }
    if run("e2") {
        e2_scenario_statistics(quick);
    }
    if run("e3") {
        e3_combined_complexity(quick);
    }
    if run("e4") {
        e4_rewriting();
    }
    if run("e5") {
        e5_tiling();
    }
    if run("e6") {
        e6_ablation(quick);
    }
    if run("e7") {
        e7_program_expressive_power();
    }
    if run("e8") {
        e8_linearization(quick);
    }
    if run("joins") {
        joins_bench(quick);
    }
    if run("parallel") {
        parallel_bench(quick);
    }
    if run("incremental") {
        incremental_bench(quick);
    }
    if run("recovery") {
        recovery_bench(quick);
    }
    if run("magic") {
        magic_bench(quick);
    }
    if run("overload") {
        overload_bench(quick);
    }
    if run("trace") {
        trace_bench(quick);
    }
}

/// Trace — wall-clock overhead of the `vadalog_obs` spans on the linear
/// TC fixpoint, disabled vs enabled. Tracing must be observational twice
/// over: bit-identical outputs (the property suite proves it per counter;
/// the harness re-asserts it on this exact workload before timing) and
/// near-free wall-clock. The two switch states are timed interleaved
/// (min-of-N), so cache and frequency drift hit both equally, and the
/// enabled run may cost at most 10% over the disabled run — a tripped
/// assert fails the CI job. Writes `BENCH_trace.json`.
fn trace_bench(quick: bool) {
    println!("-- trace: span overhead on linear TC, disabled vs enabled --");
    let samples = if quick { 5 } else { 9 };
    let (nodes, edges) = if quick {
        (600usize, 2400usize)
    } else {
        (1500, 6000)
    };
    let db = random_graph(nodes, edges, 42);
    let engine = DatalogEngine::new(program(LINEAR_TC)).unwrap();

    // Bit-identity gate before any timing: same materialisation, same
    // counters, and the switch actually controls recording.
    vadalog_obs::set_enabled(false);
    vadalog_obs::drain();
    let reference = engine.evaluate(&db);
    assert!(
        vadalog_obs::drain().is_empty(),
        "disabled tracing must record nothing"
    );
    vadalog_obs::set_enabled(true);
    let traced = engine.evaluate(&db);
    let records_per_run = vadalog_obs::drain().len();
    vadalog_obs::set_enabled(false);
    assert!(records_per_run > 0, "enabled tracing must record spans");
    assert_eq!(
        traced.stats, reference.stats,
        "tracing must not change a single engine counter"
    );
    assert_eq!(
        traced.instance.sorted_row_layout(),
        reference.instance.sorted_row_layout(),
        "tracing must not change the materialisation"
    );

    // Position within a sample is not neutral (the second evaluation sees
    // a different allocator/cache state and measures ~20% slower on this
    // workload), so the order alternates every sample and min-of-N gives
    // each switch state its best-position, fully warmed time.
    let mut disabled_ms = f64::MAX;
    let mut enabled_ms = f64::MAX;
    for sample in 0..samples {
        let order = if sample % 2 == 0 {
            [false, true]
        } else {
            [true, false]
        };
        for tracing in order {
            vadalog_obs::set_enabled(tracing);
            let start = Instant::now();
            let run = engine.evaluate(&db);
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            vadalog_obs::set_enabled(false);
            assert_eq!(run.stats, reference.stats);
            vadalog_obs::drain();
            if tracing {
                enabled_ms = enabled_ms.min(wall_ms);
            } else {
                disabled_ms = disabled_ms.min(wall_ms);
            }
        }
    }
    let overhead = enabled_ms / disabled_ms;

    let mut table = Table::new(&["tracing", "wall ms", "note"]);
    table.row(&[
        "disabled".into(),
        format!("{disabled_ms:.3}"),
        format!("{} tuples derived", reference.stats.derived_atoms),
    ]);
    table.row(&[
        "enabled".into(),
        format!("{enabled_ms:.3}"),
        format!("{records_per_run} spans/run, overhead {overhead:.3}x"),
    ]);
    print!("{}", table.render());

    let json = format!(
        "{{\n  \"workload\": {{\n    \"program\": \"linear_tc\",\n    \"nodes\": {nodes},\n    \
         \"edges\": {edges},\n    \"derived_atoms\": {}\n  }},\n  \"samples\": {samples},\n  \
         \"disabled_wall_ms\": {disabled_ms:.3},\n  \"enabled_wall_ms\": {enabled_ms:.3},\n  \
         \"overhead_ratio\": {overhead:.4},\n  \"records_per_run\": {records_per_run},\n  \
         \"bit_identical\": true\n}}\n",
        reference.stats.derived_atoms,
    );
    std::fs::write("BENCH_trace.json", &json).expect("write BENCH_trace.json");
    println!("wrote BENCH_trace.json");

    assert!(
        overhead < 1.10,
        "enabled tracing must cost < 10% on the TC fixpoint, got {overhead:.3}x \
         (disabled {disabled_ms:.3} ms, enabled {enabled_ms:.3} ms)"
    );
}

/// Overload — graceful degradation of the reactor transport under a
/// connection storm, against a live server with deliberately small
/// admission caps (2 workers, queue depth 2, a connection cap below the
/// storm's width). Before any timing the harness captures the storm
/// query's answers on an unloaded server and asserts every answer served
/// *during* the storm **bit-identical** to them — shedding must be
/// all-or-nothing, never a truncated answer set; a tripped assert fails
/// the CI job. During the storm a dedicated health connection keeps
/// issuing a point query and records wall latencies (a shed health reply
/// counts — `ERR overloaded` *is* the responsiveness contract under
/// load). Afterwards the harness asserts the STATS transport counters
/// balance (`received` = `served` + `shed` + `failed` + the in-flight
/// `STATS` itself), that the server is not degraded, and that the health
/// p99 stays bounded. Writes `BENCH_overload.json` with served/shed/
/// rejected throughput and the health latency percentiles.
fn overload_bench(quick: bool) {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use vadalog_model::parser::parse_rules;
    use vadalog_service::{DurableEngine, IncrementalEngine, LiveServer, ServerConfig};

    println!("-- overload: load shedding and responsiveness under a connection storm --");
    let (storm_threads, requests_per_thread) = if quick { (4usize, 30usize) } else { (8, 80) };
    let chain_len = 80usize;

    let program = parse_rules("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).").unwrap();
    let config = ServerConfig {
        worker_threads: 2,
        max_queue_depth: 2,
        max_connections: 6,
        overload_retry_ms: 5,
        poll_interval: std::time::Duration::from_millis(5),
        ..ServerConfig::default()
    };
    let server = LiveServer::start_with(
        DurableEngine::volatile(IncrementalEngine::new(program).unwrap()),
        "127.0.0.1:0",
        config,
    )
    .expect("start overload server");
    let addr = server.addr();

    // Reads one full counted frame (header + `answers=<n>` lines + `END`).
    fn read_frame(reader: &mut BufReader<TcpStream>) -> Vec<String> {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response header");
        let mut lines = vec![line.trim_end().to_string()];
        if let Some(rest) = lines[0].strip_prefix("OK answers=") {
            let count: usize = rest
                .split_whitespace()
                .next()
                .unwrap()
                .parse()
                .expect("answer count");
            for _ in 0..=count {
                let mut body = String::new();
                reader.read_line(&mut body).expect("read answer line");
                lines.push(body.trim_end().to_string());
            }
        }
        lines
    }
    fn ask(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> Vec<String> {
        stream.write_all(format!("{line}\n").as_bytes()).unwrap();
        read_frame(reader)
    }
    let connect = |addr| {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().unwrap());
        (stream, reader)
    };

    const STORM_QUERY: &str = "QUERY ?(Y) :- t(n0, Y).";
    const HEALTH_QUERY: &str = "QUERY ?(X) :- t(X, n1).";

    // Seed the closure, then capture the reference answers *unloaded*.
    let (mut control, mut control_reader) = connect(addr);
    let chain: String = (0..chain_len)
        .map(|i| format!("edge(n{i}, n{}). ", i + 1))
        .collect();
    let loaded = ask(&mut control, &mut control_reader, &format!("BATCH {chain}"));
    assert!(loaded[0].starts_with("OK inserted="), "{loaded:?}");
    let reference = ask(&mut control, &mut control_reader, STORM_QUERY);
    assert_eq!(reference.len(), chain_len + 2, "header + answers + END");
    let health_reference = ask(&mut control, &mut control_reader, HEALTH_QUERY);
    assert!(health_reference[0].starts_with("OK answers=1"));

    // The storm: each thread hammers short-lived connections; every served
    // answer set is compared byte-for-byte against the unloaded reference.
    let served = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));
    let storm_start = Instant::now();
    let (mut health, mut health_reader) = connect(addr);
    let storm: Vec<_> = (0..storm_threads)
        .map(|_| {
            let reference = reference.clone();
            let (served, shed, rejected) = (served.clone(), shed.clone(), rejected.clone());
            std::thread::spawn(move || {
                // One storm request: Ok(Some(true)) served, Ok(Some(false))
                // shed, Ok(None) / Err rejected — errors anywhere (connect
                // refused, a reset from an accept-time rejection racing the
                // client's write) classify as rejected, because an
                // *admitted* request is never cut in this workload.
                let one_request = |reference: &[String]| -> std::io::Result<Option<bool>> {
                    let mut stream = TcpStream::connect(addr)?;
                    let mut reader = BufReader::new(stream.try_clone()?);
                    stream.write_all(format!("{STORM_QUERY}\n").as_bytes())?;
                    let mut header = String::new();
                    if reader.read_line(&mut header)? == 0 {
                        return Ok(None);
                    }
                    let header = header.trim_end();
                    if let Some(rest) = header.strip_prefix("OK answers=") {
                        let count: usize = rest.split_whitespace().next().unwrap().parse().unwrap();
                        let mut frame = vec![header.to_string()];
                        for _ in 0..=count {
                            let mut body = String::new();
                            reader.read_line(&mut body)?;
                            frame.push(body.trim_end().to_string());
                        }
                        assert_eq!(
                            frame, reference,
                            "an answer served under load must be bit-identical \
                             to the unloaded reference"
                        );
                        Ok(Some(true))
                    } else if header.starts_with("ERR overloaded retry_ms=") {
                        // Shed at the queue *or* rejected at accept — the
                        // error line is the same, but a rejected socket
                        // closes right after it while a shed request's
                        // connection survives. STATS is exempt from
                        // shedding, so it discriminates: answered → shed,
                        // EOF → rejected.
                        let mut probe = String::new();
                        stream.write_all(b"STATS\n")?;
                        if reader.read_line(&mut probe).unwrap_or(0) > 0 {
                            Ok(Some(false))
                        } else {
                            Ok(None)
                        }
                    } else {
                        panic!("unexpected storm response: {header:?}");
                    }
                };
                for _ in 0..requests_per_thread {
                    match one_request(&reference) {
                        Ok(Some(true)) => served.fetch_add(1, Ordering::Relaxed),
                        Ok(Some(false)) => shed.fetch_add(1, Ordering::Relaxed),
                        Ok(None) | Err(_) => rejected.fetch_add(1, Ordering::Relaxed),
                    };
                }
            })
        })
        .collect();

    // The health loop: a persistent admitted connection that must stay
    // responsive for the whole storm — every round trip is timed, and a
    // structured shed counts as a (fast) response.
    let mut health_micros: Vec<u64> = Vec::new();
    let mut health_served = 0u64;
    let mut health_shed = 0u64;
    while storm.iter().any(|t| !t.is_finished()) {
        let start = Instant::now();
        let frame = ask(&mut health, &mut health_reader, HEALTH_QUERY);
        health_micros.push(start.elapsed().as_micros() as u64);
        if frame[0].starts_with("OK answers=") {
            assert_eq!(frame, health_reference, "health answers must not drift");
            health_served += 1;
        } else {
            assert!(
                frame[0].starts_with("ERR overloaded retry_ms="),
                "unexpected health response: {frame:?}"
            );
            health_shed += 1;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    for thread in storm {
        thread.join().expect("storm thread must not panic");
    }
    let storm_secs = storm_start.elapsed().as_secs_f64();
    let served = served.load(Ordering::Relaxed);
    let shed = shed.load(Ordering::Relaxed);
    let rejected = rejected.load(Ordering::Relaxed);
    assert_eq!(
        served + shed + rejected,
        (storm_threads * requests_per_thread) as u64,
        "every storm request must be classified"
    );

    health_micros.sort_unstable();
    let percentile = |q: f64| -> u64 {
        let rank = ((q * health_micros.len() as f64).ceil() as usize).clamp(1, health_micros.len());
        health_micros[rank - 1]
    };
    let (health_p50, health_p99) = (percentile(0.50), percentile(0.99));

    // The books must balance at quiescence: every request the transport
    // accepted was served, shed or failed — the `+ 1` is the in-flight
    // STATS request reading its own counters.
    let mut stats = String::new();
    control.write_all(b"STATS\n").unwrap();
    control_reader.read_line(&mut stats).unwrap();
    let stat = |key: &str| -> u64 {
        let needle = format!("\"{key}\":");
        let at = stats
            .find(&needle)
            .unwrap_or_else(|| panic!("{key} in {stats}"));
        stats[at + needle.len()..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse()
            .unwrap()
    };
    assert_eq!(
        stat("requests_received"),
        stat("requests_served") + stat("queries_shed") + stat("requests_failed") + 1,
        "transport counters must balance: {stats}"
    );
    // Client-side `rejected` can exceed the server's accept-time count
    // (connect failures never reach the listener) but never undershoot it.
    assert!(stat("connections_rejected") <= rejected, "{stats}");
    assert!(!stats.contains("\"degraded\":true"), "{stats}");
    let queue_depth_max = stat("queue_depth_max");
    control.write_all(b"SHUTDOWN\n").unwrap();
    server.join();

    let mut table = Table::new(&["metric", "value", "note"]);
    table.row(&[
        "storm requests served".into(),
        served.to_string(),
        format!("{:.0}/s over {storm_secs:.2}s", served as f64 / storm_secs),
    ]);
    table.row(&[
        "storm requests shed".into(),
        shed.to_string(),
        format!(
            "{:.0}/s, queue depth peaked at {queue_depth_max}",
            shed as f64 / storm_secs
        ),
    ]);
    table.row(&[
        "storm connections rejected".into(),
        rejected.to_string(),
        "accept-time cap".into(),
    ]);
    table.row(&[
        "health round trips".into(),
        health_micros.len().to_string(),
        format!("{health_served} served, {health_shed} shed"),
    ]);
    table.row(&[
        "health latency".into(),
        format!("p50 {health_p50} us"),
        format!("p99 {health_p99} us"),
    ]);
    println!("{}", table.render());

    let json = format!(
        "{{\n  \"workload\": {{\n    \"chain_len\": {chain_len},\n    \
         \"storm_threads\": {storm_threads},\n    \
         \"requests_per_thread\": {requests_per_thread},\n    \
         \"worker_threads\": 2,\n    \"max_queue_depth\": 2,\n    \"max_connections\": 6\n  }},\n  \
         \"storm_wall_s\": {storm_secs:.3},\n  \
         \"served\": {served},\n  \"shed\": {shed},\n  \"rejected\": {rejected},\n  \
         \"served_per_s\": {served_rate:.1},\n  \"shed_per_s\": {shed_rate:.1},\n  \
         \"queue_depth_max\": {queue_depth_max},\n  \
         \"health\": {{\n    \"round_trips\": {rounds},\n    \"served\": {health_served},\n    \
         \"shed\": {health_shed},\n    \"p50_micros\": {health_p50},\n    \
         \"p99_micros\": {health_p99}\n  }},\n  \"answers_bit_identical\": true\n}}\n",
        served_rate = served as f64 / storm_secs,
        shed_rate = shed as f64 / storm_secs,
        rounds = health_micros.len(),
    );
    std::fs::write("BENCH_overload.json", &json).expect("write BENCH_overload.json");
    println!("wrote BENCH_overload.json");

    assert!(
        health_p99 < 2_000_000,
        "the health connection must stay responsive under the storm \
         (p99 {health_p99} us)"
    );
}

/// Magic — demand-driven evaluation of bound queries against full
/// materialisation, on the disjoint-chains reachability workload (full
/// closure grows with every chain; a bound query can only demand one
/// chain's worth). Before any timing the harness asserts the magic path's
/// answers **bit-identical** to the full path's for the bound and the
/// point query, that the all-free query falls back, and that the second
/// same-pattern query comes out of the specialised-program cache with the
/// same bits; a tripped assert fails the CI job. Asserts the bound query
/// via magic beats full materialisation ≥ 10x and demands ≪ the full
/// closure, and writes `BENCH_magic.json`.
fn magic_bench(quick: bool) {
    use vadalog_benchgen::magic::bound_query_scenario;
    use vadalog_datalog::{DemandEngine, DemandError};
    use vadalog_model::QueryBudget;

    println!("-- magic: demand-driven bound queries vs full materialisation --");
    let samples = if quick { 3 } else { 5 };
    let (chains, chain_len) = if quick { (60usize, 30usize) } else { (200, 60) };
    let scenario = bound_query_scenario(chains, chain_len, 42);
    let base = scenario.database.as_instance();
    let budget = QueryBudget::unlimited();

    // The full-path reference: materialise everything, then apply each CQ.
    let engine = DatalogEngine::new(scenario.program.clone()).unwrap();
    let reference = engine.evaluate(&scenario.database);
    let full_tuples = reference.stats.derived_atoms;
    assert_eq!(
        scenario.full_query.evaluate(&reference.instance).len(),
        scenario.full_closure_size,
        "the workload's closure size must match its structure"
    );

    // Correctness gates: bit-identity on both bound shapes, fallback on
    // the all-free shape, cache hit with the same bits on a repeat.
    let demand = DemandEngine::new(scenario.program.clone());
    let bound = demand.answer(base, &scenario.bound_query, &budget).unwrap();
    assert_eq!(
        bound.answers,
        scenario.bound_query.evaluate(&reference.instance),
        "magic and full answers must be bit-identical for the bound query"
    );
    let point = demand.answer(base, &scenario.point_query, &budget).unwrap();
    assert_eq!(
        point.answers,
        scenario.point_query.evaluate(&reference.instance),
        "magic and full answers must be bit-identical for the point query"
    );
    match demand.answer(base, &scenario.full_query, &budget) {
        Err(DemandError::Fallback(_)) => {}
        other => panic!("the all-free query must fall back, got {other:?}"),
    }
    let repeat = demand.answer(base, &scenario.bound_query, &budget).unwrap();
    assert!(
        repeat.cache_hit,
        "second same-pattern query must hit the cache"
    );
    assert_eq!(
        repeat.answers, bound.answers,
        "cached answers must not drift"
    );
    let demanded = bound.demanded_tuples;
    assert!(
        demanded.saturating_mul(10) < full_tuples as u64,
        "the bound query must demand far less than the full closure \
         ({demanded} vs {full_tuples})"
    );

    // Timed: full materialisation + CQ, vs the magic path per query shape.
    // `cold` pays rewrite + stratification + join compilation on a fresh
    // engine; `warm` replays the cached specialised program.
    let mut full_ms = f64::MAX;
    for _ in 0..samples {
        let start = Instant::now();
        let result = engine.evaluate(&scenario.database);
        let answers = scenario.bound_query.evaluate(&result.instance);
        full_ms = full_ms.min(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(answers.len(), scenario.bound_answer_size);
    }
    let magic_timing = |query: &vadalog_model::ConjunctiveQuery| -> (f64, f64) {
        let mut cold = f64::MAX;
        let mut warm = f64::MAX;
        for _ in 0..samples {
            let fresh = DemandEngine::new(scenario.program.clone());
            let start = Instant::now();
            fresh.answer(base, query, &budget).unwrap();
            cold = cold.min(start.elapsed().as_secs_f64() * 1e3);
            let start = Instant::now();
            let again = fresh.answer(base, query, &budget).unwrap();
            warm = warm.min(start.elapsed().as_secs_f64() * 1e3);
            assert!(again.cache_hit);
        }
        (cold, warm)
    };
    let (bound_cold_ms, bound_warm_ms) = magic_timing(&scenario.bound_query);
    let (point_cold_ms, point_warm_ms) = magic_timing(&scenario.point_query);
    let bound_speedup = full_ms / bound_warm_ms;
    let point_speedup = full_ms / point_warm_ms;

    let mut table = Table::new(&["query", "wall ms", "note"]);
    table.row(&[
        "full TC + bound CQ".into(),
        format!("{full_ms:.3}"),
        format!("{full_tuples} tuples derived"),
    ]);
    table.row(&[
        "bound reach(c, Y), magic cold".into(),
        format!("{bound_cold_ms:.3}"),
        "rewrite + compile + evaluate".into(),
    ]);
    table.row(&[
        "bound reach(c, Y), magic warm".into(),
        format!("{bound_warm_ms:.3}"),
        format!("{demanded} tuples demanded, speedup {bound_speedup:.1}x"),
    ]);
    table.row(&[
        "point reach(c, c'), magic warm".into(),
        format!("{point_warm_ms:.3}"),
        format!("speedup {point_speedup:.1}x (cold {point_cold_ms:.3} ms)"),
    ]);
    print!("{}", table.render());

    let json = format!(
        "{{\n  \"workload\": {{\n    \"chains\": {chains},\n    \"chain_len\": {chain_len},\n    \
         \"edges\": {},\n    \"full_closure_size\": {}\n  }},\n  \
         \"full_wall_ms\": {full_ms:.3},\n  \"full_materialised_tuples\": {full_tuples},\n  \
         \"bound_magic_cold_wall_ms\": {bound_cold_ms:.3},\n  \
         \"bound_magic_warm_wall_ms\": {bound_warm_ms:.3},\n  \
         \"bound_speedup\": {bound_speedup:.2},\n  \
         \"point_magic_cold_wall_ms\": {point_cold_ms:.3},\n  \
         \"point_magic_warm_wall_ms\": {point_warm_ms:.3},\n  \
         \"point_speedup\": {point_speedup:.2},\n  \
         \"demanded_tuples\": {demanded},\n  \"answers_bit_identical\": true\n}}\n",
        scenario.database.len(),
        scenario.full_closure_size,
    );
    std::fs::write("BENCH_magic.json", &json).expect("write BENCH_magic.json");
    println!("wrote BENCH_magic.json");

    assert!(
        bound_speedup >= 10.0,
        "the bound query through the magic path must beat full materialisation \
         by at least 10x, got {bound_speedup:.2}x"
    );
}

/// Recovery — the durability tax and the recovery dividend, on the
/// two-closure delta-stream workload.
///
/// Measures (a) the WAL overhead of durable ingestion (append + fsync
/// before every applied batch) against the identical volatile path, and
/// (b) cold-start recovery (snapshot load + WAL tail replay) against the
/// full re-derivation a non-durable server would pay (base ingest + every
/// delta batch re-applied). Before any timing the harness asserts the
/// durable engine's materialisation — and the *recovered* engine's — are
/// bit-identical to the volatile reference (per-relation row layouts,
/// engine stats and epoch); a tripped assert fails the CI job. Asserts the
/// WAL overhead stays ≤ 25% and recovery beats re-derivation, and writes
/// `BENCH_recovery.json`.
fn recovery_bench(quick: bool) {
    use vadalog_benchgen::delta::two_closure_delta_stream;
    use vadalog_datalog::IncrementalEngine;
    use vadalog_service::{DurabilityConfig, DurableEngine, SyncPolicy};

    println!("-- recovery: WAL overhead and crash recovery vs re-derivation --");
    let samples = if quick { 5 } else { 7 };
    let (nodes, edges, links) = if quick {
        (160, 280, 160)
    } else {
        (240, 500, 300)
    };
    let (delta_batches, batch_size) = if quick { (12usize, 10usize) } else { (24, 12) };
    let scenario = two_closure_delta_stream(nodes, edges, links, delta_batches, batch_size, 42);
    let dir = std::env::temp_dir().join(format!("vadalog-bench-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = DurabilityConfig::new(&dir);

    let fresh = || IncrementalEngine::new(scenario.program.clone()).unwrap();
    let mut seeded = fresh();
    seeded.ingest_database(&scenario.base).unwrap();

    // Correctness gate 1: the durable ingest path is bit-identical to the
    // volatile one (the WAL must be invisible to the engine).
    let mut volatile = seeded.clone();
    let mut durable = DurableEngine::create(seeded.clone(), config.clone()).unwrap();
    for batch in &scenario.deltas {
        volatile.ingest(batch).unwrap();
        durable.ingest(batch).unwrap();
    }
    assert_eq!(
        durable.engine().instance().row_layout(),
        volatile.instance().row_layout(),
        "durable vs volatile ingestion must be bit-identical"
    );
    assert_eq!(durable.engine().stats(), volatile.stats());
    assert_eq!(durable.engine().epoch(), volatile.epoch());
    let (wal_records, wal_bytes, _, _) = durable.wal_stats();
    // "Crash" without clean shutdown: the snapshot holds the base
    // materialisation, the WAL tail holds every delta batch.
    drop(durable);

    // Correctness gate 2: recovery converges to the same bits.
    let (recovered, report) = DurableEngine::recover(fresh(), config.clone()).unwrap();
    assert_eq!(report.records_replayed, delta_batches as u64);
    assert_eq!(
        recovered.engine().instance().row_layout(),
        volatile.instance().row_layout(),
        "recovered state must be bit-identical to the uncrashed engine"
    );
    assert_eq!(recovered.engine().stats(), volatile.stats());
    drop(recovered);

    // Timed: the delta stream through the volatile path and two durable
    // configurations — group commit (fsync every 8 appends; the bound is
    // asserted on this one, since the tiny delta batches make per-batch
    // fsync latency, not WAL bookkeeping, the dominant term) and
    // fsync-per-batch (reported, not asserted). Fresh directory per
    // durable sample so each pays the same WAL work.
    let mut volatile_ms = f64::MAX;
    for _ in 0..samples {
        let mut engine = seeded.clone();
        let start = Instant::now();
        for batch in &scenario.deltas {
            engine.ingest(batch).unwrap();
        }
        volatile_ms = volatile_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    let durable_timing = |label: &str, policy: SyncPolicy| -> f64 {
        let mut best = f64::MAX;
        for sample in 0..samples {
            let sample_dir = dir.join(format!("sample-{label}-{sample}"));
            let sample_config = DurabilityConfig::new(&sample_dir).sync(policy);
            let mut engine = DurableEngine::create(seeded.clone(), sample_config).unwrap();
            let start = Instant::now();
            for batch in &scenario.deltas {
                engine.ingest(batch).unwrap();
            }
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
        }
        best
    };
    let durable_ms = durable_timing("group", SyncPolicy::EveryN(8));
    let durable_fsync_ms = durable_timing("always", SyncPolicy::Always);
    let overhead_pct = (durable_ms / volatile_ms - 1.0) * 100.0;
    let fsync_overhead_pct = (durable_fsync_ms / volatile_ms - 1.0) * 100.0;

    // Timed: cold-start recovery (snapshot + tail replay) vs the full
    // re-derivation a non-durable server pays at startup.
    let mut recovery_ms = f64::MAX;
    for _ in 0..samples {
        let start = Instant::now();
        let (recovered, _) = DurableEngine::recover(fresh(), config.clone()).unwrap();
        recovery_ms = recovery_ms.min(start.elapsed().as_secs_f64() * 1e3);
        drop(recovered);
    }
    let mut rederive_ms = f64::MAX;
    for _ in 0..samples {
        let start = Instant::now();
        let mut engine = fresh();
        engine.ingest_database(&scenario.base).unwrap();
        for batch in &scenario.deltas {
            engine.ingest(batch).unwrap();
        }
        rederive_ms = rederive_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    let recovery_speedup = rederive_ms / recovery_ms;
    let snapshot_bytes = std::fs::metadata(dir.join("snapshot.bin"))
        .map(|m| m.len())
        .unwrap_or(0);

    let mut table = Table::new(&["path", "wall ms", "note"]);
    table.row(&[
        "volatile ingest".into(),
        format!("{volatile_ms:.3}"),
        format!("{delta_batches} batches of {batch_size}"),
    ]);
    table.row(&[
        "durable ingest (group commit)".into(),
        format!("{durable_ms:.3}"),
        format!("WAL overhead {overhead_pct:.1}%"),
    ]);
    table.row(&[
        "durable ingest (fsync/batch)".into(),
        format!("{durable_fsync_ms:.3}"),
        format!("WAL overhead {fsync_overhead_pct:.1}%"),
    ]);
    table.row(&[
        "recovery".into(),
        format!("{recovery_ms:.3}"),
        format!("snapshot + {wal_records} records replayed"),
    ]);
    table.row(&[
        "full re-derivation".into(),
        format!("{rederive_ms:.3}"),
        format!("recovery speedup {recovery_speedup:.2}x"),
    ]);
    print!("{}", table.render());

    let json = format!(
        "{{\n  \"workload\": {{\n    \"nodes\": {nodes},\n    \"edges\": {edges},\n    \
         \"links\": {links},\n    \"delta_batches\": {delta_batches},\n    \
         \"batch_size\": {batch_size}\n  }},\n  \"volatile_ingest_wall_ms\": {volatile_ms:.3},\n  \
         \"durable_ingest_wall_ms\": {durable_ms:.3},\n  \"wal_overhead_pct\": {overhead_pct:.2},\n  \"durable_fsync_wall_ms\": {durable_fsync_ms:.3},\n  \"wal_fsync_overhead_pct\": {fsync_overhead_pct:.2},\n  \
         \"recovery_wall_ms\": {recovery_ms:.3},\n  \"rederive_wall_ms\": {rederive_ms:.3},\n  \
         \"recovery_speedup\": {recovery_speedup:.2},\n  \"wal_records\": {wal_records},\n  \
         \"wal_bytes\": {wal_bytes},\n  \"snapshot_bytes\": {snapshot_bytes}\n}}\n"
    );
    std::fs::write("BENCH_recovery.json", &json).expect("write BENCH_recovery.json");
    println!("wrote BENCH_recovery.json");
    let _ = std::fs::remove_dir_all(&dir);

    assert!(
        overhead_pct <= 25.0,
        "group-commit WAL overhead must stay within 25% of volatile ingestion, \
         got {overhead_pct:.1}%"
    );
    assert!(
        recovery_speedup > 1.0,
        "recovery (snapshot + tail) must beat full re-derivation, got {recovery_speedup:.2}x"
    );
}

/// Incremental — the live engine's delta-ingest path against a full
/// from-scratch re-evaluation of the union, on the two-closure delta-stream
/// workload (`t` over `edge` is touched by every delta batch; `s` over
/// `link` is provably unaffected and must be skipped). Before any timing the
/// harness asserts the incremental materialisation **bit-identical** to the
/// from-scratch one — equal answer sets for both closures and equal
/// per-relation row sets — and `strata_skipped ≥ 1` on every delta batch;
/// a tripped assert fails the CI job. Writes `BENCH_incremental.json`.
fn incremental_bench(quick: bool) {
    use vadalog_benchgen::delta::two_closure_delta_stream;
    use vadalog_datalog::IncrementalEngine;

    println!("-- incremental: live delta ingestion vs full re-evaluation --");
    let samples = if quick { 3 } else { 5 };
    let (nodes, edges, links) = if quick {
        (100, 150, 100)
    } else {
        (200, 400, 260)
    };
    let (delta_batches, batch_size) = (2usize, 4usize);
    let scenario = two_closure_delta_stream(nodes, edges, links, delta_batches, batch_size, 42);

    // Seed the live engine with the base materialisation (not part of the
    // timed delta path — a service pays it once at startup).
    let mut seeded = IncrementalEngine::new(scenario.program.clone()).unwrap();
    seeded.ingest_database(&scenario.base).unwrap();

    // Correctness gate: ingest the stream once and compare against the
    // from-scratch evaluation of the union.
    let mut live = seeded.clone();
    let mut strata_skipped = 0usize;
    let mut rounds_incremental = 0usize;
    let mut delta_derived = 0usize;
    for batch in &scenario.deltas {
        let outcome = live.ingest(batch).unwrap();
        assert!(
            outcome.strata_skipped >= 1,
            "every delta touches only `edge`; the link/s stratum must be provably skipped"
        );
        strata_skipped += outcome.strata_skipped;
        rounds_incremental += outcome.rounds;
        delta_derived += outcome.derived_atoms;
    }
    let full_engine = DatalogEngine::new(scenario.program.clone()).unwrap();
    let full = full_engine.evaluate(&scenario.union);
    let t_query = parse_query("?(X, Y) :- t(X, Y).").unwrap();
    let s_query = parse_query("?(X, Y) :- s(X, Y).").unwrap();
    let t_answers = live.answers(&t_query);
    let s_answers = live.answers(&s_query);
    assert_eq!(
        t_answers,
        full.answers(&t_query),
        "t answers: incremental vs from-scratch"
    );
    assert_eq!(
        s_answers,
        full.answers(&s_query),
        "s answers: incremental vs from-scratch"
    );
    assert_eq!(
        live.instance().sorted_row_layout(),
        full.instance.sorted_row_layout(),
        "per-relation row sets: incremental vs from-scratch"
    );

    // Timed: the whole delta stream through the incremental path (each
    // sample restarts from a clone of the seeded engine, so every run
    // ingests from the same state)…
    let mut incremental_ms = f64::MAX;
    for _ in 0..samples {
        let mut engine = seeded.clone();
        let start = Instant::now();
        for batch in &scenario.deltas {
            engine.ingest(batch).unwrap();
        }
        incremental_ms = incremental_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    // …against a full from-scratch re-evaluation of the union.
    let mut full_ms = f64::MAX;
    for _ in 0..samples {
        let start = Instant::now();
        let _ = full_engine.evaluate(&scenario.union);
        full_ms = full_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    let speedup = full_ms / incremental_ms;
    let streamed = delta_batches * batch_size;

    let mut table = Table::new(&["path", "facts (re)processed", "wall (ms)", "speedup"]);
    table.row(&[
        "full re-evaluation of the union".to_string(),
        scenario.union.len().to_string(),
        format!("{full_ms:.3}"),
        "1.0x".to_string(),
    ]);
    table.row(&[
        format!("incremental ingest ({delta_batches} batches of {batch_size})"),
        streamed.to_string(),
        format!("{incremental_ms:.3}"),
        format!("{speedup:.1}x"),
    ]);
    println!("{}", table.render());
    println!(
        "delta stream: {delta_derived} atoms derived in {rounds_incremental} incremental \
         rounds, {strata_skipped} strata skipped ({} per batch)",
        strata_skipped / delta_batches.max(1)
    );

    let json = format!(
        "{{\n  \"workload\": {{\n    \"nodes\": {nodes},\n    \"edge_facts\": {edge_facts},\n    \"link_facts\": {link_facts},\n    \"delta_batches\": {delta_batches},\n    \"batch_size\": {batch_size},\n    \"union_facts\": {union_facts}\n  }},\n  \"full_reevaluation_wall_ms\": {full_ms:.3},\n  \"incremental_ingest_wall_ms\": {incremental_ms:.3},\n  \"speedup\": {speedup:.2},\n  \"delta_derived_atoms\": {delta_derived},\n  \"rounds_incremental\": {rounds_incremental},\n  \"strata_skipped\": {strata_skipped},\n  \"answers_t\": {answers_t},\n  \"answers_s\": {answers_s},\n  \"peak_atoms\": {peak}\n}}\n",
        edge_facts = edges + streamed,
        link_facts = links,
        union_facts = scenario.union.len(),
        answers_t = t_answers.len(),
        answers_s = s_answers.len(),
        peak = live.instance().len(),
    );
    std::fs::write("BENCH_incremental.json", &json).expect("write BENCH_incremental.json");
    println!("wrote BENCH_incremental.json");
}

/// Parallel — the sharded evaluator at 1/2/4/8 worker threads on four
/// workloads (TC-200 materialisation, the 3-hop CQ, the OWL 2 QL scenario
/// and the data-exchange scenario); writes `BENCH_parallel.json`. Every
/// thread count is asserted **bit-identical** to the sequential run (stats,
/// and for the materialisations the full row-id layout) before any timing,
/// so the table measures pure scheduling/merge behaviour. Wall-clock speedup
/// is bounded by the host's available parallelism (recorded in the JSON): on
/// a single-core container every thread count necessarily ties.
fn parallel_bench(quick: bool) {
    use std::ops::ControlFlow;
    use vadalog_model::parallel::sharded_match_count;
    use vadalog_model::{Atom, JoinSpec, Matcher, Term};

    println!("-- parallel: sharded semi-naive evaluation across worker threads --");
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let thread_counts: [usize; 4] = [1, 2, 4, 8];
    let samples = if quick { 3 } else { 5 };
    let (nodes, edges) = if quick { (100, 150) } else { (200, 400) };
    let db = random_graph(nodes, edges, 42);
    let tc = program(LINEAR_TC);

    // TC materialisation at each thread count (best of N after a warm-up
    // that also checks bit-identity against the sequential run).
    let baseline = DatalogEngine::new(tc.clone()).unwrap().evaluate(&db);
    let mut tc_ms = Vec::new();
    for &threads in &thread_counts {
        let engine = DatalogEngine::new(tc.clone())
            .unwrap()
            .with_threads(threads);
        let warm = engine.evaluate(&db);
        assert_eq!(warm.stats.derived_atoms, baseline.stats.derived_atoms);
        assert_eq!(warm.stats.joins_evaluated, baseline.stats.joins_evaluated);
        assert_eq!(warm.stats.join_probes, baseline.stats.join_probes);
        assert_eq!(warm.stats.rows_prededuped, baseline.stats.rows_prededuped);
        assert_eq!(
            warm.instance.row_layout(),
            baseline.instance.row_layout(),
            "TC row layout must be bit-identical at {threads} threads"
        );
        let mut best = f64::MAX;
        for _ in 0..samples {
            let start = Instant::now();
            let _ = engine.evaluate(&db);
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
        }
        tc_ms.push(best);
    }

    // 3-hop CQ over a sparser graph's materialised closure, sharded on the
    // driver atom's rows.
    let (cq_nodes, cq_edges) = if quick { (100, 130) } else { (200, 260) };
    let closure = DatalogEngine::new(tc.clone())
        .unwrap()
        .evaluate(&random_graph(cq_nodes, cq_edges, 42))
        .instance;
    let v = Term::variable;
    let pattern = vec![
        Atom::new("t", vec![v("X"), v("Y")]),
        Atom::new("t", vec![v("Y"), v("Z")]),
        Atom::new("t", vec![v("Z"), v("W")]),
    ];
    let spec = JoinSpec::compile(&pattern);
    let mut sequential_answers = 0u64;
    Matcher::new(&spec).for_each(&closure, |_| {
        sequential_answers += 1;
        ControlFlow::Continue(())
    });
    let mut cq_ms = Vec::new();
    for &threads in &thread_counts {
        let warm = sharded_match_count(&spec, &closure, threads);
        assert_eq!(warm.matches, sequential_answers);
        let mut best = f64::MAX;
        for _ in 0..samples {
            let start = Instant::now();
            let _ = sharded_match_count(&spec, &closure, threads);
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
        }
        cq_ms.push(best);
    }

    // OWL 2 QL (Example 3.3): existential rules, so the bottom-up reasoner
    // carries the parallel trigger detection; application stays sequential,
    // hence full row-layout bit-identity across thread counts.
    let owl_db = owl_database(
        if quick { 15 } else { 40 },
        6,
        if quick { 60 } else { 200 },
        7,
    );
    let owl = owl_program();
    let owl_baseline = Reasoner::new(&owl, EngineConfig::default()).run(&owl_db);
    let mut owl_ms = Vec::new();
    for &threads in &thread_counts {
        let reasoner = Reasoner::new(
            &owl,
            EngineConfig {
                threads,
                ..EngineConfig::default()
            },
        );
        let warm = reasoner.run(&owl_db);
        assert_eq!(warm.stats.derived_atoms, owl_baseline.stats.derived_atoms);
        assert_eq!(warm.stats.join_probes, owl_baseline.stats.join_probes);
        assert_eq!(warm.stats.nulls_created, owl_baseline.stats.nulls_created);
        assert_eq!(
            warm.instance.row_layout(),
            owl_baseline.instance.row_layout(),
            "OWL row layout must be bit-identical at {threads} threads"
        );
        let mut best = f64::MAX;
        for _ in 0..samples {
            let start = Instant::now();
            let _ = reasoner.run(&owl_db);
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
        }
        owl_ms.push(best);
    }

    // Data exchange: source-to-target TGDs with value invention plus a
    // recursive target closure, chased with parallel trigger detection.
    let dex = data_exchange_scenario(3, if quick { 40 } else { 120 }, 25, 11);
    let dex_config = ChaseConfig {
        record_provenance: false,
        ..ChaseConfig::restricted(TerminationPolicy::Unbounded)
    };
    let dex_baseline = ChaseEngine::new(dex.program.clone(), dex_config).run(&dex.database);
    assert!(dex_baseline.completed);
    let mut dex_ms = Vec::new();
    for &threads in &thread_counts {
        let engine = ChaseEngine::new(dex.program.clone(), dex_config.with_threads(threads));
        let warm = engine.run(&dex.database);
        assert_eq!(warm.stats.steps, dex_baseline.stats.steps);
        assert_eq!(warm.stats.nulls_created, dex_baseline.stats.nulls_created);
        assert_eq!(
            warm.instance.row_layout(),
            dex_baseline.instance.row_layout(),
            "data-exchange row layout must be bit-identical at {threads} threads"
        );
        let mut best = f64::MAX;
        for _ in 0..samples {
            let start = Instant::now();
            let _ = engine.run(&dex.database);
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
        }
        dex_ms.push(best);
    }

    let mut table = Table::new(&["workload", "threads", "wall (ms)", "speedup vs 1"]);
    for (label, times) in [
        (
            format!("TC materialisation ({nodes} nodes, {edges} edges)"),
            &tc_ms,
        ),
        ("3-hop CQ over closure".to_string(), &cq_ms),
        ("OWL 2 QL reasoning".to_string(), &owl_ms),
        ("data exchange chase".to_string(), &dex_ms),
    ] {
        for (&threads, &ms) in thread_counts.iter().zip(times.iter()) {
            table.row(&[
                label.clone(),
                threads.to_string(),
                format!("{ms:.2}"),
                format!("{:.2}x", times[0] / ms),
            ]);
        }
    }
    println!("available parallelism on this host: {cores}");
    println!("{}", table.render());

    let per_thread = |times: &[f64]| -> String {
        thread_counts
            .iter()
            .zip(times.iter())
            .map(|(&threads, &ms)| {
                format!(
                    "        \"{threads}\": {{ \"wall_ms\": {ms:.3}, \"speedup_vs_1\": {:.2} }}",
                    times[0] / ms
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let json = format!(
        "{{\n  \"available_parallelism\": {cores},\n  \"workloads\": {{\n    \"tc_materialization\": {{\n      \"nodes\": {nodes},\n      \"edges\": {edges},\n      \"derived_atoms\": {derived},\n      \"rows_prededuped\": {prededuped},\n      \"threads\": {{\n{tc_threads}\n      }}\n    }},\n    \"cq_path3\": {{\n      \"nodes\": {cq_nodes},\n      \"edges\": {cq_edges},\n      \"answers\": {answers},\n      \"threads\": {{\n{cq_threads}\n      }}\n    }},\n    \"owl2ql\": {{\n      \"derived_atoms\": {owl_derived},\n      \"nulls_created\": {owl_nulls},\n      \"threads\": {{\n{owl_threads}\n      }}\n    }},\n    \"data_exchange\": {{\n      \"chase_steps\": {dex_steps},\n      \"nulls_created\": {dex_nulls},\n      \"threads\": {{\n{dex_threads}\n      }}\n    }}\n  }}\n}}\n",
        derived = baseline.stats.derived_atoms,
        prededuped = baseline.stats.rows_prededuped,
        tc_threads = per_thread(&tc_ms),
        answers = sequential_answers,
        cq_threads = per_thread(&cq_ms),
        owl_derived = owl_baseline.stats.derived_atoms,
        owl_nulls = owl_baseline.stats.nulls_created,
        owl_threads = per_thread(&owl_ms),
        dex_steps = dex_baseline.stats.steps,
        dex_nulls = dex_baseline.stats.nulls_created,
        dex_threads = per_thread(&dex_ms),
    );
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("wrote BENCH_parallel.json");
}

/// The PR 3 kernel wall times on the full-size workloads (recorded in the
/// repository's `BENCH_joins.json` before this change), so the JSON can
/// report the composite-index kernel's improvement against them. `None`
/// in quick mode, whose workload sizes differ.
const PR3_BASELINE_TC_MS: f64 = 5.362;
const PR3_BASELINE_CQ_MS: f64 = 66.876;

/// Joins — the packed build/probe kernel vs. the seed baseline on five
/// workloads: transitive-closure materialisation (200-node random graph), a
/// join-heavy 3-hop CQ, CQs over the materialised OWL 2 QL and
/// data-exchange scenarios, and the 2-key foreign-key join chain whose
/// every join binds a two-column key (composite plan vs. single-column plan
/// on the same kernel). Every workload asserts kernel/reference answer
/// equality before timing; writes `BENCH_joins.json` with the new
/// composite-index observability fields — `composite_probes`,
/// `probe_misses_filtered` (fingerprint skips) and per-workload
/// `index_bytes` — plus the PR 3 kernel baseline for the two original
/// workloads (full mode only).
fn joins_bench(quick: bool) {
    use std::ops::ControlFlow;
    use vadalog_bench::seed_reference;
    use vadalog_benchgen::fkjoin::fk_join_scenario;
    use vadalog_model::homomorphism::reference::homomorphisms_reference;
    use vadalog_model::{
        Atom, HomSearch, Instance, JoinPlan, JoinSpec, JoinStats, Matcher, Substitution, Term,
    };

    println!("-- joins: packed columnar store + build/probe kernel vs. seed algorithm --");
    let (nodes, edges) = if quick { (100, 150) } else { (200, 400) };
    let db = random_graph(nodes, edges, 42);
    let tc = program(LINEAR_TC);
    let engine = DatalogEngine::new(tc.clone()).unwrap();
    let samples = if quick { 3 } else { 5 };

    // Times one planned kernel enumeration (best of N), returning the
    // answer count, wall time and the kernel counters of the final run.
    let time_plan =
        |spec: &JoinSpec, plan: &JoinPlan, target: &Instance| -> (u64, f64, JoinStats) {
            let mut best_ms = f64::MAX;
            let mut answers = 0u64;
            let mut stats = JoinStats::default();
            for _ in 0..samples {
                let start = Instant::now();
                let mut count = 0u64;
                let mut matcher = Matcher::new(spec);
                matcher.set_plan(Some(plan));
                stats = matcher.for_each(target, |_| {
                    count += 1;
                    ControlFlow::Continue(())
                });
                best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
                answers = count;
            }
            (answers, best_ms, stats)
        };

    // Times a planned kernel count and the reference enumeration of the same
    // pattern, asserting equal answer counts (the bit-identity gate of the
    // CQ workloads).
    let cq_workload = |pattern: &[Atom], target: &Instance| -> (u64, f64, f64, JoinStats) {
        let spec = JoinSpec::compile(pattern);
        let plan = spec.plan(target, &[]);
        let (kernel_answers, kernel_ms, stats) = time_plan(&spec, &plan, target);
        let start = Instant::now();
        let seed_answers =
            homomorphisms_reference(pattern, target, &Substitution::new(), HomSearch::all()).len();
        let seed_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            kernel_answers as usize, seed_answers,
            "kernel and reference must agree on {pattern:?}"
        );
        (kernel_answers, kernel_ms, seed_ms, stats)
    };

    // Transitive-closure materialisation (best of N timed runs each, after a
    // shared warm-up, so one scheduler hiccup cannot skew the ratio).
    let warm = engine.evaluate(&db);
    let mut kernel_tc_ms = f64::MAX;
    let mut kernel_result = engine.evaluate(&db);
    for _ in 0..samples {
        let start = Instant::now();
        kernel_result = engine.evaluate(&db);
        kernel_tc_ms = kernel_tc_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    let mut seed_tc_ms = f64::MAX;
    let mut seed_stats = seed_reference::evaluate(&tc, &db).1;
    for _ in 0..samples {
        let start = Instant::now();
        seed_stats = seed_reference::evaluate(&tc, &db).1;
        seed_tc_ms = seed_tc_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    assert_eq!(kernel_result.stats.derived_atoms, seed_stats.derived_atoms);
    assert_eq!(kernel_result.stats.peak_atoms, seed_stats.peak_atoms);

    // Join-heavy CQ over a materialised closure. Evaluated on a sparser
    // graph's closure than the TC workload: the baseline *materialises*
    // every answer substitution, and a 3-hop pattern over a dense closure
    // has too many answers for it to finish in sensible time.
    let (cq_nodes, cq_edges) = if quick { (100, 130) } else { (200, 260) };
    let closure = if (cq_nodes, cq_edges) == (nodes, edges) {
        warm.instance
    } else {
        engine
            .evaluate(&random_graph(cq_nodes, cq_edges, 42))
            .instance
    };
    let v = Term::variable;
    let pattern = vec![
        Atom::new("t", vec![v("X"), v("Y")]),
        Atom::new("t", vec![v("Y"), v("Z")]),
        Atom::new("t", vec![v("Z"), v("W")]),
    ];
    let (kernel_answers, kernel_cq_ms, seed_cq_ms, _) = cq_workload(&pattern, &closure);

    // OWL 2 QL (Example 3.3): materialise with the bottom-up reasoner, then
    // answer a 2-hop typing CQ with both kernels.
    let owl_db = owl_database(
        if quick { 15 } else { 40 },
        6,
        if quick { 60 } else { 200 },
        7,
    );
    let owl_instance = Reasoner::new(&owl_program(), EngineConfig::default())
        .run(&owl_db)
        .instance;
    let owl_pattern = vec![
        Atom::new("type", vec![v("X"), v("C")]),
        Atom::new("subclassStar", vec![v("C"), v("D")]),
        Atom::new("type", vec![v("Y"), v("D")]),
    ];
    let (owl_answers, owl_kernel_ms, owl_seed_ms, _) = cq_workload(&owl_pattern, &owl_instance);

    // Data exchange: chase the source-to-target TGDs, then answer a 2-hop
    // connectivity CQ over the target closure.
    let dex = data_exchange_scenario(3, if quick { 40 } else { 120 }, 25, 11);
    let dex_instance = ChaseEngine::new(
        dex.program.clone(),
        ChaseConfig {
            record_provenance: false,
            ..ChaseConfig::restricted(TerminationPolicy::Unbounded)
        },
    )
    .run(&dex.database)
    .instance;
    let dex_pattern = vec![
        Atom::new("connected", vec![v("X"), v("Y")]),
        Atom::new("connected", vec![v("Y"), v("Z")]),
    ];
    let (dex_answers, dex_kernel_ms, dex_seed_ms, _) = cq_workload(&dex_pattern, &dex_instance);

    // 2-key foreign-key join chain: every join binds a two-column key, so
    // this is where composite fused-key probes and fingerprint miss-skipping
    // pay off. Both plan flavours run on the *same* kernel over the same
    // instance and must enumerate the same answers (asserted, with the
    // reference oracle as a third witness, before any timing).
    let (fk_groups, fk_rows) = (40, if quick { 1500 } else { 6000 });
    let fk = fk_join_scenario(fk_groups, fk_rows, 13);
    let fk_instance = fk.database.as_instance();
    let fk_spec = JoinSpec::compile(&fk.pattern);
    let fk_composite_plan = fk_spec.plan(fk_instance, &[]);
    let fk_single_plan = fk_spec.plan_with_options(
        fk_instance,
        &[],
        vadalog_model::PlanOptions {
            composite_keys: false,
        },
    );
    let (fk_answers, fk_composite_ms, fk_stats) =
        time_plan(&fk_spec, &fk_composite_plan, fk_instance);
    let (fk_single_answers, fk_single_ms, fk_single_stats) =
        time_plan(&fk_spec, &fk_single_plan, fk_instance);
    assert_eq!(
        fk_answers, fk_single_answers,
        "composite and single-column plans must enumerate the same FK-chain answers"
    );
    assert_eq!(
        fk_answers as usize, fk.expected_answers,
        "FK-chain answers must match the generator's bookkeeping"
    );
    let start = Instant::now();
    let fk_seed_answers = homomorphisms_reference(
        &fk.pattern,
        fk_instance,
        &Substitution::new(),
        HomSearch::all(),
    )
    .len();
    let fk_seed_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        fk_answers as usize, fk_seed_answers,
        "FK chain vs reference oracle"
    );
    let fk_index_bytes = fk_instance.index_bytes();

    let mut table = Table::new(&["workload", "kernel (ms)", "seed (ms)", "speedup"]);
    for (label, kernel_ms, seed_ms) in [
        (
            format!("TC materialisation ({nodes} nodes, {edges} edges)"),
            kernel_tc_ms,
            seed_tc_ms,
        ),
        (
            "3-hop CQ over closure".to_string(),
            kernel_cq_ms,
            seed_cq_ms,
        ),
        ("OWL 2 QL typing CQ".to_string(), owl_kernel_ms, owl_seed_ms),
        (
            "data-exchange connectivity CQ".to_string(),
            dex_kernel_ms,
            dex_seed_ms,
        ),
        (
            "2-key FK join chain CQ".to_string(),
            fk_composite_ms,
            fk_seed_ms,
        ),
    ] {
        table.row(&[
            label,
            format!("{kernel_ms:.2}"),
            format!("{seed_ms:.2}"),
            format!("{:.1}x", seed_ms / kernel_ms),
        ]);
    }
    println!("{}", table.render());
    println!(
        "FK chain, composite vs single-column plan: {fk_composite_ms:.2} ms vs \
         {fk_single_ms:.2} ms ({:.2}x); composite_probes={}, probe_misses_filtered={} \
         (single-column plan: {} filtered), index_bytes={fk_index_bytes}",
        fk_single_ms / fk_composite_ms,
        fk_stats.composite_probes,
        fk_stats.misses_filtered,
        fk_single_stats.misses_filtered,
    );
    println!(
        "TC materialisation composite_probes={}, probe_misses_filtered={}",
        warm.stats.composite_probes, warm.stats.probe_misses_filtered
    );

    // The PR 3 baseline comparison only applies to the full-size workloads.
    let pr3 = |baseline: f64, now: f64| -> (String, String) {
        if quick {
            ("null".to_string(), "null".to_string())
        } else {
            (format!("{baseline:.3}"), format!("{:.2}", baseline / now))
        }
    };
    let (tc_pr3, tc_pr3_speedup) = pr3(PR3_BASELINE_TC_MS, kernel_tc_ms);
    let (cq_pr3, cq_pr3_speedup) = pr3(PR3_BASELINE_CQ_MS, kernel_cq_ms);
    let json = format!(
        "{{\n  \"workloads\": {{\n    \"tc_materialization\": {{\n      \"nodes\": {nodes},\n      \"edges\": {edges},\n      \"derived_atoms\": {derived},\n      \"peak_atoms\": {peak},\n      \"composite_probes\": {tc_composite},\n      \"probe_misses_filtered\": {tc_filtered},\n      \"index_bytes\": {tc_index_bytes},\n      \"kernel_wall_ms\": {kernel_tc_ms:.3},\n      \"seed_reference_wall_ms\": {seed_tc_ms:.3},\n      \"speedup\": {tc_speedup:.2},\n      \"pr3_kernel_wall_ms\": {tc_pr3},\n      \"speedup_vs_pr3_kernel\": {tc_pr3_speedup}\n    }},\n    \"cq_path3\": {{\n      \"nodes\": {cq_nodes},\n      \"edges\": {cq_edges},\n      \"answers\": {answers},\n      \"peak_atoms\": {cq_peak},\n      \"index_bytes\": {cq_index_bytes},\n      \"kernel_wall_ms\": {kernel_cq_ms:.3},\n      \"seed_reference_wall_ms\": {seed_cq_ms:.3},\n      \"speedup\": {cq_speedup:.2},\n      \"pr3_kernel_wall_ms\": {cq_pr3},\n      \"speedup_vs_pr3_kernel\": {cq_pr3_speedup}\n    }},\n    \"owl2ql_typing_cq\": {{\n      \"answers\": {owl_answers},\n      \"peak_atoms\": {owl_peak},\n      \"index_bytes\": {owl_index_bytes},\n      \"kernel_wall_ms\": {owl_kernel_ms:.3},\n      \"seed_reference_wall_ms\": {owl_seed_ms:.3},\n      \"speedup\": {owl_speedup:.2}\n    }},\n    \"data_exchange_connectivity_cq\": {{\n      \"answers\": {dex_answers},\n      \"peak_atoms\": {dex_peak},\n      \"index_bytes\": {dex_index_bytes},\n      \"kernel_wall_ms\": {dex_kernel_ms:.3},\n      \"seed_reference_wall_ms\": {dex_seed_ms:.3},\n      \"speedup\": {dex_speedup:.2}\n    }},\n    \"fk_join_2key_cq\": {{\n      \"groups\": {fk_groups},\n      \"rows\": {fk_rows},\n      \"answers\": {fk_answers},\n      \"peak_atoms\": {fk_peak},\n      \"composite_probes\": {fk_composite_probes},\n      \"probe_misses_filtered\": {fk_filtered},\n      \"index_bytes\": {fk_index_bytes},\n      \"kernel_wall_ms\": {fk_composite_ms:.3},\n      \"single_column_wall_ms\": {fk_single_ms:.3},\n      \"speedup_vs_single_column\": {fk_vs_single:.2},\n      \"seed_reference_wall_ms\": {fk_seed_ms:.3},\n      \"speedup\": {fk_speedup:.2}\n    }}\n  }}\n}}\n",
        derived = kernel_result.stats.derived_atoms,
        peak = kernel_result.stats.peak_atoms,
        tc_composite = warm.stats.composite_probes,
        tc_filtered = warm.stats.probe_misses_filtered,
        tc_index_bytes = kernel_result.instance.index_bytes(),
        tc_speedup = seed_tc_ms / kernel_tc_ms,
        answers = kernel_answers,
        cq_peak = closure.len(),
        cq_index_bytes = closure.index_bytes(),
        cq_speedup = seed_cq_ms / kernel_cq_ms,
        owl_peak = owl_instance.len(),
        owl_index_bytes = owl_instance.index_bytes(),
        owl_speedup = owl_seed_ms / owl_kernel_ms,
        dex_peak = dex_instance.len(),
        dex_index_bytes = dex_instance.index_bytes(),
        dex_speedup = dex_seed_ms / dex_kernel_ms,
        fk_peak = fk_instance.len(),
        fk_composite_probes = fk_stats.composite_probes,
        fk_filtered = fk_stats.misses_filtered,
        fk_vs_single = fk_single_ms / fk_composite_ms,
        fk_speedup = fk_seed_ms / fk_composite_ms,
    );
    std::fs::write("BENCH_joins.json", &json).expect("write BENCH_joins.json");
    println!("wrote BENCH_joins.json");
}

/// E1 — data complexity / space: the proof search keeps a constant-size
/// frontier while bottom-up evaluation materialises a growing instance.
fn e1_space(quick: bool) {
    println!("-- E1: space usage, linear proof search vs. materialisation (reachability) --");
    let sizes: &[usize] = if quick {
        &[50, 100]
    } else {
        &[50, 100, 200, 400]
    };
    let tc = program(LINEAR_TC);
    let query = parse_query("?(X, Y) :- t(X, Y).").unwrap();
    let mut table = Table::new(&[
        "|D| (edges)",
        "materialised atoms (semi-naive)",
        "proof-search node width",
        "proof-search states",
        "node-width bound",
        "positive decision (ms)",
    ]);
    for &n in sizes {
        let db = chain_graph(n);
        let datalog = DatalogEngine::new(tc.clone()).unwrap().evaluate(&db);
        let boolean = query
            .instantiate(&[Symbol::new("n0"), Symbol::new(&format!("n{n}"))])
            .unwrap();
        let start = Instant::now();
        let outcome = linear_proof_search(&tc, &db, &boolean, SearchOptions::default());
        let elapsed = start.elapsed().as_millis();
        assert!(outcome.is_accepted(), "n0 reaches n{n}");
        let stats = outcome.stats();
        table.row(&[
            n.to_string(),
            datalog.stats.peak_atoms.to_string(),
            stats.max_state_size.to_string(),
            stats.states_visited.to_string(),
            stats.node_width_bound.to_string(),
            elapsed.to_string(),
        ]);
    }
    println!("{}", table.render());
}

/// E2 — the 55 / 15 / 30 statistic of Section 1.2 over a generated suite.
fn e2_scenario_statistics(quick: bool) {
    println!("-- E2: recursion-shape statistics over an iWarded-style suite --");
    let total = if quick { 60 } else { 200 };
    let mix = ScenarioMix::default();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2024);
    let mut counts: BTreeMap<ScenarioClass, usize> = BTreeMap::new();
    for seed in 0..total as u64 {
        let kind = mix.draw(&mut rng);
        let scenario = iwarded_scenario(kind, 6, seed);
        *counts.entry(classify_scenario(&scenario)).or_insert(0) += 1;
    }
    let mut table = Table::new(&["class", "scenarios", "fraction", "paper"]);
    let paper: &[(ScenarioClass, &str)] = &[
        (ScenarioClass::WardedPwl, "≈55%"),
        (ScenarioClass::WardedLinearizable, "≈15%"),
        (ScenarioClass::WardedNonPwl, "≈30%"),
        (ScenarioClass::NotWarded, "0% (all scenarios warded)"),
    ];
    for (class, paper_share) in paper {
        let count = counts.get(class).copied().unwrap_or(0);
        table.row(&[
            class.to_string(),
            count.to_string(),
            format!("{:.1}%", 100.0 * count as f64 / total as f64),
            paper_share.to_string(),
        ]);
    }
    println!("{}", table.render());
}

/// E3 — combined complexity: growth of the search with the program's level
/// structure on a fixed database.
fn e3_combined_complexity(quick: bool) {
    println!("-- E3: combined complexity, search work vs. program depth --");
    let levels: &[usize] = if quick { &[1, 2, 3] } else { &[1, 2, 3, 4, 5] };
    let db = chain_graph(6);
    let mut table = Table::new(&[
        "levels",
        "rules",
        "node-width bound",
        "states visited",
        "decision (ms)",
    ]);
    for &k in levels {
        let prog = layered_program(k);
        let query = parse_query(&format!("?(X, Y) :- p{k}(X, Y).")).unwrap();
        let boolean = query
            .instantiate(&[Symbol::new("n0"), Symbol::new("n6")])
            .unwrap();
        let start = Instant::now();
        let outcome = linear_proof_search(&prog, &db, &boolean, SearchOptions::default());
        let elapsed = start.elapsed().as_millis();
        assert!(outcome.is_accepted());
        table.row(&[
            k.to_string(),
            prog.len().to_string(),
            outcome.stats().node_width_bound.to_string(),
            outcome.stats().states_visited.to_string(),
            elapsed.to_string(),
        ]);
    }
    println!("{}", table.render());
}

/// E4 — Theorem 6.3: the rewriting into piece-wise linear Datalog agrees with
/// the other evaluation strategies.
fn e4_rewriting() {
    println!("-- E4: rewriting (WARD ∩ PWL, CQ) into piece-wise linear Datalog --");
    let scenarios: Vec<(&str, &str, &str, Database)> = vec![
        (
            "linear TC",
            LINEAR_TC,
            "?(A, B) :- t(A, B).",
            chain_graph(8),
        ),
        (
            "existential loop",
            "r(X, Z) :- p(X).\n p(Y) :- r(X, Y).",
            "?(A) :- r(A, Y), r(Y, W).",
            vadalog_model::parser::parse("p(a). p(b). p(c).")
                .unwrap()
                .database,
        ),
        (
            "subclass closure",
            "subclassStar(X, Y) :- subclass(X, Y).\n\
             subclassStar(X, Z) :- subclassStar(X, Y), subclass(Y, Z).",
            "?(A, B) :- subclassStar(A, B).",
            vadalog_model::parser::parse("subclass(c1, c2). subclass(c2, c3). subclass(c3, c4).")
                .unwrap()
                .database,
        ),
    ];
    let mut table = Table::new(&[
        "scenario",
        "rewriting states",
        "rewriting rules",
        "intensionally linear",
        "answers match engine",
        "answers",
    ]);
    for (name, rules, query_src, db) in scenarios {
        let prog = parse_rules(rules).unwrap();
        let query = parse_query(query_src).unwrap();
        let rewritten = rewrite_to_pwl_datalog(&prog, &query, RewriteOptions::default())
            .unwrap()
            .expect("rewriting within bounds");
        let datalog_answers = DatalogEngine::new(rewritten.program.clone())
            .unwrap()
            .answers(&db, &rewritten.query);
        let engine = CertainAnswerEngine::with_defaults(prog).unwrap();
        let mut all_match = true;
        for answer in &datalog_answers {
            if !engine.is_certain_answer(&db, &query, answer).unwrap() {
                all_match = false;
            }
        }
        table.row(&[
            name.to_string(),
            rewritten.state_count.to_string(),
            rewritten.program.len().to_string(),
            is_intensionally_linear(&rewritten.program).to_string(),
            all_match.to_string(),
            datalog_answers.len().to_string(),
        ]);
    }
    println!("{}", table.render());
}

/// E5 — Theorem 5.1: the tiling reduction is PWL but not warded; bounded
/// chase evaluation mirrors the bounded tiling solver.
fn e5_tiling() {
    println!("-- E5: the Section 5 tiling reduction (PWL without wardedness) --");
    let systems: Vec<(&str, TilingSystem)> = vec![
        ("solvable corridor", TilingSystem::solvable_example()),
        ("unsolvable corridor", TilingSystem::unsolvable_example()),
    ];
    let mut table = Table::new(&[
        "tiling system",
        "pwl",
        "warded",
        "bounded solver (4×4)",
        "bounded chase answers query",
        "chase atoms",
    ]);
    for (name, system) in systems {
        let red = reduction(&system);
        let solver = has_tiling_within(&system, 4, 4).is_some();
        let chase = ChaseEngine::new(
            red.program.clone(),
            ChaseConfig {
                record_provenance: false,
                ..ChaseConfig::restricted(TerminationPolicy::MaxNullDepth(4))
            },
        );
        let result = chase.run(&red.database);
        table.row(&[
            name.to_string(),
            is_piecewise_linear(&red.program).to_string(),
            is_warded(&red.program).to_string(),
            solver.to_string(),
            result.boolean_answer(&red.query).to_string(),
            result.instance.len().to_string(),
        ]);
    }
    println!("{}", table.render());
}

/// E6 — Section 7 ablations: join ordering and strata materialisation.
fn e6_ablation(quick: bool) {
    println!("-- E6: Section 7 ablations (join ordering, strata materialisation) --");
    let owl_db = owl_database(
        if quick { 15 } else { 40 },
        6,
        if quick { 60 } else { 200 },
        7,
    );
    let dex = data_exchange_scenario(3, if quick { 40 } else { 120 }, 25, 11);
    let scenarios: Vec<(&str, vadalog_model::Program, Database)> = vec![
        ("OWL 2 QL (Example 3.3)", owl_program(), owl_db),
        ("data exchange", dex.program, dex.database),
    ];
    let mut table = Table::new(&[
        "scenario",
        "config",
        "join probes",
        "derived atoms",
        "peak atoms",
        "rounds",
        "time (ms)",
    ]);
    for (name, prog, db) in scenarios {
        let configs: Vec<(&str, EngineConfig)> = vec![
            ("pwl-aware order, strata", EngineConfig::default()),
            (
                "as-written order, strata",
                EngineConfig {
                    join_ordering: JoinOrdering::AsWritten,
                    ..EngineConfig::default()
                },
            ),
            (
                "pwl-aware order, global fixpoint",
                EngineConfig {
                    materialize_strata: false,
                    ..EngineConfig::default()
                },
            ),
        ];
        for (label, config) in configs {
            let reasoner = Reasoner::new(&prog, config);
            let start = Instant::now();
            let result = reasoner.run(&db);
            let elapsed = start.elapsed().as_millis();
            table.row(&[
                name.to_string(),
                label.to_string(),
                result.stats.join_probes.to_string(),
                result.stats.derived_atoms.to_string(),
                result.stats.peak_atoms.to_string(),
                result.stats.rounds.to_string(),
                elapsed.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
}

/// E7 — program expressive power (Lemma 6.7): value invention separates
/// warded Datalog∃ from Datalog under the program expressive power.
fn e7_program_expressive_power() {
    println!("-- E7: program expressive power (Lemma 6.7) --");
    let sigma = parse_rules("r(X, Y) :- p(X).").unwrap();
    let db = vadalog_model::parser::parse("p(c).").unwrap().database;
    let engine = CertainAnswerEngine::with_defaults(sigma).unwrap();
    let q1 = parse_query("? :- r(X, Y).").unwrap();
    let q2 = parse_query("? :- r(X, Y), p(Y).").unwrap();
    let a1 = engine.boolean_certain(&db, &q1);
    let a2 = engine.boolean_certain(&db, &q2);
    let mut table = Table::new(&["query", "certain under Σ = {P(x) → ∃y R(x,y)}", "paper"]);
    table.row(&[
        "q1 = ∃x,y R(x,y)".to_string(),
        a1.to_string(),
        "true".to_string(),
    ]);
    table.row(&[
        "q2 = ∃x,y R(x,y) ∧ P(y)".to_string(),
        a2.to_string(),
        "false".to_string(),
    ]);
    println!("{}", table.render());
    println!(
        "Any Datalog program over edb {{p}} that makes q1 true on D = {{p(c)}} can only do so\n\
         by deriving an R-fact over the active domain, which forces q2 to be true as well —\n\
         so no single Datalog program reproduces both answers (Lemma 6.7).\n"
    );
}

/// E8 — the linearisation rewriting of Section 1.2.
fn e8_linearization(quick: bool) {
    println!("-- E8: eliminating unnecessary non-linear recursion --");
    let sizes: &[usize] = if quick { &[100] } else { &[100, 300] };
    let mut table = Table::new(&[
        "|D| (edges)",
        "program",
        "pwl",
        "derived atoms",
        "joins evaluated",
        "answers",
        "time (ms)",
    ]);
    for &n in sizes {
        let db = random_graph(n / 4, n, 3);
        let query = parse_query("?(X, Y) :- t(X, Y).").unwrap();
        let nonlinear = program(NONLINEAR_TC);
        let linearized = linearize(&nonlinear).program;
        for (label, prog) in [("non-linear TC", nonlinear), ("linearised TC", linearized)] {
            let engine = DatalogEngine::new(prog.clone()).unwrap();
            let start = Instant::now();
            let result = engine.evaluate(&db);
            let elapsed = start.elapsed().as_millis();
            let answers = result.answers(&query);
            table.row(&[
                n.to_string(),
                label.to_string(),
                is_piecewise_linear(&prog).to_string(),
                result.stats.derived_atoms.to_string(),
                result.stats.joins_evaluated.to_string(),
                answers.len().to_string(),
                elapsed.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
}
