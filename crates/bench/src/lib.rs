//! Shared helpers for the Vadalog reproduction benchmark harness.
//!
//! The experiment drivers live in `src/bin/harness.rs` (which prints the
//! tables recorded in EXPERIMENTS.md) and in the Criterion benches under
//! `benches/`. This library hosts the small amount of code they share:
//! canonical programs, query strings and a tiny table printer.

#![forbid(unsafe_code)]

use vadalog_model::parser::parse_rules;
use vadalog_model::Program;

/// The linear transitive-closure program used throughout the experiments.
pub const LINEAR_TC: &str = "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).";

/// The non-linear transitive-closure program of Section 1.2.
pub const NONLINEAR_TC: &str = "t(X, Y) :- edge(X, Y).\n t(X, Z) :- t(X, Y), t(Y, Z).";

/// Parses one of the canonical programs above.
pub fn program(src: &str) -> Program {
    parse_rules(src).expect("canonical program parses")
}

/// Builds a program family with `levels` strata for the combined-complexity
/// experiment (E3): each level copies the previous one and adds a piece-wise
/// linear recursive rule.
pub fn layered_program(levels: usize) -> Program {
    let mut src = String::from("p1(X, Y) :- edge(X, Y).\np1(X, Z) :- edge(X, Y), p1(Y, Z).\n");
    for level in 2..=levels.max(1) {
        let prev = level - 1;
        src.push_str(&format!("p{level}(X, Y) :- p{prev}(X, Y).\n"));
        src.push_str(&format!(
            "p{level}(X, Z) :- p{prev}(X, Y), p{level}(Y, Z).\n"
        ));
    }
    parse_rules(&src).expect("layered program parses")
}

/// The seed repository's semi-naive evaluation loop, retained as the joins
/// benchmark baseline: rule bodies are cloned per delta fact, candidate
/// matches allocate and clone `BTreeMap`-backed substitutions, and every
/// homomorphism search materialises its full result vector — exactly the
/// allocation profile the columnar store + zero-allocation join kernel
/// replaced.
pub mod seed_reference {
    use vadalog_analysis::stratify::stratify;
    use vadalog_model::homomorphism::reference::homomorphisms_reference;
    use vadalog_model::{Atom, Database, HomSearch, Instance, Program, Substitution};

    /// Counters mirroring `DatalogStats` for the baseline run.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct SeedStats {
        /// Derived (IDB) atoms.
        pub derived_atoms: usize,
        /// Total atoms materialised.
        pub peak_atoms: usize,
    }

    /// Matches a body atom against a concrete fact, returning the induced
    /// substitution if they are compatible (the seed's `match_atom`).
    fn match_atom(pattern: &Atom, fact: &Atom) -> Option<Substitution> {
        if pattern.predicate != fact.predicate || pattern.arity() != fact.arity() {
            return None;
        }
        let mut subst = Substitution::new();
        for (p, f) in pattern.terms.iter().zip(fact.terms.iter()) {
            if p.is_var() {
                match subst.get(p) {
                    Some(existing) if existing != *f => return None,
                    Some(_) => {}
                    None => subst.bind(*p, *f),
                }
            } else if p != f {
                return None;
            }
        }
        Some(subst)
    }

    /// Stratified semi-naive materialisation with the seed's allocation
    /// profile. Produces the same instance as `DatalogEngine::evaluate`.
    pub fn evaluate(program: &Program, database: &Database) -> (Instance, SeedStats) {
        let stratification = stratify(program);
        let mut instance = database.as_instance().clone();
        let mut stats = SeedStats::default();

        for stratum in &stratification.strata {
            let rules: Vec<&_> = stratum.rules.iter().map(|&i| &program.tgds()[i]).collect();

            let mut delta = Instance::new();
            for rule in &rules {
                for h in homomorphisms_reference(
                    &rule.body,
                    &instance,
                    &Substitution::new(),
                    HomSearch::all(),
                ) {
                    let fact = h.apply_atom(&rule.head[0]);
                    if !instance.contains(&fact) {
                        delta.insert(fact.clone()).expect("derived fact is ground");
                        instance.insert(fact).expect("derived fact is ground");
                        stats.derived_atoms += 1;
                    }
                }
            }

            if !stratum.recursive {
                continue;
            }

            while !delta.is_empty() {
                let mut next_delta = Instance::new();
                for rule in &rules {
                    for (pos, body_atom) in rule.body.iter().enumerate() {
                        if !stratum.predicates.contains(&body_atom.predicate) {
                            continue;
                        }
                        for delta_fact in delta.atoms_with_predicate(body_atom.predicate) {
                            let seed = match match_atom(body_atom, &delta_fact) {
                                Some(s) => s,
                                None => continue,
                            };
                            // The seed's per-delta-fact body clone.
                            let rest: Vec<Atom> = rule
                                .body
                                .iter()
                                .enumerate()
                                .filter(|(i, _)| *i != pos)
                                .map(|(_, a)| a.clone())
                                .collect();
                            for h in
                                homomorphisms_reference(&rest, &instance, &seed, HomSearch::all())
                            {
                                let fact = h.apply_atom(&rule.head[0]);
                                if !instance.contains(&fact) {
                                    next_delta
                                        .insert(fact.clone())
                                        .expect("derived fact is ground");
                                    instance.insert(fact).expect("derived fact is ground");
                                    stats.derived_atoms += 1;
                                }
                            }
                        }
                    }
                }
                delta = next_delta;
            }
        }

        stats.peak_atoms = instance.len();
        (instance, stats)
    }
}

/// A minimal fixed-width table printer for the harness output.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (must have as many cells as the header).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let parts: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<width$}", width = w))
                .collect();
            format!("| {} |", parts.join(" | "))
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&fmt_row(&sep, &widths));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_analysis::classify::{classify_scenario, ScenarioClass};

    #[test]
    fn canonical_programs_parse_and_classify() {
        assert_eq!(
            classify_scenario(&program(LINEAR_TC)),
            ScenarioClass::WardedPwl
        );
        assert_eq!(
            classify_scenario(&program(NONLINEAR_TC)),
            ScenarioClass::WardedLinearizable
        );
    }

    #[test]
    fn layered_programs_grow_linearly_and_stay_pwl() {
        let p3 = layered_program(3);
        assert_eq!(p3.len(), 2 + 2 * 2);
        assert_eq!(classify_scenario(&p3), ScenarioClass::WardedPwl);
        let p6 = layered_program(6);
        assert!(p6.len() > p3.len());
    }

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["alpha".to_string(), "1".to_string()]);
        t.row(&["b".to_string(), "12345".to_string()]);
        let rendered = t.render();
        assert!(rendered.contains("| alpha | 1     |"));
        assert!(rendered.lines().count() == 4);
    }
}
