//! The chase procedure for TGDs (Section 2 of the paper) with provenance
//! tracking (the chase graph of Section 4.2) and termination control
//! (Section 7).
//!
//! The chase is the classical bottom-up tool for certain-answer computation:
//! `cert(q, D, Σ) = q(chase(D, Σ))` (Proposition 2.1). For warded programs
//! the chase may be infinite, so the engine supports termination policies
//! that bound the number of steps, the number of invented nulls, or the
//! *generation depth* of nulls — the practical device the Vadalog system uses
//! for "aggressive termination control".
//!
//! Two chase variants are provided:
//!
//! * the **restricted** (standard) chase, which fires a trigger only when its
//!   head is not already satisfied, and
//! * the **oblivious** chase, which fires every trigger exactly once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod provenance;
pub mod termination;

pub use engine::{
    certain_answers, ChaseConfig, ChaseEngine, ChaseResult, ChaseStats, ChaseVariant,
};
pub use provenance::{ChaseGraph, DerivationRecord};
pub use termination::TerminationPolicy;
