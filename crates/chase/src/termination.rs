//! Termination policies for the chase.
//!
//! Warded TGDs admit infinite chases (value invention can go on forever), so
//! any practical engine must decide when to stop. The policies here mirror
//! the controls discussed in Section 7: a hard bound on steps or nulls, and a
//! bound on the *generation depth* of labelled nulls, i.e. how many
//! existential rule firings separate a null from the database constants. For
//! warded programs a depth bound that depends only on the query suffices to
//! answer that query correctly, which is exactly the intuition the
//! proof-tree node-width bounds make precise.

/// A policy deciding when the chase must stop even though triggers remain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TerminationPolicy {
    /// Run until no trigger is applicable (may not terminate for programs
    /// with recursive value invention).
    Unbounded,
    /// Stop after the given number of chase steps (applied triggers).
    MaxSteps(usize),
    /// Stop once the given number of labelled nulls has been invented.
    MaxNulls(usize),
    /// Ignore triggers whose firing would create a null of generation depth
    /// greater than the bound. The chase still runs to completion on the
    /// remaining triggers, so Datalog-style recursion is unaffected.
    MaxNullDepth(usize),
}

impl Default for TerminationPolicy {
    fn default() -> Self {
        TerminationPolicy::MaxSteps(1_000_000)
    }
}

impl TerminationPolicy {
    /// `true` iff the policy permits another chase step given the current
    /// counters.
    pub fn allows_step(&self, steps: usize, nulls: usize) -> bool {
        match self {
            TerminationPolicy::Unbounded | TerminationPolicy::MaxNullDepth(_) => true,
            TerminationPolicy::MaxSteps(max) => steps < *max,
            TerminationPolicy::MaxNulls(max) => nulls < *max,
        }
    }

    /// `true` iff a trigger creating nulls of the given generation depth may
    /// fire.
    pub fn allows_null_depth(&self, depth: usize) -> bool {
        match self {
            TerminationPolicy::MaxNullDepth(max) => depth <= *max,
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_always_allows() {
        let p = TerminationPolicy::Unbounded;
        assert!(p.allows_step(10_000_000, 10_000_000));
        assert!(p.allows_null_depth(10_000_000));
    }

    #[test]
    fn step_and_null_bounds() {
        assert!(TerminationPolicy::MaxSteps(10).allows_step(9, 0));
        assert!(!TerminationPolicy::MaxSteps(10).allows_step(10, 0));
        assert!(TerminationPolicy::MaxNulls(5).allows_step(100, 4));
        assert!(!TerminationPolicy::MaxNulls(5).allows_step(100, 5));
    }

    #[test]
    fn depth_bound_only_restricts_deep_triggers() {
        let p = TerminationPolicy::MaxNullDepth(2);
        assert!(p.allows_step(usize::MAX - 1, usize::MAX - 1));
        assert!(p.allows_null_depth(0));
        assert!(p.allows_null_depth(2));
        assert!(!p.allows_null_depth(3));
    }
}
